"""Importable trial kernels for the campaign tests.

Campaign trial kernels are referenced by dotted path and executed in
worker processes, so they must live at module level in an importable
module — lambdas and closures defined inside a test cannot be used.
Kernels taking a scratch path receive it through their params dict
(everything in params must be JSON-able, so paths travel as strings).
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Mapping

from repro.campaign import TransientTrialError
from repro.campaign.spec import CampaignSpec, parameter_grid

__all__ = [
    "crash_if_marked_trial",
    "flaky_once_trial",
    "hard_exit_trial",
    "not_a_spec",
    "ok_trial",
    "raise_trial",
    "sleepy_trial",
    "tiny_spec",
]


def ok_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    """Deterministic arithmetic on the params: y = x * factor."""
    return {"y": params["x"] * params.get("factor", 1), "x_seen": params["x"]}


def raise_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    """Always fails with an ordinary (non-retryable) exception."""
    raise RuntimeError(f"boom on x={params['x']}")


def crash_if_marked_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    """Completes normally unless ``params['crash']`` is set."""
    if params.get("crash"):
        raise RuntimeError(f"injected crash at x={params['x']}")
    return {"y": params["x"]}


def hard_exit_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    """Kills its worker process outright when marked (breaks the pool)."""
    if params.get("exit"):
        os._exit(17)
    return {"y": params["x"]}


def flaky_once_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    """Raises TransientTrialError on the first call, then succeeds.

    Cross-process attempt tracking uses a marker file under the scratch
    directory passed via params.
    """
    marker = Path(params["scratch"]) / f"flaky-{params['x']}.marker"
    if not marker.exists():
        marker.write_text("attempted")
        raise TransientTrialError("first attempt always fails")
    return {"y": params["x"]}


def sleepy_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    """Sleeps for ``params['sleep_s']`` seconds, then returns."""
    time.sleep(params["sleep_s"])
    return {"slept": params["sleep_s"]}


def not_a_spec() -> dict[str, Any]:
    """A zero-arg callable that does NOT build a CampaignSpec."""
    return {"not": "a spec"}


def tiny_spec() -> CampaignSpec:
    """A 4-trial spec the CLI tests can reference as module:callable."""
    return CampaignSpec(
        name="tiny",
        trial="tests.campaign.trials:ok_trial",
        grid=parameter_grid(x=(1, 2), factor=(1, 10)),
        description="four cheap arithmetic trials",
    )
