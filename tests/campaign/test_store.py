"""Tests for the on-disk trial cache and JSONL log."""

import json

from repro.campaign.store import CampaignStore

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "1" * 62


def record_for(key, trial_id="demo/0000", outcome="completed"):
    return {
        "key": key,
        "trial_id": trial_id,
        "outcome": outcome,
        "metrics": {"y": 1},
    }


class TestTrialCache:
    def test_save_then_load_roundtrip(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.save("demo", KEY_A, record_for(KEY_A))
        assert store.load("demo", KEY_A) == record_for(KEY_A)

    def test_load_missing_is_none(self, tmp_path):
        assert CampaignStore(tmp_path).load("demo", KEY_A) is None

    def test_load_corrupt_json_is_none(self, tmp_path):
        store = CampaignStore(tmp_path)
        path = store.trial_path("demo", KEY_A)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert store.load("demo", KEY_A) is None

    def test_load_key_mismatch_is_none(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.save("demo", KEY_A, record_for(KEY_B))
        assert store.load("demo", KEY_A) is None

    def test_load_non_completed_is_none(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.save("demo", KEY_A, record_for(KEY_A, outcome="failed"))
        assert store.load("demo", KEY_A) is None

    def test_paths_shard_by_key_prefix(self, tmp_path):
        store = CampaignStore(tmp_path)
        path = store.trial_path("demo", KEY_A)
        assert path.parent.name == KEY_A[:2]
        assert path.name == f"{KEY_A}.json"

    def test_save_leaves_no_temp_files(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.save("demo", KEY_A, record_for(KEY_A))
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_cached_records_sorted_by_trial_id(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.save("demo", KEY_B, record_for(KEY_B, trial_id="demo/0001"))
        store.save("demo", KEY_A, record_for(KEY_A, trial_id="demo/0000"))
        ids = [r["trial_id"] for r in store.cached_records("demo")]
        assert ids == ["demo/0000", "demo/0001"]


class TestLog:
    def test_append_and_iter_in_order(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append_log("demo", {"trial_id": "demo/0000", "outcome": "failed"})
        store.append_log("demo", {"trial_id": "demo/0001", "outcome": "completed"})
        entries = list(store.iter_log("demo"))
        assert [e["trial_id"] for e in entries] == ["demo/0000", "demo/0001"]

    def test_iter_skips_unparsable_lines(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append_log("demo", {"trial_id": "demo/0000"})
        with store.log_path("demo").open("a") as handle:
            handle.write("not json at all\n")
        store.append_log("demo", {"trial_id": "demo/0001"})
        assert len(list(store.iter_log("demo"))) == 2

    def test_iter_missing_log_is_empty(self, tmp_path):
        assert list(CampaignStore(tmp_path).iter_log("demo")) == []

    def test_iter_tolerates_torn_final_line(self, tmp_path):
        # A crash mid-append leaves a truncated JSON tail; readers must
        # keep every complete line and skip the torn one.
        store = CampaignStore(tmp_path)
        store.append_log("demo", {"trial_id": "demo/0000"})
        store.append_log("demo", {"trial_id": "demo/0001"})
        path = store.log_path("demo")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 12])  # tear into the last record
        entries = list(store.iter_log("demo"))
        assert [e["trial_id"] for e in entries] == ["demo/0000"]

    def test_iter_tolerates_truncated_multibyte_tail(self, tmp_path):
        # Torn mid-UTF-8-sequence: the tail is not even decodable, which
        # must skip that line, not raise UnicodeDecodeError for the file.
        store = CampaignStore(tmp_path)
        store.append_log("demo", {"trial_id": "demo/0000"})
        path = store.log_path("demo")
        tail = '{"trial_id": "demo/0001", "note": "éé"}\n'.encode("utf-8")
        cut = tail.rindex("é".encode("utf-8")) + 1  # inside the 2-byte char
        with path.open("ab") as handle:
            handle.write(tail[:cut])
        entries = list(store.iter_log("demo"))
        assert [e["trial_id"] for e in entries] == ["demo/0000"]

    def test_log_lines_are_json(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append_log("demo", {"trial_id": "demo/0000", "outcome": "failed"})
        line = store.log_path("demo").read_text().splitlines()[0]
        assert json.loads(line)["outcome"] == "failed"


class TestMaintenance:
    def test_campaigns_lists_directories(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.save("alpha", KEY_A, record_for(KEY_A))
        store.append_log("beta", {"trial_id": "beta/0000"})
        assert store.campaigns() == ["alpha", "beta"]

    def test_campaigns_empty_root(self, tmp_path):
        assert CampaignStore(tmp_path / "nothing").campaigns() == []

    def test_clean_removes_and_counts(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.save("demo", KEY_A, record_for(KEY_A))
        store.save("demo", KEY_B, record_for(KEY_B))
        store.append_log("demo", {"trial_id": "demo/0000"})
        assert store.clean("demo") == 2
        assert store.load("demo", KEY_A) is None
        assert not store.campaign_dir("demo").exists()

    def test_clean_missing_campaign_is_zero(self, tmp_path):
        assert CampaignStore(tmp_path).clean("nope") == 0
