"""Tests for the built-in experiment campaigns and spec resolution."""

import pytest

from repro.campaign.experiments import (
    BUILTIN_CAMPAIGNS,
    exp03_spec,
    exp03_trial,
    exp04_spec,
    exp07_spec,
    ext04_spec,
    resolve_spec,
)
from repro.campaign.spec import CampaignSpec


class TestGridShapes:
    def test_exp03_grid(self):
        spec = exp03_spec()
        assert spec.trial_count == 60  # 5 sizes x 4 attackers x 3 seeds
        assert spec.grid[0] == {"node_count": 50, "attacker": "CSA", "seed": 1}
        # Seeds vary fastest, so one (size, attacker) cell is contiguous.
        assert [p["seed"] for p in spec.grid[:3]] == [1, 2, 3]

    def test_exp04_grid(self):
        assert exp04_spec().trial_count == 30  # 5 key counts x 2 attackers x 3 seeds

    def test_exp07_grid(self):
        spec = exp07_spec()
        assert spec.trial_count == 48  # 4 intervals x 3 attackers x 4 seeds
        attackers = {p["attacker"] for p in spec.grid}
        assert attackers == {"CSA", "CSA-no-windows", "Blatant"}

    def test_ext04_grid(self):
        spec = ext04_spec()
        assert spec.trial_count == 12  # 4 honest counts x 3 seeds
        assert {p["honest_count"] for p in spec.grid} == {0, 1, 2, 3}

    def test_all_builtins_resolve_their_kernels(self):
        for builder in BUILTIN_CAMPAIGNS.values():
            spec = builder()
            assert callable(spec.resolve_trial())
            assert spec.description


class TestResolveSpec:
    def test_builtin_name(self):
        assert resolve_spec("exp03").name == "exp03"

    def test_module_reference(self):
        spec = resolve_spec("tests.campaign.trials:tiny_spec")
        assert isinstance(spec, CampaignSpec)
        assert spec.name == "tiny"

    def test_unknown_name_lists_builtins(self):
        with pytest.raises(ValueError, match="exp03"):
            resolve_spec("definitely-not-a-campaign")

    def test_reference_must_produce_a_spec(self):
        with pytest.raises(ValueError, match="did not produce a CampaignSpec"):
            resolve_spec("tests.campaign.trials:not_a_spec")


class TestTrialKernels:
    def test_exp03_trial_smoke(self):
        # One real (small) simulation through the kernel: the headline
        # scenario at its smallest size must exhaust key nodes undetected.
        metrics = exp03_trial({"node_count": 50, "attacker": "CSA", "seed": 1})
        assert set(metrics) == {
            "exhausted_key_ratio",
            "exhausted_key_count",
            "detected",
        }
        assert metrics["exhausted_key_ratio"] >= 0.8
        assert metrics["detected"] is False

    def test_exp03_trial_unknown_attacker_rejected(self):
        with pytest.raises(ValueError, match="unknown attacker"):
            exp03_trial({"node_count": 50, "attacker": "Mystery", "seed": 1})
