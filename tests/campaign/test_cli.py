"""Tests for ``python -m repro campaign`` subcommands."""

import pytest

from repro.cli import main


def run_cli(*argv):
    return main(["campaign", *argv])


class TestRun:
    def test_run_tiny_campaign(self, tmp_path, capsys):
        code = run_cli(
            "run",
            "tests.campaign.trials:tiny_spec",
            "--serial",
            "--cache-dir",
            str(tmp_path),
            "--quiet",
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign tiny:" in out
        assert "4 completed" in out

    def test_rerun_hits_cache(self, tmp_path, capsys):
        run_cli(
            "run", "tests.campaign.trials:tiny_spec",
            "--serial", "--cache-dir", str(tmp_path), "--quiet",
        )
        capsys.readouterr()
        code = run_cli(
            "run", "tests.campaign.trials:tiny_spec",
            "--serial", "--cache-dir", str(tmp_path), "--quiet",
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 completed, 0 failed, 4 cached" in out

    def test_limit_restricts_grid(self, tmp_path, capsys):
        code = run_cli(
            "run", "tests.campaign.trials:tiny_spec",
            "--serial", "--limit", "2", "--cache-dir", str(tmp_path), "--quiet",
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 trial(s)" in out

    def test_progress_lines_on_stderr(self, tmp_path, capsys):
        run_cli(
            "run", "tests.campaign.trials:tiny_spec",
            "--serial", "--cache-dir", str(tmp_path),
        )
        err = capsys.readouterr().err
        assert "[1/4] tiny/0000: completed" in err

    def test_failures_set_exit_code(self, tmp_path, capsys):
        code = run_cli(
            "run", "tests.campaign.test_cli:failing_spec",
            "--serial", "--cache-dir", str(tmp_path), "--quiet",
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED failing/0000" in out

    def test_unknown_campaign_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown campaign"):
            run_cli("run", "nonsense", "--cache-dir", str(tmp_path))


class TestStatus:
    def test_status_empty_store(self, tmp_path, capsys):
        code = run_cli("status", "tiny", "--cache-dir", str(tmp_path))
        out = capsys.readouterr().out
        assert code == 0
        assert "no recorded trials" in out

    def test_status_after_run(self, tmp_path, capsys):
        run_cli(
            "run", "tests.campaign.trials:tiny_spec",
            "--serial", "--cache-dir", str(tmp_path), "--quiet",
        )
        capsys.readouterr()
        code = run_cli("status", "tiny", "--cache-dir", str(tmp_path))
        out = capsys.readouterr().out
        assert code == 0
        assert "tiny/0000" in out and "tiny/0003" in out
        assert "4 trial(s): 4 completed" in out

    def test_status_json_uses_shared_serializer(self, tmp_path, capsys):
        import json

        from repro.campaign.status import status_summary
        from repro.campaign.store import CampaignStore

        run_cli(
            "run", "tests.campaign.trials:tiny_spec",
            "--serial", "--cache-dir", str(tmp_path), "--quiet",
        )
        capsys.readouterr()
        code = run_cli("status", "tiny", "--cache-dir", str(tmp_path), "--json")
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload == status_summary(CampaignStore(tmp_path), "tiny")
        assert payload["trial_count"] == 4
        assert payload["outcome_counts"] == {"completed": 4}
        assert [t["trial_id"] for t in payload["trials"]] == [
            f"tiny/{i:04d}" for i in range(4)
        ]

    def test_status_reports_failures(self, tmp_path, capsys):
        run_cli(
            "run", "tests.campaign.test_cli:failing_spec",
            "--serial", "--cache-dir", str(tmp_path), "--quiet",
        )
        capsys.readouterr()
        run_cli("status", "failing", "--cache-dir", str(tmp_path))
        out = capsys.readouterr().out
        assert "1 failed" in out
        assert "boom on x=1" in out


class TestCleanAndList:
    def test_clean_drops_the_cache(self, tmp_path, capsys):
        run_cli(
            "run", "tests.campaign.trials:tiny_spec",
            "--serial", "--cache-dir", str(tmp_path), "--quiet",
        )
        capsys.readouterr()
        code = run_cli("clean", "tiny", "--cache-dir", str(tmp_path))
        out = capsys.readouterr().out
        assert code == 0
        assert "removed 4 cached trial(s)" in out
        run_cli(
            "run", "tests.campaign.trials:tiny_spec",
            "--serial", "--cache-dir", str(tmp_path), "--quiet",
        )
        assert "4 completed, 0 failed, 0 cached" in capsys.readouterr().out

    def test_list_names_builtins(self, capsys):
        code = run_cli("list")
        out = capsys.readouterr().out
        assert code == 0
        for name, trials in (("exp03", "60"), ("exp04", "30"),
                             ("exp07", "48"), ("ext04", "12")):
            assert name in out
            assert trials in out


def failing_spec():
    from repro.campaign.spec import CampaignSpec

    return CampaignSpec(
        name="failing",
        trial="tests.campaign.trials:raise_trial",
        grid=({"x": 1},),
    )
