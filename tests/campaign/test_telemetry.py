"""Tests for campaign telemetry counters and the progress reporter."""

import io

from repro.campaign.telemetry import CampaignTelemetry, ProgressReporter


def report(trial_id="demo/0000", outcome="completed", attempts=1, wall=0.5,
           error=None, cached=False):
    return {
        "trial_id": trial_id,
        "outcome": outcome,
        "attempts": attempts,
        "wall_time_s": wall,
        "error": error,
        "cached": cached,
    }


class TestCampaignTelemetry:
    def test_counters_accumulate(self):
        t = CampaignTelemetry()
        t.observe_cached({"trial_id": "demo/0000"})
        t.observe_executed(report("demo/0001", wall=0.5))
        t.observe_executed(report("demo/0002", "failed", attempts=2, wall=1.5,
                                  error="boom"))
        assert t.cached == 1
        assert t.completed == 1
        assert t.failed == 1
        assert t.retried == 1
        assert t.executed == 2
        assert t.total == 3
        assert t.executed_wall_s == 2.0

    def test_slowest_trial_tracked(self):
        t = CampaignTelemetry()
        t.observe_executed(report("demo/0000", wall=0.2))
        t.observe_executed(report("demo/0001", wall=0.9))
        t.observe_executed(report("demo/0002", wall=0.4))
        assert t.slowest_trial_id == "demo/0001"
        assert t.slowest_wall_s == 0.9

    def test_summary_lines(self):
        t = CampaignTelemetry()
        t.observe_executed(report(wall=1.0))
        t.observe_cached({})
        summary = t.summary()
        assert "2 trial(s): 1 completed, 0 failed, 1 cached" in summary
        assert "1.0s executing" in summary
        assert "slowest demo/0000" in summary

    def test_summary_without_executions_omits_timing(self):
        t = CampaignTelemetry()
        t.observe_cached({})
        assert "executing" not in t.summary()


class TestProgressReporter:
    def test_line_format_counts_and_outcome(self):
        stream = io.StringIO()
        progress = ProgressReporter(total=12, stream=stream)
        progress(report("demo/0003", wall=1.25))
        assert stream.getvalue() == "[ 1/12] demo/0003: completed (1.25s)\n"

    def test_cached_and_retry_annotations(self):
        stream = io.StringIO()
        progress = ProgressReporter(total=3, stream=stream)
        progress(report("demo/0000", cached=True, wall=0.0))
        progress(report("demo/0001", attempts=2))
        progress(report("demo/0002", outcome="failed", error="boom"))
        lines = stream.getvalue().splitlines()
        assert "completed (cached)" in lines[0]
        assert "(attempt 2)" in lines[1]
        assert lines[2].endswith("— boom")
