"""Tests for trial execution: capture, retry, timeout, crash isolation."""

import logging
import multiprocessing

import pytest

from repro.campaign.executor import (
    ParallelExecutor,
    SerialExecutor,
    TrialTask,
    execute_trial,
    resolve_worker_count,
)


def task_for(ref, params, index=0, timeout_s=None):
    return TrialTask(
        trial_id=f"demo/{index:04d}",
        key=f"{index:064x}",
        trial_ref=f"tests.campaign.trials:{ref}",
        params=params,
        timeout_s=timeout_s,
    )


class TestExecuteTrial:
    def test_completed_report(self):
        report = execute_trial(task_for("ok_trial", {"x": 3, "factor": 2}))
        assert report["outcome"] == "completed"
        assert report["metrics"] == {"y": 6, "x_seen": 3}
        assert report["error"] is None
        assert report["retryable"] is False
        assert report["wall_time_s"] >= 0.0

    def test_exception_becomes_failed_report(self):
        report = execute_trial(task_for("raise_trial", {"x": 9}))
        assert report["outcome"] == "failed"
        assert report["metrics"] is None
        assert "boom on x=9" in report["error"]
        assert report["retryable"] is False

    def test_transient_failure_is_retryable(self, tmp_path):
        report = execute_trial(
            task_for("flaky_once_trial", {"x": 1, "scratch": str(tmp_path)})
        )
        assert report["outcome"] == "failed"
        assert report["retryable"] is True
        assert "transient failure" in report["error"]

    def test_timeout_bounds_the_trial(self):
        report = execute_trial(
            task_for("sleepy_trial", {"sleep_s": 30.0}, timeout_s=0.2)
        )
        assert report["outcome"] == "failed"
        assert "timed out after 0.2s" in report["error"]
        assert report["wall_time_s"] < 5.0

    def test_non_mapping_metrics_rejected(self):
        # builtins:len called on the params dict returns an int, which the
        # metrics validator must reject as a failed trial.
        report = execute_trial(
            TrialTask(
                trial_id="demo/0000",
                key="0" * 64,
                trial_ref="builtins:len",
                params={},
                timeout_s=None,
            )
        )
        assert report["outcome"] == "failed"
        assert "must return a mapping" in report["error"]


class TestSerialExecutor:
    def test_reports_in_task_order(self):
        tasks = [task_for("ok_trial", {"x": i}, index=i) for i in range(5)]
        reports = SerialExecutor().run(tasks)
        assert [r["trial_id"] for r in reports] == [t.trial_id for t in tasks]

    def test_transient_failure_retried_to_success(self, tmp_path):
        task = task_for("flaky_once_trial", {"x": 1, "scratch": str(tmp_path)})
        (report,) = SerialExecutor(max_retries=1).run([task])
        assert report["outcome"] == "completed"
        assert report["attempts"] == 2

    def test_zero_retries_leaves_transient_failure(self, tmp_path):
        task = task_for("flaky_once_trial", {"x": 2, "scratch": str(tmp_path)})
        (report,) = SerialExecutor(max_retries=0).run([task])
        assert report["outcome"] == "failed"
        assert report["attempts"] == 1

    def test_deterministic_failure_not_retried(self):
        (report,) = SerialExecutor(max_retries=3).run(
            [task_for("raise_trial", {"x": 1})]
        )
        assert report["outcome"] == "failed"
        assert report["attempts"] == 1

    def test_on_result_called_once_per_task(self):
        seen = []
        tasks = [task_for("ok_trial", {"x": i}, index=i) for i in range(3)]
        SerialExecutor().run(tasks, on_result=seen.append)
        assert [r["trial_id"] for r in seen] == [t.trial_id for t in tasks]

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            SerialExecutor(max_retries=-1)


class TestParallelExecutor:
    def test_forty_trials_with_injected_crash(self):
        # Acceptance criterion: a >= 40-trial campaign runs to completion
        # with the parallel executor, and an injected crashing trial is
        # recorded as `failed` without aborting the run.
        tasks = [
            task_for(
                "crash_if_marked_trial", {"x": i, "crash": i == 17}, index=i
            )
            for i in range(40)
        ]
        reports = ParallelExecutor(max_workers=2).run(tasks)
        assert len(reports) == 40
        assert [r["trial_id"] for r in reports] == [t.trial_id for t in tasks]
        by_outcome = {}
        for report in reports:
            by_outcome.setdefault(report["outcome"], []).append(report)
        assert len(by_outcome["failed"]) == 1
        assert "injected crash at x=17" in by_outcome["failed"][0]["error"]
        assert len(by_outcome["completed"]) == 39

    def test_hard_crash_quarantined_not_fatal(self):
        # os._exit kills the worker and breaks the shared pool; the
        # quarantine pass must pin the failure on exactly that trial
        # while every bystander still completes.
        tasks = [
            task_for("hard_exit_trial", {"x": i, "exit": i == 3}, index=i)
            for i in range(8)
        ]
        reports = ParallelExecutor(max_workers=2).run(tasks)
        failed = [r for r in reports if r["outcome"] == "failed"]
        assert [r["trial_id"] for r in failed] == ["demo/0003"]
        assert "worker process crashed" in failed[0]["error"]
        assert sum(r["outcome"] == "completed" for r in reports) == 7

    def test_transient_failure_retried_across_processes(self, tmp_path):
        task = task_for("flaky_once_trial", {"x": 5, "scratch": str(tmp_path)})
        (report,) = ParallelExecutor(max_workers=1).run([task])
        assert report["outcome"] == "completed"
        assert report["attempts"] == 2

    def test_timeout_in_worker(self):
        task = task_for("sleepy_trial", {"sleep_s": 30.0}, timeout_s=0.2)
        (report,) = ParallelExecutor(max_workers=1).run([task])
        assert report["outcome"] == "failed"
        assert "timed out" in report["error"]

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            ParallelExecutor(max_workers=0)


class TestResolveWorkerCount:
    def test_explicit_count_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_worker_count(3) == 3

    def test_env_override_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_worker_count() == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_worker_count() == multiprocessing.cpu_count()

    def test_non_integer_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS must be an integer"):
            resolve_worker_count()

    def test_non_positive_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError, match="REPRO_JOBS must be >= 1"):
            resolve_worker_count()

    def test_parallel_executor_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert ParallelExecutor().max_workers == 2

    def test_choice_and_source_are_logged(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_JOBS", "4")
        with caplog.at_level(logging.INFO, logger="repro.campaign.executor"):
            resolve_worker_count()
            resolve_worker_count(2)
        messages = [r.getMessage() for r in caplog.records]
        assert "using 4 worker(s) (from REPRO_JOBS)" in messages
        assert "using 2 worker(s) (explicit)" in messages
