"""Tests for campaign orchestration: caching, delta resume, series access."""

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    ParallelExecutor,
    SerialExecutor,
    parameter_grid,
    run_campaign,
)


def ok_spec(name="demo", **grid_axes):
    axes = grid_axes or {"x": (1, 2, 3), "factor": (1, 10)}
    return CampaignSpec(
        name=name,
        trial="tests.campaign.trials:ok_trial",
        grid=parameter_grid(**axes),
    )


def crashy_spec(crash_x):
    return CampaignSpec(
        name="crashy",
        trial="tests.campaign.trials:crash_if_marked_trial",
        grid=tuple(
            {"x": x, "crash": x == crash_x} for x in range(1, 7)
        ),
    )


class TestRunCampaign:
    def test_records_in_spec_order(self, tmp_path):
        result = run_campaign(ok_spec(), store=CampaignStore(tmp_path))
        assert [r.trial_id for r in result.records] == [
            f"demo/{i:04d}" for i in range(6)
        ]
        assert all(r.completed for r in result.records)
        assert result.executed_count == 6
        assert result.cached_count == 0

    def test_rerun_is_pure_cache_hit(self, tmp_path):
        # Acceptance criterion: an immediate re-run reports a 100% cache
        # hit — zero trials executed.
        store = CampaignStore(tmp_path)
        first = run_campaign(ok_spec(), store=store)
        second = run_campaign(ok_spec(), store=store)
        assert first.executed_count == 6
        assert second.executed_count == 0
        assert second.cached_count == 6
        assert [r.metrics for r in second.records] == [
            r.metrics for r in first.records
        ]
        assert second.telemetry.cached == 6
        assert second.telemetry.executed == 0

    def test_force_re_executes_everything(self, tmp_path):
        store = CampaignStore(tmp_path)
        run_campaign(ok_spec(), store=store)
        forced = run_campaign(ok_spec(), store=store, force=True)
        assert forced.executed_count == 6
        assert forced.cached_count == 0

    def test_no_store_never_caches(self):
        first = run_campaign(ok_spec())
        second = run_campaign(ok_spec())
        assert first.executed_count == 6
        assert second.executed_count == 6

    def test_version_bump_invalidates_cache(self, tmp_path):
        store = CampaignStore(tmp_path)
        run_campaign(ok_spec(), store=store)
        bumped = CampaignSpec(
            name="demo",
            trial="tests.campaign.trials:ok_trial",
            grid=parameter_grid(x=(1, 2, 3), factor=(1, 10)),
            version=2,
        )
        result = run_campaign(bumped, store=store)
        assert result.executed_count == 6

    def test_grid_growth_executes_only_the_delta(self, tmp_path):
        store = CampaignStore(tmp_path)
        run_campaign(ok_spec(x=(1, 2), factor=(1,)), store=store)
        grown = run_campaign(ok_spec(x=(1, 2, 3), factor=(1,)), store=store)
        assert grown.cached_count == 2
        assert grown.executed_count == 1

    def test_failures_are_recorded_not_raised(self, tmp_path):
        result = run_campaign(crashy_spec(crash_x=4), store=CampaignStore(tmp_path))
        assert len(result.failed) == 1
        assert result.failed[0].params == {"x": 4, "crash": True}
        assert "injected crash at x=4" in result.failed[0].error
        assert len(result.completed) == 5
        with pytest.raises(RuntimeError, match="1 of 6 trial"):
            result.raise_for_failures()

    def test_failed_trials_not_cached_so_resume_retries(self, tmp_path):
        store = CampaignStore(tmp_path)
        run_campaign(crashy_spec(crash_x=4), store=store)
        second = run_campaign(crashy_spec(crash_x=4), store=store)
        assert second.cached_count == 5
        assert second.executed_count == 1
        assert second.failed[0].params["x"] == 4

    def test_executed_failures_land_in_the_log(self, tmp_path):
        store = CampaignStore(tmp_path)
        run_campaign(crashy_spec(crash_x=4), store=store)
        outcomes = [e["outcome"] for e in store.iter_log("crashy")]
        assert outcomes.count("failed") == 1
        assert outcomes.count("completed") == 5

    def test_parallel_executor_end_to_end(self, tmp_path):
        store = CampaignStore(tmp_path)
        result = run_campaign(
            ok_spec(), store=store, executor=ParallelExecutor(max_workers=2)
        )
        assert all(r.completed for r in result.records)
        rerun = run_campaign(
            ok_spec(), store=store, executor=ParallelExecutor(max_workers=2)
        )
        assert rerun.executed_count == 0

    def test_progress_callback_sees_every_trial(self, tmp_path):
        store = CampaignStore(tmp_path)
        run_campaign(ok_spec(), store=store)
        seen = []
        run_campaign(ok_spec(), store=store, progress=seen.append)
        assert len(seen) == 6
        assert all(report["cached"] for report in seen)

    def test_timeout_threads_through_to_trials(self, tmp_path):
        spec = CampaignSpec(
            name="sleepy",
            trial="tests.campaign.trials:sleepy_trial",
            grid=({"sleep_s": 30.0},),
        )
        result = run_campaign(
            spec,
            store=CampaignStore(tmp_path),
            executor=SerialExecutor(),
            timeout_s=0.2,
        )
        assert result.failed
        assert "timed out" in result.failed[0].error


class TestCampaignResult:
    def test_values_filters_in_grid_order(self):
        result = run_campaign(ok_spec())
        assert result.values("y", factor=10) == [10, 20, 30]
        assert result.values("y", x=2) == [2, 20]
        assert result.values("y", x=2, factor=10) == [20]

    def test_values_no_match_raises_keyerror(self):
        result = run_campaign(ok_spec())
        with pytest.raises(KeyError, match="no trials of campaign 'demo'"):
            result.values("y", x=99)

    def test_values_with_failed_match_raises(self, tmp_path):
        result = run_campaign(crashy_spec(crash_x=4), store=CampaignStore(tmp_path))
        with pytest.raises(RuntimeError, match="did not complete"):
            result.values("y", x=4)

    def test_missing_metric_raises_with_context(self):
        result = run_campaign(ok_spec())
        with pytest.raises(KeyError, match="has no metric 'nope'"):
            result.records[0].metric("nope")

    def test_records_where(self):
        result = run_campaign(ok_spec())
        assert len(result.records_where(factor=1)) == 3
        assert result.records_where(x=1, factor=1)[0].metrics["y"] == 1

    def test_telemetry_summary_mentions_counts(self):
        result = run_campaign(ok_spec())
        summary = result.telemetry.summary()
        assert "6 trial(s)" in summary
        assert "6 completed" in summary


class TestServiceBackendValidation:
    # The service path itself is exercised in tests/service; here the
    # runner's argument contract for backend selection.
    def test_service_backend_requires_url(self):
        with pytest.raises(ValueError, match="requires service_url"):
            run_campaign(ok_spec(), backend="service")

    def test_service_backend_rejects_force(self):
        with pytest.raises(ValueError, match="force=True is not supported"):
            run_campaign(
                ok_spec(), backend="service",
                service_url="http://127.0.0.1:1", force=True,
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match='backend must be "local" or "service"'):
            run_campaign(ok_spec(), backend="cloud")
