"""Tests for campaign specs, grids, and cache keys."""

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    canonical_json,
    parameter_grid,
    resolve_trial_ref,
)

from tests.campaign.trials import ok_trial


def make_spec(**overrides):
    kwargs = dict(
        name="demo",
        trial="tests.campaign.trials:ok_trial",
        grid=parameter_grid(x=(1, 2, 3)),
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestCanonicalJson:
    def test_key_order_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="not JSON-encodable"):
            canonical_json({"x": float("nan")})

    def test_non_serialisable_rejected(self):
        with pytest.raises(ValueError, match="not JSON-encodable"):
            canonical_json({"x": object()})


class TestParameterGrid:
    def test_cross_product_last_axis_fastest(self):
        grid = parameter_grid(a=(1, 2), b=("x", "y"))
        assert grid == (
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        )

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="axis 'a' has no values"):
            parameter_grid(a=())

    def test_no_axes_rejected(self):
        with pytest.raises(ValueError):
            parameter_grid()


class TestResolveTrialRef:
    def test_resolves_to_the_function(self):
        assert resolve_trial_ref("tests.campaign.trials:ok_trial") is ok_trial

    def test_malformed_ref_rejected(self):
        with pytest.raises(ValueError, match="package.module:function"):
            resolve_trial_ref("no-colon-here")

    def test_missing_attribute_rejected(self):
        with pytest.raises(ValueError, match="has no attribute"):
            resolve_trial_ref("tests.campaign.trials:nope")

    def test_non_callable_rejected(self):
        with pytest.raises(ValueError, match="not callable"):
            resolve_trial_ref("tests.campaign.trials:__doc__")


class TestCampaignSpec:
    def test_trial_count_and_ids(self):
        spec = make_spec()
        assert spec.trial_count == 3
        trials = spec.trials()
        assert [t.trial_id for t in trials] == [
            "demo/0000",
            "demo/0001",
            "demo/0002",
        ]
        assert [t.params for t in trials] == [{"x": 1}, {"x": 2}, {"x": 3}]

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="campaign name"):
            make_spec(name="bad name with spaces")

    def test_bad_trial_ref_rejected(self):
        with pytest.raises(ValueError, match="package.module:function"):
            make_spec(trial="not-a-ref")

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            make_spec(version=0)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="grid is empty"):
            make_spec(grid=())

    def test_duplicate_grid_points_rejected(self):
        with pytest.raises(ValueError, match="duplicate grid point at index 1"):
            make_spec(grid=({"x": 1}, {"x": 1}))

    def test_limit_truncates(self):
        spec = make_spec().limit(2)
        assert spec.trial_count == 2
        assert spec.grid == ({"x": 1}, {"x": 2})

    def test_limit_below_one_rejected(self):
        with pytest.raises(ValueError, match="limit"):
            make_spec().limit(0)

    def test_resolve_trial(self):
        assert make_spec().resolve_trial() is ok_trial


class TestCacheKeys:
    def test_key_is_stable_across_instances(self):
        assert make_spec().key_for({"x": 1}) == make_spec().key_for({"x": 1})

    def test_key_ignores_param_dict_order(self):
        spec = make_spec()
        assert spec.key_for({"a": 1, "b": 2}) == spec.key_for({"b": 2, "a": 1})

    def test_key_varies_with_params(self):
        spec = make_spec()
        assert spec.key_for({"x": 1}) != spec.key_for({"x": 2})

    def test_key_varies_with_version(self):
        assert make_spec().key_for({"x": 1}) != make_spec(version=2).key_for(
            {"x": 1}
        )

    def test_key_varies_with_campaign_name(self):
        assert make_spec().key_for({"x": 1}) != make_spec(name="other").key_for(
            {"x": 1}
        )

    def test_key_varies_with_trial_ref(self):
        other = make_spec(trial="tests.campaign.trials:raise_trial")
        assert make_spec().key_for({"x": 1}) != other.key_for({"x": 1})

    def test_key_is_hex_sha256(self):
        key = make_spec().key_for({"x": 1})
        assert len(key) == 64
        int(key, 16)
