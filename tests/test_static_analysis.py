"""Tier-1 gate: the source tree is reprolint-clean, and the rule catalogue,
fixture table, and documentation stay in sync with the registry."""

from pathlib import Path

from repro.lint import lint_paths
from repro.lint.registry import all_rules

from tests.lint.fixtures import RULE_FIXTURES

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"
RULE_DOC = REPO_ROOT / "docs" / "reprolint.md"


def test_source_tree_has_zero_findings():
    findings = lint_paths([SRC_TREE])
    report = "\n".join(finding.format() for finding in findings)
    assert findings == [], f"reprolint findings in src/repro:\n{report}"


def test_every_registered_rule_has_a_fixture():
    registered = {rule.rule_id for rule in all_rules()}
    covered = {fixture.rule_id for fixture in RULE_FIXTURES}
    assert registered == covered


def test_every_registered_rule_is_documented():
    text = RULE_DOC.read_text(encoding="utf-8")
    missing = [
        rule.rule_id for rule in all_rules() if rule.rule_id not in text
    ]
    assert not missing, f"rules missing from docs/reprolint.md: {missing}"


def test_readme_links_the_rule_catalogue():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/reprolint.md" in readme
