"""Tier-1 gate: the source tree is reprolint-clean modulo the checked-in
baseline, and the rule catalogue, fixture table, and documentation stay in
sync with the registry (per-file and project rules alike)."""

from pathlib import Path

from repro.lint import apply_baseline, lint_paths, load_baseline
from repro.lint.registry import all_project_rules, all_rules

from tests.lint.fixtures import RULE_FIXTURES

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"
RULE_DOC = REPO_ROOT / "docs" / "reprolint.md"
BASELINE = REPO_ROOT / ".reprolint-baseline.json"


def _all_rule_ids():
    return {rule.rule_id for rule in (*all_rules(), *all_project_rules())}


def test_source_tree_has_zero_findings_beyond_the_baseline():
    findings = apply_baseline(lint_paths([SRC_TREE]), load_baseline(BASELINE))
    report = "\n".join(finding.format() for finding in findings)
    assert findings == [], f"non-baselined reprolint findings in src/repro:\n{report}"


def test_baseline_has_no_stale_headroom():
    # Every baselined (file, rule) budget must still be fully used;
    # otherwise someone fixed debt without ratcheting the baseline down
    # (python -m repro lint src/repro --update-baseline).
    from collections import Counter

    from repro.lint.baseline import canonical_path

    allowed = load_baseline(BASELINE)
    actual = Counter(
        (canonical_path(f.path), f.rule_id) for f in lint_paths([SRC_TREE])
    )
    stale = {
        key: (budget, actual.get(key, 0))
        for key, budget in allowed.items()
        if actual.get(key, 0) < budget
    }
    assert not stale, f"baseline budgets exceed current findings: {stale}"


def test_every_registered_rule_has_a_fixture():
    covered = {fixture.rule_id for fixture in RULE_FIXTURES}
    assert _all_rule_ids() == covered


def test_every_registered_rule_is_documented():
    text = RULE_DOC.read_text(encoding="utf-8")
    missing = [
        rule_id for rule_id in sorted(_all_rule_ids()) if rule_id not in text
    ]
    assert not missing, f"rules missing from docs/reprolint.md: {missing}"


def test_readme_links_the_rule_catalogue():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/reprolint.md" in readme
