"""Tests for the scenario trial kernel and campaign integration.

The acceptance bar: every registered scenario runs end-to-end through
``run_campaign`` on BOTH execution backends — the local process pool and
the distributed service (queue + leasing worker + HTTP control plane).
"""

import threading

import pytest

from repro.campaign.executor import ParallelExecutor, SerialExecutor
from repro.campaign.runner import run_campaign
from repro.scenarios import scenario_matrix_spec, scenario_names, scenario_trial
from repro.scenarios.trials import DEFAULT_MATRIX

#: Tiny but complete: every scenario, one seed, small network.
SMOKE = dict(seeds=(1,), node_count=30, key_count=3, horizon_days=5.0)


class TestKernel:
    def test_single_trial_returns_json_metrics(self):
        import json

        out = scenario_trial(
            {"scenario": "csa-baseline", "seed": 1, "node_count": 30,
             "key_count": 3, "horizon_days": 5.0}
        )
        json.dumps(out)  # must be JSON-able for the campaign store
        assert out["scenario"] == "csa-baseline"
        assert out["horizon_s"] == pytest.approx(5.0 * 86400.0)
        assert "twin_latency_s" in out
        assert "periodic_latency_s" in out

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_trial({"scenario": "nonesuch", "seed": 1})

    def test_matrix_covers_every_registered_scenario(self):
        assert set(DEFAULT_MATRIX) == set(scenario_names())

    def test_spec_builder_validates_names_eagerly(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_matrix_spec(["nonesuch"])

    def test_spec_grid_is_the_cross_product(self):
        spec = scenario_matrix_spec(["benign", "csa-baseline"], seeds=(1, 2))
        assert len(spec.trials()) == 4
        assert spec.trial == "repro.scenarios.trials:scenario_trial"


class TestProcessPoolBackend:
    def test_all_scenarios_run_via_process_pool(self, tmp_path):
        from repro.campaign.store import CampaignStore

        spec = scenario_matrix_spec(**SMOKE)
        result = run_campaign(
            spec,
            store=CampaignStore(tmp_path),
            executor=ParallelExecutor(),
        )
        assert result.failed == []
        assert len(result.completed) == len(DEFAULT_MATRIX)
        for name in DEFAULT_MATRIX:
            (ratio,) = result.values("exhausted_key_ratio", scenario=name)
            assert 0.0 <= ratio <= 1.0

    def test_serial_executor_matches(self, tmp_path):
        from repro.campaign.store import CampaignStore

        spec = scenario_matrix_spec(
            ["benign", "csa-baseline"], seeds=(1,), node_count=30,
            key_count=3, horizon_days=5.0,
        )
        result = run_campaign(
            spec, store=CampaignStore(tmp_path), executor=SerialExecutor()
        )
        assert result.failed == []
        assert len(result.completed) == 2


class TestServiceBackend:
    def test_all_scenarios_run_via_service(self, tmp_path):
        from repro.service.server import CampaignServiceServer
        from repro.service.worker import ServiceWorker

        db, store_root = tmp_path / "q.sqlite3", tmp_path / "store"
        server = CampaignServiceServer(("127.0.0.1", 0), db, store_root)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        worker = ServiceWorker(
            db, store_root, max_idle_s=5.0, poll_interval_s=0.05,
            lease_ttl_s=30.0,
        )
        worker_thread = threading.Thread(target=worker.run)
        worker_thread.start()
        try:
            spec = scenario_matrix_spec(**SMOKE)
            result = run_campaign(
                spec,
                backend="service",
                service_url=f"http://127.0.0.1:{port}",
            )
        finally:
            worker.request_stop()
            worker_thread.join(timeout=30.0)
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
        assert result.failed == []
        assert len(result.completed) == len(DEFAULT_MATRIX)
        assert {r.params["scenario"] for r in result.completed} == set(
            DEFAULT_MATRIX
        )
