"""Tests for the scenario spec dataclass and the named registry."""

import pytest

from repro.scenarios import (
    CONTROLLER_CATALOGUE,
    ScenarioSpec,
    all_specs,
    build_controller,
    get_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.sim.scenario import ScenarioConfig

BUILTINS = (
    "benign",
    "benign-on-demand",
    "command-spoof",
    "command-spoof-on-demand",
    "csa-baseline",
    "csa-intermittent",
    "csa-on-demand",
)


class TestSpecValidation:
    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="scenario name"):
            ScenarioSpec(name="Bad Name!", description="x")

    def test_unknown_controller_rejected(self):
        with pytest.raises(ValueError, match="unknown controller"):
            ScenarioSpec(name="x", description="x", controller="nonesuch")

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ScenarioConfig field"):
            ScenarioSpec(
                name="x", description="x",
                config_overrides={"not_a_field": 1},
            )

    def test_mappings_frozen_after_construction(self):
        spec = ScenarioSpec(name="x", description="x",
                            controller_params={"key_count": 5})
        with pytest.raises(TypeError):
            spec.controller_params["key_count"] = 6

    def test_unknown_catalogue_name_errors_helpfully(self):
        with pytest.raises(ValueError, match="catalogue"):
            build_controller("nonesuch", key_count=5, seed=0)


class TestComposition:
    def test_derive_merges_overrides(self):
        base = ScenarioSpec(
            name="base", description="base",
            controller_params={"key_count": 5, "spoof_probability": 1.0},
            config_overrides={"node_count": 50},
        )
        child = base.derive(
            "child", "child",
            controller_params={"spoof_probability": 0.5},
            config_overrides={"horizon_days": 7.0},
        )
        assert dict(child.controller_params) == {
            "key_count": 5, "spoof_probability": 0.5,
        }
        assert dict(child.config_overrides) == {
            "node_count": 50, "horizon_days": 7.0,
        }
        # The parent is untouched.
        assert dict(base.config_overrides) == {"node_count": 50}

    def test_derive_replaces_scalar_fields(self):
        base = ScenarioSpec(name="base", description="base", twin=True)
        child = base.derive("child", "child", twin=False)
        assert base.twin and not child.twin

    def test_derived_spec_revalidates(self):
        base = ScenarioSpec(name="base", description="base")
        with pytest.raises(ValueError, match="unknown ScenarioConfig field"):
            base.derive("child", "child", config_overrides={"bogus": 1})


class TestResolution:
    def test_resolve_config_applies_overrides(self):
        spec = ScenarioSpec(
            name="x", description="x",
            config_overrides={"request_delay_mean_s": 600.0},
        )
        cfg = spec.resolve_config(ScenarioConfig(node_count=40))
        assert cfg.node_count == 40
        assert cfg.request_delay_mean_s == 600.0

    def test_resolve_config_defaults_to_stock_config(self):
        spec = ScenarioSpec(name="x", description="x")
        assert spec.resolve_config() == ScenarioConfig()

    def test_every_builtin_builds_a_controller(self):
        for name in BUILTINS:
            spec = get_scenario(name)
            cfg = spec.resolve_config(ScenarioConfig(node_count=30, key_count=3))
            controller = spec.build_controller(cfg, seed=1)
            assert hasattr(controller, "next_action"), name

    def test_catalogue_names_are_stable(self):
        assert set(CONTROLLER_CATALOGUE) == {
            "benign", "csa", "blatant", "command-spoof",
        }


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTINS) <= set(scenario_names())

    def test_get_unknown_scenario_lists_known(self):
        with pytest.raises(KeyError, match="csa-baseline"):
            get_scenario("nonesuch")

    def test_all_specs_sorted_by_name(self):
        names = [s.name for s in all_specs()]
        assert names == sorted(names)

    def test_duplicate_registration_rejected(self):
        spec = ScenarioSpec(name="tmp-dup-test", description="x")
        register_scenario(spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(spec)
            # Deliberate replacement is allowed.
            register_scenario(spec, replace=True)
        finally:
            unregister_scenario("tmp-dup-test")
        assert "tmp-dup-test" not in scenario_names()

    def test_to_dict_round_trips_through_json(self):
        import json

        for spec in all_specs():
            encoded = json.dumps(spec.to_dict())
            assert json.loads(encoded)["name"] == spec.name

    def test_on_demand_variants_compose_arrival_delay(self):
        for name in BUILTINS:
            spec = get_scenario(name)
            delay = dict(spec.config_overrides).get("request_delay_mean_s", 0.0)
            if name.endswith("-on-demand"):
                assert delay > 0.0, name
            else:
                assert delay == 0.0, name
