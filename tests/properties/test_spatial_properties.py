"""Property-based equivalence of the spatial-index fast paths.

Every O(N^2) scan the spatial grid index replaced — the topology
all-pairs join, the coverage broadcast, and the per-candidate
connectivity recomputation — must agree with its brute-force original on
arbitrary randomized deployments, including the degenerate empty-sensor
and single-node cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.coverage import covered_fraction_of_points
from repro.network.keynodes import connectivity_impact, connectivity_impacts
from repro.network.spatial import SpatialGridIndex
from repro.network.topology import BASE_STATION_ID, communication_graph
from repro.utils.geometry import Point
from repro.utils.rng import make_rng

seeds = st.integers(min_value=0, max_value=40)


class TestTopologyEquivalence:
    @given(seeds, st.integers(min_value=1, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_pairs_match_dense_scan(self, seed, n):
        rng = make_rng(seed, "spatial-prop")
        points = rng.uniform(0.0, 150.0, size=(n, 2))
        radius = float(rng.uniform(5.0, 50.0))
        i, j, d = SpatialGridIndex(points, cell_size=radius).pairs_within(radius)
        deltas = points[:, None, :] - points[None, :, :]
        dense = np.sqrt((deltas**2).sum(axis=-1))
        ii, jj = np.triu_indices(n, k=1)
        keep = dense[ii, jj] <= radius
        assert i.tolist() == ii[keep].tolist()
        assert j.tolist() == jj[keep].tolist()
        assert d.tolist() == dense[ii, jj][keep].tolist()

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_single_node_graph(self, seed):
        rng = make_rng(seed, "spatial-prop-single")
        pos = [Point(float(rng.uniform(0, 50)), float(rng.uniform(0, 50)))]
        graph = communication_graph(pos, Point(25.0, 25.0), comm_range=40.0)
        assert set(graph.nodes) == {0, BASE_STATION_ID}
        expected = pos[0].distance_to(Point(25.0, 25.0)) <= 40.0
        assert graph.has_edge(0, BASE_STATION_ID) == expected


class TestCoverageEquivalence:
    @given(seeds, st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_fraction_matches_dense_broadcast(self, seed, n_sensors):
        rng = make_rng(seed, "coverage-prop")
        points = rng.uniform(0.0, 100.0, size=(64, 2))
        sensors = rng.uniform(0.0, 100.0, size=(n_sensors, 2))
        radius = float(rng.uniform(3.0, 30.0))
        fast = covered_fraction_of_points(points, sensors, radius)
        if n_sensors == 0:
            assert fast == 0.0
            return
        deltas = points[:, None, :] - sensors[None, :, :]
        dense = ((deltas**2).sum(axis=-1) <= radius**2).any(axis=1)
        assert fast == float(dense.mean())


class TestKeyNodeEquivalence:
    @given(seeds, st.integers(min_value=2, max_value=40), st.floats(0.0, 0.5))
    @settings(max_examples=30, deadline=None)
    def test_block_cut_scan_matches_per_node_removal(self, seed, n, dead_frac):
        # Random deployment with a random subset of nodes dead: the
        # single-pass block-cut scores must equal the brute per-node
        # delete-and-count, including on disconnected alive subgraphs.
        rng = make_rng(seed, "keynode-prop")
        positions = [
            Point(float(x), float(y))
            for x, y in rng.uniform(0.0, 100.0, size=(n, 2))
        ]
        graph = communication_graph(positions, Point(50.0, 50.0), comm_range=30.0)
        alive = [v for v in range(n) if rng.uniform() >= dead_frac]
        subgraph = graph.subgraph(set(alive) | {BASE_STATION_ID})
        impacts = connectivity_impacts(subgraph)
        assert set(impacts) == set(alive)
        for node_id in alive:
            assert impacts[node_id] == connectivity_impact(subgraph, node_id)
