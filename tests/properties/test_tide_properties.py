"""Property-based tests of the TIDE problem and its solvers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import RandomPlanner
from repro.core.csa import CsaPlanner
from repro.core.optimal import solve_tide_bruteforce, solve_tide_exact
from repro.core.tide import (
    TideInstance,
    TideTarget,
    evaluate_route,
    latest_start_schedule,
)
from repro.core.utility import CoverageUtility
from repro.utils.geometry import Point


@st.composite
def tide_instances(draw, max_targets=6):
    n = draw(st.integers(min_value=1, max_value=max_targets))
    targets = []
    for i in range(n):
        start = draw(st.floats(min_value=0.0, max_value=50_000.0))
        width = draw(st.floats(min_value=100.0, max_value=100_000.0))
        duration = draw(st.floats(min_value=10.0, max_value=3_000.0))
        targets.append(
            TideTarget(
                node_id=i,
                weight=draw(st.floats(min_value=0.1, max_value=2.0)),
                position=Point(
                    draw(st.floats(min_value=0.0, max_value=100.0)),
                    draw(st.floats(min_value=0.0, max_value=100.0)),
                ),
                window_start=start,
                window_end=start + width,
                service_duration=duration,
                service_energy_j=duration * 24.0,
            )
        )
    budget = draw(st.floats(min_value=0.0, max_value=500_000.0))
    return TideInstance(
        targets=tuple(targets),
        start_position=Point(50.0, 50.0),
        start_time=0.0,
        energy_budget_j=budget,
    )


class TestEvaluationInvariants:
    @given(tide_instances())
    @settings(max_examples=50, deadline=None)
    def test_csa_plan_always_verifies(self, instance):
        plan = CsaPlanner().plan(instance)
        check = evaluate_route(instance, plan.route)
        assert check.feasible
        assert check.energy_j <= instance.energy_budget_j + 1e-6

    @given(tide_instances())
    @settings(max_examples=50, deadline=None)
    def test_feasible_schedules_respect_windows(self, instance):
        plan = CsaPlanner().plan(instance)
        for visit in plan.evaluation.visits:
            target = instance.target(visit.node_id)
            assert visit.service_start >= target.window_start - 1e-6
            assert visit.service_start <= target.window_end + 1e-6
            assert visit.departure >= visit.service_start

    @given(tide_instances())
    @settings(max_examples=50, deadline=None)
    def test_utility_bounded_by_total_weight(self, instance):
        plan = CsaPlanner().plan(instance)
        assert 0.0 <= plan.utility <= instance.total_weight() + 1e-9


class TestSolverRelations:
    @given(tide_instances(max_targets=5))
    @settings(max_examples=25, deadline=None)
    def test_exact_dp_matches_bruteforce(self, instance):
        dp = solve_tide_exact(instance)
        bf = solve_tide_bruteforce(instance)
        assert abs(dp.utility - bf.utility) < 1e-6

    @given(tide_instances(max_targets=6))
    @settings(max_examples=25, deadline=None)
    def test_csa_within_guarantee_of_optimal(self, instance):
        from repro.core.bounds import GREEDY_GUARANTEE

        csa = CsaPlanner().plan(instance)
        opt = solve_tide_exact(instance)
        if opt.utility > 0.0:
            assert csa.utility / opt.utility >= GREEDY_GUARANTEE - 1e-9

    @given(tide_instances(max_targets=6), st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_csa_within_guarantee_of_any_feasible_plan(self, instance, seed):
        # CSA does not dominate every plan pointwise (it is a greedy
        # approximation, and hypothesis finds instances where a lucky
        # random order wins) — but the guarantee chains through OPT:
        # U(CSA) >= rho * U(OPT) >= rho * U(any feasible plan).
        from repro.core.bounds import GREEDY_GUARANTEE

        csa = CsaPlanner().plan(instance)
        rnd = RandomPlanner(seed).plan(instance)
        assert csa.utility >= GREEDY_GUARANTEE * rnd.utility - 1e-9


class TestLatestStartSchedule:
    @given(tide_instances())
    @settings(max_examples=50, deadline=None)
    def test_latest_starts_feasible_and_no_earlier(self, instance):
        plan = CsaPlanner().plan(instance)
        if not plan.route:
            return
        latest = latest_start_schedule(instance, plan.route)
        eager = [v.service_start for v in plan.evaluation.visits]
        # Pointwise no earlier than eager...
        for l, e in zip(latest, eager):
            assert l >= e - 1e-9
        # ...within windows...
        for l, node_id in zip(latest, plan.route):
            target = instance.target(node_id)
            assert target.window_start - 1e-6 <= l <= target.window_end + 1e-6
        # ...and chainable: each service still reaches the next in time.
        for k in range(len(plan.route) - 1):
            a = instance.target(plan.route[k])
            b = instance.target(plan.route[k + 1])
            travel = a.position.distance_to(b.position) / instance.speed_m_s
            assert latest[k] + a.service_duration + travel <= latest[k + 1] + 1e-6


class TestSubmodularity:
    @given(
        st.sets(st.integers(min_value=0, max_value=9), max_size=6),
        st.sets(st.integers(min_value=0, max_value=9), max_size=6),
        st.integers(min_value=0, max_value=9),
    )
    def test_coverage_utility_is_submodular(self, small, extra, candidate):
        """f(A + x) - f(A) >= f(B + x) - f(B) whenever A ⊆ B."""
        utility = CoverageUtility(
            regions={
                "r1": frozenset({0, 1, 2, 3}),
                "r2": frozenset({4, 5, 6}),
                "r3": frozenset({7, 8, 9}),
            },
            region_weights={"r1": 1.0, "r2": 2.0, "r3": 0.5},
        )
        a = frozenset(small)
        b = frozenset(small | extra)
        gain_a = utility.marginal(a, candidate)
        gain_b = utility.marginal(b, candidate)
        assert gain_a >= gain_b - 1e-12

    @given(
        st.sets(st.integers(min_value=0, max_value=9), max_size=8),
        st.integers(min_value=0, max_value=9),
    )
    def test_coverage_utility_is_monotone(self, base, extra):
        utility = CoverageUtility(
            regions={"r": frozenset(range(10))}, region_weights={"r": 3.0}
        )
        a = frozenset(base)
        assert utility.value(a | {extra}) >= utility.value(a) - 1e-12
