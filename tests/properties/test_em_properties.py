"""Property-based tests of the electromagnetic substrate."""

import cmath
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.em.charger_array import minimum_null_residual, solve_null_phases
from repro.em.rectenna import Rectenna
from repro.em.superposition import two_wave_rf_power
from repro.em.waves import coherent_power, incoherent_power, phasor

amplitudes = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
positive_amplitudes = st.floats(min_value=1e-3, max_value=10.0, allow_nan=False)
phases = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
powers = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestWaveIdentities:
    @given(st.lists(st.tuples(amplitudes, phases), min_size=1, max_size=8))
    def test_coherent_power_bounded_by_amplitude_sum(self, waves):
        """|sum E_i|^2 <= (sum |E_i|)^2 — the triangle inequality."""
        ps = [phasor(a, p) for a, p in waves]
        bound = sum(a for a, _ in waves) ** 2
        assert coherent_power(ps) <= bound * (1.0 + 1e-9) + 1e-12

    @given(st.lists(st.tuples(amplitudes, phases), min_size=1, max_size=8))
    def test_incoherent_power_invariant_to_phases(self, waves):
        ps = [phasor(a, p) for a, p in waves]
        rotated = [phasor(a, p + 1.234) for a, p in waves]
        assert math.isclose(
            incoherent_power(ps), incoherent_power(rotated),
            rel_tol=1e-9, abs_tol=1e-12,
        )

    @given(amplitudes, phases, phases)
    def test_global_phase_invariance(self, a, p, shift):
        """Rotating every wave together never changes the power."""
        ps = [phasor(a, p), phasor(a / 2 + 0.1, p + 1.0)]
        rotated = [w * cmath.exp(1j * shift) for w in ps]
        assert math.isclose(
            coherent_power(ps), coherent_power(rotated),
            rel_tol=1e-9, abs_tol=1e-12,
        )

    @given(powers, powers)
    def test_two_wave_extremes(self, p1, p2):
        """Interference swings between (sqrt(P1)±sqrt(P2))^2."""
        lo = (math.sqrt(p1) - math.sqrt(p2)) ** 2
        hi = (math.sqrt(p1) + math.sqrt(p2)) ** 2
        for dphi in (0.0, 0.7, math.pi / 2, 2.0, math.pi):
            p = two_wave_rf_power(p1, p2, dphi)
            assert lo - 1e-9 <= p <= hi + 1e-9


class TestRectennaProperties:
    @given(powers)
    def test_harvest_never_exceeds_input(self, p):
        assert Rectenna().harvest(p) <= p + 1e-15

    @given(powers, powers)
    def test_harvest_monotone(self, p1, p2):
        rect = Rectenna()
        lo, hi = min(p1, p2), max(p1, p2)
        assert rect.harvest(lo) <= rect.harvest(hi) + 1e-12

    @given(st.lists(st.tuples(positive_amplitudes, phases), min_size=2, max_size=6))
    def test_superposition_gap_bounded_by_independent_harvest(self, waves):
        """The attacker can steal at most everything that was harvestable."""
        rect = Rectenna()
        ps = [phasor(a, p) for a, p in waves]
        independent = sum(rect.harvest(abs(w) ** 2) for w in ps)
        gap = rect.superposition_gap(ps)
        assert gap <= independent + 1e-12


class TestNullSolverProperties:
    @given(st.lists(positive_amplitudes, min_size=2, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_residual_reaches_geometric_minimum(self, amps):
        phases_out = solve_null_phases(amps)
        residual = abs(
            sum(a * cmath.exp(1j * p) for a, p in zip(amps, phases_out))
        )
        target = minimum_null_residual(amps)
        scale = max(amps)
        assert residual <= target + 1e-5 * scale

    @given(st.lists(amplitudes, min_size=1, max_size=8))
    def test_returns_one_phase_per_amplitude(self, amps):
        assert len(solve_null_phases(amps)) == len(amps)

    @given(st.lists(positive_amplitudes, min_size=2, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, amps):
        assert solve_null_phases(amps) == solve_null_phases(amps)
