"""Property-based tests of the simulation orchestrator.

Random scripted controllers drive the charger through arbitrary (but
syntactically valid) action sequences; the simulator's global invariants
must hold regardless of what the controller orders.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mc.charger import ChargeMode
from repro.sim.actions import IdleAction, MissionController, ServeAction
from repro.sim.events import DepotRecharged, ServiceCompleted
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation

CFG = ScenarioConfig(node_count=30, key_count=3, horizon_days=3)


class ScriptedController(MissionController):
    name = "scripted"

    def __init__(self, actions):
        self._actions = list(actions)

    def next_action(self, sim):
        return self._actions.pop(0) if self._actions else None


@st.composite
def action_scripts(draw):
    n = draw(st.integers(min_value=0, max_value=6))
    actions = []
    for _ in range(n):
        kind = draw(st.sampled_from(["serve", "idle"]))
        if kind == "serve":
            actions.append(
                ServeAction(
                    node_id=draw(st.integers(min_value=0, max_value=29)),
                    mode=draw(
                        st.sampled_from(
                            [ChargeMode.GENUINE, ChargeMode.SPOOF,
                             ChargeMode.PRETEND]
                        )
                    ),
                    not_before=draw(
                        st.floats(min_value=0.0, max_value=86_400.0)
                    ),
                    duration_s=draw(
                        st.one_of(
                            st.none(),
                            st.floats(min_value=1.0, max_value=3_600.0),
                        )
                    ),
                )
            )
        else:
            actions.append(
                IdleAction(
                    until=draw(st.floats(min_value=0.0, max_value=86_400.0))
                )
            )
    return actions


@given(action_scripts(), st.integers(min_value=0, max_value=5))
@settings(max_examples=25, deadline=None)
def test_simulator_invariants_under_arbitrary_scripts(script, seed):
    sim = WrsnSimulation(
        CFG.build_network(seed=seed),
        CFG.build_charger(),
        ScriptedController(script),
        horizon_s=CFG.horizon_s,
    )
    result = sim.run()

    # 1. The trace is time-ordered and inside the horizon.
    times = [e.time for e in result.trace]
    assert times == sorted(times)
    assert all(0.0 <= t <= result.horizon_s + 1e-6 for t in times)

    # 2. Node energy stays within [0, capacity]; belief too.
    for node in result.network.nodes.values():
        assert -1e-6 <= node.energy_j <= node.battery_capacity_j + 1e-6
        assert -1e-6 <= node.believed_energy_j <= node.battery_capacity_j + 1e-6

    # 3. Charger energy accounting balances exactly.
    charger = result.charger
    refills = len(result.trace.of_type(DepotRecharged))
    emission = sum(s.emission_j for s in charger.services)
    travel = charger.distance_travelled_m * charger.travel_cost_j_per_m
    budget = charger.battery_capacity_j * (1 + refills)
    assert math.isclose(
        emission + travel, budget - charger.energy_j, rel_tol=1e-6, abs_tol=1e-3
    )

    # 4. Every completed service was delivered to a node that was alive
    #    at service start (the simulator aborts otherwise).
    for service in result.trace.of_type(ServiceCompleted):
        node = result.network.nodes[service.node_id]
        if node.death_time is not None:
            assert node.death_time >= service.start_time - 1e-6

    # 5. Deaths are mutually consistent with the final network state.
    dead_in_trace = {d.node_id for d in result.trace.deaths()}
    assert dead_in_trace == result.network.dead_ids()
