"""Property-based tests of the network substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.node import SensorNode
from repro.network.routing import build_routing_tree, subtree_sizes
from repro.network.topology import BASE_STATION_ID, deploy_uniform
from repro.network.traffic import TrafficModel, relay_loads
from repro.utils.geometry import Point
from repro.utils.rng import make_rng

seeds = st.integers(min_value=0, max_value=30)


class TestNodeEnergyProperties:
    @given(
        st.floats(min_value=0.001, max_value=1.0),
        st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=8),
    )
    def test_piecewise_advance_equals_single_advance(self, draw_w, steps):
        """Advancing in pieces or in one jump must agree exactly."""
        total = sum(steps)
        stepped = SensorNode(0, Point(0, 0), battery_capacity_j=5000.0)
        stepped.set_consumption(draw_w)
        t = 0.0
        for dt in steps:
            t += dt
            stepped.advance_to(t)
        jumped = SensorNode(0, Point(0, 0), battery_capacity_j=5000.0)
        jumped.set_consumption(draw_w)
        jumped.advance_to(total)
        assert math.isclose(
            stepped.energy_j, jumped.energy_j, rel_tol=1e-9, abs_tol=1e-6
        )
        assert stepped.alive == jumped.alive

    @given(
        st.floats(min_value=0.001, max_value=10.0),
        st.floats(min_value=0.0, max_value=1e6),
    )
    def test_energy_never_negative_never_above_capacity(self, draw_w, t):
        node = SensorNode(0, Point(0, 0), battery_capacity_j=5000.0)
        node.set_consumption(draw_w)
        node.advance_to(t)
        assert 0.0 <= node.energy_j <= 5000.0
        assert 0.0 <= node.believed_energy_j <= 5000.0

    @given(
        st.floats(min_value=0.0, max_value=6000.0),
        st.floats(min_value=0.0, max_value=6000.0),
    )
    def test_belief_gap_non_negative_under_spoofing(self, delivered, believed):
        """Spoofing can only inflate belief, never deflate it below truth."""
        node = SensorNode(0, Point(0, 0), battery_capacity_j=5000.0,
                          initial_energy_frac=0.5)
        node.receive_charge(delivered_j=0.0, believed_j=believed)
        assert node.believed_energy_j >= node.energy_j - 1e-9


class TestRoutingProperties:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_tree_is_acyclic_and_rooted(self, seed):
        rng = make_rng(seed, "prop-routing")
        dep = deploy_uniform(40, rng, comm_range=25.0)
        tree = build_routing_tree(dep.graph())
        for node_id in tree.connected_nodes():
            path = tree.path_to_base(node_id)
            assert len(path) == len(set(path)), "cycle in routing path"
            assert path[-1] == BASE_STATION_ID

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_subtree_sizes_sum_to_network(self, seed):
        rng = make_rng(seed, "prop-routing")
        dep = deploy_uniform(40, rng, comm_range=25.0)
        tree = build_routing_tree(dep.graph())
        sizes = subtree_sizes(tree)
        assert sizes[BASE_STATION_ID] == len(tree.connected_nodes())
        # A parent's subtree strictly contains each child's.
        for node_id in tree.connected_nodes():
            for child in tree.children(node_id):
                assert sizes[node_id] > sizes[child] - 1

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_relay_conservation(self, seed):
        """Traffic entering the BS equals total generated traffic."""
        rng = make_rng(seed, "prop-traffic")
        dep = deploy_uniform(40, rng, comm_range=25.0)
        tree = build_routing_tree(dep.graph())
        traffic = TrafficModel.heterogeneous(40, rng)
        loads = relay_loads(tree, traffic)
        bs_children = tree.children(BASE_STATION_ID)
        into_bs = sum(loads[c] + traffic.rate(c) for c in bs_children)
        generated = sum(traffic.rate(i) for i in range(40))
        assert math.isclose(into_bs, generated, rel_tol=1e-9)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_killing_a_node_never_increases_others_connectivity(self, seed):
        rng = make_rng(seed, "prop-deaths")
        dep = deploy_uniform(40, rng, comm_range=25.0)
        graph = dep.graph()
        full = set(build_routing_tree(graph).connected_nodes())
        victim = sorted(full)[0]
        alive = full - {victim}
        reduced = set(build_routing_tree(graph, alive).connected_nodes())
        assert reduced <= full - {victim}
