"""Whole-run determinism: identical seeds yield identical traces."""

from repro.attack.attacker import CsaAttacker
from repro.detection.auditors import default_detector_suite
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation

CFG = ScenarioConfig(node_count=60, key_count=6, horizon_days=40)


def run(seed):
    sim = WrsnSimulation(
        CFG.build_network(seed=seed),
        CFG.build_charger(),
        CsaAttacker(key_count=CFG.key_count),
        detectors=default_detector_suite(seed),
        horizon_s=CFG.horizon_s,
    )
    return sim.run()


def trace_signature(result):
    return [
        (type(e).__name__, round(e.time, 6), getattr(e, "node_id", None))
        for e in result.trace
    ]


class TestDeterminism:
    def test_identical_seeds_identical_traces(self):
        a = run(11)
        b = run(11)
        assert trace_signature(a) == trace_signature(b)
        assert a.exhausted_key_ids() == b.exhausted_key_ids()
        assert a.detected == b.detected
        assert a.charger.energy_j == b.charger.energy_j

    def test_different_seeds_differ(self):
        a = run(11)
        b = run(12)
        assert trace_signature(a) != trace_signature(b)
