"""End-to-end integration tests: the paper's story on one stage.

These tests run the complete pipeline — deployment, routing, key-node
identification, window derivation, CSA planning, simulation, detection —
and assert the *shape* of the paper's headline results rather than any
single module's behaviour.
"""

import pytest

from repro.analysis.metrics import attack_metrics, lifetime_metrics
from repro.attack.attacker import BlatantAttacker, CsaAttacker, PlannedAttacker
from repro.core.baselines import RandomPlanner
from repro.core.windows import StealthPolicy
from repro.detection.auditors import default_detector_suite
from repro.sim.benign import BenignController
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation

CFG = ScenarioConfig(node_count=80, key_count=8, horizon_days=42)
SEEDS = (1, 2, 4)


def run(controller_factory, seed):
    sim = WrsnSimulation(
        CFG.build_network(seed=seed),
        CFG.build_charger(),
        controller_factory(),
        detectors=default_detector_suite(seed),
        horizon_s=CFG.horizon_s,
    )
    return sim.run()


@pytest.fixture(scope="module")
def csa_runs():
    return [run(lambda: CsaAttacker(key_count=CFG.key_count), s) for s in SEEDS]


@pytest.fixture(scope="module")
def benign_runs():
    return [run(BenignController, s) for s in SEEDS]


class TestHeadlineClaim:
    """Abstract: "CSA can exhaust at least 80% of key nodes without
    being detected."""

    def test_exhaustion_at_least_80_percent(self, csa_runs):
        mean_ratio = sum(r.exhausted_key_ratio() for r in csa_runs) / len(csa_runs)
        assert mean_ratio >= 0.8

    def test_rarely_detected(self, csa_runs):
        assert sum(r.detected for r in csa_runs) <= 1


class TestBenignContrast:
    def test_benign_network_stays_healthy(self, benign_runs):
        for result in benign_runs:
            assert lifetime_metrics(result).dead_count == 0
            assert not result.detected

    def test_attack_cripples_connectivity(self, csa_runs, benign_runs):
        attacked = min(
            lifetime_metrics(r).alive_connected_ratio for r in csa_runs
        )
        benign = min(
            lifetime_metrics(r).alive_connected_ratio for r in benign_runs
        )
        assert attacked < benign


class TestAttackerOrdering:
    """CSA > weaker planners on damage; naive attacks get caught."""

    def test_csa_beats_random_planner(self, csa_runs):
        random_runs = [
            run(
                lambda: PlannedAttacker(
                    planner=RandomPlanner(0), key_count=CFG.key_count
                ),
                s,
            )
            for s in SEEDS
        ]
        csa_mean = sum(r.exhausted_key_ratio() for r in csa_runs) / len(SEEDS)
        rnd_mean = sum(r.exhausted_key_ratio() for r in random_runs) / len(SEEDS)
        assert csa_mean > rnd_mean

    def test_blatant_attacker_always_detected(self):
        for seed in SEEDS:
            result = run(lambda: BlatantAttacker(key_count=CFG.key_count), seed)
            assert result.detected

    def test_stealth_windows_are_load_bearing(self):
        # Identical planner, stealth constraints removed: detection rate
        # must jump.
        hits = sum(
            run(
                lambda: PlannedAttacker(
                    stealth=StealthPolicy.none(), key_count=CFG.key_count
                ),
                s,
            ).detected
            for s in SEEDS
        )
        assert hits >= 2


class TestAccountingAcrossTheStack:
    def test_spoofed_victims_die_with_full_belief(self, csa_runs):
        for result in csa_runs:
            for death in result.trace.deaths():
                if death.was_spoofed:
                    node = result.network.nodes[death.node_id]
                    assert node.energy_j == 0.0

    def test_metrics_consistent_with_result(self, csa_runs):
        for result in csa_runs:
            metrics = attack_metrics(result)
            assert metrics.exhausted_key_ratio == pytest.approx(
                result.exhausted_key_ratio()
            )
            assert metrics.detected == result.detected
