"""Tests for the simulated testbed."""

import pytest

from repro.testbed.hardware import TestbedProfile, default_testbed_profile
from repro.testbed.testbed_sim import run_testbed, run_testbed_trial
from repro.utils.rng import make_rng


class TestProfile:
    def test_defaults(self):
        profile = default_testbed_profile()
        assert profile.node_count == 8
        assert profile.key_count == 3

    def test_hardware_noise_varies_by_rng(self):
        profile = default_testbed_profile()
        hw_a = profile.build_hardware(make_rng(1, "hw"))
        hw_b = profile.build_hardware(make_rng(2, "hw"))
        powers_a = [e.tx_power for e in hw_a.array.elements]
        powers_b = [e.tx_power for e in hw_b.array.elements]
        assert powers_a != powers_b

    def test_hardware_reproducible(self):
        profile = default_testbed_profile()
        hw_a = profile.build_hardware(make_rng(1, "hw"))
        hw_b = profile.build_hardware(make_rng(1, "hw"))
        assert [e.tx_power for e in hw_a.array.elements] == [
            e.tx_power for e in hw_b.array.elements
        ]

    def test_hardware_spoof_still_nulls(self):
        # Noisy element powers make amplitudes unequal; the null solver
        # must still drive delivery below the diode threshold.
        profile = default_testbed_profile()
        hw = profile.build_hardware(make_rng(7, "hw"))
        assert hw.spoof_rate_w == 0.0
        assert hw.genuine_rate_w > 0.05

    def test_network_is_bench_scale(self):
        profile = default_testbed_profile()
        net = profile.build_network(make_rng(3, "bench"))
        assert len(net.nodes) == 8
        for node in net.nodes.values():
            assert node.battery_capacity_j == profile.battery_capacity_j
            assert 0.9 * 216.0 <= node.energy_j <= 216.0

    def test_network_has_articulation_key_nodes(self):
        profile = default_testbed_profile()
        net = profile.build_network(make_rng(3, "bench"))
        infos = net.refresh_key_nodes(profile.key_count)
        assert len(infos) == profile.key_count

    def test_rejects_single_node_bench(self):
        with pytest.raises(ValueError):
            TestbedProfile(node_rows=1, node_cols=1)


class TestTrials:
    def test_single_trial_outcome(self):
        trial = run_testbed_trial(seed=0)
        assert trial.key_count == 3
        assert 0.0 <= trial.exhausted_ratio <= 1.0
        assert trial.spoof_services >= trial.exhausted_key_count * 0

    def test_trials_are_reproducible(self):
        a = run_testbed_trial(seed=4)
        b = run_testbed_trial(seed=4)
        assert a == b

    def test_headline_claim_on_small_campaign(self):
        # Detection is a Poisson-audit residue; on a 6-trial slice allow
        # at most one unlucky draw (the 20-trial benchmark EXP-11 holds
        # the full <=5% criterion).
        summary = run_testbed(trial_count=6)
        assert summary.mean_exhausted_ratio >= 0.8
        assert summary.detection_count <= 1

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            run_testbed(trial_count=0)
