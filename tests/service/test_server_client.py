"""Tests for the HTTP control plane and its client.

The server runs in a thread on an ephemeral port; workers run
in-process.  Everything still crosses a real TCP socket, so routing,
status codes, NDJSON streaming, and the drop-in runner backend are
exercised end to end without subprocesses.
"""

import json
import threading

import pytest

from repro.campaign.runner import run_campaign
from repro.campaign.status import status_summary
from repro.campaign.store import CampaignStore
from repro.cli import main as repro_main
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import CampaignServiceServer
from repro.service.testing import sleep_spec
from repro.service.worker import ServiceWorker


@pytest.fixture
def service(tmp_path):
    db, store_root = tmp_path / "q.sqlite3", tmp_path / "store"
    server = CampaignServiceServer(("127.0.0.1", 0), db, store_root)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout_s=10.0)
    yield client, db, store_root
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)


def drain(db, store_root, **kwargs):
    kwargs.setdefault("max_idle_s", 0.2)
    kwargs.setdefault("poll_interval_s", 0.05)
    kwargs.setdefault("lease_ttl_s", 5.0)
    return ServiceWorker(db, store_root, **kwargs).run()


class TestEndpoints:
    def test_health_reports_queue_counts(self, service):
        client, _, _ = service
        health = client.health()
        assert health["ok"] is True
        assert health["campaigns"] == 0

    def test_submit_then_status(self, service):
        client, _, _ = service
        status = client.submit(sleep_spec(3, 0.0))
        assert status["job_counts"]["pending"] == 3
        status = client.status("svc-sleep")
        assert status["total_trials"] == 3
        assert status["usage"]["trials_executed"] == 0
        assert status["store_status"]["trial_count"] == 0  # nothing ran yet
        assert [c["campaign"] for c in client.list_campaigns()] == ["svc-sleep"]

    def test_unknown_campaign_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.status("nope")
        assert excinfo.value.status == 404

    def test_spec_conflict_is_409(self, service):
        client, _, _ = service
        client.submit(sleep_spec(3, 0.0))
        with pytest.raises(ServiceError) as excinfo:
            client.submit(sleep_spec(4, 0.0))
        assert excinfo.value.status == 409

    def test_bad_submit_body_is_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._post("/v1/campaigns", {"not-spec": 1})
        assert excinfo.value.status == 400

    def test_unrouted_path_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._get("/v2/else")
        assert excinfo.value.status == 404

    def test_cancel_finishes_campaign(self, service):
        client, _, _ = service
        client.submit(sleep_spec(3, 0.0))
        status = client.cancel("svc-sleep")
        assert status["state"] == "cancelled"
        assert client.status("svc-sleep")["finished"] is True

    def test_event_stream_backlog_and_follow(self, service):
        client, db, store_root = service
        client.submit(sleep_spec(2, 0.0))
        drain(db, store_root)
        backlog = list(client.iter_events("svc-sleep", follow=False))
        assert [e["to_state"] for e in backlog[:2]] == ["pending", "pending"]
        # follow-mode ends on its own once the campaign is finished
        followed = list(client.iter_events("svc-sleep", follow=True))
        assert followed == backlog
        resumed = list(
            client.iter_events("svc-sleep", since=backlog[1]["seq"], follow=False)
        )
        assert resumed == backlog[2:]

    def test_results_and_usage_after_drain(self, service):
        client, db, store_root = service
        client.submit(sleep_spec(3, 0.0))
        drain(db, store_root)
        records = client.results("svc-sleep")
        assert len(records) == 3
        assert all(r["outcome"] == "completed" for r in records)
        usage = client.usage("svc-sleep")
        assert usage["trials_completed"] == 3
        assert usage["cache_hits"] == 0


class TestSharedStatusSerializer:
    def test_service_status_matches_campaign_status_json(
        self, service, capsys
    ):
        # One serializer, two surfaces: the service's store_status block
        # must be byte-identical to `repro campaign status --json` run
        # against the service's store directory.
        client, db, store_root = service
        client.submit(sleep_spec(3, 0.0))
        drain(db, store_root)
        via_http = client.status("svc-sleep")["store_status"]
        code = repro_main(
            ["campaign", "status", "svc-sleep",
             "--cache-dir", str(store_root), "--json"]
        )
        assert code == 0
        via_cli = json.loads(capsys.readouterr().out)
        assert via_cli == via_http
        assert via_http == status_summary(CampaignStore(store_root), "svc-sleep")


class TestRunnerBackend:
    def test_run_campaign_service_backend_drop_in(self, service):
        client, db, store_root = service
        spec = sleep_spec(4, 0.0)
        worker = ServiceWorker(
            db, store_root, max_idle_s=3.0, poll_interval_s=0.05,
            lease_ttl_s=5.0,
        )
        thread = threading.Thread(target=worker.run)
        thread.start()
        try:
            seen = []
            result = run_campaign(
                spec,
                backend="service",
                service_url=client.base_url,
                progress=seen.append,
            )
        finally:
            worker.request_stop()
            thread.join(timeout=10.0)
        assert [r.trial_id for r in result.records] == [
            t.trial_id for t in spec.trials()
        ]
        assert len(result.completed) == 4
        assert result.failed == []
        assert result.telemetry.completed == 4
        assert {e["outcome"] for e in seen} == {"completed"}
        # records carry real metrics from the worker fleet
        assert result.values("slept_s", sleep_s=0.0) == [0.0] * 4

    def test_resubmitting_finished_campaign_is_idempotent(self, service):
        client, db, store_root = service
        spec = sleep_spec(3, 0.0)
        client.submit(spec)
        drain(db, store_root)
        status = client.submit(spec)  # same spec, already done: no-op
        assert status["finished"] is True
        assert status["job_counts"]["done"] == 3
