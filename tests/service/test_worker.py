"""Tests for the leasing service worker (in-process, real clock).

Crash recovery via actual ``kill -9`` lives in ``test_e2e.py``; here the
drain/heartbeat/failure paths run in threads so they stay fast and
deterministic enough for CI.
"""

import threading
import time

import pytest

from repro.campaign.spec import CampaignSpec, parameter_grid
from repro.campaign.store import CampaignStore
from repro.service.queue import JobQueue
from repro.service.testing import sleep_spec
from repro.service.worker import ServiceWorker, run_worker_fleet


def failing_spec(count=2):
    return CampaignSpec(
        name="svc-fail",
        trial="tests.campaign.trials:raise_trial",
        grid=parameter_grid(x=tuple(range(count))),
    )


@pytest.fixture
def paths(tmp_path):
    return tmp_path / "q.sqlite3", tmp_path / "store"


def open_queue(paths):
    return JobQueue(paths[0], CampaignStore(paths[1]))


class TestRunLoop:
    def test_drains_campaign_then_idles_out(self, paths):
        with open_queue(paths) as queue:
            queue.submit(sleep_spec(5, 0.0))
        worker = ServiceWorker(
            *paths, batch_size=2, max_idle_s=0.2, poll_interval_s=0.05,
            lease_ttl_s=5.0,
        )
        counters = worker.run()
        assert counters == {"executed": 5, "done": 5, "failed": 0, "requeued": 0}
        with open_queue(paths) as queue:
            status = queue.campaign_status("svc-sleep")
            assert status["finished"] is True
            assert status["job_counts"]["done"] == 5
            assert len(queue.store.cached_records("svc-sleep")) == 5

    def test_failed_trials_counted_not_cached(self, paths):
        with open_queue(paths) as queue:
            queue.submit(failing_spec(2))
        worker = ServiceWorker(
            *paths, max_idle_s=0.2, poll_interval_s=0.05, lease_ttl_s=5.0
        )
        counters = worker.run()
        assert counters["failed"] == 2
        with open_queue(paths) as queue:
            assert queue.campaign_status("svc-fail")["job_counts"]["failed"] == 2
            assert queue.store.cached_records("svc-fail") == []

    def test_request_stop_drains_leased_work(self, paths):
        # Stop is requested while trials are executing: the worker must
        # finish what it leased (batch of 2) and lease nothing further.
        with open_queue(paths) as queue:
            queue.submit(sleep_spec(6, 0.1))
        worker = ServiceWorker(
            *paths, batch_size=2, poll_interval_s=0.05, lease_ttl_s=10.0
        )
        thread = threading.Thread(target=worker.run)
        thread.start()
        time.sleep(0.05)  # inside the first batch
        worker.request_stop()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        with open_queue(paths) as queue:
            counts = queue.campaign_status("svc-sleep")["job_counts"]
            assert counts["leased"] == 0  # nothing abandoned mid-lease
            assert counts["done"] >= 2
            assert counts["pending"] == 6 - counts["done"]

    def test_heartbeat_outlives_the_lease_ttl(self, paths):
        # One trial sleeps for several TTLs; the heartbeat thread must
        # keep renewing so the job is never requeued out from under it.
        with open_queue(paths) as queue:
            queue.submit(sleep_spec(1, 0.9, name="svc-slow"))
        worker = ServiceWorker(
            *paths, lease_ttl_s=0.4, heartbeat_interval_s=0.1,
            max_idle_s=0.2, poll_interval_s=0.05,
        )
        counters = worker.run()
        assert counters == {"executed": 1, "done": 1, "failed": 0, "requeued": 0}
        with open_queue(paths) as queue:
            assert queue.usage("svc-slow")["requeues"] == 0
            (record,) = queue.results("svc-slow")
            assert record["attempts"] == 1

    def test_batch_size_validated(self, paths):
        with pytest.raises(ValueError, match="batch_size"):
            ServiceWorker(*paths, batch_size=0)


class TestFleet:
    def test_fleet_count_validated(self, paths):
        with pytest.raises(ValueError, match="worker count"):
            run_worker_fleet(0, *paths)

    def test_two_process_fleet_drains_queue(self, paths):
        with open_queue(paths) as queue:
            queue.submit(sleep_spec(8, 0.02))
        fleet = run_worker_fleet(
            2, *paths, max_idle_s=0.3, poll_interval_s=0.05, lease_ttl_s=5.0
        )
        try:
            for process in fleet:
                process.join(timeout=30.0)
            assert all(process.exitcode == 0 for process in fleet)
        finally:
            for process in fleet:
                if process.is_alive():
                    process.kill()
                    process.join()
        with open_queue(paths) as queue:
            status = queue.campaign_status("svc-sleep")
            assert status["job_counts"]["done"] == 8
            workers = {
                record["worker_id"] for record in queue.results("svc-sleep")
            }
            assert len(workers) >= 1  # both may win jobs; at least one did
