"""End-to-end service test: real processes, real HTTP, real ``kill -9``.

The acceptance scenario for the campaign service: a server subprocess
(``repro service serve``), two worker subprocesses (``repro service
worker``), a 50-trial campaign submitted over HTTP — and one worker
SIGKILLed mid-run.  The campaign must still complete with exactly one
stored record per trial and a consistent usage ledger.
"""

import os
import signal
import socket
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.campaign.store import CampaignStore
from repro.service.cli import service_paths
from repro.service.client import ServiceClient
from repro.service.testing import sleep_spec

TRIALS = 50
SLEEP_S = 0.15
LEASE_TTL_S = 2.0


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn(argv, repo_root):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "service", *argv],
        env=env,
        cwd=repo_root,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for_health(client, timeout_s=20.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if client.health()["ok"]:
                return
        except OSError:
            time.sleep(0.1)
    raise TimeoutError(f"service at {client.base_url} never became healthy")


@pytest.fixture
def deployment(tmp_path):
    repo_root = Path(__file__).resolve().parents[2]
    data_dir = tmp_path / "svc"
    port = free_port()
    processes = []
    server = spawn(
        ["serve", "--host", "127.0.0.1", "--port", str(port),
         "--data-dir", str(data_dir)],
        repo_root,
    )
    processes.append(server)
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout_s=15.0)
    try:
        wait_for_health(client)
        yield client, data_dir, repo_root, processes
    finally:
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()


def test_campaign_survives_worker_sigkill(deployment):
    client, data_dir, repo_root, processes = deployment
    spec = sleep_spec(TRIALS, SLEEP_S, name="svc-e2e")
    status = client.submit(spec)
    assert status["job_counts"]["pending"] == TRIALS

    worker_argv = [
        "worker", "--data-dir", str(data_dir), "--jobs", "1",
        "--ttl", str(LEASE_TTL_S), "--poll", "0.05", "--max-idle", "5",
    ]
    victim = spawn(worker_argv, repo_root)
    survivor = spawn(worker_argv, repo_root)
    processes += [victim, survivor]

    # Kill -9 the first worker only once it is demonstrably mid-run
    # (it has completed at least one trial, so it holds leases and its
    # identity is in the record stream): its remaining leased jobs must
    # re-queue after the TTL and finish on the surviving worker.
    victim_id = f"{socket.gethostname()}:{victim.pid}"
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        done = [
            r for r in client.results("svc-e2e")
            if r.get("worker_id") == victim_id
        ]
        if done:
            break
        time.sleep(0.05)
    assert done, f"worker {victim_id} never completed a trial"
    os.kill(victim.pid, signal.SIGKILL)
    victim.wait(timeout=10.0)

    final = client.wait("svc-e2e", deadline_s=120.0)
    assert final["finished"] is True
    assert final["job_counts"]["done"] == TRIALS
    assert final["job_counts"]["failed"] == 0
    assert final["job_counts"]["quarantined"] == 0

    # Exactly-once: one terminal record per trial, unique keys, and no
    # duplicate completion entries in the shared JSONL log.
    records = client.results("svc-e2e")
    assert len(records) == TRIALS
    assert all(r["outcome"] == "completed" for r in records)
    assert len({r["key"] for r in records}) == TRIALS

    _, store_root = service_paths(data_dir)
    store = CampaignStore(store_root)
    log_counts = Counter(
        entry["key"]
        for entry in store.iter_log("svc-e2e")
        if entry.get("outcome") == "completed"
    )
    assert all(count == 1 for count in log_counts.values())
    # a kill between queue commit and store append can drop at most the
    # in-flight record's log line; it can never duplicate one
    assert len(log_counts) >= TRIALS - 1

    # Usage ledger consistency: every trial executed and completed
    # exactly once from the queue's perspective, with real CPU time.
    usage = client.usage("svc-e2e")
    assert usage["trials_completed"] == TRIALS
    assert usage["trials_executed"] == TRIALS
    assert usage["trials_failed"] == 0
    assert usage["cache_hits"] == 0
    assert usage["cpu_seconds"] >= TRIALS * SLEEP_S * 0.9

    # Both worker identities appear in the stored records: work really
    # was distributed, and the survivor picked up the victim's share.
    workers = {r.get("worker_id") for r in records if r.get("worker_id")}
    assert len(workers) == 2

    survivor.wait(timeout=60.0)
    assert survivor.returncode == 0
