"""Tests for the crash-safe SQLite job queue.

A :class:`FakeClock` drives every lease-expiry scenario, so the tests
never sleep and never depend on real scheduling latency.
"""

import json

import pytest

from repro.campaign.store import CampaignStore
from repro.service.queue import (
    JobQueue,
    SpecConflictError,
    UnknownCampaignError,
)
from repro.service.testing import sleep_spec


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def report_for(outcome="completed", *, wall=0.5, error=None, retryable=False):
    return {
        "outcome": outcome,
        "metrics": {"y": 1} if outcome == "completed" else None,
        "error": error,
        "wall_time_s": wall,
        "retryable": retryable,
        "attempts": 1,
    }


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock):
    with JobQueue(
        tmp_path / "q.sqlite3", CampaignStore(tmp_path / "store"), clock=clock
    ) as q:
        yield q


class TestSubmit:
    def test_submit_enqueues_every_trial(self, queue):
        status = queue.submit(sleep_spec(4, 0.0))
        assert status["total_trials"] == 4
        assert status["job_counts"]["pending"] == 4
        assert status["finished"] is False

    def test_resubmit_same_spec_is_idempotent(self, queue):
        queue.submit(sleep_spec(3, 0.0))
        status = queue.submit(sleep_spec(3, 0.0))
        assert status["job_counts"]["pending"] == 3
        assert len(queue.list_campaigns()) == 1

    def test_resubmit_different_spec_conflicts(self, queue):
        queue.submit(sleep_spec(3, 0.0))
        with pytest.raises(SpecConflictError, match="different spec"):
            queue.submit(sleep_spec(4, 0.0))

    def test_cached_trials_prefill_as_done(self, queue):
        spec = sleep_spec(3, 0.0)
        trial = spec.trials()[0]
        queue.store.save(
            spec.name,
            trial.key,
            {
                "key": trial.key,
                "trial_id": trial.trial_id,
                "outcome": "completed",
                "metrics": {"slept_s": 0.0},
                "attempts": 1,
            },
        )
        status = queue.submit(spec)
        assert status["job_counts"] == {
            "pending": 2, "leased": 0, "done": 1, "failed": 0, "quarantined": 0,
        }
        assert queue.usage(spec.name)["cache_hits"] == 1
        (record,) = [r for r in queue.results(spec.name) if r["cached"]]
        assert record["trial_id"] == trial.trial_id

    def test_unknown_campaign_raises(self, queue):
        with pytest.raises(UnknownCampaignError):
            queue.campaign_status("nope")
        with pytest.raises(UnknownCampaignError):
            queue.usage("nope")
        with pytest.raises(UnknownCampaignError):
            queue.cancel("nope")


class TestLease:
    def test_lease_claims_in_trial_order(self, queue):
        queue.submit(sleep_spec(4, 0.0))
        jobs = queue.lease("w1", limit=2, ttl_s=10)
        assert [j.trial_id for j in jobs] == ["svc-sleep/0000", "svc-sleep/0001"]
        assert all(j.attempts == 1 for j in jobs)
        status = queue.campaign_status("svc-sleep")
        assert status["job_counts"]["leased"] == 2

    def test_leased_jobs_are_not_releasable(self, queue):
        queue.submit(sleep_spec(2, 0.0))
        queue.lease("w1", limit=2, ttl_s=10)
        assert queue.lease("w2", limit=2, ttl_s=10) == []

    def test_expired_lease_requeues_on_next_lease(self, queue, clock):
        queue.submit(sleep_spec(1, 0.0))
        (first,) = queue.lease("w1", ttl_s=5)
        clock.advance(6.0)
        (second,) = queue.lease("w2", ttl_s=5)
        assert second.key == first.key
        assert second.attempts == 2
        assert queue.usage("svc-sleep")["requeues"] == 1

    def test_heartbeat_extends_lease(self, queue, clock):
        queue.submit(sleep_spec(1, 0.0))
        (job,) = queue.lease("w1", ttl_s=5)
        clock.advance(4.0)
        held = queue.heartbeat("w1", ttl_s=5)
        assert held == [(job.campaign_id, job.key)]
        clock.advance(4.0)  # past the original expiry, within the renewal
        assert queue.lease("w2", ttl_s=5) == []

    def test_heartbeat_cannot_resurrect_expired_lease(self, queue, clock):
        queue.submit(sleep_spec(1, 0.0))
        queue.lease("w1", ttl_s=5)
        clock.advance(6.0)
        assert queue.heartbeat("w1", ttl_s=5) == []

    def test_requeue_budget_quarantines_poison_jobs(self, tmp_path, clock):
        queue = JobQueue(
            tmp_path / "q2.sqlite3",
            CampaignStore(tmp_path / "store2"),
            requeue_budget=1,
            clock=clock,
        )
        queue.submit(sleep_spec(1, 0.0))
        queue.lease("w1", ttl_s=5)
        clock.advance(6.0)  # first expiry: requeued (budget 1)
        queue.lease("w1", ttl_s=5)
        clock.advance(6.0)  # second expiry: budget spent -> quarantined
        assert queue.requeue_expired() == 1
        status = queue.campaign_status("svc-sleep")
        assert status["job_counts"]["quarantined"] == 1
        assert status["finished"] is True
        usage = queue.usage("svc-sleep")
        assert usage["quarantined"] == 1
        (record,) = queue.results("svc-sleep")
        assert record["state"] == "quarantined"
        assert "requeue budget" in record["error"]

    def test_lease_argument_validation(self, queue):
        queue.submit(sleep_spec(1, 0.0))
        with pytest.raises(ValueError, match="limit"):
            queue.lease("w1", limit=0)
        with pytest.raises(ValueError, match="ttl"):
            queue.lease("w1", ttl_s=0.0)

    def test_negative_requeue_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="requeue_budget"):
            JobQueue(
                tmp_path / "q3.sqlite3",
                CampaignStore(tmp_path / "s3"),
                requeue_budget=-1,
            )


class TestComplete:
    def test_completed_trial_lands_in_store(self, queue):
        queue.submit(sleep_spec(1, 0.0))
        (job,) = queue.lease("w1", ttl_s=10)
        assert queue.complete("w1", job.campaign_id, job.key, report_for()) == "done"
        cached = queue.store.load(job.campaign_id, job.key)
        assert cached["outcome"] == "completed"
        assert cached["worker_id"] == "w1"
        assert queue.campaign_status(job.campaign_id)["finished"] is True

    def test_duplicate_completion_is_ignored(self, queue):
        # A worker that lost its lease but finished anyway must not
        # produce a second record: first write wins, exactly once.
        queue.submit(sleep_spec(1, 0.0))
        (job,) = queue.lease("w1", ttl_s=10)
        queue.complete("w1", job.campaign_id, job.key, report_for())
        outcome = queue.complete(
            "w2", job.campaign_id, job.key, report_for(wall=9.9)
        )
        assert outcome == "ignored"
        log = list(queue.store.iter_log(job.campaign_id))
        assert len(log) == 1
        assert queue.usage(job.campaign_id)["trials_executed"] == 1
        (record,) = queue.results(job.campaign_id)
        assert record["wall_time_s"] == 0.5  # the first report, not the second

    def test_failed_trial_logged_but_not_cached(self, queue):
        queue.submit(sleep_spec(1, 0.0))
        (job,) = queue.lease("w1", ttl_s=10)
        outcome = queue.complete(
            "w1", job.campaign_id, job.key,
            report_for("failed", error="boom"),
        )
        assert outcome == "failed"
        assert queue.store.load(job.campaign_id, job.key) is None
        (entry,) = queue.store.iter_log(job.campaign_id)
        assert entry["outcome"] == "failed"
        assert queue.usage(job.campaign_id)["trials_failed"] == 1

    def test_retryable_failure_requeues_within_budget(self, queue):
        queue.submit(sleep_spec(1, 0.0))
        (job,) = queue.lease("w1", ttl_s=10)
        outcome = queue.complete(
            "w1", job.campaign_id, job.key,
            report_for("failed", error="flaky", retryable=True),
        )
        assert outcome == "pending"
        (again,) = queue.lease("w1", ttl_s=10)
        assert again.key == job.key
        assert again.attempts == 2

    def test_completion_for_unknown_job_raises(self, queue):
        queue.submit(sleep_spec(1, 0.0))
        with pytest.raises(UnknownCampaignError):
            queue.complete("w1", "svc-sleep", "f" * 64, report_for())

    def test_usage_ledger_accumulates_cpu_seconds(self, queue):
        queue.submit(sleep_spec(2, 0.0))
        for job in queue.lease("w1", limit=2, ttl_s=10):
            queue.complete("w1", job.campaign_id, job.key, report_for(wall=0.25))
        usage = queue.usage("svc-sleep")
        assert usage["trials_executed"] == 2
        assert usage["trials_completed"] == 2
        assert usage["cpu_seconds"] == pytest.approx(0.5)


class TestControl:
    def test_cancel_stops_leasing(self, queue):
        queue.submit(sleep_spec(3, 0.0))
        status = queue.cancel("svc-sleep")
        assert status["state"] == "cancelled"
        assert status["finished"] is True
        assert queue.lease("w1", limit=3, ttl_s=10) == []

    def test_transitions_stream_is_append_only(self, queue):
        queue.submit(sleep_spec(2, 0.0))
        (job, _) = queue.lease("w1", limit=2, ttl_s=10)
        queue.complete("w1", job.campaign_id, job.key, report_for())
        events = queue.events_since("svc-sleep")
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        states = [(e["trial_id"], e["to_state"]) for e in events]
        assert ("svc-sleep/0000", "done") in states
        tail = queue.events_since("svc-sleep", after_seq=seqs[-2])
        assert [e["seq"] for e in tail] == seqs[-1:]

    def test_queue_survives_reopen(self, tmp_path, clock):
        # Same database file, fresh connection: pending work and usage
        # counters persist across a service restart.
        db, store = tmp_path / "q.sqlite3", CampaignStore(tmp_path / "store")
        with JobQueue(db, store, clock=clock) as q:
            q.submit(sleep_spec(2, 0.0))
            (job, _) = q.lease("w1", limit=2, ttl_s=5)
            q.complete("w1", job.campaign_id, job.key, report_for())
        clock.advance(6.0)
        with JobQueue(db, store, clock=clock) as q:
            status = q.campaign_status("svc-sleep")
            assert status["job_counts"]["done"] == 1
            (job,) = q.lease("w2", ttl_s=5)  # the expired lease re-queued
            assert job.attempts == 2

    def test_results_round_trip_json(self, queue):
        queue.submit(sleep_spec(1, 0.0))
        (job,) = queue.lease("w1", ttl_s=10)
        queue.complete("w1", job.campaign_id, job.key, report_for())
        (record,) = queue.results("svc-sleep")
        assert json.loads(json.dumps(record)) == record
        assert record["outcome"] == "completed"
        assert record["state"] == "done"
