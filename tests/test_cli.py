"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.nodes == 100
        assert args.key_nodes == 10

    def test_quickstart_overrides(self):
        args = build_parser().parse_args(
            ["quickstart", "--nodes", "50", "--seed", "9"]
        )
        assert args.nodes == 50
        assert args.seed == 9

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_params_prints_table(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "Number of nodes" in out
        assert "MC battery capacity" in out

    def test_superposition_prints_sweep(self, capsys):
        assert main(["superposition", "--points", "9"]) == 0
        out = capsys.readouterr().out
        assert "phase/pi" in out
        assert "r^2" in out

    def test_quickstart_small_run(self, capsys):
        code = main(
            ["quickstart", "--nodes", "50", "--key-nodes", "5",
             "--days", "35", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exhausted" in out
        assert "detected" in out

    def test_testbed_small_run(self, capsys):
        code = main(["testbed", "--trials", "4"])
        out = capsys.readouterr().out
        assert "mean exhausted ratio" in out
        assert code in (0, 1)


class TestScenariosCommand:
    def test_list_prints_every_scenario(self, capsys):
        from repro.scenarios import scenario_names

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_list_json(self, capsys):
        import json

        assert main(["scenarios", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in payload} >= {
            "benign", "csa-baseline", "command-spoof",
        }

    def test_show_emits_spec_json(self, capsys):
        import json

        assert main(["scenarios", "show", "command-spoof"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["controller"] == "command-spoof"
        assert payload["controller_params"] == {"stop_fraction": 0.8}

    def test_show_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            main(["scenarios", "show", "nonesuch"])

    def test_run_small_scenario(self, capsys):
        import json

        code = main(
            ["scenarios", "run", "benign", "--nodes", "30",
             "--key-nodes", "3", "--days", "5", "--seed", "2"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "benign"
        assert payload["detected"] is False

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])


class TestQuickstartTwin:
    def test_twin_flag_parses(self):
        args = build_parser().parse_args(["quickstart", "--twin"])
        assert args.twin is True
        assert build_parser().parse_args(["quickstart"]).twin is False

    def test_quickstart_twin_small_run(self, capsys):
        code = main(
            ["quickstart", "--nodes", "40", "--key-nodes", "4",
             "--days", "10", "--seed", "3", "--twin"]
        )
        assert code == 0
        assert "detected" in capsys.readouterr().out.lower()
