"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.nodes == 100
        assert args.key_nodes == 10

    def test_quickstart_overrides(self):
        args = build_parser().parse_args(
            ["quickstart", "--nodes", "50", "--seed", "9"]
        )
        assert args.nodes == 50
        assert args.seed == 9

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_params_prints_table(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "Number of nodes" in out
        assert "MC battery capacity" in out

    def test_superposition_prints_sweep(self, capsys):
        assert main(["superposition", "--points", "9"]) == 0
        out = capsys.readouterr().out
        assert "phase/pi" in out
        assert "r^2" in out

    def test_quickstart_small_run(self, capsys):
        code = main(
            ["quickstart", "--nodes", "50", "--key-nodes", "5",
             "--days", "35", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exhausted" in out
        assert "detected" in out

    def test_testbed_small_run(self, capsys):
        code = main(["testbed", "--trials", "4"])
        out = capsys.readouterr().out
        assert "mean exhausted ratio" in out
        assert code in (0, 1)
