"""Tests for the EWMA + CUSUM anomaly scorer."""

import math

import pytest

from repro.twin.anomaly import AnomalyScorer


class TestValidation:
    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_ewma_lambda_range(self, bad):
        with pytest.raises(ValueError, match="ewma_lambda"):
            AnomalyScorer(ewma_lambda=bad)

    @pytest.mark.parametrize("bad", [-0.01, math.nan, math.inf])
    def test_cusum_k_validated(self, bad):
        with pytest.raises(ValueError, match="cusum_k"):
            AnomalyScorer(cusum_k=bad)

    def test_cusum_h_must_be_positive(self):
        with pytest.raises(ValueError):
            AnomalyScorer(cusum_h=0.0)

    @pytest.mark.parametrize("bad", [-0.1, math.nan, math.inf])
    def test_residual_validated(self, bad):
        scorer = AnomalyScorer()
        with pytest.raises(ValueError, match="residual"):
            scorer.update(0.0, bad)


class TestStatistics:
    def test_ewma_recurrence(self):
        scorer = AnomalyScorer(ewma_lambda=0.5, cusum_h=100.0)
        s1 = scorer.update(0.0, 1.0)
        assert s1.ewma == pytest.approx(0.5)
        s2 = scorer.update(1.0, 0.0)
        assert s2.ewma == pytest.approx(0.25)

    def test_cusum_absorbs_slack_below_k(self):
        scorer = AnomalyScorer(cusum_k=0.05, cusum_h=0.25)
        for t in range(100):
            score = scorer.update(float(t), 0.04)  # forever below k
        assert score.cusum == 0.0
        assert not score.alarmed

    def test_cusum_accumulates_drip_above_k(self):
        # A sub-threshold drip (0.1 per observation, k=0.05) must alarm
        # after ceil(h / (r - k)) = 5 observations.
        scorer = AnomalyScorer(cusum_k=0.05, cusum_h=0.25)
        alarms = [scorer.update(float(t), 0.1).alarmed for t in range(6)]
        assert alarms == [False, False, False, False, True, True]

    def test_single_large_residual_alarms_immediately(self):
        scorer = AnomalyScorer()
        score = scorer.update(0.0, 0.8)  # a CSA death residual
        assert score.alarmed
        assert score.cusum == pytest.approx(0.75)

    def test_alarm_latches(self):
        scorer = AnomalyScorer()
        assert scorer.update(0.0, 1.0).alarmed
        # Quiet residuals afterwards do not clear the alarm.
        later = scorer.update(1.0, 0.0)
        assert later.alarmed
        assert scorer.alarmed

    def test_score_carries_inputs(self):
        scorer = AnomalyScorer()
        score = scorer.update(12.5, 0.3, node_id=7, kind="death")
        assert (score.time, score.node_id, score.kind, score.residual) == (
            12.5, 7, "death", 0.3,
        )
