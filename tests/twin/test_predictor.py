"""Tests for the twin predictor, including parity with the real ledger."""

import numpy as np
import pytest

from repro.network.energy_ledger import EnergyLedger
from repro.twin.predictor import TwinPredictor
from repro.twin.stream import NetworkSnapshot


def snapshot(time=0.0, capacities=(100.0,), energies=None, rates=(0.5,),
             alive=None):
    energies = tuple(energies) if energies is not None else tuple(capacities)
    alive = tuple(alive) if alive is not None else (True,) * len(capacities)
    return NetworkSnapshot(
        time=time,
        capacity_j=tuple(capacities),
        believed_j=energies,
        consumption_w=tuple(rates),
        alive=alive,
    )


class TestLedgerParity:
    """The predictor must reproduce EnergyLedger.advance_all_to exactly."""

    def test_scripted_schedule_matches_reference_ledger(self):
        rng = np.random.default_rng(42)
        n = 8
        capacities = rng.uniform(50.0, 200.0, n)
        fractions = rng.uniform(0.3, 1.0, n)
        rates = rng.uniform(0.01, 0.2, n)

        reference = EnergyLedger(n)
        for i in range(n):
            reference.init_slot(i, float(capacities[i]), float(fractions[i]))
        reference.consumption_w[:] = rates

        predictor = TwinPredictor()
        predictor.start(
            NetworkSnapshot(
                time=0.0,
                capacity_j=tuple(float(c) for c in capacities),
                believed_j=tuple(float(e) for e in reference.believed_j),
                consumption_w=tuple(float(r) for r in rates),
                alive=(True,) * n,
            )
        )

        now = 0.0
        for _ in range(50):
            now += float(rng.uniform(1.0, 300.0))
            reference.advance_all_to(now)
            predictor.advance_to(now)
            if rng.random() < 0.4:
                slot = int(rng.integers(n))
                amount = float(rng.uniform(1.0, 80.0))
                reference.charge_slot(slot, amount, amount)
                predictor.apply_charge(slot, amount)

        np.testing.assert_array_equal(
            predictor.predicted_energies(), reference.energy_j
        )
        np.testing.assert_array_equal(
            predictor.ledger.alive, reference.alive
        )

    def test_honest_run_ground_truth_parity(self):
        # End-to-end: a benign simulation publishes its real feed; with no
        # lies anywhere, the twin's prediction must track the network's
        # believed (= true) energies to float tolerance.
        from repro.sim.benign import BenignController
        from repro.sim.scenario import ScenarioConfig
        from repro.sim.wrsn_sim import WrsnSimulation
        from repro.twin.detector import TwinDetector
        from repro.twin.feed import SimStreamPublisher

        cfg = ScenarioConfig(node_count=30, key_count=3, horizon_days=10.0)
        network = cfg.build_network(seed=5)
        twin = TwinDetector()
        sim = WrsnSimulation(
            network,
            cfg.build_charger(),
            BenignController(),
            detectors=[twin],
            horizon_s=cfg.horizon_s,
            hooks=[SimStreamPublisher(twin.stream)],
        )
        result = sim.run()

        final = result.ended_at
        twin.predictor.advance_to(final)
        network.advance_to(final)
        np.testing.assert_allclose(
            twin.predictor.predicted_energies(),
            network.ledger.believed_j,
            rtol=1e-9,
            atol=1e-6,
        )
        assert not twin.detected


class TestEdgeCases:
    def test_empty_snapshot_stays_inert(self):
        predictor = TwinPredictor()
        predictor.start(snapshot(capacities=(), rates=(), alive=()))
        assert not predictor.started
        assert predictor.advance_to(100.0) == []
        assert predictor.predicted_energies().size == 0
        assert predictor.apply_charge(0, 5.0) == 0.0
        assert predictor.mark_dead(0, 1.0) == 0.0

    def test_not_started_is_inert(self):
        predictor = TwinPredictor()
        assert not predictor.started
        assert predictor.advance_to(10.0) == []
        assert predictor.predicted_energy_j(0) == 0.0
        assert predictor.capacity_j(0) == 0.0
        with pytest.raises(RuntimeError):
            predictor.ledger

    def test_single_node_drain_and_death(self):
        predictor = TwinPredictor()
        predictor.start(snapshot(capacities=(100.0,), rates=(1.0,)))
        assert predictor.advance_to(40.0) == []
        assert predictor.predicted_energy_j(0) == pytest.approx(60.0)
        assert predictor.advance_to(100.0) == [0]  # drained dry
        assert predictor.predicted_energy_j(0) == 0.0

    def test_mark_dead_mid_stream_returns_stranded_energy(self):
        predictor = TwinPredictor()
        predictor.start(snapshot(capacities=(100.0, 100.0), rates=(1.0, 0.5),
                                 energies=(100.0, 80.0)))
        predictor.advance_to(20.0)
        stranded = predictor.mark_dead(0, 20.0)
        assert stranded == pytest.approx(80.0)
        # The slot is retired: no further drain, charge has no effect.
        predictor.advance_to(50.0)
        assert predictor.predicted_energy_j(0) == 0.0
        assert not predictor.ledger.alive[0]
        # Dead nodes cannot revive in the replica either.
        predictor.apply_charge(0, 50.0)
        assert predictor.predicted_energy_j(0) == 0.0
        # The second node kept draining normally throughout.
        assert predictor.predicted_energy_j(1) == pytest.approx(80.0 - 0.5 * 50.0)

    def test_second_death_report_is_idempotent(self):
        predictor = TwinPredictor()
        predictor.start(snapshot(capacities=(100.0,), rates=(1.0,)))
        predictor.advance_to(10.0)
        assert predictor.mark_dead(0, 10.0) == pytest.approx(90.0)
        assert predictor.mark_dead(0, 11.0) == 0.0

    def test_dead_snapshot_slots_start_retired(self):
        predictor = TwinPredictor()
        predictor.start(
            snapshot(capacities=(100.0, 100.0), rates=(1.0, 1.0),
                     alive=(True, False))
        )
        assert predictor.predicted_energy_j(1) == 0.0
        predictor.advance_to(30.0)
        assert predictor.predicted_energy_j(0) == pytest.approx(70.0)
        assert predictor.predicted_energy_j(1) == 0.0

    def test_charge_clamps_at_capacity(self):
        predictor = TwinPredictor()
        predictor.start(snapshot(capacities=(100.0,), energies=(90.0,),
                                 rates=(0.0,)))
        after = predictor.apply_charge(0, 50.0)
        assert after == pytest.approx(100.0)

    def test_calibrate_clamps_and_skips_dead(self):
        predictor = TwinPredictor()
        predictor.start(snapshot(capacities=(100.0, 100.0), rates=(0.0, 0.0)))
        predictor.calibrate(0, 250.0)
        assert predictor.predicted_energy_j(0) == pytest.approx(100.0)
        predictor.calibrate(0, -5.0)
        assert predictor.predicted_energy_j(0) == 0.0
        predictor.mark_dead(1, 1.0)
        predictor.calibrate(1, 40.0)
        assert predictor.predicted_energy_j(1) == 0.0

    def test_consumption_update_length_mismatch_rejected(self):
        predictor = TwinPredictor()
        predictor.start(snapshot(capacities=(100.0, 100.0), rates=(1.0, 1.0)))
        with pytest.raises(ValueError, match="covers 1 nodes"):
            predictor.set_consumption([0.5])

    def test_consumption_update_zeroes_dead_slots(self):
        predictor = TwinPredictor()
        predictor.start(snapshot(capacities=(100.0, 100.0), rates=(1.0, 1.0)))
        predictor.mark_dead(0, 1.0)
        predictor.set_consumption([2.0, 3.0])
        assert predictor.ledger.consumption_w[0] == 0.0
        assert predictor.ledger.consumption_w[1] == 3.0
