"""Tests for the observation stream: ordering, fan-out, bookkeeping."""

import math

import pytest

from repro.twin.stream import (
    ChargeCommitment,
    DeathObservation,
    ObservationStream,
    RequestObservation,
    StreamOrderError,
)


def request(t, node_id=0):
    return RequestObservation(time=t, node_id=node_id, energy_needed_j=10.0)


class TestOrdering:
    def test_monotone_times_accepted(self):
        stream = ObservationStream()
        for t in (0.0, 1.0, 5.0, 5.0, 7.5):
            stream.publish(request(t))
        assert stream.count == 5
        assert stream.last_time == 7.5

    def test_equal_times_accepted(self):
        stream = ObservationStream()
        stream.publish(request(3.0))
        stream.publish(DeathObservation(time=3.0, node_id=1))
        assert stream.count == 2

    def test_out_of_order_rejected_with_both_timestamps(self):
        stream = ObservationStream()
        stream.publish(request(100.0))
        with pytest.raises(StreamOrderError) as excinfo:
            stream.publish(request(99.0))
        message = str(excinfo.value)
        assert "99.0" in message
        assert "100.0" in message
        assert "out-of-order" in message

    def test_rejected_observation_not_counted_or_fanned_out(self):
        stream = ObservationStream()
        seen = []
        stream.subscribe(seen.append)
        stream.publish(request(10.0))
        with pytest.raises(StreamOrderError):
            stream.publish(request(1.0))
        assert stream.count == 1
        assert stream.last_time == 10.0
        assert len(seen) == 1

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_time_rejected(self, bad):
        stream = ObservationStream()
        with pytest.raises(StreamOrderError):
            stream.publish(request(bad))

    def test_tiny_backwards_jitter_tolerated(self):
        stream = ObservationStream()
        stream.publish(request(1.0))
        stream.publish(request(1.0 - 1e-12))  # within the clock tolerance
        assert stream.last_time == 1.0  # head never moves backwards


class TestFanOut:
    def test_subscribers_called_in_subscription_order(self):
        stream = ObservationStream()
        calls = []
        stream.subscribe(lambda obs: calls.append(("a", obs.time)))
        stream.subscribe(lambda obs: calls.append(("b", obs.time)))
        stream.publish(request(1.0))
        stream.publish(request(2.0))
        assert calls == [("a", 1.0), ("b", 1.0), ("a", 2.0), ("b", 2.0)]

    def test_late_subscriber_misses_earlier_observations(self):
        stream = ObservationStream()
        stream.publish(request(1.0))
        seen = []
        stream.subscribe(seen.append)
        obs = ChargeCommitment(
            time=2.0, node_id=0, claimed_j=5.0,
            telemetry_energy_j=5.0, capacity_j=10.0,
        )
        stream.publish(obs)
        assert seen == [obs]

    def test_empty_stream_properties(self):
        stream = ObservationStream()
        assert stream.count == 0
        assert stream.last_time is None
