"""End-to-end tests for the streaming twin detector.

The three residual families against the three chargers they exist for:
benign (no alarms, zero residuals), CSA (death divergence — victims die
on paper-full batteries), and command spoofing (telemetry divergence —
each truncated session leaves a sub-tolerance gap the CUSUM accumulates).
"""

import pytest

from repro.attack.attacker import CsaAttacker
from repro.attack.command_spoof import CommandSpoofAttacker
from repro.sim.benign import BenignController
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation
from repro.twin.detector import TwinDetector
from repro.twin.feed import SimStreamPublisher
from repro.twin.stream import (
    AuditObservation,
    ChargeCommitment,
    DeathObservation,
    NetworkSnapshot,
    ObservationStream,
    RequestObservation,
)

CFG = ScenarioConfig(node_count=60, key_count=6, horizon_days=40.0)


def run_with_twin(controller, cfg=CFG, seed=3):
    twin = TwinDetector()
    sim = WrsnSimulation(
        cfg.build_network(seed=seed),
        cfg.build_charger(),
        controller,
        detectors=[twin],
        horizon_s=cfg.horizon_s,
        hooks=[SimStreamPublisher(twin.stream)],
    )
    return sim.run(), twin


class TestEndToEnd:
    def test_benign_run_stays_clean(self):
        result, twin = run_with_twin(BenignController())
        assert not twin.detected
        assert result.detections == []
        # An honest feed produces (numerically) zero divergence.
        assert all(s.residual <= 1e-9 for s in twin.scores)

    def test_csa_detected_via_death_divergence(self):
        result, twin = run_with_twin(CsaAttacker(key_count=CFG.key_count))
        assert twin.detected
        twin_alarms = [d for d in result.detections if d.detector == "twin"]
        assert twin_alarms
        assert twin.first_alarm is not None
        assert twin.first_alarm.kind == "death"
        # The signature: the victim died holding most of a battery on paper.
        assert twin.first_alarm.residual > 0.5
        # CSA fools the victim's own belief, so telemetry agrees with the
        # claim: no telemetry residual ever fires.
        telemetry = [s for s in twin.scores if s.kind == "telemetry"]
        assert all(s.residual <= 1e-9 for s in telemetry)

    def test_csa_alarm_surfaces_at_observation_time(self):
        # Hooks run before detectors for the same event, so the alarm's
        # trace record carries the triggering observation's timestamp.
        result, twin = run_with_twin(CsaAttacker(key_count=CFG.key_count))
        twin_alarms = [d for d in result.detections if d.detector == "twin"]
        assert twin_alarms[0].time == twin.first_alarm.time

    def test_command_spoof_detected_via_telemetry_cusum(self):
        result, twin = run_with_twin(
            CommandSpoofAttacker(key_count=CFG.key_count, stop_fraction=0.8)
        )
        assert twin.detected
        assert twin.first_alarm.kind == "telemetry"
        # Each individual session's shortfall sits under the trajectory
        # detector's 25% tolerance — only accumulation catches it.
        assert twin.first_alarm.residual < 0.25
        assert twin.first_alarm.cusum >= twin.scorer.cusum_h

    def test_detection_latency_is_reported_not_just_detected(self):
        _, twin = run_with_twin(CsaAttacker(key_count=CFG.key_count))
        assert twin.detection_time is not None
        assert 0.0 < twin.detection_time < CFG.horizon_s


class TestObservationHandling:
    def make_started(self):
        twin = TwinDetector()
        twin.stream.publish(
            NetworkSnapshot(
                time=0.0,
                capacity_j=(100.0, 100.0),
                believed_j=(100.0, 100.0),
                consumption_w=(0.1, 0.1),
                alive=(True, True),
            )
        )
        return twin

    def test_without_snapshot_observations_pass_unjudged(self):
        twin = TwinDetector()
        twin.stream.publish(DeathObservation(time=10.0, node_id=0))
        assert twin.scores == []
        assert not twin.detected

    def test_charge_commitment_scores_telemetry_gap(self):
        twin = self.make_started()
        twin.stream.publish(
            ChargeCommitment(
                time=100.0, node_id=0, claimed_j=50.0,
                telemetry_energy_j=70.0, capacity_j=100.0,
            )
        )
        (score,) = twin.scores
        assert score.kind == "telemetry"
        # predicted after credit: min(100, 100 - 0.1*100 + 50) = 100
        assert score.residual == pytest.approx(0.3)

    def test_audit_scores_then_recalibrates(self):
        twin = self.make_started()
        twin.stream.publish(AuditObservation(time=0.0, node_id=1,
                                             true_energy_j=60.0))
        (score,) = twin.scores
        assert score.kind == "audit"
        assert score.residual == pytest.approx(0.4)
        assert twin.predictor.predicted_energy_j(1) == pytest.approx(60.0)

    def test_requests_advance_clock_without_scoring(self):
        twin = self.make_started()
        twin.stream.publish(
            RequestObservation(time=200.0, node_id=0, energy_needed_j=30.0)
        )
        assert twin.scores == []
        assert twin.predictor.predicted_energy_j(0) == pytest.approx(80.0)

    def test_record_scores_flag(self):
        twin = TwinDetector(record_scores=False)
        twin.stream.publish(
            NetworkSnapshot(
                time=0.0, capacity_j=(100.0,), believed_j=(100.0,),
                consumption_w=(0.0,), alive=(True,),
            )
        )
        twin.stream.publish(DeathObservation(time=1.0, node_id=0))
        assert twin.scores == []
        assert twin.first_alarm is not None  # still tracked

    def test_external_stream_is_honoured(self):
        stream = ObservationStream()
        twin = TwinDetector(stream=stream)
        assert twin.stream is stream
