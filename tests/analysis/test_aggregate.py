"""Tests for multi-seed aggregation."""

import pytest

from repro.analysis.aggregate import aggregate, mean_ci


class TestMeanCi:
    def test_basic_statistics(self):
        stats = mean_ci([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.mean == pytest.approx(3.0)
        assert stats.n == 5
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0
        assert stats.std == pytest.approx(1.5811, abs=1e-3)

    def test_ci_contains_mean_direction(self):
        stats = mean_ci([10.0, 12.0, 11.0, 13.0])
        assert stats.ci_half_width > 0.0
        # 95% t-interval for n=4: t ~ 3.182.
        assert stats.ci_half_width == pytest.approx(
            3.182 * stats.std / 2.0, rel=1e-3
        )

    def test_single_value_zero_width(self):
        stats = mean_ci([7.0])
        assert stats.mean == 7.0
        assert stats.ci_half_width == 0.0

    def test_identical_values_zero_width(self):
        stats = mean_ci([2.0, 2.0, 2.0])
        assert stats.ci_half_width == 0.0

    def test_wider_confidence_wider_interval(self):
        data = [1.0, 3.0, 2.0, 4.0]
        assert (
            mean_ci(data, confidence=0.99).ci_half_width
            > mean_ci(data, confidence=0.9).ci_half_width
        )

    def test_empty_rejected(self):
        with pytest.raises(
            ValueError, match="cannot aggregate an empty series"
        ):
            mean_ci([])

    def test_empty_generator_rejected(self):
        with pytest.raises(
            ValueError, match="cannot aggregate an empty series"
        ):
            mean_ci(v for v in [])

    def test_single_nan_matches_single_finite_shape(self):
        # A lone NaN must not slip through the n == 1 fast path.
        with pytest.raises(
            ValueError, match="cannot aggregate non-finite values"
        ):
            mean_ci([float("nan")])

    @pytest.mark.parametrize(
        "poison", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_rejected(self, poison):
        with pytest.raises(
            ValueError, match=r"cannot aggregate non-finite values \(NaN or inf\)"
        ):
            mean_ci([1.0, poison, 3.0])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([1.0, 2.0], confidence=1.0)

    def test_str_format(self):
        assert "n=3" in str(mean_ci([1.0, 2.0, 3.0]))


class TestAggregate:
    def test_per_key_aggregation(self):
        rows = [
            {"ratio": 0.8, "utility": 3.0},
            {"ratio": 1.0, "utility": 5.0},
        ]
        result = aggregate(rows, ["ratio", "utility"])
        assert result["ratio"].mean == pytest.approx(0.9)
        assert result["utility"].mean == pytest.approx(4.0)

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            aggregate([{"a": 1.0}], ["b"])

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            aggregate([], ["a"])
