"""Tests for plain-text table rendering."""

import pytest

from repro.analysis.tables import format_table, series_table


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        assert "22" in lines[3]
        # All data lines equally wide (padded).
        assert len(set(len(l.rstrip()) <= len(lines[0]) for l in lines)) >= 1

    def test_title(self):
        text = format_table(["a"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_separator_row(self):
        text = format_table(["col"], [["v"]])
        assert set(text.splitlines()[1]) <= {"-", " "}


class TestSeriesTable:
    def test_figure_style_layout(self):
        text = series_table(
            "N", [50, 100], {"CSA": [0.9, 0.85], "Random": [0.3, 0.2]},
        )
        lines = text.splitlines()
        assert lines[0].split() == ["N", "CSA", "Random"]
        assert lines[2].split() == ["50", "0.9", "0.3"]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            series_table("x", [1, 2], {"s": [1.0]})
