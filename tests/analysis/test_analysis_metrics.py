"""Tests for outcome metrics."""

import pytest

from repro.analysis.metrics import attack_metrics, lifetime_metrics, network_lifetime_s
from repro.attack.attacker import CsaAttacker
from repro.sim.benign import BenignController
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation

CFG = ScenarioConfig(node_count=50, key_count=5, horizon_days=40)


@pytest.fixture(scope="module")
def attack_result():
    sim = WrsnSimulation(
        CFG.build_network(seed=8),
        CFG.build_charger(),
        CsaAttacker(key_count=CFG.key_count),
        horizon_s=CFG.horizon_s,
    )
    return sim.run()


@pytest.fixture(scope="module")
def benign_result():
    sim = WrsnSimulation(
        CFG.build_network(seed=8),
        CFG.build_charger(),
        BenignController(),
        horizon_s=CFG.horizon_s,
    )
    return sim.run()


class TestAttackMetrics:
    def test_counts_consistent(self, attack_result):
        metrics = attack_metrics(attack_result)
        assert metrics.key_count == 5
        assert metrics.exhausted_key_count == len(
            attack_result.exhausted_key_ids()
        )
        assert metrics.exhausted_key_ratio == pytest.approx(
            metrics.exhausted_key_count / metrics.key_count
        )

    def test_utility_positive_when_nodes_exhausted(self, attack_result):
        metrics = attack_metrics(attack_result)
        if metrics.exhausted_key_count:
            assert metrics.attack_utility > 0.0

    def test_service_counts(self, attack_result):
        metrics = attack_metrics(attack_result)
        assert metrics.spoof_services + metrics.genuine_services == len(
            attack_result.trace.services()
        )

    def test_energy_spent_positive_and_bounded(self, attack_result):
        metrics = attack_metrics(attack_result)
        refills = len(
            [e for e in attack_result.trace if type(e).__name__ == "DepotRecharged"]
        )
        assert 0.0 < metrics.mc_energy_spent_j <= (
            attack_result.charger.battery_capacity_j * (1 + refills)
        )

    def test_benign_run_scores_zero_attack(self, benign_result):
        metrics = attack_metrics(benign_result)
        assert metrics.spoof_services == 0
        assert metrics.exhausted_key_count == 0


class TestLifetimeMetrics:
    def test_benign_network_outlives_attacked(self, benign_result, attack_result):
        benign = lifetime_metrics(benign_result)
        attacked = lifetime_metrics(attack_result)
        assert benign.dead_count <= attacked.dead_count
        assert benign.alive_connected_ratio >= attacked.alive_connected_ratio

    def test_network_lifetime_definition(self, benign_result, attack_result):
        assert network_lifetime_s(benign_result) == benign_result.horizon_s
        if attack_result.trace.deaths():
            assert network_lifetime_s(attack_result) == attack_result.trace.deaths()[0].time

    def test_first_key_death_after_first_death(self, attack_result):
        metrics = lifetime_metrics(attack_result)
        if metrics.first_key_death_s is not None:
            assert metrics.first_key_death_s >= metrics.first_death_s

    def test_ratios_in_unit_interval(self, attack_result):
        metrics = lifetime_metrics(attack_result)
        assert 0.0 <= metrics.alive_connected_ratio <= 1.0
