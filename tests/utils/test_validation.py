"""Tests for argument validation helpers."""

import math
import re

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckFinite:
    def test_accepts_numbers(self):
        assert check_finite("x", 3) == 3.0
        assert check_finite("x", -2.5) == -2.5

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="x"):
            check_finite("x", math.nan)
        with pytest.raises(ValueError, match="x"):
            check_finite("x", math.inf)

    def test_rejects_non_numbers(self):
        with pytest.raises(TypeError, match="x"):
            check_finite("x", "hello")

    def test_error_names_the_argument(self):
        with pytest.raises(ValueError, match="battery_capacity"):
            check_finite("battery_capacity", math.inf)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.001) == 0.001

    @pytest.mark.parametrize("bad", [0, -1, -0.0001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValueError):
            check_probability("p", bad)


class TestNonFiniteRejection:
    """Every helper routes through the finiteness check first."""

    HELPERS = [
        check_finite,
        check_positive,
        check_non_negative,
        check_probability,
    ]

    @pytest.mark.parametrize("helper", HELPERS, ids=lambda h: h.__name__)
    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite(self, helper, bad):
        with pytest.raises(ValueError, match="must be finite"):
            helper("x", bad)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_check_in_range_rejects_non_finite(self, bad):
        with pytest.raises(ValueError, match="must be finite"):
            check_in_range("x", bad, 0.0, 1.0)

    @pytest.mark.parametrize(
        "bad", [np.nan, np.float64("inf"), np.float32("nan")]
    )
    def test_rejects_numpy_non_finite(self, bad):
        with pytest.raises(ValueError, match="must be finite"):
            check_finite("x", bad)


class TestCoercion:
    """Inputs are coerced to builtin float, not merely inspected."""

    def test_bool_coerces_to_float(self):
        result = check_finite("flag", True)
        assert result == 1.0
        assert type(result) is float
        assert check_non_negative("flag", False) == 0.0

    @pytest.mark.parametrize(
        "value", [np.float64(3.5), np.float32(0.25), np.int64(7)]
    )
    def test_numpy_scalars_coerce_to_builtin_float(self, value):
        result = check_finite("x", value)
        assert type(result) is float
        assert result == float(value)

    def test_numpy_scalar_bounds_still_enforced(self):
        assert check_probability("p", np.float64(0.5)) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", np.float64(1.5))
        with pytest.raises(ValueError):
            check_positive("x", np.int64(0))

    def test_integer_strings_are_rejected_not_parsed(self):
        # float("3") would succeed, so this documents the deliberate
        # decision: strings are accepted iff float() accepts them.
        assert check_finite("x", "3") == 3.0
        with pytest.raises(TypeError):
            check_finite("x", "not-a-number")


class TestExactErrorMessages:
    """Pin the full message text: tooling and users grep for these."""

    def test_check_finite_value_error(self):
        with pytest.raises(
            ValueError, match=re.escape("x must be finite, got inf")
        ):
            check_finite("x", math.inf)

    def test_check_finite_type_error(self):
        with pytest.raises(
            TypeError, match=re.escape("x must be a real number, got 'hello'")
        ):
            check_finite("x", "hello")

    def test_check_positive_message(self):
        with pytest.raises(ValueError, match=re.escape("x must be > 0, got 0.0")):
            check_positive("x", 0)

    def test_check_non_negative_message(self):
        with pytest.raises(
            ValueError, match=re.escape("x must be >= 0, got -1.0")
        ):
            check_non_negative("x", -1)

    def test_check_probability_message(self):
        with pytest.raises(
            ValueError, match=re.escape("p must be in [0, 1], got 1.5")
        ):
            check_probability("p", 1.5)

    def test_check_in_range_inclusive_message(self):
        with pytest.raises(
            ValueError, match=re.escape("x must be in [5, 10], got 11.0")
        ):
            check_in_range("x", 11, 5, 10)

    def test_check_in_range_exclusive_message(self):
        with pytest.raises(
            ValueError, match=re.escape("x must be in (5, 10), got 5.0")
        ):
            check_in_range("x", 5, 5, 10, inclusive=False)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 5, 5, 10) == 5.0
        assert check_in_range("x", 10, 5, 10) == 10.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("x", 5, 5, 10, inclusive=False)
        assert check_in_range("x", 7, 5, 10, inclusive=False) == 7.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("x", 11, 5, 10)


class TestRequireFloat64:
    def test_float64_array_passes_through_unchanged(self):
        from repro.utils.validation import require_float64

        arr = np.array([1.0, 2.0], dtype=np.float64)
        result = require_float64(arr, "arr")
        assert result is arr

    def test_exact_inputs_convert(self):
        from repro.utils.validation import require_float64

        assert require_float64([1, 2, 3], "xs").dtype == np.float64
        assert require_float64(np.arange(4), "xs").dtype == np.float64
        assert require_float64(2.5, "x").dtype == np.float64

    @pytest.mark.parametrize("dtype", [np.float16, np.float32, np.complex64])
    def test_narrowed_floats_rejected(self, dtype):
        from repro.utils.validation import require_float64

        with pytest.raises(
            TypeError,
            match=re.escape(
                f"phases must be float64, got {np.dtype(dtype)}: the "
                "bit-for-bit kernels forbid narrowed floats"
            ),
        ):
            require_float64(np.zeros(3, dtype=dtype), "phases")
