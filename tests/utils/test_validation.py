"""Tests for argument validation helpers."""

import math

import pytest

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckFinite:
    def test_accepts_numbers(self):
        assert check_finite("x", 3) == 3.0
        assert check_finite("x", -2.5) == -2.5

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="x"):
            check_finite("x", math.nan)
        with pytest.raises(ValueError, match="x"):
            check_finite("x", math.inf)

    def test_rejects_non_numbers(self):
        with pytest.raises(TypeError, match="x"):
            check_finite("x", "hello")

    def test_error_names_the_argument(self):
        with pytest.raises(ValueError, match="battery_capacity"):
            check_finite("battery_capacity", math.inf)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.001) == 0.001

    @pytest.mark.parametrize("bad", [0, -1, -0.0001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValueError):
            check_probability("p", bad)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 5, 5, 10) == 5.0
        assert check_in_range("x", 10, 5, 10) == 10.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("x", 5, 5, 10, inclusive=False)
        assert check_in_range("x", 7, 5, 10, inclusive=False) == 7.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("x", 11, 5, 10)
