"""Tests for planar geometry primitives."""

import numpy as np
import pytest

from repro.utils.geometry import Point, distance, pairwise_distances, tour_length


class TestPoint:
    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 7.25)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 6)) == Point(1, 3)

    def test_translated(self):
        assert Point(1, 1).translated(-1, 2) == Point(0, 3)

    def test_as_tuple(self):
        assert Point(1.0, 2.0).as_tuple() == (1.0, 2.0)

    def test_points_are_hashable_and_equal_by_value(self):
        assert {Point(1, 2), Point(1, 2)} == {Point(1, 2)}


class TestDistanceFunctions:
    def test_distance_free_function(self):
        assert distance(Point(0, 0), Point(0, 5)) == pytest.approx(5.0)

    def test_pairwise_distances_matrix(self):
        pts = [Point(0, 0), Point(3, 4), Point(0, 8)]
        mat = pairwise_distances(pts)
        assert mat.shape == (3, 3)
        assert np.allclose(np.diag(mat), 0.0)
        assert mat[0, 1] == pytest.approx(5.0)
        assert mat[1, 0] == pytest.approx(5.0)
        assert mat[0, 2] == pytest.approx(8.0)

    def test_pairwise_distances_empty(self):
        assert pairwise_distances([]).shape == (0, 0)


class TestTourLength:
    def test_closed_square(self):
        square = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert tour_length(square) == pytest.approx(4.0)

    def test_open_route_drops_return_leg(self):
        square = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert tour_length(square, closed=False) == pytest.approx(3.0)

    def test_single_point_is_zero(self):
        assert tour_length([Point(5, 5)]) == 0.0

    def test_empty_is_zero(self):
        assert tour_length([]) == 0.0

    def test_collinear(self):
        pts = [Point(0, 0), Point(2, 0), Point(5, 0)]
        assert tour_length(pts, closed=False) == pytest.approx(5.0)
        assert tour_length(pts, closed=True) == pytest.approx(10.0)
