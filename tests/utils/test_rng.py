"""Tests for deterministic random-stream management."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, coerce_rng, make_rng


class TestMakeRng:
    def test_same_seed_and_name_reproduces(self):
        a = make_rng(42, "alpha").random(5)
        b = make_rng(42, "alpha").random(5)
        assert np.array_equal(a, b)

    def test_different_names_are_independent(self):
        a = make_rng(42, "alpha").random(5)
        b = make_rng(42, "beta").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1, "alpha").random(5)
        b = make_rng(2, "alpha").random(5)
        assert not np.array_equal(a, b)


class TestRngFactory:
    def test_stream_is_reproducible(self):
        factory = RngFactory(9)
        assert factory.stream("x").random() == factory.stream("x").random()

    def test_streams_are_independent_of_draw_order(self):
        factory = RngFactory(9)
        first = factory.stream("a")
        first.random(100)  # consuming one stream...
        untouched = factory.stream("b").random(3)
        fresh = RngFactory(9).stream("b").random(3)
        # ...must not perturb another.
        assert np.array_equal(untouched, fresh)

    def test_child_namespaces_are_independent(self):
        factory = RngFactory(9)
        a = factory.child("trial0").stream("noise").random(3)
        b = factory.child("trial1").stream("noise").random(3)
        assert not np.array_equal(a, b)

    def test_child_is_reproducible(self):
        a = RngFactory(9).child("t").stream("s").random(3)
        b = RngFactory(9).child("t").stream("s").random(3)
        assert np.array_equal(a, b)

    def test_seed_property(self):
        assert RngFactory(5).seed == 5

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RngFactory("seed")  # type: ignore[arg-type]

    def test_empty_stream_name_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(1).stream("")

    def test_repr_mentions_seed(self):
        assert "17" in repr(RngFactory(17))

    def test_mapping_is_stable_across_processes(self):
        # The derivation must not depend on salted hash(); pin a value.
        value = make_rng(123, "pinned").integers(0, 10**9)
        assert value == make_rng(123, "pinned").integers(0, 10**9)


class TestCoerceRng:
    def test_generator_passes_through_identically(self):
        rng = make_rng(3, "shared")
        assert coerce_rng(rng) is rng

    def test_int_seed_derives_the_named_stream(self):
        a = coerce_rng(42, "network").random(4)
        b = make_rng(42, "network").random(4)
        assert np.array_equal(a, b)

    def test_numpy_integer_seed_is_accepted(self):
        a = coerce_rng(np.int64(7), "s").random(2)
        b = coerce_rng(7, "s").random(2)
        assert np.array_equal(a, b)

    def test_different_streams_from_same_seed_are_independent(self):
        a = coerce_rng(5, "auditor").random(4)
        b = coerce_rng(5, "planner").random(4)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("bad", [1.5, "seed", None, True])
    def test_rejects_non_int_non_generator(self, bad):
        with pytest.raises(TypeError, match="seed must be"):
            coerce_rng(bad)  # type: ignore[arg-type]

    def test_matches_the_legacy_hand_rolled_coercion(self):
        # The four call sites this helper replaced derived streams via
        # make_rng(int(seed), name); pin that equivalence.
        for name in ("network", "random-planner", "voltage-auditor"):
            assert np.array_equal(
                coerce_rng(11, name).random(3), make_rng(11, name).random(3)
            )
