"""Tests for the WRSN simulation orchestrator."""

import pytest

from repro.detection.auditors import default_detector_suite
from repro.mc.charger import ChargeMode
from repro.sim.actions import MissionController
from repro.sim.benign import BenignController
from repro.sim.events import DepotRecharged, RequestIssued, ServiceCompleted
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation

CFG = ScenarioConfig(node_count=50, key_count=5, horizon_days=40)


def build_sim(seed=2, controller=None, detectors=(), cfg=CFG, **kwargs):
    return WrsnSimulation(
        cfg.build_network(seed=seed),
        cfg.build_charger(),
        controller or BenignController(),
        detectors=detectors,
        horizon_s=cfg.horizon_s,
        **kwargs,
    )


class TestBenignRun:
    @pytest.fixture(scope="class")
    def result(self):
        return build_sim(detectors=default_detector_suite(2)).run()

    def test_network_survives(self, result):
        assert len(result.trace.deaths()) == 0
        assert len(result.network.alive_ids()) == 50

    def test_requests_get_served(self, result):
        requests = {r.node_id for r in result.trace.requests()}
        served = result.trace.served_node_ids()
        assert requests
        # Every requester is eventually served (no deaths occurred).
        assert requests <= served

    def test_all_services_genuine(self, result):
        assert all(
            s.mode == ChargeMode.GENUINE for s in result.trace.services()
        )

    def test_benign_run_is_clean(self, result):
        assert not result.detected

    def test_nodes_recharged_to_capacity(self, result):
        for service in result.trace.services():
            node = result.network.nodes[service.node_id]
            assert service.believed_energy_after_j <= node.battery_capacity_j

    def test_charger_uses_depot_when_battery_small(self):
        cfg = CFG.with_(mc_battery_j=600_000.0)
        result = build_sim(cfg=cfg).run()
        assert len(result.trace.of_type(DepotRecharged)) >= 1
        assert len(result.trace.deaths()) == 0

    def test_ends_at_horizon(self, result):
        assert result.ended_at == pytest.approx(result.horizon_s)


class TestLifecycleRules:
    def test_single_use(self):
        sim = build_sim()
        sim.run()
        with pytest.raises(RuntimeError):
            sim.run()

    def test_requests_issued_at_threshold(self):
        sim = build_sim(detectors=())
        result = sim.run()
        for request in result.trace.of_type(RequestIssued):
            node = result.network.nodes[request.node_id]
            assert request.energy_needed_j >= 0.75 * node.battery_capacity_j

    def test_pending_requests_sorted(self):
        sim = build_sim()
        # Before running there are no pending requests.
        assert sim.pending_requests() == []

    def test_trace_time_ordered(self):
        result = build_sim().run()
        times = [e.time for e in result.trace]
        assert times == sorted(times)


class TestEnergyConservation:
    def test_node_energy_balances(self):
        """True node energy = initial - integral of draw + delivered."""
        result = build_sim(detectors=()).run()
        delivered = {}
        for service in result.trace.of_type(ServiceCompleted):
            delivered[service.node_id] = (
                delivered.get(service.node_id, 0.0) + service.delivered_j
            )
        for node_id, node in result.network.nodes.items():
            assert node.energy_j <= node.battery_capacity_j + 1e-6
            # Nodes with no service can only have drained.
            if node_id not in delivered:
                assert node.energy_j <= node.battery_capacity_j

    def test_charger_energy_accounting(self):
        result = build_sim(detectors=()).run()
        refills = len(result.trace.of_type(DepotRecharged))
        charger = result.charger
        emission = sum(s.emission_j for s in charger.services)
        travel = charger.distance_travelled_m * charger.travel_cost_j_per_m
        total_budget = charger.battery_capacity_j * (1 + refills)
        assert emission + travel == pytest.approx(
            total_budget - charger.energy_j, rel=1e-6
        )


class TestStopOnDetection:
    def test_halts_at_first_alarm(self):
        from repro.attack.attacker import BlatantAttacker

        sim = build_sim(
            controller=BlatantAttacker(key_count=5),
            detectors=default_detector_suite(2),
            stop_on_detection=True,
        )
        result = sim.run()
        assert result.detected
        assert result.ended_at < result.horizon_s


class TestChargeModesInSim:
    def test_spoofed_flag_tracked(self):
        from repro.attack.attacker import CsaAttacker

        sim = build_sim(controller=CsaAttacker(key_count=5))
        result = sim.run()
        spoofed = sim.spoofed_ids()
        recorded = {
            s.node_id
            for s in result.trace.services()
            if s.mode == ChargeMode.SPOOF
        }
        assert spoofed == recorded


class TestVersionTableHygiene:
    def test_dead_nodes_release_their_version_entries(self):
        # With a charger that never serves anyone, every node eventually
        # dies; each death must purge the node's version entry instead of
        # letting the table grow for the whole horizon.
        class IdleController(MissionController):
            name = "idle"

            def next_action(self, sim):
                return None

        cfg = ScenarioConfig(node_count=20, key_count=3, horizon_days=40)
        sim = WrsnSimulation(
            cfg.build_network(seed=3),
            cfg.build_charger(),
            IdleController(),
            horizon_s=cfg.horizon_s,
        )
        result = sim.run()
        dead = result.network.dead_ids()
        assert dead  # the scenario must actually exercise deaths
        for node_id in dead:
            assert sim._queue.current_version(("node", node_id)) == 0
        # Tracked keys: at most one per survivor plus the charger unit.
        alive = result.network.alive_ids()
        assert sim._queue.tracked_keys() <= len(alive) + 1
