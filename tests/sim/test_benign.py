"""Tests for the honest charging controller."""

import pytest

from repro.mc.scheduling import EdfScheduler, FcfsScheduler, NjnpScheduler
from repro.sim.actions import RechargeAction, ServeAction
from repro.sim.benign import BenignController
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation

CFG = ScenarioConfig(node_count=40, key_count=4, horizon_days=40)


def build_sim(controller=None, seed=6):
    return WrsnSimulation(
        CFG.build_network(seed=seed),
        CFG.build_charger(),
        controller or BenignController(),
        horizon_s=CFG.horizon_s,
    )


class TestDecisionLogic:
    def test_idle_with_no_requests(self):
        sim = build_sim()
        assert sim.controller.next_action(sim) is None

    def test_recharges_when_low(self):
        sim = build_sim()
        sim.charger.energy_j = 0.05 * sim.charger.battery_capacity_j
        assert isinstance(sim.controller.next_action(sim), RechargeAction)

    def test_serves_pending_request(self):
        sim = build_sim()
        # Manufacture a pending request by draining one node's belief.
        node = sim.network.nodes[0]
        from repro.network.requests import predict_request

        node.set_consumption(node.consumption_w)
        node.receive_charge(0.0, 0.0)
        # Force the believed energy below threshold via direct drain.
        drain_time = (
            node.believed_energy_j - node.request_threshold_j + 1.0
        ) / node.consumption_w
        sim.network.advance_to(drain_time)
        sim.now = drain_time
        request = predict_request(node)
        assert request is not None
        sim._pending[0] = request
        action = sim.controller.next_action(sim)
        assert isinstance(action, ServeAction)
        assert action.node_id == 0

    def test_name_embeds_scheduler(self):
        assert BenignController(EdfScheduler()).name == "benign[EdfScheduler]"


@pytest.mark.parametrize(
    "scheduler", [FcfsScheduler(), NjnpScheduler(), EdfScheduler()],
    ids=lambda s: s.name,
)
class TestAllSchedulersKeepNetworkAlive:
    def test_no_deaths_over_horizon(self, scheduler):
        result = build_sim(BenignController(scheduler)).run()
        assert len(result.trace.deaths()) == 0
        assert len(result.trace.services()) > 0
