"""Tests for scenario configuration."""

import dataclasses

import pytest

from repro.sim.scenario import ScenarioConfig


class TestDefaults:
    def test_horizon_conversion(self):
        cfg = ScenarioConfig(horizon_days=10.0)
        assert cfg.horizon_s == pytest.approx(864_000.0)

    def test_depot_at_centre(self):
        cfg = ScenarioConfig(field_width_m=80.0, field_height_m=40.0)
        assert cfg.depot.x == pytest.approx(40.0)
        assert cfg.depot.y == pytest.approx(20.0)

    def test_with_replaces_fields(self):
        cfg = ScenarioConfig().with_(node_count=99)
        assert cfg.node_count == 99
        assert cfg.comm_range_m == ScenarioConfig().comm_range_m

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ScenarioConfig().node_count = 5  # type: ignore[misc]


class TestFactories:
    def test_build_network_matches_config(self):
        cfg = ScenarioConfig(node_count=60, battery_capacity_j=5000.0)
        net = cfg.build_network(seed=4)
        assert len(net.nodes) == 60
        assert all(
            n.battery_capacity_j == 5000.0 for n in net.nodes.values()
        )

    def test_build_network_seed_reproducible(self):
        cfg = ScenarioConfig(node_count=60)
        a = cfg.build_network(seed=4)
        b = cfg.build_network(seed=4)
        assert [n.position for n in a.nodes.values()] == [
            n.position for n in b.nodes.values()
        ]

    def test_clustered_deployment(self):
        cfg = ScenarioConfig(node_count=80, clustered=True, comm_range_m=25.0)
        net = cfg.build_network(seed=6)
        assert len(net.nodes) == 80

    def test_build_charger(self):
        cfg = ScenarioConfig(mc_battery_j=123_456.0)
        charger = cfg.build_charger()
        assert charger.battery_capacity_j == 123_456.0
        assert charger.position == cfg.depot

    def test_parameter_rows_cover_key_knobs(self):
        rows = dict(ScenarioConfig().parameter_rows())
        assert "Number of nodes" in rows
        assert "MC battery capacity" in rows
        assert rows["Key nodes targeted"] == "15"
