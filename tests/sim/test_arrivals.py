"""Tests for probabilistic request-arrival models and their engine wiring."""

import numpy as np
import pytest

from repro.sim.arrivals import ArrivalModel, ExponentialArrivals
from repro.sim.benign import BenignController
from repro.sim.events import RequestIssued
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation

CFG = ScenarioConfig(node_count=30, key_count=3, horizon_days=10.0)


def run(cfg, seed=5, arrival_model=None):
    return WrsnSimulation(
        cfg.build_network(seed=seed),
        cfg.build_charger(),
        BenignController(),
        horizon_s=cfg.horizon_s,
        arrival_model=arrival_model,
    ).run()


class TestExponentialArrivals:
    def test_mean_delay_validated(self):
        with pytest.raises(ValueError):
            ExponentialArrivals(0.0)

    def test_deterministic_per_seed(self):
        a = ExponentialArrivals(600.0, rng=4)
        b = ExponentialArrivals(600.0, rng=4)
        draws_a = [a.delay_s(0, float(t)) for t in range(50)]
        draws_b = [b.delay_s(0, float(t)) for t in range(50)]
        assert draws_a == draws_b
        assert all(d > 0.0 for d in draws_a)

    def test_different_seeds_differ(self):
        a = ExponentialArrivals(600.0, rng=1)
        b = ExponentialArrivals(600.0, rng=2)
        assert [a.delay_s(0, 0.0) for _ in range(5)] != [
            b.delay_s(0, 0.0) for _ in range(5)
        ]

    def test_sample_mean_near_parameter(self):
        model = ExponentialArrivals(600.0, rng=0)
        draws = [model.delay_s(0, 0.0) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(600.0, rel=0.1)


class TestScenarioWiring:
    def test_zero_delay_builds_no_model(self):
        assert CFG.build_arrival_model(seed=1) is None

    def test_positive_delay_builds_model(self):
        cfg = CFG.with_(request_delay_mean_s=600.0)
        model = cfg.build_arrival_model(seed=1)
        assert isinstance(model, ExponentialArrivals)
        assert model.mean_delay_s == 600.0

    def test_arrival_model_seed_follows_trial_seed(self):
        cfg = CFG.with_(request_delay_mean_s=600.0)
        a = cfg.build_arrival_model(seed=1)
        b = cfg.build_arrival_model(seed=1)
        c = cfg.build_arrival_model(seed=2)
        assert a.delay_s(0, 0.0) == b.delay_s(0, 0.0)
        assert a.delay_s(0, 1.0) != c.delay_s(0, 1.0)


class TestEngineIntegration:
    def test_no_model_is_byte_identical_to_before(self):
        # arrival_model=None must leave the event sequence untouched.
        base = run(CFG)
        again = run(CFG)
        assert [(type(e).__name__, e.time) for e in list(base.trace)] == [
            (type(e).__name__, e.time) for e in list(again.trace)
        ]

    def test_delayed_arrivals_shift_requests_later(self):
        cfg = CFG.with_(request_delay_mean_s=3600.0)
        undelayed = run(CFG)
        delayed = run(cfg, arrival_model=cfg.build_arrival_model(5))
        t_first = undelayed.trace.of_type(RequestIssued)[0].time
        t_first_delayed = delayed.trace.of_type(RequestIssued)[0].time
        assert t_first_delayed > t_first

    def test_delayed_run_is_deterministic(self):
        cfg = CFG.with_(request_delay_mean_s=1800.0)
        a = run(cfg, arrival_model=cfg.build_arrival_model(5))
        b = run(cfg, arrival_model=cfg.build_arrival_model(5))
        assert [(type(e).__name__, e.time) for e in list(a.trace)] == [
            (type(e).__name__, e.time) for e in list(b.trace)
        ]

    def test_trace_stays_time_ordered_under_delays(self):
        cfg = CFG.with_(request_delay_mean_s=1800.0)
        result = run(cfg, arrival_model=cfg.build_arrival_model(5))
        times = [e.time for e in list(result.trace)]
        assert times == sorted(times)
        assert result.trace.of_type(RequestIssued)  # still functioning

    def test_negative_delay_rejected_mid_run(self):
        class Broken(ArrivalModel):
            def delay_s(self, node_id: int, time: float) -> float:
                return -1.0

        with pytest.raises(ValueError, match="delay"):
            run(CFG, arrival_model=Broken())
