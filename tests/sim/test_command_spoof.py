"""Tests for control-channel command spoofing: action, engine, attacker."""

import pytest

from repro.attack.command_spoof import CommandSpoofAttacker
from repro.mc.charger import ChargeMode
from repro.sim.actions import CommandSpoofAction
from repro.sim.benign import BenignController
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation

CFG = ScenarioConfig(node_count=40, key_count=4, horizon_days=20.0)


def run(controller, cfg=CFG, seed=7):
    return WrsnSimulation(
        cfg.build_network(seed=seed),
        cfg.build_charger(),
        controller,
        horizon_s=cfg.horizon_s,
    ).run()


class TestAction:
    @pytest.mark.parametrize("bad", [0.0, -0.2, 1.2])
    def test_stop_fraction_validated(self, bad):
        with pytest.raises(ValueError, match="stop_fraction"):
            CommandSpoofAction(node_id=1, stop_fraction=bad)

    def test_full_fraction_allowed(self):
        action = CommandSpoofAction(node_id=1, stop_fraction=1.0)
        assert action.stop_fraction == 1.0


class TestAttackerValidation:
    def test_key_count_validated(self):
        with pytest.raises(ValueError, match="key_count"):
            CommandSpoofAttacker(key_count=0)

    def test_stop_fraction_validated(self):
        with pytest.raises(ValueError, match="stop_fraction"):
            CommandSpoofAttacker(stop_fraction=0.0)

    def test_name_carries_fraction(self):
        assert CommandSpoofAttacker(stop_fraction=0.8).name == (
            "attacker[CommandSpoof:0.8]"
        )


class TestEngine:
    def test_truncated_sessions_claim_full_duty(self):
        result = run(CommandSpoofAttacker(key_count=CFG.key_count,
                                          stop_fraction=0.5))
        truncated = [s for s in result.trace.services() if s.early_stopped]
        assert truncated, "expected at least one command-spoofed session"
        for s in truncated:
            assert s.mode == ChargeMode.GENUINE
            assert s.is_key
            # The session log claims the full duty; the victim harvested
            # (and believes) only the delivered fraction.
            assert s.delivered_j == pytest.approx(0.5 * s.claimed_j)
            assert s.delivered_j == pytest.approx(s.believed_j)

    def test_truncated_sessions_look_genuine_in_the_books(self):
        # The whole point of the attack: every session is a GENUINE-mode
        # charge in the accounting, so mode-based metrics see nothing.
        from repro.analysis.metrics import attack_metrics

        result = run(CommandSpoofAttacker(key_count=CFG.key_count,
                                          stop_fraction=0.5))
        assert any(s.early_stopped for s in result.trace.services())
        metrics = attack_metrics(result)
        assert metrics.spoof_services == 0
        assert metrics.genuine_services == len(result.trace.services())

    def test_non_key_sessions_untouched(self):
        result = run(CommandSpoofAttacker(key_count=CFG.key_count,
                                          stop_fraction=0.5))
        for s in result.trace.services():
            if not s.is_key:
                assert not s.early_stopped
                assert s.delivered_j == pytest.approx(s.claimed_j)

    def test_full_fraction_behaves_like_benign(self):
        # stop_fraction=1.0 delivers the whole duty: the trace must be
        # identical to the honest controller's, except sessions are not
        # flagged (no truncation happened).
        spoofed = run(CommandSpoofAttacker(key_count=CFG.key_count,
                                           stop_fraction=1.0))
        honest = run(BenignController())
        assert [
            (s.time, s.node_id, s.delivered_j)
            for s in spoofed.trace.services()
        ] == [
            (s.time, s.node_id, s.delivered_j)
            for s in honest.trace.services()
        ]

    def test_ordinary_detectors_miss_the_sub_tolerance_shortfall(self):
        from repro.detection.auditors import default_detector_suite

        cfg = ScenarioConfig(node_count=40, key_count=4, horizon_days=20.0)
        result = WrsnSimulation(
            cfg.build_network(seed=7),
            cfg.build_charger(),
            CommandSpoofAttacker(key_count=cfg.key_count, stop_fraction=0.8),
            detectors=default_detector_suite(7),
            horizon_s=cfg.horizon_s,
        ).run()
        assert any(s.early_stopped for s in result.trace.services())
        trajectory = [d for d in result.detections
                      if "trajectory" in d.detector]
        assert trajectory == []
