"""Tests for simulation hooks: lifecycle, completeness, ordering."""

from repro.detection.monitors import Detector
from repro.sim.benign import BenignController
from repro.sim.hooks import SimulationHook
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation

CFG = ScenarioConfig(node_count=30, key_count=3, horizon_days=10.0)


class RecordingHook(SimulationHook):
    def __init__(self):
        self.started = []
        self.events = []
        self.ended = []

    def on_run_start(self, sim):
        self.started.append(sim.now)

    def on_trace_event(self, event, sim):
        self.events.append(event)

    def on_run_end(self, sim, result):
        self.ended.append(result)


class ObservationOrderDetector(Detector):
    """Records event identity at observe-time, to compare with hook order."""

    name = "order-probe"

    def __init__(self, hook):
        super().__init__()
        self.hook = hook
        self.hook_had_event_first = []

    def _check(self, event):
        # By the ordering guarantee, the hook has already seen this very
        # event when the detector observes it.
        self.hook_had_event_first.append(
            bool(self.hook.events) and self.hook.events[-1] is event
        )

    def observe_request(self, event, sim):
        self._check(event)
        return None

    def observe_service(self, event, sim):
        self._check(event)
        return None

    def observe_death(self, event, sim):
        self._check(event)
        return None


def build_sim(hooks=(), detectors=(), seed=5):
    return WrsnSimulation(
        CFG.build_network(seed=seed),
        CFG.build_charger(),
        BenignController(),
        detectors=list(detectors),
        horizon_s=CFG.horizon_s,
        hooks=hooks,
    )


class TestLifecycle:
    def test_start_and_end_called_once(self):
        hook = RecordingHook()
        result = build_sim(hooks=[hook]).run()
        assert hook.started == [0.0]
        assert hook.ended == [result]

    def test_hook_sees_every_trace_record_in_order(self):
        hook = RecordingHook()
        result = build_sim(hooks=[hook]).run()
        assert hook.events == list(result.trace)

    def test_multiple_hooks_all_fire(self):
        a, b = RecordingHook(), RecordingHook()
        build_sim(hooks=[a, b]).run()
        assert a.events == b.events
        assert len(a.events) > 0

    def test_no_hooks_is_the_default(self):
        result = build_sim().run()
        assert len(list(result.trace)) > 0

    def test_base_hook_methods_are_no_ops(self):
        # The base class must be safely subclassable with any subset of
        # methods overridden.
        build_sim(hooks=[SimulationHook()]).run()


class TestOrderingGuarantee:
    def test_hooks_run_before_detectors_for_each_event(self):
        hook = RecordingHook()
        probe = ObservationOrderDetector(hook)
        build_sim(hooks=[hook], detectors=[probe]).run()
        assert probe.hook_had_event_first  # probe saw events at all
        assert all(probe.hook_had_event_first)
