"""Tests for multi-charger fleets."""

import pytest

from repro.attack.attacker import CsaAttacker
from repro.detection.auditors import default_detector_suite
from repro.mc.charger import ChargeMode
from repro.sim.benign import BenignController
from repro.sim.events import DepotRecharged
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation

CFG = ScenarioConfig(node_count=60, key_count=6, horizon_days=40)


def fleet_sim(extra_count=1, seed=2, attacker=False, mc_battery=None):
    cfg = CFG if mc_battery is None else CFG.with_(mc_battery_j=mc_battery)
    lead_controller = (
        CsaAttacker(key_count=cfg.key_count) if attacker else BenignController()
    )
    extra = [
        (cfg.build_charger(), BenignController()) for _ in range(extra_count)
    ]
    return WrsnSimulation(
        cfg.build_network(seed=seed),
        cfg.build_charger(),
        lead_controller,
        detectors=default_detector_suite(seed),
        horizon_s=cfg.horizon_s,
        extra_units=extra,
    )


class TestBenignFleet:
    @pytest.fixture(scope="class")
    def result(self):
        # Small charger batteries + slow depot refills create the
        # contention that actually engages the second charger (with the
        # default 2 MJ battery, one charger handles 60 nodes alone and
        # the fleet member idles — correctly).
        cfg = CFG.with_(mc_battery_j=400_000.0, mc_depot_recharge_s=6 * 3600.0)
        extra = [(cfg.build_charger(), BenignController())]
        sim = WrsnSimulation(
            cfg.build_network(seed=2),
            cfg.build_charger(),
            BenignController(),
            detectors=default_detector_suite(2),
            horizon_s=cfg.horizon_s,
            extra_units=extra,
        )
        return sim.run()

    def test_network_stays_alive(self, result):
        assert len(result.trace.deaths()) == 0
        assert not result.detected

    def test_both_chargers_work(self, result):
        units = {s.charger_index for s in result.trace.services()}
        assert units == {0, 1}

    def test_single_charger_handles_small_network_alone(self):
        result = fleet_sim(extra_count=1).run()
        counts = {}
        for s in result.trace.services():
            counts[s.charger_index] = counts.get(s.charger_index, 0) + 1
        # At default capacity the lead charger never saturates, so the
        # fleet member is pure redundancy.
        assert counts.get(0, 0) > 0
        assert len(result.trace.deaths()) == 0

    def test_no_node_double_served_concurrently(self, result):
        # Two chargers must never be radiating at one node at once:
        # service intervals per node are disjoint.
        by_node = {}
        for s in result.trace.services():
            by_node.setdefault(s.node_id, []).append((s.start_time, s.time))
        for intervals in by_node.values():
            intervals.sort()
            for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-6

    def test_chargers_listed_in_result(self, result):
        assert len(result.chargers) == 2
        assert result.charger is result.chargers[0]

    def test_fleet_shares_load_under_contention(self, result):
        counts = {}
        for s in result.trace.services():
            counts[s.charger_index] = counts.get(s.charger_index, 0) + 1
        # Neither charger does everything when the lead keeps running dry.
        assert len(counts) == 2
        assert min(counts.values()) >= 1


class TestFleetMechanics:
    def test_unit_count(self):
        sim = fleet_sim(extra_count=2)
        assert sim.unit_count == 3

    def test_shared_charger_object_rejected(self):
        mc = CFG.build_charger()
        with pytest.raises(ValueError):
            WrsnSimulation(
                CFG.build_network(seed=2),
                mc,
                BenignController(),
                extra_units=[(mc, BenignController())],
                horizon_s=CFG.horizon_s,
            )

    def test_controllers_receive_their_charger(self):
        sim = fleet_sim(extra_count=1)
        chargers = sim.chargers
        assert sim._units[0][1].charger is chargers[0]
        assert sim._units[1][1].charger is chargers[1]

    def test_refills_attributed_per_charger(self):
        result = fleet_sim(extra_count=1, mc_battery=500_000.0).run()
        refills = result.trace.of_type(DepotRecharged)
        assert refills, "small batteries must force refills"
        assert all(r.charger_index in (0, 1) for r in refills)


class TestAttackInFleet:
    @pytest.fixture(scope="class")
    def result(self):
        return fleet_sim(extra_count=1, attacker=True).run()

    def test_attacker_still_kills_some(self, result):
        assert result.exhausted_key_ratio() >= 0.3

    def test_honest_redundancy_blunts_the_attack(self, result):
        solo = fleet_sim(extra_count=0, attacker=True).run()
        assert result.exhausted_key_ratio() <= solo.exhausted_key_ratio()

    def test_spoofs_come_only_from_the_compromised_charger(self, result):
        for s in result.trace.services():
            if s.mode in (ChargeMode.SPOOF, ChargeMode.PRETEND):
                assert s.charger_index == 0

    def test_honest_charger_never_blamed_for_spoofed_victims(self, result):
        # The honest charger never serviced a node that later died
        # spoofed (the attacker claims them first).
        honest_served = {
            s.node_id
            for s in result.trace.services()
            if s.charger_index == 1
        }
        spoof_deaths = {
            d.node_id for d in result.trace.deaths() if d.was_spoofed
        }
        last_service = {}
        for s in result.trace.services():
            last_service[s.node_id] = s.charger_index
        for node_id in spoof_deaths:
            assert last_service[node_id] == 0
