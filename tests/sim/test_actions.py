"""Tests for mission-controller actions and simulator action handling."""

import pytest

from repro.mc.charger import ChargeMode
from repro.sim.actions import (
    IdleAction,
    MissionController,
    RechargeAction,
    ServeAction,
)
from repro.sim.events import DepotRecharged, ServiceAborted
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation

CFG = ScenarioConfig(node_count=40, key_count=4, horizon_days=2)


class ScriptedController(MissionController):
    """Plays back a fixed list of actions, then idles."""

    name = "scripted"

    def __init__(self, actions):
        self._actions = list(actions)

    def next_action(self, sim):
        if self._actions:
            return self._actions.pop(0)
        return None


def run_script(actions, seed=6, horizon_s=CFG.horizon_s):
    sim = WrsnSimulation(
        CFG.build_network(seed=seed),
        CFG.build_charger(),
        ScriptedController(actions),
        horizon_s=horizon_s,
    )
    return sim.run()


class TestServeAction:
    def test_explicit_duration_service(self):
        result = run_script(
            [ServeAction(node_id=3, mode=ChargeMode.GENUINE, duration_s=600.0)]
        )
        services = result.trace.services()
        assert len(services) == 1
        assert services[0].node_id == 3
        assert services[0].time - services[0].start_time == pytest.approx(600.0)

    def test_auto_sized_duration_fills_battery(self):
        result = run_script([ServeAction(node_id=3, mode=ChargeMode.GENUINE)])
        node = result.network.nodes[3]
        service = result.trace.services()[0]
        # Delivered the deficit measured at service start (up to capacity).
        assert service.delivered_j > 0.0
        assert node.energy_j <= node.battery_capacity_j

    def test_not_before_delays_service(self):
        result = run_script(
            [ServeAction(node_id=3, not_before=3_600.0, duration_s=60.0)]
        )
        service = result.trace.services()[0]
        assert service.start_time == pytest.approx(3_600.0)

    def test_spoof_inflates_belief_only(self):
        result = run_script(
            [ServeAction(node_id=3, mode=ChargeMode.SPOOF, duration_s=600.0)]
        )
        service = result.trace.services()[0]
        assert service.delivered_j == 0.0
        assert service.believed_j > 0.0
        node = result.network.nodes[3]
        assert node.belief_gap_j() > 0.0

    def test_pretend_changes_nothing_on_node(self):
        result = run_script(
            [ServeAction(node_id=3, mode=ChargeMode.PRETEND, duration_s=600.0)]
        )
        service = result.trace.services()[0]
        assert service.delivered_j == 0.0
        assert service.believed_j == 0.0
        assert service.emission_j == 0.0
        assert service.claimed_j > 0.0

    def test_serving_dead_node_aborts(self):
        # Node 3 is rigged to die in ~18 minutes; the service may not
        # start before t = 1 h, so the charger arrives at a corpse.
        actions = [
            ServeAction(node_id=3, duration_s=60.0, not_before=3_600.0),
        ]
        sim = WrsnSimulation(
            CFG.build_network(seed=6),
            CFG.build_charger(),
            ScriptedController(actions),
            horizon_s=CFG.horizon_s,
        )
        sim.network.nodes[3].set_consumption(10.0)  # dies in ~18 min
        result = sim.run()
        aborts = result.trace.of_type(ServiceAborted)
        assert any(a.node_id == 3 for a in aborts)
        assert not result.trace.services()


class TestRechargeAction:
    def test_recharge_refills_battery(self):
        actions = [
            ServeAction(node_id=3, duration_s=3_600.0),
            RechargeAction(),
        ]
        result = run_script(actions)
        refills = result.trace.of_type(DepotRecharged)
        assert len(refills) == 1
        assert result.charger.energy_j == result.charger.battery_capacity_j
        assert refills[0].energy_before_j < result.charger.battery_capacity_j


class TestIdleAction:
    def test_idle_until_then_serve(self):
        actions = [
            IdleAction(until=7_200.0),
            ServeAction(node_id=1, duration_s=60.0),
        ]
        result = run_script(actions)
        service = result.trace.services()[0]
        assert service.start_time >= 7_200.0


class TestStrandedCharger:
    def test_charger_that_overspends_strands_gracefully(self):
        # A 100 kJ charger ordered to radiate for hours runs dry; the
        # simulation records the failure and carries on.
        cfg = CFG.with_(mc_battery_j=100_000.0)
        actions = [
            ServeAction(node_id=3, duration_s=3_600.0),  # 86.4 kJ: ok
            ServeAction(node_id=5, duration_s=3_600.0),  # would exceed
        ]
        sim = WrsnSimulation(
            cfg.build_network(seed=6),
            cfg.build_charger(),
            ScriptedController(actions),
            horizon_s=cfg.horizon_s,
        )
        result = sim.run()
        assert result.charger_stranded
        assert len(result.trace.services()) == 1
        assert result.ended_at == pytest.approx(result.horizon_s)
