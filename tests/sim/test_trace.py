"""Tests for the simulation trace."""

import pytest

from repro.mc.charger import ChargeMode
from repro.sim.events import (
    DetectionRaised,
    NodeDied,
    RequestIssued,
    ServiceCompleted,
)
from repro.sim.trace import SimulationTrace


def service(time, node_id, mode=ChargeMode.GENUINE, is_key=False):
    return ServiceCompleted(
        time=time, node_id=node_id, start_time=time - 10.0, mode=mode,
        delivered_j=1.0, believed_j=1.0, claimed_j=1.0, emission_j=1.0,
        is_key=is_key, believed_energy_after_j=1.0, battery_capacity_j=10.0,
    )


def death(time, node_id, is_key=False):
    return NodeDied(time=time, node_id=node_id, is_key=is_key,
                    was_spoofed=False, stranded_count=0)


class TestRecording:
    def test_order_enforced(self):
        trace = SimulationTrace()
        trace.record(service(10.0, 1))
        with pytest.raises(ValueError):
            trace.record(service(5.0, 2))

    def test_equal_times_allowed(self):
        trace = SimulationTrace()
        trace.record(service(10.0, 1))
        trace.record(service(10.0, 2))
        assert len(trace) == 2

    def test_iteration(self):
        trace = SimulationTrace()
        events = [service(1.0, 1), death(2.0, 1)]
        for e in events:
            trace.record(e)
        assert list(trace) == events


class TestQueries:
    @pytest.fixture()
    def trace(self):
        t = SimulationTrace()
        t.record(RequestIssued(time=1.0, node_id=1, deadline=10.0,
                               energy_needed_j=5.0, is_key=True))
        t.record(service(2.0, 1, mode=ChargeMode.SPOOF, is_key=True))
        t.record(service(3.0, 2))
        t.record(death(4.0, 1, is_key=True))
        t.record(DetectionRaised(time=5.0, detector="neglect", reason="x"))
        return t

    def test_of_type(self, trace):
        assert len(trace.of_type(ServiceCompleted)) == 2
        assert len(trace.of_type(NodeDied)) == 1

    def test_services_and_deaths(self, trace):
        assert [s.node_id for s in trace.services()] == [1, 2]
        assert [d.node_id for d in trace.deaths()] == [1]

    def test_requests(self, trace):
        assert len(trace.requests()) == 1

    def test_detections(self, trace):
        assert trace.first_detection_time() == 5.0

    def test_no_detection_returns_none(self):
        assert SimulationTrace().first_detection_time() is None

    def test_served_node_ids(self, trace):
        assert trace.served_node_ids() == {1, 2}

    def test_dead_key_node_ids(self, trace):
        assert trace.dead_key_node_ids() == {1}
