"""Tests for the versioned event queue."""

import pytest

from repro.sim.engine import EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.schedule(5.0, "b")
        q.schedule(1.0, "a")
        q.schedule(3.0, "c")
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == ["a", "c", "b"]

    def test_fifo_on_ties(self):
        q = EventQueue()
        q.schedule(1.0, "first")
        q.schedule(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_empty_pop_returns_none(self):
        assert EventQueue().pop() is None

    def test_len(self):
        q = EventQueue()
        q.schedule(1.0, "x")
        q.schedule(2.0, "y")
        assert len(q) == 2


class TestVersioning:
    def test_stale_events_skipped(self):
        q = EventQueue()
        q.schedule(1.0, "old", version_key="node1")
        q.invalidate("node1")
        q.schedule(2.0, "new", version_key="node1")
        event = q.pop()
        assert event.kind == "new"
        assert q.pop() is None

    def test_unkeyed_events_never_stale(self):
        q = EventQueue()
        q.schedule(1.0, "free")
        q.invalidate("whatever")
        assert q.pop().kind == "free"

    def test_independent_keys(self):
        q = EventQueue()
        q.schedule(1.0, "a", version_key="ka")
        q.schedule(2.0, "b", version_key="kb")
        q.invalidate("ka")
        assert q.pop().kind == "b"

    def test_current_version_tracks(self):
        q = EventQueue()
        assert q.current_version("k") == 0
        q.invalidate("k")
        q.invalidate("k")
        assert q.current_version("k") == 2


class TestPeek:
    def test_peek_skips_stale(self):
        q = EventQueue()
        q.schedule(1.0, "old", version_key="k")
        q.invalidate("k")
        q.schedule(5.0, "live")
        assert q.peek_time() == 5.0

    def test_peek_empty(self):
        assert EventQueue().peek_time() is None

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.schedule(3.0, "x")
        assert q.peek_time() == 3.0
        assert q.pop().kind == "x"


class TestValidation:
    def test_rejects_infinite_time(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(float("inf"), "never")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(float("nan"), "confused")

    def test_rejects_negative_infinite_time(self):
        # Regression: -inf used to slip past the finiteness check and
        # would sort before every real event in the heap.
        with pytest.raises(ValueError):
            EventQueue().schedule(float("-inf"), "before-time-itself")

    def test_payload_carried(self):
        q = EventQueue()
        q.schedule(1.0, "x", payload={"data": 42})
        assert q.pop().payload == {"data": 42}


class TestForget:
    def test_forget_shrinks_version_table(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(float(i), "request", version_key=("node", i))
        assert q.tracked_keys() == 5
        q.forget(("node", 2))
        q.forget(("node", 4))
        assert q.tracked_keys() == 3

    def test_stale_events_discarded_after_forget(self):
        q = EventQueue()
        q.schedule(1.0, "death", version_key="n")
        q.schedule(2.0, "death", version_key="n")
        q.schedule(3.0, "other")
        q.forget("n")
        # Both stamped events are stale (stamp >= 1 vs fallback 0).
        event = q.pop()
        assert event is not None and event.kind == "other"
        assert q.pop() is None

    def test_forget_after_invalidations_still_stales(self):
        q = EventQueue()
        q.schedule(1.0, "death", version_key="n")
        q.invalidate("n")
        q.schedule(2.0, "death", version_key="n")
        q.forget("n")
        assert q.pop() is None

    def test_forget_unknown_key_is_noop(self):
        q = EventQueue()
        q.forget("never-seen")
        assert q.tracked_keys() == 0

    def test_first_schedule_registers_at_version_one(self):
        # forget() relies on stamped versions never being 0: a key's very
        # first schedule must register it at version 1.
        q = EventQueue()
        event = q.schedule(1.0, "death", version_key="n")
        assert event.version == 1
        assert q.current_version("n") == 1
        assert q.pop().kind == "death"

    def test_schedule_after_forget_reregisters(self):
        # The documented caveat: forget is terminal.  Scheduling the key
        # again re-registers it at version 1, which also revives any
        # version-1 stragglers still sitting in the heap.
        q = EventQueue()
        q.schedule(1.0, "death", version_key="n")
        q.forget("n")
        q.schedule(2.0, "death", version_key="n")
        assert q.current_version("n") == 1
        assert [e.time for e in (q.pop(), q.pop())] == [1.0, 2.0]
