"""Tests for stealth-margin sizing against the audit process."""

import math

import pytest

from repro.attack.stealth import detection_probability, exposure_cap_for_risk


class TestDetectionProbability:
    def test_zero_exposure_is_safe(self):
        assert detection_probability(0.0, 86_400.0) == 0.0

    def test_monotone_in_exposure(self):
        probs = [
            detection_probability(x, 86_400.0, 10.0)
            for x in (3600.0, 7200.0, 36_000.0, 360_000.0)
        ]
        assert probs == sorted(probs)
        assert all(0.0 <= p <= 1.0 for p in probs)

    def test_rarer_audits_are_safer(self):
        frequent = detection_probability(7200.0, 21_600.0)
        rare = detection_probability(7200.0, 172_800.0)
        assert rare < frequent

    def test_bigger_pool_hides_better(self):
        small = detection_probability(7200.0, 86_400.0, candidate_pool_size=2.0)
        big = detection_probability(7200.0, 86_400.0, candidate_pool_size=20.0)
        assert big < small

    def test_closed_form(self):
        # hazard = 1 / (T c); p = 1 - exp(-x/(T c)).
        p = detection_probability(100.0, 50.0, 2.0)
        assert p == pytest.approx(1.0 - math.exp(-1.0))

    def test_rejects_negative_exposure(self):
        with pytest.raises(ValueError):
            detection_probability(-1.0, 100.0)


class TestExposureCap:
    def test_round_trip_with_probability(self):
        cap = exposure_cap_for_risk(0.1, 5, 86_400.0, 10.0)
        per_target = detection_probability(cap, 86_400.0, 10.0)
        assert per_target * 5 == pytest.approx(0.1, rel=1e-9)

    def test_more_targets_tighter_caps(self):
        few = exposure_cap_for_risk(0.1, 2, 86_400.0)
        many = exposure_cap_for_risk(0.1, 20, 86_400.0)
        assert many < few

    def test_higher_risk_appetite_looser_caps(self):
        timid = exposure_cap_for_risk(0.05, 5, 86_400.0)
        bold = exposure_cap_for_risk(0.5, 5, 86_400.0)
        assert bold > timid

    def test_rare_audits_allow_long_exposure(self):
        cap = exposure_cap_for_risk(0.2, 10, 7 * 86_400.0, 10.0)
        assert cap > 3600.0  # at least an hour of slack

    def test_rejects_degenerate_risk(self):
        with pytest.raises(ValueError):
            exposure_cap_for_risk(0.0, 5, 86_400.0)
        with pytest.raises(ValueError):
            exposure_cap_for_risk(1.0, 5, 86_400.0)

    def test_rejects_zero_targets(self):
        with pytest.raises(ValueError):
            exposure_cap_for_risk(0.1, 0, 86_400.0)
