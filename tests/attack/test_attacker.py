"""Tests for the attacker mission controllers (via small simulations)."""

import pytest

from repro.attack.attacker import BlatantAttacker, CsaAttacker, PlannedAttacker
from repro.core.baselines import RandomPlanner
from repro.core.windows import StealthPolicy
from repro.detection.auditors import default_detector_suite
from repro.mc.charger import ChargeMode
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation


CFG = ScenarioConfig(node_count=60, key_count=6, horizon_days=40)


def run(controller, seed=5, detectors=True, cfg=CFG):
    network = cfg.build_network(seed=seed)
    charger = cfg.build_charger()
    suite = default_detector_suite(seed) if detectors else ()
    sim = WrsnSimulation(
        network, charger, controller, detectors=suite, horizon_s=cfg.horizon_s
    )
    return sim.run()


class TestCsaAttacker:
    @pytest.fixture(scope="class")
    def result(self):
        # Detection under CSA is a low-probability residue of the Poisson
        # audit process (see TestStealthMatters for the contrast); this
        # fixture pins a seed whose audit draws land outside the exposure
        # windows so the deterministic assertions below stay meaningful.
        return run(CsaAttacker(key_count=CFG.key_count), seed=3)

    def test_exhausts_most_key_nodes(self, result):
        assert result.exhausted_key_ratio() >= 0.6

    def test_stays_undetected(self, result):
        assert not result.detected

    def test_detection_rate_far_below_naive(self):
        # Statistical counterpart of test_stays_undetected: across seeds,
        # CSA is rarely caught while the blatant attacker always is.
        csa_hits = sum(
            run(CsaAttacker(key_count=CFG.key_count), seed=s).detected
            for s in range(4)
        )
        assert csa_hits <= 1

    def test_spoof_services_target_key_nodes_only(self, result):
        for service in result.trace.services():
            if service.mode == ChargeMode.SPOOF:
                assert service.node_id in result.initial_key_ids

    def test_serves_cover_traffic(self, result):
        genuine = [
            s for s in result.trace.services() if s.mode == ChargeMode.GENUINE
        ]
        assert genuine, "cover traffic expected under default settings"

    def test_spoofed_nodes_all_die(self, result):
        spoofed = {
            s.node_id
            for s in result.trace.services()
            if s.mode == ChargeMode.SPOOF
        }
        dead = {d.node_id for d in result.trace.deaths()}
        assert spoofed <= dead

    def test_spoofed_deaths_flagged_in_trace(self, result):
        spoofed = {
            s.node_id
            for s in result.trace.services()
            if s.mode == ChargeMode.SPOOF
        }
        for death in result.trace.deaths():
            if death.node_id in spoofed:
                assert death.was_spoofed

    def test_charger_never_stranded(self, result):
        assert not result.charger_stranded

    def test_attacker_name(self):
        assert CsaAttacker().name == "attacker[CSA]"

    def test_replans_happen(self):
        attacker = CsaAttacker(key_count=CFG.key_count)
        run(attacker)
        assert attacker.replans >= 1


class TestStealthMatters:
    def test_no_stealth_gets_detected(self):
        reckless = PlannedAttacker(
            stealth=StealthPolicy.none(), key_count=CFG.key_count
        )
        result = run(reckless)
        # Serving right after the request leaves day-scale exposure; the
        # voltage auditor should catch it.
        assert result.detected

    def test_blatant_gets_detected_fast(self):
        result = run(BlatantAttacker(key_count=CFG.key_count))
        assert result.detected
        detectors = {d.detector for d in result.detections}
        assert "trajectory-anomaly" in detectors or "neglect" in detectors

    def test_blatant_spends_almost_nothing(self):
        result = run(BlatantAttacker(key_count=CFG.key_count), detectors=False)
        # Pretend services emit nothing; only travel drains the battery.
        spent = result.charger.battery_capacity_j - result.charger.energy_j
        assert spent < 0.05 * result.charger.battery_capacity_j


class TestPlannerSwapping:
    def test_random_planner_is_weaker(self):
        csa = run(CsaAttacker(key_count=CFG.key_count), seed=9)
        rnd = run(
            PlannedAttacker(planner=RandomPlanner(0), key_count=CFG.key_count),
            seed=9,
        )
        assert csa.exhausted_key_ratio() >= rnd.exhausted_key_ratio()

    def test_planner_name_embedded(self):
        attacker = PlannedAttacker(planner=RandomPlanner(0))
        assert attacker.name == "attacker[Random]"


class TestParameterValidation:
    def test_bad_key_count(self):
        with pytest.raises(ValueError):
            CsaAttacker(key_count=0)
        with pytest.raises(ValueError):
            BlatantAttacker(key_count=0)

    def test_bad_reserve(self):
        with pytest.raises(ValueError):
            PlannedAttacker(depot_reserve_frac=1.5)
