"""White-box tests of the planned attacker's decision internals."""

import pytest

from repro.attack.attacker import CsaAttacker
from repro.detection.auditors import default_detector_suite
from repro.mc.charger import ChargeMode
from repro.sim.actions import IdleAction, RechargeAction, ServeAction
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import WrsnSimulation

CFG = ScenarioConfig(node_count=60, key_count=6, horizon_days=40)


def make_sim(seed=4, **attacker_kwargs):
    attacker = CsaAttacker(key_count=CFG.key_count, **attacker_kwargs)
    sim = WrsnSimulation(
        CFG.build_network(seed=seed),
        CFG.build_charger(),
        attacker,
        horizon_s=CFG.horizon_s,
    )
    attacker.on_start(sim)
    return sim, attacker


class TestPlanningLifecycle:
    def test_first_decision_builds_a_plan(self):
        sim, attacker = make_sim()
        attacker.next_action(sim)
        assert attacker.last_plan is not None
        assert attacker.replans == 1

    def test_plan_targets_are_key_nodes(self):
        sim, attacker = make_sim()
        attacker.next_action(sim)
        key_ids = sim.network.key_ids()
        assert set(attacker.last_plan.route) <= key_ids

    def test_stable_plan_is_not_rebuilt(self):
        sim, attacker = make_sim()
        attacker.next_action(sim)
        replans = attacker.replans
        attacker.next_action(sim)
        assert attacker.replans == replans

    def test_route_cost_decreases_as_route_consumed(self):
        sim, attacker = make_sim()
        attacker.next_action(sim)
        if len(attacker._route) < 2:
            pytest.skip("plan too short for this check on this seed")
        full_cost = attacker._route_cost_j(sim)
        attacker._pop_head()
        assert attacker._route_cost_j(sim) < full_cost


class TestDecisionShapes:
    def test_early_window_means_idle(self):
        sim, attacker = make_sim()
        action = attacker.next_action(sim)
        # At t=0 the first request is days away: the attacker must not
        # drive yet (no cover either — nobody has requested anything).
        assert isinstance(action, IdleAction)
        assert action.until > 0.0

    def test_low_battery_forces_depot(self):
        sim, attacker = make_sim()
        sim.charger.energy_j = 0.05 * sim.charger.battery_capacity_j
        action = attacker.next_action(sim)
        assert isinstance(action, RechargeAction)

    def test_spoof_dispatch_carries_window_and_duration(self):
        sim, attacker = make_sim()
        attacker.next_action(sim)  # builds the plan (idles)
        # Jump the world to the head target's departure point.
        head = attacker._route[0]
        depart = max(attacker._latest_starts[0], head.window_start)
        mc = sim.charger
        travel = mc.travel_time_to(head.position)
        sim.network.advance_to(depart - travel)
        sim.now = depart - travel
        mc.wait_until(sim.now)
        action = attacker.next_action(sim)
        assert isinstance(action, ServeAction)
        assert action.mode == ChargeMode.SPOOF
        assert action.node_id == head.node_id
        assert action.not_before == pytest.approx(depart)
        assert action.duration_s == pytest.approx(head.service_duration)


class TestSpoofBookkeeping:
    def test_spoofed_nodes_never_replanned(self):
        sim, attacker = make_sim()
        attacker.note_spoofed(sim.network.key_nodes[0].node_id)
        attacker._dirty = True
        attacker.next_action(sim)
        assert sim.network.key_nodes[0].node_id not in set(
            attacker.last_plan.route
        )
        assert attacker.spoofed_ids() == {sim.network.key_nodes[0].node_id}


class TestEndToEndAccounting:
    def test_replans_track_events(self):
        attacker = CsaAttacker(key_count=CFG.key_count)
        sim = WrsnSimulation(
            CFG.build_network(seed=4),
            CFG.build_charger(),
            attacker,
            detectors=default_detector_suite(4),
            horizon_s=CFG.horizon_s,
        )
        result = sim.run()
        # At least one replan per spoofed victim (death-triggered).
        spoofs = sum(
            1 for s in result.trace.services() if s.mode == ChargeMode.SPOOF
        )
        assert attacker.replans >= spoofs
