"""Tests for the imperfect-knowledge attacker."""

import pytest

from repro.attack.knowledge import NoisyEstimator, derive_targets_with_error
from repro.core.windows import StealthPolicy, derive_targets
from repro.mc.charger import default_charging_hardware
from repro.network.network import build_network
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def hardware():
    return default_charging_hardware()


@pytest.fixture()
def network():
    net = build_network(60, seed=33)
    net.refresh_key_nodes(8)
    return net


class TestNoisyEstimator:
    def test_zero_noise_is_identity(self):
        estimator = NoisyEstimator(0.0, make_rng(1, "k"))
        assert estimator.rate_factor(5) == 1.0

    def test_factors_are_cached_per_node(self):
        estimator = NoisyEstimator(0.3, make_rng(1, "k"))
        assert estimator.rate_factor(5) == estimator.rate_factor(5)

    def test_factors_differ_across_nodes(self):
        estimator = NoisyEstimator(0.3, make_rng(1, "k"))
        factors = {estimator.rate_factor(i) for i in range(10)}
        assert len(factors) > 1

    def test_factors_positive(self):
        estimator = NoisyEstimator(1.0, make_rng(2, "k"))
        assert all(estimator.rate_factor(i) > 0.0 for i in range(50))

    def test_rejects_negative_std(self):
        with pytest.raises(ValueError):
            NoisyEstimator(-0.1, make_rng(0, "k"))


class TestDeriveWithError:
    def test_zero_noise_matches_exact_derivation(self, network, hardware):
        estimator = NoisyEstimator(0.0, make_rng(1, "k"))
        exact = derive_targets(network, hardware, StealthPolicy(), now=0.0)
        noisy = derive_targets_with_error(
            network, hardware, StealthPolicy(), now=0.0, estimator=estimator
        )
        assert [t.node_id for t in noisy] == [t.node_id for t in exact]
        for a, b in zip(noisy, exact):
            assert a.window_start == pytest.approx(b.window_start, rel=1e-9)
            assert a.window_end == pytest.approx(b.window_end, rel=1e-9)

    def test_noise_shifts_windows(self, network, hardware):
        estimator = NoisyEstimator(0.2, make_rng(7, "k"))
        exact = {t.node_id: t for t in
                 derive_targets(network, hardware, StealthPolicy(), now=0.0)}
        noisy = derive_targets_with_error(
            network, hardware, StealthPolicy(), now=0.0, estimator=estimator
        )
        shifted = [
            t for t in noisy
            if t.node_id in exact
            and abs(t.window_start - exact[t.node_id].window_start) > 60.0
        ]
        assert shifted, "20% rate error should move windows by minutes+"

    def test_windows_still_well_formed(self, network, hardware):
        estimator = NoisyEstimator(0.5, make_rng(9, "k"))
        for t in derive_targets_with_error(
            network, hardware, StealthPolicy(), now=0.0, estimator=estimator
        ):
            assert t.window_start <= t.window_end
            assert t.service_duration > 0.0

    def test_dead_nodes_skipped(self, network, hardware):
        victim = network.key_nodes[0].node_id
        node = network.nodes[victim]
        node.set_consumption(1e9)
        node.advance_to(1.0)
        estimator = NoisyEstimator(0.2, make_rng(7, "k"))
        targets = derive_targets_with_error(
            network, hardware, StealthPolicy(), now=1.0, estimator=estimator
        )
        assert all(t.node_id != victim for t in targets)


class TestNoisyAttackerEndToEnd:
    def test_small_error_still_attacks_well(self):
        from repro.attack.attacker import CsaAttacker
        from repro.sim.scenario import ScenarioConfig
        from repro.sim.wrsn_sim import WrsnSimulation

        cfg = ScenarioConfig(node_count=60, key_count=6, horizon_days=40)
        estimator = NoisyEstimator(0.02, make_rng(3, "attacker-noise"))
        sim = WrsnSimulation(
            cfg.build_network(seed=3),
            cfg.build_charger(),
            CsaAttacker(key_count=cfg.key_count, estimator=estimator),
            horizon_s=cfg.horizon_s,
        )
        result = sim.run()
        assert result.exhausted_key_ratio() >= 0.5
