"""Tests for the physical-layer spoof report."""

import math

import pytest

from repro.attack.spoofing import execute_spoof
from repro.mc.charger import default_charging_hardware


@pytest.fixture(scope="module")
def report():
    return execute_spoof(default_charging_hardware())


class TestSpoofReport:
    def test_harvest_is_nulled(self, report):
        assert report.harvested_w == 0.0

    def test_matches_simulator_rate(self, report):
        hardware = default_charging_hardware()
        assert report.harvested_w == pytest.approx(hardware.spoof_rate_w)

    def test_pilot_still_trips(self, report):
        assert report.pilot_tripped
        assert report.pilot_rf_w >= default_charging_hardware().presence_threshold_w

    def test_rectenna_rf_far_below_pilot(self, report):
        assert report.rf_at_rectenna_w < report.pilot_rf_w / 100.0

    def test_suppression_infinite_for_perfect_null(self, report):
        assert math.isinf(report.suppression_db)

    def test_genuine_reference_positive(self, report):
        assert report.genuine_harvest_w > 1.0

    def test_one_phase_per_element(self, report):
        assert len(report.phases_rad) == default_charging_hardware().array.size
