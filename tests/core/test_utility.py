"""Tests for attack utility functions."""

import pytest

from repro.core.utility import CoverageUtility, ModularUtility


class TestModularUtility:
    @pytest.fixture()
    def utility(self):
        return ModularUtility({1: 0.5, 2: 0.3, 3: 1.0})

    def test_value_sums(self, utility):
        assert utility.value(frozenset({1, 2})) == pytest.approx(0.8)
        assert utility.value(frozenset()) == 0.0

    def test_marginal(self, utility):
        assert utility.marginal(frozenset({1}), 3) == pytest.approx(1.0)
        assert utility.marginal(frozenset({1}), 1) == 0.0

    def test_unknown_ids_worth_nothing(self, utility):
        assert utility.value(frozenset({99})) == 0.0

    def test_monotone(self, utility):
        assert utility.value(frozenset({1, 2, 3})) >= utility.value(frozenset({1}))

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError):
            ModularUtility({1: 0.0})

    def test_from_targets(self):
        class FakeTarget:
            def __init__(self, node_id, weight):
                self.node_id = node_id
                self.weight = weight

        utility = ModularUtility.from_targets([FakeTarget(4, 0.7)])
        assert utility.weight(4) == pytest.approx(0.7)


class TestCoverageUtility:
    @pytest.fixture()
    def utility(self):
        return CoverageUtility(
            regions={"north": frozenset({1, 2}), "south": frozenset({3})},
            region_weights={"north": 1.0, "south": 2.0},
            decay=0.5,
        )

    def test_first_hit_takes_most(self, utility):
        assert utility.value(frozenset({1})) == pytest.approx(0.5)
        assert utility.value(frozenset({1, 2})) == pytest.approx(0.75)

    def test_regions_independent(self, utility):
        assert utility.value(frozenset({1, 3})) == pytest.approx(0.5 + 1.0)

    def test_submodular_diminishing_returns(self, utility):
        gain_alone = utility.marginal(frozenset(), 2)
        gain_after = utility.marginal(frozenset({1}), 2)
        assert gain_after < gain_alone

    def test_monotone(self, utility):
        sets = [frozenset(), frozenset({1}), frozenset({1, 2}), frozenset({1, 2, 3})]
        values = [utility.value(s) for s in sets]
        assert values == sorted(values)

    def test_outsider_worth_nothing(self, utility):
        assert utility.marginal(frozenset(), 99) == 0.0

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CoverageUtility({"a": frozenset({1})}, {"b": 1.0})

    def test_bad_decay_rejected(self):
        with pytest.raises(ValueError):
            CoverageUtility({"a": frozenset({1})}, {"a": 1.0}, decay=1.0)
