"""Tests for TIDE instances, routes and feasibility evaluation."""

import pytest

from repro.core.tide import (
    TideInstance,
    TidePlan,
    TideTarget,
    evaluate_route,
)
from repro.utils.geometry import Point


def target(node_id, x=0.0, y=0.0, start=0.0, end=1e6, duration=100.0,
           energy=1000.0, weight=1.0):
    return TideTarget(
        node_id=node_id,
        weight=weight,
        position=Point(x, y),
        window_start=start,
        window_end=end,
        service_duration=duration,
        service_energy_j=energy,
    )


def instance(targets, budget=1e6, start=Point(0, 0), start_time=0.0):
    return TideInstance(
        targets=tuple(targets),
        start_position=start,
        start_time=start_time,
        energy_budget_j=budget,
        speed_m_s=5.0,
        travel_cost_j_per_m=50.0,
    )


class TestTideTarget:
    def test_window_width(self):
        assert target(0, start=10.0, end=40.0).window_width == pytest.approx(30.0)

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            target(0, start=10.0, end=5.0)

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError):
            target(0, weight=0.0)


class TestTideInstance:
    def test_lookup(self):
        inst = instance([target(3), target(7)])
        assert inst.target(7).node_id == 7
        with pytest.raises(KeyError):
            inst.target(99)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            instance([target(1), target(1)])

    def test_total_weight(self):
        inst = instance([target(0, weight=0.5), target(1, weight=0.7)])
        assert inst.total_weight() == pytest.approx(1.2)


class TestEvaluateRoute:
    def test_empty_route_feasible(self):
        ev = evaluate_route(instance([target(0)]), [])
        assert ev.feasible
        assert ev.utility == 0.0
        assert ev.energy_j == 0.0

    def test_single_visit_schedule(self):
        inst = instance([target(0, x=100.0)])
        ev = evaluate_route(inst, [0])
        assert ev.feasible
        visit = ev.visits[0]
        assert visit.arrival == pytest.approx(20.0)  # 100 m at 5 m/s
        assert visit.service_start == pytest.approx(20.0)
        assert visit.departure == pytest.approx(120.0)
        assert ev.energy_j == pytest.approx(100.0 * 50.0 + 1000.0)

    def test_waiting_for_window(self):
        inst = instance([target(0, x=10.0, start=500.0)])
        ev = evaluate_route(inst, [0])
        visit = ev.visits[0]
        assert visit.arrival == pytest.approx(2.0)
        assert visit.service_start == pytest.approx(500.0)
        assert visit.waiting == pytest.approx(498.0)

    def test_missed_window_infeasible(self):
        inst = instance([target(0, x=1000.0, end=10.0)])
        ev = evaluate_route(inst, [0])
        assert not ev.feasible
        assert "misses window" in ev.infeasible_reason

    def test_budget_violation_infeasible(self):
        inst = instance([target(0, x=100.0, energy=500.0)], budget=5400.0)
        # travel 5000 + service 500 = 5500 > 5400
        ev = evaluate_route(inst, [0])
        assert not ev.feasible
        assert "budget" in ev.infeasible_reason

    def test_budget_exact_is_feasible(self):
        inst = instance([target(0, x=100.0, energy=500.0)], budget=5500.0)
        assert evaluate_route(inst, [0]).feasible

    def test_sequence_timing_accumulates(self):
        inst = instance([target(0, x=10.0), target(1, x=20.0)])
        ev = evaluate_route(inst, [0, 1])
        assert ev.visits[1].arrival == pytest.approx(102.0 + 2.0)
        assert ev.finish_time == pytest.approx(204.0)

    def test_order_matters_for_windows(self):
        near_deadline = target(0, x=10.0, end=5.0)
        relaxed = target(1, x=20.0)
        inst = instance([near_deadline, relaxed])
        assert evaluate_route(inst, [0, 1]).feasible
        assert not evaluate_route(inst, [1, 0]).feasible

    def test_duplicate_visit_rejected(self):
        inst = instance([target(0)])
        ev = evaluate_route(inst, [0, 0])
        assert not ev.feasible
        assert "more than once" in ev.infeasible_reason

    def test_utility_sums_weights(self):
        inst = instance([target(0, weight=0.3), target(1, x=1.0, weight=0.9)])
        ev = evaluate_route(inst, [0, 1])
        assert ev.utility == pytest.approx(1.2)

    def test_served_ids(self):
        inst = instance([target(0), target(1, x=1.0)])
        assert evaluate_route(inst, [1]).served_ids() == frozenset({1})
        bad = evaluate_route(inst, [0, 0])
        assert bad.served_ids() == frozenset()

    def test_start_time_offsets_schedule(self):
        inst = instance([target(0, x=10.0)], start_time=1000.0)
        ev = evaluate_route(inst, [0])
        assert ev.visits[0].arrival == pytest.approx(1002.0)


class TestTidePlan:
    def test_plan_properties(self):
        inst = instance([target(0, weight=0.4)])
        ev = evaluate_route(inst, [0])
        plan = TidePlan(route=(0,), evaluation=ev, planner_name="test")
        assert plan.utility == pytest.approx(0.4)
        assert plan.served == frozenset({0})

    def test_plan_requires_feasible_evaluation(self):
        inst = instance([target(0, x=1e9, end=1.0)])
        bad = evaluate_route(inst, [0])
        with pytest.raises(ValueError):
            TidePlan(route=(0,), evaluation=bad, planner_name="test")

    def test_empty_plan_allowed(self):
        inst = instance([target(0)])
        plan = TidePlan(route=(), evaluation=evaluate_route(inst, []),
                        planner_name="test")
        assert plan.utility == 0.0
