"""Tests for the exact TIDE solvers."""

import pytest

from repro.core.optimal import solve_tide_bruteforce, solve_tide_exact
from repro.core.tide import TideInstance, TideTarget, evaluate_route
from repro.utils.geometry import Point


def target(node_id, x=0.0, weight=1.0, start=0.0, end=1e7, duration=100.0,
           energy=1000.0):
    return TideTarget(
        node_id=node_id, weight=weight, position=Point(x, 0.0),
        window_start=start, window_end=end,
        service_duration=duration, service_energy_j=energy,
    )


def instance(targets, budget=1e6):
    return TideInstance(
        targets=tuple(targets), start_position=Point(0, 0), start_time=0.0,
        energy_budget_j=budget, speed_m_s=5.0, travel_cost_j_per_m=50.0,
    )


class TestBruteForce:
    def test_takes_everything_when_free(self):
        inst = instance([target(i, x=float(i)) for i in range(4)])
        plan = solve_tide_bruteforce(inst)
        assert plan.served == frozenset(range(4))

    def test_picks_heavier_of_two_exclusive(self):
        # Budget fits exactly one service.
        a = target(0, x=1.0, weight=1.0, energy=1000.0)
        b = target(1, x=1.0, weight=2.0, energy=1000.0)
        inst = instance([a, b], budget=1100.0)
        plan = solve_tide_bruteforce(inst)
        assert plan.served == frozenset({1})

    def test_empty(self):
        plan = solve_tide_bruteforce(instance([]))
        assert plan.route == ()
        assert plan.utility == 0.0

    def test_refuses_large_instances(self):
        inst = instance([target(i, x=float(i)) for i in range(9)])
        with pytest.raises(ValueError):
            solve_tide_bruteforce(inst, max_targets=8)

    def test_ordering_needed_for_windows(self):
        # Feasible only in the order 0 then 1.
        a = target(0, x=10.0, start=0.0, end=30.0)
        b = target(1, x=10.0, start=200.0, end=400.0)
        plan = solve_tide_bruteforce(instance([a, b]))
        assert plan.route == (0, 1)


class TestExactDp:
    def test_matches_bruteforce_on_random_instances(self, tide_instance_factory):
        for seed in range(10):
            inst = tide_instance_factory(n_targets=6, seed=seed, budget_j=250_000.0)
            bf = solve_tide_bruteforce(inst)
            dp = solve_tide_exact(inst)
            assert dp.utility == pytest.approx(bf.utility, abs=1e-9), f"seed {seed}"

    def test_matches_bruteforce_with_tight_windows(self, tide_instance_factory):
        for seed in range(6):
            inst = tide_instance_factory(
                n_targets=6, seed=100 + seed, budget_j=300_000.0,
                window_width_s=(1800.0, 7200.0),
            )
            bf = solve_tide_bruteforce(inst)
            dp = solve_tide_exact(inst)
            assert dp.utility == pytest.approx(bf.utility, abs=1e-9), f"seed {seed}"

    def test_route_is_actually_feasible(self, tide_instance_factory):
        inst = tide_instance_factory(n_targets=8, seed=3, budget_j=400_000.0)
        plan = solve_tide_exact(inst)
        assert evaluate_route(inst, plan.route).feasible

    def test_empty(self):
        plan = solve_tide_exact(instance([]))
        assert plan.route == ()

    def test_refuses_large_instances(self):
        inst = instance([target(i, x=float(i)) for i in range(15)])
        with pytest.raises(ValueError):
            solve_tide_exact(inst)

    def test_two_resource_tradeoff(self):
        """A case where time and energy Pareto labels both matter.

        Route A to 0 is quick but 1's window needs an early arrival;
        the energy budget rules out the long way round.  The DP must keep
        non-dominated labels to find the only feasible pair.
        """
        a = target(0, x=50.0, start=0.0, end=100.0, duration=10.0, energy=100.0)
        b = target(1, x=100.0, start=0.0, end=60.0, duration=10.0, energy=100.0)
        # Serving b first (20 s drive) then backtracking to a works;
        # a-first misses b's window (10 s + 10 s + 10 s = 30 > ... fits);
        # budget allows only ~110 m of driving plus both services.
        inst = instance([a, b], budget=100.0 * 50.0 + 2 * 100.0 + 3000.0)
        plan = solve_tide_exact(inst)
        check = evaluate_route(inst, plan.route)
        assert check.feasible
        assert plan.utility >= 1.0

    def test_prefers_weight_over_count(self):
        lights = [target(i, x=1.0 + i, weight=0.3, energy=400.0) for i in range(3)]
        heavy = target(9, x=10.0, weight=2.0, energy=1400.0)
        inst = instance(lights + [heavy], budget=2000.0)
        plan = solve_tide_exact(inst)
        assert 9 in plan.served
