"""Tests for stealthy service-window derivation."""

import math

import pytest

from repro.core.windows import StealthPolicy, derive_targets
from repro.mc.charger import default_charging_hardware
from repro.network.network import build_network


@pytest.fixture(scope="module")
def hardware():
    return default_charging_hardware()


@pytest.fixture()
def network():
    net = build_network(60, seed=21)
    net.refresh_key_nodes(8)
    return net


class TestStealthPolicy:
    def test_defaults(self):
        policy = StealthPolicy()
        # Attacker grace strictly exceeds the defender's default 2 h
        # death-after-charge window.
        assert policy.grace_period_s == pytest.approx(10_800.0)
        assert policy.exposure_cap_s == pytest.approx(21_600.0)

    def test_cap_below_grace_rejected(self):
        with pytest.raises(ValueError):
            StealthPolicy(grace_period_s=7200.0, exposure_cap_s=3600.0)

    def test_audit_blind(self):
        policy = StealthPolicy.audit_blind()
        assert math.isinf(policy.exposure_cap_s)
        assert policy.grace_period_s > 0.0

    def test_none_policy(self):
        policy = StealthPolicy.none()
        assert policy.grace_period_s == 0.0
        assert math.isinf(policy.exposure_cap_s)


class TestDeriveTargets:
    def test_targets_cover_key_nodes(self, network, hardware):
        targets = derive_targets(network, hardware, StealthPolicy(), now=0.0)
        key_ids = network.key_ids()
        assert targets
        assert {t.node_id for t in targets} <= key_ids

    def test_window_inside_request_death_span(self, network, hardware):
        for t in derive_targets(network, hardware, StealthPolicy(), now=0.0):
            assert t.window_start >= t.request_time - 1e-6
            assert t.window_end + t.service_duration <= t.death_time + 1e-6

    def test_window_respects_grace(self, network, hardware):
        policy = StealthPolicy(grace_period_s=7200.0, exposure_cap_s=21_600.0)
        for t in derive_targets(network, hardware, policy, now=0.0):
            latest_end = t.window_end + t.service_duration
            assert t.death_time - latest_end >= policy.grace_period_s - 1e-6

    def test_window_respects_exposure_cap(self, network, hardware):
        policy = StealthPolicy(grace_period_s=7200.0, exposure_cap_s=21_600.0)
        for t in derive_targets(network, hardware, policy, now=0.0):
            earliest_end = t.window_start + t.service_duration
            assert t.death_time - earliest_end <= policy.exposure_cap_s + 1e-6

    def test_width_bounded_by_cap_minus_grace(self, network, hardware):
        policy = StealthPolicy(grace_period_s=7200.0, exposure_cap_s=21_600.0)
        for t in derive_targets(network, hardware, policy, now=0.0):
            assert t.window_width <= (
                policy.exposure_cap_s - policy.grace_period_s
            ) + 1e-6

    def test_audit_blind_windows_are_wider(self, network, hardware):
        tight = derive_targets(network, hardware, StealthPolicy(), now=0.0)
        loose = derive_targets(network, hardware, StealthPolicy.audit_blind(), now=0.0)
        tight_by_id = {t.node_id: t for t in tight}
        for t in loose:
            if t.node_id in tight_by_id:
                assert t.window_width >= tight_by_id[t.node_id].window_width - 1e-6

    def test_sorted_by_window_end(self, network, hardware):
        targets = derive_targets(network, hardware, StealthPolicy(), now=0.0)
        ends = [t.window_end for t in targets]
        assert ends == sorted(ends)

    def test_service_energy_matches_duration(self, network, hardware):
        for t in derive_targets(network, hardware, StealthPolicy(), now=0.0):
            assert t.service_energy_j == pytest.approx(
                hardware.emission_w * t.service_duration
            )

    def test_now_clips_window_start(self, network, hardware):
        late = derive_targets(network, hardware, StealthPolicy.none(), now=1e6)
        for t in late:
            assert t.window_start >= 1e6 - 1e-6

    def test_far_future_now_drops_everything(self, network, hardware):
        assert derive_targets(network, hardware, StealthPolicy(), now=1e10) == []

    def test_dead_key_nodes_skipped(self, network, hardware):
        victim = network.key_nodes[0].node_id
        node = network.nodes[victim]
        node.set_consumption(1e9)
        node.advance_to(1.0)
        targets = derive_targets(network, hardware, StealthPolicy(), now=1.0)
        assert all(t.node_id != victim for t in targets)

    def test_weights_carried_over(self, network, hardware):
        weights = {i.node_id: i.weight for i in network.key_nodes}
        for t in derive_targets(network, hardware, StealthPolicy(), now=0.0):
            assert t.weight == pytest.approx(weights[t.node_id])
