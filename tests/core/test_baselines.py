"""Tests for the attack-planning baselines."""

import pytest

from repro.core.baselines import (
    EdfPlanner,
    GreedyWeightPlanner,
    NearestFirstPlanner,
    RandomPlanner,
    TspPlanner,
    append_feasible,
)
from repro.core.csa import CsaPlanner
from repro.core.tide import TideInstance, TideTarget, evaluate_route
from repro.utils.geometry import Point

ALL_PLANNERS = [
    RandomPlanner(0),
    GreedyWeightPlanner(),
    NearestFirstPlanner(),
    EdfPlanner(),
    TspPlanner(),
]


def target(node_id, x=0.0, y=0.0, weight=1.0, start=0.0, end=1e7,
           duration=100.0, energy=1000.0):
    return TideTarget(
        node_id=node_id, weight=weight, position=Point(x, y),
        window_start=start, window_end=end,
        service_duration=duration, service_energy_j=energy,
    )


def instance(targets, budget=1e6):
    return TideInstance(
        targets=tuple(targets), start_position=Point(0, 0), start_time=0.0,
        energy_budget_j=budget, speed_m_s=5.0, travel_cost_j_per_m=50.0,
    )


class TestAppendFeasible:
    def test_keeps_feasible_prefix_order(self):
        inst = instance([target(0, x=10.0), target(1, x=20.0)])
        route, ev = append_feasible(inst, [1, 0])
        assert route == [1, 0]
        assert ev.feasible

    def test_skips_infeasible(self):
        inst = instance([target(0, x=1e6, end=1.0), target(1, x=10.0)])
        route, _ev = append_feasible(inst, [0, 1])
        assert route == [1]

    def test_respects_budget(self):
        inst = instance([target(i, x=1.0) for i in range(5)], budget=2200.0)
        route, ev = append_feasible(inst, list(range(5)))
        assert len(route) == 2
        assert ev.energy_j <= 2200.0


@pytest.mark.parametrize("planner", ALL_PLANNERS, ids=lambda p: p.name)
class TestAllBaselines:
    def test_plans_are_feasible(self, planner, tide_instance):
        plan = planner.plan(tide_instance)
        assert evaluate_route(tide_instance, plan.route).feasible

    def test_empty_instance(self, planner):
        plan = planner.plan(instance([]))
        assert plan.route == ()

    def test_name_recorded(self, planner, tide_instance):
        assert planner.plan(tide_instance).planner_name == planner.name

    def test_never_beats_csa_on_canonical_instances(
        self, planner, tide_instance_factory
    ):
        # Not a theorem — but on these window-constrained instances the
        # cost-benefit greedy should never lose; a loss is a regression.
        csa = CsaPlanner()
        for seed in range(5):
            inst = tide_instance_factory(n_targets=10, seed=seed + 40,
                                         budget_j=500_000.0)
            assert csa.plan(inst).utility >= planner.plan(inst).utility - 1e-9


class TestIndividualBehaviours:
    def test_random_is_seed_deterministic(self, tide_instance):
        assert (
            RandomPlanner(7).plan(tide_instance).route
            == RandomPlanner(7).plan(tide_instance).route
        )

    def test_greedy_weight_prefers_heavy(self):
        light = target(0, x=1.0, weight=0.1, energy=1000.0)
        heavy = target(1, x=1.0, weight=5.0, energy=1000.0)
        inst = instance([light, heavy], budget=1100.0)
        plan = GreedyWeightPlanner().plan(inst)
        assert plan.served == frozenset({1})

    def test_nearest_first_goes_close(self):
        near = target(0, x=5.0, energy=1000.0)
        far = target(1, x=90.0, energy=1000.0)
        inst = instance([near, far], budget=2000.0)
        plan = NearestFirstPlanner().plan(inst)
        assert plan.route[0] == 0

    def test_edf_orders_by_deadline(self):
        relaxed = target(0, x=5.0, end=1e6)
        urgent = target(1, x=5.0, end=500.0)
        plan = EdfPlanner().plan(instance([relaxed, urgent]))
        assert plan.route[0] == 1

    def test_tsp_travels_economically(self):
        # Targets on a line; the TSP order should sweep, not zig-zag.
        targets = [target(i, x=10.0 * (i + 1)) for i in range(5)]
        plan = TspPlanner().plan(instance(targets))
        xs = [instance(targets).target(nid).position.x for nid in plan.route]
        assert xs == sorted(xs)
