"""Tests for window-aware local search."""

import pytest

from repro.core.csa import CsaPlanner
from repro.core.improvement import improve_plan, improve_route
from repro.core.tide import TideInstance, TidePlan, TideTarget, evaluate_route
from repro.core.utility import ModularUtility
from repro.utils.geometry import Point


def target(node_id, x=0.0, y=0.0, weight=1.0, start=0.0, end=1e7,
           duration=100.0, energy=1000.0):
    return TideTarget(
        node_id=node_id, weight=weight, position=Point(x, y),
        window_start=start, window_end=end,
        service_duration=duration, service_energy_j=energy,
    )


def instance(targets, budget=1e6):
    return TideInstance(
        targets=tuple(targets), start_position=Point(0, 0), start_time=0.0,
        energy_budget_j=budget, speed_m_s=5.0, travel_cost_j_per_m=50.0,
    )


class TestImproveRoute:
    def test_fixes_crossing_route(self):
        # Visiting a line of targets in zig-zag order; 2-opt must sweep.
        targets = [target(i, x=20.0 * (i + 1)) for i in range(4)]
        inst = instance(targets)
        zigzag = [2, 0, 3, 1]
        route, evaluation = improve_route(inst, zigzag)
        base = evaluate_route(inst, zigzag)
        assert evaluation.energy_j < base.energy_j
        assert set(route) == set(zigzag)

    def test_reinsertion_uses_freed_budget(self):
        # A wasteful order burns the budget; after shortening travel,
        # the freed energy funds an extra victim.
        targets = [
            target(0, x=10.0, energy=500.0),
            target(1, x=20.0, energy=500.0),
            target(2, x=30.0, energy=500.0),
            target(3, x=40.0, energy=500.0),
        ]
        # Budget: sweeping visits all four (travel 40 m = 2000 J +
        # services 2000 J = 4000 J); the zig-zag below (60 m = 3000 J +
        # 1500 J) fits but leaves no room for the fourth until repaired.
        inst = instance(targets, budget=4600.0)
        wasteful = [2, 0, 1]  # 0 -> 30 -> 10 -> 20: travel 60 m
        route, evaluation = improve_route(inst, wasteful)
        assert evaluation.utility > evaluate_route(inst, wasteful).utility

    def test_never_degrades(self, tide_instance):
        plan = CsaPlanner().plan(tide_instance)
        route, evaluation = improve_route(tide_instance, list(plan.route))
        assert evaluation.feasible
        assert evaluation.utility >= plan.utility - 1e-9

    def test_rejects_infeasible_input(self):
        inst = instance([target(0, x=1e6, end=1.0)])
        with pytest.raises(ValueError):
            improve_route(inst, [0])

    def test_empty_route(self):
        inst = instance([target(0)])
        route, evaluation = improve_route(inst, [])
        # Reinsertion may add the free target; either way feasible.
        assert evaluation.feasible

    def test_respects_windows(self):
        # Improvement must not reorder across a deadline it would break.
        urgent = target(0, x=10.0, end=30.0)
        late = target(1, x=10.0, start=5000.0)
        inst = instance([urgent, late])
        route, evaluation = improve_route(inst, [0, 1])
        assert evaluation.feasible
        assert route[0] == 0


class TestImprovePlan:
    def test_wraps_plan_and_renames(self):
        targets = [target(i, x=20.0 * (i + 1)) for i in range(4)]
        inst = instance(targets)
        base_eval = evaluate_route(inst, [2, 0, 3, 1])
        plan = TidePlan((2, 0, 3, 1), base_eval, "CSA")
        improved = improve_plan(inst, plan)
        assert improved.evaluation.energy_j < base_eval.energy_j
        assert improved.planner_name == "CSA+ls"

    def test_returns_original_when_no_gain(self):
        inst = instance([target(0, x=10.0)])
        plan = TidePlan((0,), evaluate_route(inst, [0]), "CSA")
        assert improve_plan(inst, plan) is plan


class TestCsaImproveFlag:
    def test_improved_planner_at_least_as_good(self, tide_instance_factory):
        for seed in range(5):
            inst = tide_instance_factory(n_targets=10, seed=seed + 900,
                                         budget_j=400_000.0)
            base = CsaPlanner().plan(inst)
            improved = CsaPlanner(improve=True).plan(inst)
            assert improved.utility >= base.utility - 1e-9

    def test_name(self):
        assert CsaPlanner(improve=True).name == "CSA+ls"

    def test_utility_object_respected(self):
        weights = ModularUtility({0: 1.0, 1: 1.0})
        inst = instance([target(0, x=10.0), target(1, x=20.0)])
        plan = CsaPlanner(utility=weights, improve=True).plan(inst)
        assert plan.evaluation.feasible
