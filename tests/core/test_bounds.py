"""Tests for the bounded performance guarantee."""

import math

import pytest

from repro.core.bounds import (
    GREEDY_GUARANTEE,
    check_guarantee,
    empirical_ratio,
)
from repro.core.csa import CsaPlanner
from repro.core.optimal import solve_tide_exact


class TestConstant:
    def test_value(self):
        assert GREEDY_GUARANTEE == pytest.approx(0.5 * (1.0 - 1.0 / math.e))
        assert 0.31 < GREEDY_GUARANTEE < 0.32


class TestEmpiricalRatio:
    def test_basic(self):
        assert empirical_ratio(3.0, 4.0) == pytest.approx(0.75)

    def test_zero_optimum_defined_as_one(self):
        assert empirical_ratio(0.0, 0.0) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            empirical_ratio(-1.0, 2.0)


class TestCheckGuarantee:
    def test_holds_on_random_instances(self, tide_instance_factory):
        planner = CsaPlanner()
        ratios = []
        for seed in range(12):
            inst = tide_instance_factory(n_targets=8, seed=seed + 200,
                                         budget_j=350_000.0)
            csa_plan = planner.plan(inst)
            opt_plan = solve_tide_exact(inst)
            cert = check_guarantee(inst, csa_plan, opt_plan)
            assert cert.holds, (
                f"seed {seed}: ratio {cert.ratio:.3f} below "
                f"{GREEDY_GUARANTEE:.3f}"
            )
            ratios.append(cert.ratio)
        # Empirically CSA is near-optimal, far above the worst-case bound.
        assert sum(ratios) / len(ratios) > 0.9

    def test_holds_under_tight_budgets(self, tide_instance_factory):
        planner = CsaPlanner()
        for seed in range(8):
            inst = tide_instance_factory(n_targets=7, seed=seed + 300,
                                         budget_j=120_000.0)
            cert = check_guarantee(
                inst, planner.plan(inst), solve_tide_exact(inst)
            )
            assert cert.holds

    def test_holds_under_tight_windows(self, tide_instance_factory):
        planner = CsaPlanner()
        for seed in range(8):
            inst = tide_instance_factory(
                n_targets=7, seed=seed + 400, budget_j=300_000.0,
                window_width_s=(900.0, 5400.0),
            )
            cert = check_guarantee(
                inst, planner.plan(inst), solve_tide_exact(inst)
            )
            assert cert.holds

    def test_certificate_fields(self, tide_instance_factory):
        inst = tide_instance_factory(n_targets=5, seed=1)
        csa_plan = CsaPlanner().plan(inst)
        opt_plan = solve_tide_exact(inst)
        cert = check_guarantee(inst, csa_plan, opt_plan)
        assert cert.n_targets == 5
        assert cert.csa_utility == pytest.approx(csa_plan.utility)
        assert cert.optimal_utility == pytest.approx(opt_plan.utility)
        assert cert.ratio == pytest.approx(
            csa_plan.utility / opt_plan.utility
        )
