"""Tests for the CSA approximation algorithm."""

import pytest

from repro.core.csa import CsaPlanner
from repro.core.tide import TideInstance, TideTarget, evaluate_route
from repro.core.utility import CoverageUtility
from repro.utils.geometry import Point


def target(node_id, x=0.0, weight=1.0, start=0.0, end=1e7, duration=100.0,
           energy=1000.0):
    return TideTarget(
        node_id=node_id, weight=weight, position=Point(x, 0.0),
        window_start=start, window_end=end,
        service_duration=duration, service_energy_j=energy,
    )


def instance(targets, budget=1e6):
    return TideInstance(
        targets=tuple(targets), start_position=Point(0, 0), start_time=0.0,
        energy_budget_j=budget, speed_m_s=5.0, travel_cost_j_per_m=50.0,
    )


class TestPlanBasics:
    def test_plans_are_feasible(self, tide_instance):
        plan = CsaPlanner().plan(tide_instance)
        assert plan.evaluation.feasible
        check = evaluate_route(tide_instance, plan.route)
        assert check.feasible
        assert check.utility == pytest.approx(plan.utility)

    def test_empty_instance(self):
        plan = CsaPlanner().plan(instance([]))
        assert plan.route == ()
        assert plan.utility == 0.0

    def test_serves_everything_under_loose_budget(self):
        inst = instance([target(i, x=10.0 * i) for i in range(5)], budget=1e9)
        plan = CsaPlanner().plan(inst)
        assert plan.served == frozenset(range(5))

    def test_deterministic(self, tide_instance):
        a = CsaPlanner().plan(tide_instance)
        b = CsaPlanner().plan(tide_instance)
        assert a.route == b.route

    def test_planner_name(self, tide_instance):
        assert CsaPlanner().plan(tide_instance).planner_name == "CSA"

    def test_plan_route_convenience(self, tide_instance):
        planner = CsaPlanner()
        assert tuple(planner.plan_route(tide_instance)) == planner.plan(
            tide_instance
        ).route


class TestBudgetAwareness:
    def test_respects_budget(self):
        inst = instance([target(i, x=10.0 * i) for i in range(6)], budget=3500.0)
        plan = CsaPlanner().plan(inst)
        assert plan.evaluation.energy_j <= 3500.0 + 1e-6
        assert 0 < len(plan.served) < 6

    def test_zero_budget_plans_nothing(self):
        inst = instance([target(0, energy=100.0)], budget=0.0)
        plan = CsaPlanner().plan(inst)
        assert plan.route == ()

    def test_prefers_cost_effective_targets(self):
        # Same weight, one is 10x cheaper: under a budget that fits only
        # one, CSA must take the cheap one.
        cheap = target(0, x=1.0, energy=100.0)
        costly = target(1, x=1.0, energy=5000.0)
        inst = instance([cheap, costly], budget=300.0)
        plan = CsaPlanner().plan(inst)
        assert plan.served == frozenset({0})

    def test_best_single_safeguard(self):
        # One heavy far target vs many light near ones; budget fits either
        # the heavy one alone or the light ones.  Whatever greedy does,
        # the result must be at least the heavy target's weight.
        heavy = target(9, x=100.0, weight=10.0, energy=4000.0)
        lights = [target(i, x=float(i), weight=0.4, energy=400.0) for i in range(5)]
        inst = instance(lights + [heavy], budget=9000.0)
        plan = CsaPlanner().plan(inst)
        assert plan.utility >= 10.0 - 1e-9


class TestWindowAwareness:
    def test_orders_around_tight_windows(self):
        # Target 0's window closes immediately; 1's opens late.
        urgent = target(0, x=10.0, start=0.0, end=30.0)
        late = target(1, x=10.0, start=5000.0, end=9000.0)
        inst = instance([urgent, late])
        plan = CsaPlanner().plan(inst)
        assert plan.served == frozenset({0, 1})
        assert plan.route[0] == 0

    def test_skips_unreachable_windows(self):
        gone = target(0, x=1e5, end=1.0)  # cannot arrive in time
        fine = target(1, x=10.0)
        inst = instance([gone, fine])
        plan = CsaPlanner().plan(inst)
        assert plan.served == frozenset({1})

    def test_disjoint_windows_both_served(self):
        a = target(0, x=10.0, start=0.0, end=1000.0)
        b = target(1, x=10.0, start=50_000.0, end=60_000.0)
        plan = CsaPlanner().plan(instance([a, b]))
        assert plan.served == frozenset({0, 1})


class TestSubmodularUtility:
    def test_coverage_utility_diversifies(self):
        # Two regions; three targets in region A, one in region B, equal
        # weights and costs; budget fits two services.  A submodular
        # planner must take one from each region, not two from A.
        targets = [
            target(0, x=1.0, energy=1000.0),
            target(1, x=2.0, energy=1000.0),
            target(2, x=3.0, energy=1000.0),
            target(3, x=4.0, energy=1000.0),
        ]
        coverage = CoverageUtility(
            regions={"A": frozenset({0, 1, 2}), "B": frozenset({3})},
            region_weights={"A": 1.0, "B": 1.0},
        )
        inst = instance(targets, budget=2400.0)
        plan = CsaPlanner(utility=coverage).plan(inst)
        assert 3 in plan.served
        assert len(plan.served & {0, 1, 2}) == 1

    def test_zero_marginal_targets_not_inserted(self):
        coverage = CoverageUtility(
            regions={"A": frozenset({0})}, region_weights={"A": 1.0}
        )
        # Target 1 is in no region: zero marginal gain, never inserted.
        inst = instance([target(0, x=1.0), target(1, x=1.0)])
        plan = CsaPlanner(utility=coverage).plan(inst)
        assert plan.served == frozenset({0})


class TestScaling:
    def test_handles_moderate_instances(self, tide_instance_factory):
        inst = tide_instance_factory(n_targets=25, seed=5, budget_j=2e6)
        plan = CsaPlanner().plan(inst)
        assert plan.evaluation.feasible
        assert len(plan.served) > 10


class TestIncrementalScanEquivalence:
    """The O(1)-per-trial insertion scan must choose exactly the routes
    the historical from-scratch scan chose (every (candidate, position)
    pair re-evaluated with ``evaluate_route``)."""

    @staticmethod
    def _reference_greedy(inst, utility, min_gain=1e-12, cost_benefit=True):
        """Verbatim copy of the pre-incremental greedy loop."""
        route = []
        evaluation = evaluate_route(inst, route)
        remaining = set(inst.target_ids())
        while remaining:
            served = evaluation.served_ids()
            best = None
            best_candidate = None
            for node_id in sorted(remaining):
                gain = utility.marginal(served, node_id)
                if gain <= min_gain:
                    continue
                for position in range(len(route) + 1):
                    trial = route[:position] + [node_id] + route[position:]
                    trial_eval = evaluate_route(inst, trial)
                    if not trial_eval.feasible:
                        continue
                    extra = trial_eval.energy_j - evaluation.energy_j
                    if cost_benefit:
                        rank = gain / extra if extra > 0.0 else float("inf")
                    else:
                        rank = gain
                    key = (rank, gain, -position, -node_id)
                    if best is None or key > best:
                        best = key
                        best_candidate = (trial, trial_eval)
            if best_candidate is None:
                break
            route, evaluation = best_candidate
            remaining = set(inst.target_ids()) - set(route)
        return route

    @pytest.mark.parametrize("cost_benefit", [True, False])
    def test_matches_reference_on_randomized_instances(self, cost_benefit):
        import random

        from repro.core.utility import ModularUtility

        rng = random.Random(11)
        for _ in range(60):
            n = rng.randint(1, 12)
            targets = []
            for i in range(n):
                start = rng.uniform(0.0, 400.0)
                targets.append(
                    TideTarget(
                        node_id=i,
                        weight=rng.uniform(0.5, 3.0),
                        position=Point(rng.uniform(0, 250), rng.uniform(0, 250)),
                        window_start=start,
                        window_end=start + rng.uniform(0.0, 300.0),
                        service_duration=rng.uniform(0.0, 60.0),
                        service_energy_j=rng.uniform(0.0, 500.0),
                    )
                )
            inst = TideInstance(
                targets=tuple(targets),
                start_position=Point(125, 125),
                start_time=0.0,
                energy_budget_j=rng.uniform(2e3, 4e4),
            )
            utility = ModularUtility.from_targets(inst.targets)
            reference = self._reference_greedy(
                inst, utility, cost_benefit=cost_benefit
            )
            planner = CsaPlanner(cost_benefit=cost_benefit)
            incremental, evaluation = planner._greedy(inst, utility)
            assert incremental == reference
            assert evaluation.feasible

    def test_tight_windows_force_mid_route_insertions(self):
        # Staggered windows along a line: the scan must insert into the
        # middle of an existing route (exercising the latest[] suffix
        # bound), not just append.
        targets = [
            target(0, x=100.0, start=0.0, end=50.0),
            target(1, x=300.0, start=200.0, end=2000.0),
            target(2, x=200.0, start=0.0, end=3000.0),
        ]
        inst = instance(targets)
        plan = CsaPlanner().plan(inst)
        assert plan.served == frozenset({0, 1, 2})
        route = list(plan.route)
        assert route.index(0) < route.index(2) < route.index(1)
