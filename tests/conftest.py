"""Shared fixtures: canonical small instances reused across the suite."""

from __future__ import annotations

import pytest

from repro.core.tide import TideInstance, TideTarget
from repro.mc.charger import default_charging_hardware
from repro.network.network import build_network
from repro.sim.scenario import ScenarioConfig
from repro.utils.geometry import Point
from repro.utils.rng import make_rng


@pytest.fixture(scope="session")
def hardware():
    """The default charging hardware (cached — it is immutable)."""
    return default_charging_hardware()


@pytest.fixture()
def small_network():
    """A 40-node network, seed-pinned, with key nodes annotated."""
    network = build_network(40, seed=7)
    network.refresh_key_nodes(6)
    return network


@pytest.fixture()
def tiny_scenario():
    """A scenario small enough for fast end-to-end runs."""
    return ScenarioConfig(node_count=40, key_count=5, horizon_days=40)


def make_tide_instance(
    n_targets: int = 6,
    seed: int = 0,
    budget_j: float = 400_000.0,
    window_width_s: tuple[float, float] = (4 * 3600.0, 40 * 3600.0),
) -> TideInstance:
    """Random-but-deterministic TIDE instance for solver tests."""
    rng = make_rng(seed, "tide-instance")
    targets = []
    for i in range(n_targets):
        release = float(rng.uniform(0.0, 86_400.0))
        width = float(rng.uniform(*window_width_s))
        duration = float(rng.uniform(600.0, 3_000.0))
        targets.append(
            TideTarget(
                node_id=i,
                weight=float(rng.uniform(0.2, 1.0)),
                position=Point(
                    float(rng.uniform(0.0, 100.0)), float(rng.uniform(0.0, 100.0))
                ),
                window_start=release,
                window_end=release + width,
                service_duration=duration,
                service_energy_j=24.0 * duration,
            )
        )
    return TideInstance(
        targets=tuple(targets),
        start_position=Point(50.0, 50.0),
        start_time=0.0,
        energy_budget_j=budget_j,
    )


@pytest.fixture()
def tide_instance():
    """A six-target TIDE instance solvable by every solver."""
    return make_tide_instance()


@pytest.fixture(scope="session")
def tide_instance_factory():
    """The instance-builder itself, for tests that sweep sizes/seeds."""
    return make_tide_instance
