"""ProjectModel tests: module naming, import graph, cycles, references."""

from repro.lint.project import ProjectModel, module_name_for_path


class TestModuleNaming:
    def test_src_anchored_path(self):
        assert module_name_for_path("src/repro/em/waves.py") == "repro.em.waves"

    def test_absolute_src_anchored_path(self):
        assert (
            module_name_for_path("/root/repo/src/repro/sim/engine.py")
            == "repro.sim.engine"
        )

    def test_package_init_maps_to_package(self):
        assert module_name_for_path("src/repro/utils/__init__.py") == "repro.utils"

    def test_bare_repro_prefix_without_src(self):
        assert module_name_for_path("repro/em/waves.py") == "repro.em.waves"

    def test_unanchored_path_falls_back_to_stem(self):
        assert module_name_for_path("/tmp/scratch/snippet.py") == "snippet"


def _project(*items):
    return ProjectModel.from_sources(list(items))


class TestProjectConstruction:
    def test_records_carry_symbols_and_all(self):
        project = _project(
            (
                "src/repro/pkg/mod.py",
                "__all__ = ['f']\nCONST = 1\n\n\ndef f() -> int:\n    return CONST\n",
            )
        )
        record = project.modules["repro.pkg.mod"]
        assert {"f", "CONST", "__all__"} <= record.symbols
        assert record.dunder_all == ["f"]
        assert record.dunder_all_node is not None
        assert "f" in record.functions

    def test_computed_dunder_all_is_unresolvable(self):
        project = _project(
            ("src/repro/pkg/mod.py", "__all__ = sorted(['a', 'b'])\n")
        )
        assert project.modules["repro.pkg.mod"].dunder_all is None

    def test_syntax_error_files_are_skipped(self):
        project = _project(
            ("src/repro/pkg/ok.py", "__all__ = []\n"),
            ("src/repro/pkg/broken.py", "def broken(:\n"),
        )
        assert len(project) == 1

    def test_class_methods_are_indexed_by_qualname(self):
        project = _project(
            (
                "src/repro/pkg/mod.py",
                "class C:\n    def m(self) -> int:\n        return 1\n",
            )
        )
        assert "C.m" in project.modules["repro.pkg.mod"].functions


class TestNameResolution:
    def test_module_of_uses_longest_prefix(self):
        project = _project(
            ("src/repro/em/__init__.py", ""),
            ("src/repro/em/waves.py", "def f():\n    return 1\n"),
        )
        assert project.module_of("repro.em.waves.f").name == "repro.em.waves"
        assert project.module_of("repro.em.other").name == "repro.em"
        assert project.module_of("numpy.random.default_rng") is None

    def test_resolve_function_crosses_modules(self):
        project = _project(
            ("src/repro/pkg/a.py", "def helper() -> int:\n    return 1\n"),
        )
        resolved = project.resolve_function("repro.pkg.a.helper")
        assert resolved is not None
        record, node = resolved
        assert record.name == "repro.pkg.a"
        assert node.name == "helper"
        assert project.resolve_function("repro.pkg.a.nope") is None


class TestImportGraph:
    def test_top_level_edges_with_linenos(self):
        project = _project(
            ("src/repro/pkg/a.py", "from repro.pkg.b import f\n"),
            ("src/repro/pkg/b.py", "def f():\n    return 1\n"),
        )
        edges = project.import_edges()
        assert edges["repro.pkg.a"] == {"repro.pkg.b": 1}

    def test_lazy_function_level_imports_are_not_edges(self):
        project = _project(
            (
                "src/repro/pkg/a.py",
                "def g():\n    from repro.pkg.b import f\n    return f()\n",
            ),
            ("src/repro/pkg/b.py", "def f():\n    return 1\n"),
        )
        assert project.import_edges()["repro.pkg.a"] == {}

    def test_type_checking_imports_are_not_edges(self):
        project = _project(
            (
                "src/repro/pkg/a.py",
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    from repro.pkg.b import f\n",
            ),
            ("src/repro/pkg/b.py", "def f():\n    return 1\n"),
        )
        assert project.import_edges()["repro.pkg.a"] == {}

    def test_two_module_cycle_is_detected(self):
        project = _project(
            ("src/repro/pkg/a.py", "import repro.pkg.b\n"),
            ("src/repro/pkg/b.py", "import repro.pkg.a\n"),
        )
        assert project.import_cycles() == [["repro.pkg.a", "repro.pkg.b"]]

    def test_three_module_cycle_is_detected_once(self):
        project = _project(
            ("src/repro/pkg/a.py", "import repro.pkg.b\n"),
            ("src/repro/pkg/b.py", "import repro.pkg.c\n"),
            ("src/repro/pkg/c.py", "import repro.pkg.a\n"),
        )
        assert project.import_cycles() == [
            ["repro.pkg.a", "repro.pkg.b", "repro.pkg.c"]
        ]

    def test_acyclic_chain_has_no_cycles(self):
        project = _project(
            ("src/repro/pkg/a.py", "import repro.pkg.b\n"),
            ("src/repro/pkg/b.py", "import repro.pkg.c\n"),
            ("src/repro/pkg/c.py", "X = 1\n"),
        )
        assert project.import_cycles() == []


class TestExternalReferences:
    def test_from_import_counts_as_reference(self):
        project = _project(
            ("src/repro/pkg/a.py", "from repro.pkg.b import f\nY = f()\n"),
            ("src/repro/pkg/b.py", "def f():\n    return 1\n"),
        )
        assert project.external_references()["repro.pkg.b"] == {"f"}

    def test_attribute_access_through_alias_counts(self):
        project = _project(
            ("src/repro/pkg/a.py", "import repro.pkg.b as b\nY = b.f()\n"),
            ("src/repro/pkg/b.py", "def f():\n    return 1\n"),
        )
        assert "f" in project.external_references()["repro.pkg.b"]

    def test_self_references_do_not_count(self):
        project = _project(
            ("src/repro/pkg/b.py", "def f():\n    return 1\n\n\nY = f()\n"),
        )
        assert project.external_references()["repro.pkg.b"] == set()
