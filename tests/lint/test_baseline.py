"""Baseline tests: canonicalisation, round trip, ratchet semantics."""

import json

import pytest

from repro.lint import apply_baseline, lint_paths, load_baseline, write_baseline
from repro.lint.baseline import canonical_path, render_baseline
from repro.lint.findings import Finding

_DIRTY = "def f(acc=[]):\n    return acc\n"


def _finding(path, rule_id="RL-H001", line=1):
    return Finding(path=path, line=line, col=0, rule_id=rule_id, message="m")


class TestCanonicalPath:
    def test_absolute_and_relative_src_paths_agree(self):
        assert canonical_path("/root/repo/src/repro/em/waves.py") == (
            canonical_path("src/repro/em/waves.py")
        )

    def test_tests_anchor(self):
        assert canonical_path("/x/tests/lint/test_cli.py") == (
            "tests/lint/test_cli.py"
        )

    def test_unanchored_path_is_kept_verbatim(self):
        assert canonical_path("scratch/mod.py") == "scratch/mod.py"


class TestBaselineDocument:
    def test_render_groups_counts_by_path_and_rule(self):
        findings = [
            _finding("src/repro/a.py", line=1),
            _finding("src/repro/a.py", line=9),
            _finding("src/repro/b.py", rule_id="RL-H002"),
        ]
        payload = json.loads(render_baseline(findings))
        assert payload["tool"] == "reprolint"
        assert payload["entries"]["src/repro/a.py"]["RL-H001"] == 2
        assert payload["entries"]["src/repro/b.py"]["RL-H002"] == 1

    def test_load_rejects_foreign_documents(self, tmp_path):
        doc = tmp_path / "baseline.json"
        doc.write_text('{"tool": "other", "version": 1, "entries": {}}')
        with pytest.raises(ValueError, match="not a reprolint baseline"):
            load_baseline(doc)

    def test_load_rejects_unknown_format_version(self, tmp_path):
        doc = tmp_path / "baseline.json"
        doc.write_text('{"tool": "reprolint", "version": 99, "entries": {}}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(doc)


class TestApplyBaseline:
    def test_counts_within_budget_are_suppressed(self):
        findings = [_finding("src/repro/a.py", line=n) for n in (1, 2)]
        allowed = {("src/repro/a.py", "RL-H001"): 2}
        assert apply_baseline(findings, allowed) == []

    def test_excess_findings_survive(self):
        findings = [_finding("src/repro/a.py", line=n) for n in (1, 2, 3)]
        allowed = {("src/repro/a.py", "RL-H001"): 2}
        survivors = apply_baseline(findings, allowed)
        assert len(survivors) == 1
        assert survivors[0].line == 3

    def test_unbaselined_rules_always_fire(self):
        findings = [_finding("src/repro/a.py", rule_id="RL-H002")]
        allowed = {("src/repro/a.py", "RL-H001"): 5}
        assert apply_baseline(findings, allowed) == findings


class TestRoundTrip:
    def test_write_relint_is_clean_and_new_violations_fire(self, tmp_path):
        tree = tmp_path / "src" / "repro" / "pkg"
        tree.mkdir(parents=True)
        (tree / "legacy.py").write_text(_DIRTY)
        baseline = tmp_path / "baseline.json"

        first = lint_paths([tree])
        assert first
        write_baseline(baseline, first)

        second = apply_baseline(lint_paths([tree]), load_baseline(baseline))
        assert second == []

        (tree / "fresh.py").write_text(_DIRTY)
        third = apply_baseline(lint_paths([tree]), load_baseline(baseline))
        assert third
        assert all("fresh.py" in f.path for f in third)
