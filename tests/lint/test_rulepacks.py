"""Per-rule fixture tests: each rule fires on a minimal offending snippet,
stays silent on the idiomatic fix, and honours suppression comments."""

import pytest

from repro.lint import lint_source, lint_sources

from tests.lint.fixtures import RULE_FIXTURES

_BY_ID = {fixture.rule_id: fixture for fixture in RULE_FIXTURES}


def _lint(fixture, source):
    """Lint one fixture variant together with its companion modules."""
    if not fixture.extra_files:
        return lint_source(source, fixture.path)
    return lint_sources([(fixture.path, source), *fixture.extra_files])


@pytest.mark.parametrize("fixture", RULE_FIXTURES, ids=lambda f: f.rule_id)
class TestRuleFixtures:
    def test_bad_snippet_fires_exactly_this_rule(self, fixture):
        findings = _lint(fixture, fixture.bad)
        assert findings, f"{fixture.rule_id} did not fire on its bad snippet"
        assert {f.rule_id for f in findings} == {fixture.rule_id}

    def test_good_snippet_is_fully_clean(self, fixture):
        assert _lint(fixture, fixture.good) == []

    def test_suppression_comment_silences_the_rule(self, fixture):
        assert _lint(fixture, fixture.suppressed) == []

    def test_findings_carry_location_and_message(self, fixture):
        finding = _lint(fixture, fixture.bad)[0]
        assert finding.path == fixture.path
        assert finding.line >= 1
        assert finding.message
        assert finding.rule_id in finding.format()


class TestDeterminismVariants:
    def test_numpy_legacy_global_call_fires(self):
        source = (
            "import numpy as np\n"
            "__all__ = ['draw']\n"
            "def draw():\n"
            "    return np.random.rand(3)\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert [f.rule_id for f in findings] == ["RL-D001"]

    def test_from_import_of_stdlib_random_fires(self):
        source = (
            "from random import randint\n"
            "__all__ = ['draw']\n"
            "def draw():\n"
            "    return randint(0, 10)\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert [f.rule_id for f in findings] == ["RL-D001"]

    def test_seed_union_param_never_coerced_nor_forwarded_fires(self):
        source = (
            "import numpy as np\n"
            "__all__ = ['run']\n"
            "def run(seed: int | np.random.Generator = 0) -> int:\n"
            "    return 1\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert [f.rule_id for f in findings] == ["RL-D004"]

    def test_seed_forwarded_to_callee_is_accepted(self):
        source = (
            "import numpy as np\n"
            "__all__ = ['run']\n"
            "def run(seed: int | np.random.Generator = 0):\n"
            "    return build(seed)\n"
        )
        assert lint_source(source, "src/repro/sim/mod.py") == []

    def test_determinism_rules_skip_test_modules(self):
        source = "import random\nrandom.seed(0)\n"
        assert lint_source(source, "tests/test_whatever.py") == []

    def test_monotonic_clock_fires_in_sim_code(self):
        source = (
            "import time\n"
            "__all__ = ['tick']\n"
            "def tick() -> float:\n"
            "    return time.perf_counter()\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert [f.rule_id for f in findings] == ["RL-D003"]

    def test_wall_clock_allowed_in_campaign_code(self):
        # RL-D003 is scoped out of repro.campaign: trial telemetry
        # legitimately measures real elapsed time.
        source = (
            "import time\n"
            "__all__ = ['now']\n"
            "def now() -> float:\n"
            "    return time.perf_counter()\n"
        )
        assert lint_source(source, "src/repro/campaign/mod.py") == []

    def test_wall_clock_allowed_in_service_code(self):
        # RL-D003 is also scoped out of repro.service: lease TTLs,
        # heartbeats and the usage ledger are wall-clock by definition.
        source = (
            "import time\n"
            "__all__ = ['lease_deadline']\n"
            "def lease_deadline(ttl_s: float) -> float:\n"
            "    return time.time() + ttl_s\n"
        )
        assert lint_source(source, "src/repro/service/mod.py") == []

    def test_other_determinism_rules_still_apply_in_campaign_code(self):
        # The campaign exemption is RL-D003 only; global-RNG use in
        # campaign code is still a finding.
        source = (
            "import random\n"
            "__all__ = ['draw']\n"
            "def draw() -> int:\n"
            "    return random.randint(0, 10)\n"
        )
        findings = lint_source(source, "src/repro/campaign/mod.py")
        assert [f.rule_id for f in findings] == ["RL-D001"]


class TestPhysicsVariants:
    def test_float_equality_outside_physical_dirs_is_allowed(self):
        source = (
            "__all__ = ['same']\n"
            "def same(x: float) -> bool:\n"
            "    return x == 0.0\n"
        )
        assert lint_source(source, "src/repro/analysis/mod.py") == []

    def test_db_minus_db_is_allowed(self):
        source = (
            "__all__ = ['margin']\n"
            "def margin(rx_dbm: float, floor_dbm: float) -> float:\n"
            "    return rx_dbm - floor_dbm\n"
        )
        assert lint_source(source, "src/repro/em/mod.py") == []

    def test_call_boundary_stops_unit_propagation(self):
        source = (
            "__all__ = ['total']\n"
            "def total(p_dbm: float, q_w: float) -> float:\n"
            "    return dbm_to_w(p_dbm) + q_w\n"
        )
        assert lint_source(source, "src/repro/em/mod.py") == []

    def test_record_dataclass_without_constructor_is_exempt(self):
        source = (
            "from dataclasses import dataclass\n"
            "__all__ = ['Sample']\n"
            "@dataclass\n"
            "class Sample:\n"
            "    power_w: float\n"
        )
        assert lint_source(source, "src/repro/em/mod.py") == []

    def test_post_init_field_validation_is_recognised(self):
        source = (
            "from dataclasses import dataclass\n"
            "from repro.utils.validation import check_positive\n"
            "__all__ = ['Model']\n"
            "@dataclass\n"
            "class Model:\n"
            "    width: float\n"
            "    def __post_init__(self) -> None:\n"
            "        check_positive('width', self.width)\n"
        )
        assert lint_source(source, "src/repro/network/mod.py") == []

    def test_post_init_missing_field_validation_fires(self):
        source = (
            "from dataclasses import dataclass\n"
            "__all__ = ['Model']\n"
            "@dataclass\n"
            "class Model:\n"
            "    width: float\n"
            "    def __post_init__(self) -> None:\n"
            "        pass\n"
        )
        findings = lint_source(source, "src/repro/network/mod.py")
        assert [f.rule_id for f in findings] == ["RL-P003"]
        assert "width" in findings[0].message


class TestHygieneVariants:
    def test_private_module_may_omit_all(self):
        source = "X = 1\n"
        assert lint_source(source, "src/repro/_internal.py") == []

    def test_multiple_findings_are_sorted_by_line(self):
        source = (
            "def f(id: int, acc: list = []) -> list:\n"
            "    try:\n"
            "        acc.append(id)\n"
            "    except:\n"
            "        pass\n"
            "    return acc\n"
        )
        findings = lint_source(source, "src/repro/analysis/mod.py")
        ids = [f.rule_id for f in findings]
        assert sorted(ids) == ["RL-H001", "RL-H002", "RL-H003", "RL-H004"]
        assert [f.line for f in findings] == sorted(f.line for f in findings)


class TestConcurrencyVariants:
    def test_check_same_thread_false_exempts_cross_thread_conn(self):
        # Opting out of sqlite's own thread check is an explicit claim
        # that the caller serialises access; RL-C001 must respect it.
        source = (
            "import sqlite3\n"
            "import threading\n"
            "__all__ = ['Worker']\n"
            "class Worker:\n"
            "    def __init__(self, path: str) -> None:\n"
            "        self.conn = sqlite3.connect(path, check_same_thread=False)\n"
            "        self._t = threading.Thread(target=self._loop, daemon=True)\n"
            "        self._t.start()\n"
            "    def _loop(self) -> None:\n"
            "        self.conn.execute('SELECT 1')\n"
            "    def summary(self) -> None:\n"
            "        self.conn.execute('SELECT 2')\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert "RL-C001" not in {f.rule_id for f in findings}

    def test_conn_used_from_one_side_only_is_clean(self):
        source = (
            "import sqlite3\n"
            "import threading\n"
            "__all__ = ['Worker']\n"
            "class Worker:\n"
            "    def __init__(self, path: str) -> None:\n"
            "        self.conn = sqlite3.connect(path)\n"
            "        self._t = threading.Thread(target=self._loop, daemon=True)\n"
            "        self._t.start()\n"
            "    def _loop(self) -> None:\n"
            "        pass\n"
            "    def summary(self) -> None:\n"
            "        self.conn.execute('SELECT 2')\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert "RL-C001" not in {f.rule_id for f in findings}

    def test_writes_in_init_are_happens_before_exempt(self):
        source = (
            "import threading\n"
            "__all__ = ['Counter']\n"
            "class Counter:\n"
            "    def __init__(self) -> None:\n"
            "        self.total = 0\n"
            "        self._t = threading.Thread(target=self._tick)\n"
            "        self._t.start()\n"
            "    def _tick(self) -> None:\n"
            "        print(self.total)\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert "RL-C002" not in {f.rule_id for f in findings}

    def test_no_thread_entry_means_no_race(self):
        source = (
            "__all__ = ['Counter']\n"
            "class Counter:\n"
            "    def __init__(self) -> None:\n"
            "        self.total = 0\n"
            "    def tick(self) -> None:\n"
            "        self.total += 1\n"
        )
        assert lint_source(source, "src/repro/sim/mod.py") == []

    def test_daemon_thread_is_exempt_from_join_check(self):
        source = (
            "import threading\n"
            "__all__ = ['run']\n"
            "def run(work) -> None:\n"
            "    t = threading.Thread(target=work, daemon=True)\n"
            "    t.start()\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert "RL-C005" not in {f.rule_id for f in findings}

    def test_escaped_thread_is_exempt_from_join_check(self):
        # Returning the handle transfers the join obligation to the
        # caller; the rule only flags locally-dropped threads.
        source = (
            "import threading\n"
            "__all__ = ['spawn']\n"
            "def spawn(work):\n"
            "    t = threading.Thread(target=work)\n"
            "    t.start()\n"
            "    return t\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert "RL-C005" not in {f.rule_id for f in findings}

    def test_acquire_with_try_finally_release_is_clean(self):
        source = (
            "import threading\n"
            "__all__ = ['bump']\n"
            "_LOCK = threading.Lock()\n"
            "_N = 0\n"
            "def bump() -> None:\n"
            "    global _N\n"
            "    _LOCK.acquire()\n"
            "    try:\n"
            "        _N += 1\n"
            "    finally:\n"
            "        _LOCK.release()\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert "RL-C005" not in {f.rule_id for f in findings}

    def test_bare_acquire_without_finally_fires(self):
        source = (
            "import threading\n"
            "__all__ = ['bump']\n"
            "_LOCK = threading.Lock()\n"
            "_N = 0\n"
            "def bump() -> None:\n"
            "    global _N\n"
            "    _LOCK.acquire()\n"
            "    _N += 1\n"
            "    _LOCK.release()\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert "RL-C005" in {f.rule_id for f in findings}

    def test_resource_returned_to_caller_is_not_a_leak(self):
        source = (
            "__all__ = ['open_log']\n"
            "def open_log(path: str):\n"
            "    handle = open(path, 'a', encoding='utf-8')\n"
            "    return handle\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert "RL-C004" not in {f.rule_id for f in findings}

    def test_signal_handler_setting_an_event_is_safe(self):
        source = (
            "import signal\n"
            "import threading\n"
            "__all__ = ['STOP', 'install']\n"
            "STOP = threading.Event()\n"
            "def _handler(signum, frame) -> None:\n"
            "    STOP.set()\n"
            "def install() -> None:\n"
            "    signal.signal(signal.SIGTERM, _handler)\n"
        )
        assert lint_source(source, "src/repro/sim/mod.py") == []

    def test_unsafe_call_reached_through_helper_fires(self):
        # The handler itself is clean; the logging call sits one edge
        # away — context propagation must carry the signal label there.
        source = (
            "import logging\n"
            "import signal\n"
            "__all__ = ['install']\n"
            "_LOG = logging.getLogger(__name__)\n"
            "def _note() -> None:\n"
            "    _LOG.warning('stopping')\n"
            "def _handler(signum, frame) -> None:\n"
            "    _note()\n"
            "def install() -> None:\n"
            "    signal.signal(signal.SIGTERM, _handler)\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert "RL-C003" in {f.rule_id for f in findings}
