"""Engine-level tests: suppression parsing, dispatch, scoping, registry."""

import ast

import pytest

from repro.lint import LintEngine, Rule, lint_source, register
from repro.lint.engine import (
    PARSE_ERROR_ID,
    ModuleContext,
    collect_suppressions,
    lint_paths,
)
from repro.lint.registry import all_rules


class TestSuppressionParsing:
    def test_single_rule_on_own_line(self):
        sup = collect_suppressions("x = 1  # reprolint: disable=RL-D001\n")
        assert sup == {1: {"RL-D001"}}

    def test_comma_separated_rules(self):
        sup = collect_suppressions("x = 1  # reprolint: disable=RL-D001,RL-H002\n")
        assert sup == {1: {"RL-D001", "RL-H002"}}

    def test_disable_next_targets_following_line(self):
        sup = collect_suppressions("# reprolint: disable-next=RL-P001\nx = 1\n")
        assert sup == {2: {"RL-P001"}}

    def test_disable_all_token(self):
        sup = collect_suppressions("x = 1  # reprolint: disable=all\n")
        assert sup == {1: {"all"}}

    def test_bracketed_ignore_alias(self):
        sup = collect_suppressions("x = 1  # reprolint: ignore[RL-D001]\n")
        assert sup == {1: {"RL-D001"}}

    def test_bracketed_ignore_with_multiple_rules(self):
        sup = collect_suppressions(
            "x = 1  # reprolint: ignore[RL-D001, RL-H002]\n"
        )
        assert sup == {1: {"RL-D001", "RL-H002"}}

    def test_bracketed_ignore_next_targets_following_line(self):
        sup = collect_suppressions("# reprolint: ignore-next[RL-P001]\nx = 1\n")
        assert sup == {2: {"RL-P001"}}

    def test_unbracketed_ignore_is_not_a_suppression(self):
        # Only the bracketed form is valid for the ``ignore`` spelling.
        sup = collect_suppressions("x = 1  # reprolint: ignore=RL-D001\n")
        assert sup == {}

    def test_hash_inside_string_is_not_a_suppression(self):
        sup = collect_suppressions('x = "# reprolint: disable=RL-D001"\n')
        assert sup == {}

    def test_trailing_prose_after_rule_id_is_ignored(self):
        sup = collect_suppressions(
            "x = 1  # reprolint: disable=RL-P001 (exact-zero sentinel)\n"
        )
        assert sup == {1: {"RL-P001"}}

    def test_disable_all_suppresses_any_finding(self):
        source = (
            "def f(acc: list = []):  # reprolint: disable=all\n"
            "    return acc\n"
        )
        findings = lint_source(source, "src/repro/analysis/_mod.py")
        assert findings == []


class TestEngineBasics:
    def test_syntax_error_becomes_parse_finding(self):
        findings = lint_source("def broken(:\n", "src/repro/sim/bad.py")
        assert len(findings) == 1
        assert findings[0].rule_id == PARSE_ERROR_ID
        assert "does not parse" in findings[0].message

    def test_engine_exposes_its_rule_classes(self):
        engine = LintEngine()
        ids = [rule.rule_id for rule in engine.rule_classes]
        assert ids == sorted(ids)
        assert "RL-D001" in ids

    def test_restricted_engine_runs_only_given_rules(self):
        from repro.lint.rules.hygiene import NoBareExcept

        engine = LintEngine(rules=[NoBareExcept])
        source = "def f(acc=[]):\n    try:\n        pass\n    except:\n        pass\n"
        findings = engine.lint_source(source, "src/repro/x.py")
        assert {f.rule_id for f in findings} == {"RL-H002"}

    def test_lint_paths_walks_directories(self, tmp_path):
        clean = tmp_path / "pkg" / "good.py"
        clean.parent.mkdir()
        clean.write_text("__all__ = []\n")
        dirty = tmp_path / "pkg" / "bad.py"
        dirty.write_text("def f(acc=[]):\n    return acc\n")
        findings = lint_paths([tmp_path])
        assert {f.rule_id for f in findings} >= {"RL-H001", "RL-H003"}
        assert all("good.py" not in f.path for f in findings)

    def test_lint_paths_missing_target_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["definitely/not/a/path.py"])

    def test_pycache_directories_are_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("def f(acc=[]):\n    return acc\n")
        assert lint_paths([tmp_path]) == []


class TestOverlappingTargets:
    def test_overlapping_targets_lint_each_file_once(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        dirty = pkg / "bad.py"
        dirty.write_text("def f(acc=[]):\n    return acc\n")
        once = lint_paths([pkg])
        twice = lint_paths([pkg, dirty, str(pkg)])
        assert [f.format() for f in twice] == [f.format() for f in once]

    def test_resolve_lint_files_dedupes_relative_and_absolute(self, tmp_path):
        from repro.lint.engine import resolve_lint_files

        target = tmp_path / "mod.py"
        target.write_text("__all__ = []\n")
        files = resolve_lint_files([target, str(target), tmp_path])
        assert len(files) == 1


class TestMultiLineSuppression:
    def test_suppression_on_any_physical_line_of_statement(self):
        # The offending call spans three lines; the disable comment sits on
        # the *last* one, far from the reported lineno.
        source = (
            "import random\n"
            "__all__ = ['draw']\n"
            "def draw() -> float:\n"
            "    return random.uniform(\n"
            "        0.0,\n"
            "        1.0,\n"
            "    )  # reprolint: disable=RL-D001\n"
        )
        assert lint_source(source, "src/repro/sim/mod.py") == []

    def test_suppression_on_first_line_still_works(self):
        source = (
            "import random\n"
            "__all__ = ['draw']\n"
            "def draw() -> float:\n"
            "    return random.uniform(  # reprolint: disable=RL-D001\n"
            "        0.0,\n"
            "        1.0,\n"
            "    )\n"
        )
        assert lint_source(source, "src/repro/sim/mod.py") == []

    def test_unrelated_rule_id_does_not_suppress(self):
        source = (
            "import random\n"
            "__all__ = ['draw']\n"
            "def draw() -> float:\n"
            "    return random.uniform(\n"
            "        0.0,\n"
            "        1.0,\n"
            "    )  # reprolint: disable=RL-H001\n"
        )
        findings = lint_source(source, "src/repro/sim/mod.py")
        assert [f.rule_id for f in findings] == ["RL-D001"]


class TestModuleContext:
    def test_import_alias_resolution(self):
        ctx = ModuleContext("src/repro/x.py", "")
        ctx.record_imports(ast.parse("import numpy as np").body[0])
        call = ast.parse("np.random.rand(3)").body[0].value
        assert ctx.resolve_call_name(call.func) == "numpy.random.rand"

    def test_from_import_resolution(self):
        ctx = ModuleContext("src/repro/x.py", "")
        ctx.record_imports(
            ast.parse("from numpy.random import default_rng as mk").body[0]
        )
        call = ast.parse("mk()").body[0].value
        assert ctx.resolve_call_name(call.func) == "numpy.random.default_rng"

    def test_dynamic_targets_resolve_to_none(self):
        ctx = ModuleContext("src/repro/x.py", "")
        call = ast.parse("funcs[0]()").body[0].value
        assert ctx.resolve_call_name(call.func) is None

    def test_test_code_classification(self):
        assert ModuleContext("tests/em/test_waves.py", "").is_test_code
        assert ModuleContext("benchmarks/bench_sim.py", "").is_test_code
        assert ModuleContext("tests/conftest.py", "").is_test_code
        assert not ModuleContext("src/repro/em/waves.py", "").is_test_code


class TestRegistry:
    def test_all_rules_are_sorted_and_unique(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        assert len(ids) == 14

    def test_combined_registry_counts_project_rules(self):
        from repro.lint.registry import all_project_rules

        project_ids = [rule.rule_id for rule in all_project_rules()]
        assert project_ids == sorted(project_ids)
        assert len(project_ids) == 13
        per_file_ids = {rule.rule_id for rule in all_rules()}
        assert per_file_ids.isdisjoint(project_ids)

    def test_ruleset_signature_is_stable_and_short(self):
        from repro.lint.registry import ruleset_signature

        sig = ruleset_signature()
        assert sig == ruleset_signature()
        assert len(sig) == 16
        int(sig, 16)  # hex digest prefix

    def test_get_rule_finds_both_kinds(self):
        from repro.lint.registry import get_rule

        assert get_rule("RL-D001").rule_id == "RL-D001"
        assert get_rule("RL-H007").rule_id == "RL-H007"

    def test_register_rejects_malformed_rule_id(self):
        with pytest.raises(ValueError, match="convention"):

            @register
            class BadId(Rule):
                rule_id = "X-1"
                title = "nope"
                node_types = (ast.Call,)

    def test_register_rejects_duplicate_rule_id(self):
        all_rules()  # ensure the built-in packs are registered first
        with pytest.raises(ValueError, match="duplicate"):

            @register
            class Clone(Rule):
                rule_id = "RL-D001"
                title = "imposter"
                node_types = (ast.Call,)

    def test_register_requires_node_types(self):
        with pytest.raises(ValueError, match="node types"):

            @register
            class NoNodes(Rule):
                rule_id = "RL-Z999"
                title = "subscribes to nothing"
                node_types = ()
