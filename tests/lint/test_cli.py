"""CLI tests for ``python -m repro lint``."""

import json

from repro.cli import main


def _write_pkg(tmp_path, name, source):
    target = tmp_path / name
    target.write_text(source)
    return str(target)


class TestLintCommand:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        path = _write_pkg(tmp_path, "clean.py", "__all__ = []\n")
        assert main(["lint", path]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_findings_exit_one_with_report_lines(self, tmp_path, capsys):
        path = _write_pkg(
            tmp_path, "dirty.py", "def f(acc=[]):\n    return acc\n"
        )
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "RL-H001" in out
        assert "dirty.py" in out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        path = _write_pkg(
            tmp_path, "dirty.py", "def f(acc=[]):\n    return acc\n"
        )
        assert main(["lint", "--format", "json", path]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "reprolint"
        assert payload["count"] == len(payload["findings"]) > 0
        first = payload["findings"][0]
        assert {"path", "line", "col", "rule", "message"} <= set(first)

    def test_missing_path_exits_two_and_reports_on_stderr(
        self, tmp_path, capsys
    ):
        missing = str(tmp_path / "nope.py")
        assert main(["lint", missing]) == 2
        captured = capsys.readouterr()
        assert "reprolint" in captured.err
        assert "nope.py" in captured.err
        assert captured.out == ""

    def test_list_rules_prints_catalogue(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL-D001", "RL-P003", "RL-H004", "RL-H007"):
            assert rule_id in out

    def test_statistics_go_to_stderr(self, tmp_path, capsys):
        path = _write_pkg(
            tmp_path, "dirty.py", "def f(acc=[]):\n    return acc\n"
        )
        assert main(["lint", "--statistics", path]) == 1
        captured = capsys.readouterr()
        assert "RL-H001" in captured.err
        assert "total" in captured.err

    def test_statistics_report_per_pack_timings(self, tmp_path, capsys):
        path = _write_pkg(
            tmp_path, "dirty.py", "def f(acc=[]):\n    return acc\n"
        )
        assert main(["lint", "--statistics", path]) == 1
        err = capsys.readouterr().err
        assert "pack timings:" in err
        timing_section = err.split("pack timings:")[1]
        # Every registered pack ran and reports a time, the new
        # array-semantics pack included.
        for pack in ("RL-N", "RL-C", "RL-H"):
            assert pack in timing_section
        assert "ms" in timing_section

    def test_sarif_format_is_valid_json(self, tmp_path, capsys):
        path = _write_pkg(
            tmp_path, "dirty.py", "def f(acc=[]):\n    return acc\n"
        )
        assert main(["lint", "--format", "sarif", path]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"]

    def test_update_baseline_then_enforce_round_trip(self, tmp_path, capsys):
        path = _write_pkg(
            tmp_path, "dirty.py", "def f(acc=[]):\n    return acc\n"
        )
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", "--baseline", baseline, "--update-baseline", path]) == 0
        capsys.readouterr()
        assert main(["lint", "--baseline", baseline, path]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        path = _write_pkg(tmp_path, "clean.py", "__all__ = []\n")
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        assert main(["lint", "--baseline", str(bad), path]) == 2
        assert "baseline" in capsys.readouterr().err


class TestRuleSelection:
    # Trips RL-H001 (mutable default) and RL-H003 (missing __all__).
    DIRTY = "def f(acc=[]):\n    return acc\n"

    def test_select_runs_only_the_named_rule(self, tmp_path, capsys):
        path = _write_pkg(tmp_path, "dirty.py", self.DIRTY)
        assert main(["lint", "--select", "RL-H001", path]) == 1
        out = capsys.readouterr().out
        assert "RL-H001" in out
        assert "RL-H003" not in out

    def test_select_prefix_expands_to_the_pack(self, tmp_path, capsys):
        path = _write_pkg(tmp_path, "dirty.py", self.DIRTY)
        assert main(["lint", "--select", "RL-H", path]) == 1
        out = capsys.readouterr().out
        assert "RL-H001" in out
        assert "RL-H003" in out

    def test_ignore_drops_the_named_rule(self, tmp_path, capsys):
        path = _write_pkg(tmp_path, "dirty.py", self.DIRTY)
        assert main(["lint", "--ignore", "RL-H003", path]) == 1
        out = capsys.readouterr().out
        assert "RL-H001" in out
        assert "RL-H003" not in out

    def test_ignore_applies_after_select(self, tmp_path, capsys):
        path = _write_pkg(tmp_path, "dirty.py", self.DIRTY)
        assert (
            main(["lint", "--select", "RL-H", "--ignore", "RL-H001", path])
            == 1
        )
        out = capsys.readouterr().out
        assert "RL-H001" not in out
        assert "RL-H003" in out

    def test_selecting_everything_away_is_clean(self, tmp_path, capsys):
        path = _write_pkg(tmp_path, "dirty.py", self.DIRTY)
        assert (
            main(["lint", "--select", "RL-H001", "--ignore", "RL-H001", path])
            == 0
        )
        assert "0 findings" in capsys.readouterr().out

    def test_comma_separated_and_repeated_selectors(self, tmp_path, capsys):
        path = _write_pkg(tmp_path, "dirty.py", self.DIRTY)
        code = main(
            ["lint", "--select", "RL-H001,RL-H003", "--select", "RL-D", path]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "RL-H001" in out
        assert "RL-H003" in out

    def test_unknown_selector_exits_two_on_stderr(self, tmp_path, capsys):
        path = _write_pkg(tmp_path, "clean.py", "__all__ = []\n")
        assert main(["lint", "--select", "RL-ZZZ", path]) == 2
        captured = capsys.readouterr()
        assert "RL-ZZZ" in captured.err
        assert "--list-rules" in captured.err
        assert captured.out == ""
