"""Flow-pass variant tests beyond the canonical per-rule fixtures."""

from repro.lint import lint_sources


def _ids(findings):
    return [f.rule_id for f in findings]


_CONSUMER = (
    "src/repro/pkg/helper.py",
    "__all__ = ['consume']\n\n\ndef consume(rng) -> float:\n"
    "    return float(rng.standard_normal())\n",
)


class TestRawGeneratorCrossing:
    def test_stream_derived_generator_is_sanctioned(self):
        main = (
            "src/repro/pkg/main.py",
            "from repro.pkg.helper import consume\n"
            "from repro.utils.rng import RngFactory\n"
            "__all__: list[str] = []\n"
            "def run(factory: RngFactory) -> float:\n"
            "    rng = factory.stream('main')\n"
            "    return consume(rng)\n",
        )
        assert lint_sources([main, _CONSUMER]) == []

    def test_raw_generator_within_one_module_is_allowed(self):
        main = (
            "src/repro/pkg/main.py",
            "import numpy as np\n"
            "__all__: list[str] = []\n"
            "def local(rng) -> float:\n"
            "    return float(rng.random())\n"
            "def run(seed: int) -> float:\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return local(rng)\n",
        )
        assert lint_sources([main]) == []

    def test_raw_generator_to_numpy_api_is_allowed(self):
        main = (
            "src/repro/pkg/main.py",
            "import numpy as np\n"
            "__all__: list[str] = []\n"
            "def run(seed: int) -> float:\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return float(np.mean(rng.random(4)))\n",
        )
        assert lint_sources([main]) == []

    def test_keyword_argument_crossing_fires(self):
        main = (
            "src/repro/pkg/main.py",
            "import numpy as np\n"
            "from repro.pkg.helper import consume\n"
            "__all__: list[str] = []\n"
            "def run(seed: int) -> float:\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return consume(rng=rng)\n",
        )
        assert _ids(lint_sources([main, _CONSUMER])) == ["RL-D005"]

    def test_scopes_do_not_leak_names_across_functions(self):
        # `rng` is raw in one function and sanctioned in another; the
        # sanctioned function's cross-module call must not be flagged.
        main = (
            "src/repro/pkg/main.py",
            "import numpy as np\n"
            "from repro.pkg.helper import consume\n"
            "from repro.utils.rng import coerce_rng\n"
            "__all__: list[str] = []\n"
            "def local_only(seed: int) -> float:\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return float(rng.random())\n"
            "def run(seed: int) -> float:\n"
            "    rng = coerce_rng(seed)\n"
            "    return consume(rng)\n",
        )
        assert lint_sources([main, _CONSUMER]) == []


class TestExternalSeedTaint:
    def test_argv_seed_fires(self):
        mod = (
            "src/repro/pkg/cfg.py",
            "import sys\n"
            "from repro.utils.rng import make_rng\n"
            "__all__: list[str] = []\n"
            "def build():\n"
            "    return make_rng(seed=int(sys.argv[1]))\n",
        )
        assert _ids(lint_sources([mod])) == ["RL-D006"]

    def test_getenv_seed_fires(self):
        mod = (
            "src/repro/pkg/cfg.py",
            "import os\n"
            "from repro.utils.rng import make_rng\n"
            "__all__: list[str] = []\n"
            "def build():\n"
            "    return make_rng(seed=int(os.getenv('SEED', '0')))\n",
        )
        assert _ids(lint_sources([mod])) == ["RL-D006"]

    def test_tainted_positional_arg_to_project_seed_param_fires(self):
        maker = (
            "src/repro/pkg/maker.py",
            "__all__ = ['build']\n\n\ndef build(seed: int):\n    return seed\n",
        )
        mod = (
            "src/repro/pkg/cfg.py",
            "import os\n"
            "from repro.pkg.maker import build\n"
            "__all__: list[str] = []\n"
            "def main():\n"
            "    return build(int(os.environ['SEED']))\n",
        )
        assert _ids(lint_sources([mod, maker])) == ["RL-D006"]

    def test_sanitized_seed_is_clean(self):
        mod = (
            "src/repro/pkg/cfg.py",
            "import sys\n"
            "from repro.utils.rng import make_rng\n"
            "from repro.utils.validation import check_in_range\n"
            "__all__: list[str] = []\n"
            "def build():\n"
            "    seed_raw = int(sys.argv[1])\n"
            "    return make_rng(seed=check_in_range(seed_raw, 0, 2**32))\n",
        )
        assert lint_sources([mod]) == []

    def test_literal_seed_is_clean(self):
        mod = (
            "src/repro/pkg/cfg.py",
            "from repro.utils.rng import make_rng\n"
            "__all__: list[str] = []\n"
            "def build():\n"
            "    return make_rng(seed=1234)\n",
        )
        assert lint_sources([mod]) == []

    def test_tainted_attribute_seed_write_fires(self):
        mod = (
            "src/repro/pkg/cfg.py",
            "import os\n"
            "__all__: list[str] = []\n"
            "class Config:\n"
            "    def __init__(self) -> None:\n"
            "        self.seed = int(os.environ['SEED'])\n",
        )
        assert _ids(lint_sources([mod])) == ["RL-D006"]


class TestCrossModuleUnitInference:
    def test_return_body_inference_without_name_suffix(self):
        conv = (
            "src/repro/pkg/conv.py",
            "__all__ = ['floor']\n\n\ndef floor(bandwidth_hz: float) -> float:\n"
            "    noise_dbm = -174.0 + bandwidth_hz\n"
            "    return noise_dbm\n",
        )
        mod = (
            "src/repro/pkg/link.py",
            "from repro.pkg.conv import floor\n"
            "__all__: list[str] = []\n"
            "def margin(tx_power_w: float) -> float:\n"
            "    return tx_power_w - floor(180.0)\n",
        )
        assert _ids(lint_sources([mod, conv])) == ["RL-P004"]

    def test_converter_call_name_suffix_classifies_result(self):
        mod = (
            "src/repro/pkg/link.py",
            "from repro.utils.units import dbm_to_w\n"
            "__all__: list[str] = []\n"
            "def total(p_dbm: float, q_w: float) -> float:\n"
            "    p_lin = dbm_to_w(p_dbm)\n"
            "    return p_lin + q_w\n",
        )
        assert lint_sources([mod]) == []

    def test_same_unit_propagated_sum_is_clean(self):
        mod = (
            "src/repro/pkg/link.py",
            "__all__: list[str] = []\n"
            "def total(a_w: float, b_w: float) -> float:\n"
            "    first = a_w\n"
            "    second = b_w\n"
            "    return first + second\n",
        )
        assert lint_sources([mod]) == []

    def test_conflicting_bindings_stay_unclassified(self):
        mod = (
            "src/repro/pkg/link.py",
            "__all__: list[str] = []\n"
            "def pick(a_w: float, b_dbm: float, flag: bool) -> float:\n"
            "    value = a_w\n"
            "    if flag:\n"
            "        value = b_dbm\n"
            "    return value + a_w\n",
        )
        assert lint_sources([mod]) == []


class TestExportSurface:
    def test_dead_export_fires_in_multi_module_project(self):
        a = (
            "src/repro/pkg/a.py",
            "__all__ = ['used', 'unused']\n\n\ndef used() -> int:\n"
            "    return 1\n\n\ndef unused() -> int:\n    return 2\n",
        )
        b = (
            "src/repro/pkg/b.py",
            "from repro.pkg.a import used\n"
            "__all__: list[str] = []\n"
            "def f() -> int:\n    return used()\n",
        )
        findings = lint_sources([a, b])
        assert _ids(findings) == ["RL-H006"]
        assert "unused" in findings[0].message

    def test_package_init_reexports_are_exempt(self):
        init = (
            "src/repro/pkg/__init__.py",
            "from repro.pkg.impl import thing\n\n__all__ = ['thing']\n",
        )
        impl = (
            "src/repro/pkg/impl.py",
            "__all__ = ['thing']\n\n\ndef thing() -> int:\n    return 1\n",
        )
        user = (
            "src/repro/pkg2/user.py",
            "from repro.pkg.impl import thing\n"
            "__all__: list[str] = []\n"
            "def g() -> int:\n    return thing()\n",
        )
        assert lint_sources([init, impl, user]) == []

    def test_underscore_names_are_not_checked_for_consumption(self):
        a = (
            "src/repro/pkg/a.py",
            "__all__ = ['_internal']\n\n\ndef _internal() -> int:\n    return 1\n",
        )
        b = (
            "src/repro/pkg/b.py",
            "import repro.pkg.a\n"
            "__all__: list[str] = []\n"
            "X = repro.pkg.a\n",
        )
        assert lint_sources([a, b]) == []


class TestImportCycles:
    def test_three_module_cycle_reports_full_chain(self):
        mods = [
            (
                "src/repro/pkg/a.py",
                "import repro.pkg.b\n__all__: list[str] = []\n",
            ),
            (
                "src/repro/pkg/b.py",
                "import repro.pkg.c\n__all__: list[str] = []\n",
            ),
            (
                "src/repro/pkg/c.py",
                "import repro.pkg.a\n__all__: list[str] = []\n",
            ),
        ]
        findings = lint_sources(mods)
        assert _ids(findings) == ["RL-H007"]
        assert "repro.pkg.a -> repro.pkg.b -> repro.pkg.c -> repro.pkg.a" in (
            findings[0].message
        )

    def test_type_checking_guard_breaks_the_cycle(self):
        mods = [
            (
                "src/repro/pkg/a.py",
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    import repro.pkg.b\n"
                "__all__: list[str] = []\n",
            ),
            (
                "src/repro/pkg/b.py",
                "import repro.pkg.a\n__all__: list[str] = []\n",
            ),
        ]
        assert lint_sources(mods) == []

    def test_lazy_import_breaks_the_cycle(self):
        mods = [
            (
                "src/repro/pkg/a.py",
                "__all__: list[str] = []\n"
                "def f() -> int:\n"
                "    from repro.pkg.b import g\n"
                "    return g()\n",
            ),
            (
                "src/repro/pkg/b.py",
                "import repro.pkg.a\n__all__: list[str] = []\n",
            ),
        ]
        assert lint_sources(mods) == []
