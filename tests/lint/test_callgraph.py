"""Unit tests for the project-wide call graph and execution contexts.

Covers entry-point discovery (threads, signals, process pools, handler
classes), context propagation along call edges, the conflict predicate,
and — per the issue checklist — a thread target passed by reference
through a local alias rather than named inline.
"""

from textwrap import dedent

from repro.lint.callgraph import CallGraph, conflict, conflicting_pair
from repro.lint.project import ProjectModel


def _graph(*items):
    """Build a CallGraph from ``(path, source)`` pairs."""
    return CallGraph(
        ProjectModel.from_sources(
            [(path, dedent(source)) for path, source in items]
        )
    )


def _entry_keys(graph, kind=None):
    return {e.key for e in graph.entries if kind is None or e.kind == kind}


class TestEntryDiscovery:
    def test_thread_target_method_is_an_entry(self):
        graph = _graph(
            (
                "src/repro/svc/worker.py",
                """
                import threading

                class Worker:
                    def start(self):
                        self._t = threading.Thread(target=self._loop)
                        self._t.start()

                    def _loop(self):
                        pass
                """,
            )
        )
        entries = [e for e in graph.entries if e.kind == "thread"]
        assert [e.key for e in entries] == ["repro.svc.worker:Worker._loop"]
        assert entries[0].via_self is True
        assert entries[0].label == "thread:repro.svc.worker:Worker._loop"

    def test_thread_target_passed_by_reference(self):
        # The target is bound to a local name first; resolution follows
        # the single-assignment alias back to the method.
        graph = _graph(
            (
                "src/repro/svc/worker.py",
                """
                import threading

                class Worker:
                    def start(self):
                        fn = self._loop
                        self._t = threading.Thread(target=fn)
                        self._t.start()

                    def _loop(self):
                        pass
                """,
            )
        )
        assert "repro.svc.worker:Worker._loop" in _entry_keys(graph, "thread")

    def test_module_level_thread_target(self):
        graph = _graph(
            (
                "src/repro/svc/bg.py",
                """
                import threading

                def pump():
                    pass

                def launch():
                    threading.Thread(target=pump, daemon=True).start()
                """,
            )
        )
        entries = [e for e in graph.entries if e.kind == "thread"]
        assert [e.key for e in entries] == ["repro.svc.bg:pump"]
        assert entries[0].via_self is False

    def test_signal_handler_is_an_entry(self):
        graph = _graph(
            (
                "src/repro/svc/sig.py",
                """
                import signal

                def _handler(signum, frame):
                    pass

                def install():
                    signal.signal(signal.SIGTERM, _handler)
                """,
            )
        )
        assert _entry_keys(graph, "signal") == {"repro.svc.sig:_handler"}

    def test_process_target_is_a_process_entry(self):
        graph = _graph(
            (
                "src/repro/svc/proc.py",
                """
                import multiprocessing

                def crunch():
                    pass

                def launch():
                    multiprocessing.Process(target=crunch).start()
                """,
            )
        )
        assert _entry_keys(graph, "process") == {"repro.svc.proc:crunch"}

    def test_pool_submit_is_a_thread_entry(self):
        graph = _graph(
            (
                "src/repro/svc/pool.py",
                """
                from concurrent.futures import ThreadPoolExecutor

                def task(x):
                    return x

                def run():
                    with ThreadPoolExecutor() as pool:
                        pool.submit(task, 1)
                """,
            )
        )
        assert "repro.svc.pool:task" in _entry_keys(graph, "thread")

    def test_handler_class_methods_are_thread_entries(self):
        graph = _graph(
            (
                "src/repro/svc/http.py",
                """
                from http.server import BaseHTTPRequestHandler

                class Api(BaseHTTPRequestHandler):
                    def do_GET(self):
                        self._respond()

                    def _respond(self):
                        pass
                """,
            )
        )
        assert "repro.svc.http:Api.do_GET" in _entry_keys(graph, "thread")

    def test_plain_function_is_not_an_entry(self):
        graph = _graph(
            (
                "src/repro/svc/plain.py",
                """
                def helper():
                    pass

                def main():
                    helper()
                """,
            )
        )
        assert graph.entries == []


class TestContexts:
    SOURCE = """
        import threading

        def shared():
            pass

        def worker_only():
            pass

        def _loop():
            worker_only()
            shared()

        def main():
            shared()
            threading.Thread(target=_loop).start()
    """

    def test_entry_function_carries_its_label(self):
        graph = _graph(("src/repro/svc/mod.py", self.SOURCE))
        assert "thread:repro.svc.mod:_loop" in graph.contexts_of(
            "repro.svc.mod:_loop"
        )

    def test_contexts_propagate_to_callees(self):
        graph = _graph(("src/repro/svc/mod.py", self.SOURCE))
        assert "thread:repro.svc.mod:_loop" in graph.contexts_of(
            "repro.svc.mod:worker_only"
        )

    def test_function_called_from_both_sides_has_both_contexts(self):
        graph = _graph(("src/repro/svc/mod.py", self.SOURCE))
        contexts = graph.contexts_of("repro.svc.mod:shared")
        assert "main" in contexts
        assert "thread:repro.svc.mod:_loop" in contexts

    def test_main_only_function_stays_main_only(self):
        graph = _graph(("src/repro/svc/mod.py", self.SOURCE))
        assert graph.contexts_of("repro.svc.mod:main") == {"main"}

    def test_contexts_cross_module_boundaries(self):
        graph = _graph(
            (
                "src/repro/svc/util.py",
                """
                def leaf():
                    pass
                """,
            ),
            (
                "src/repro/svc/runner.py",
                """
                import threading

                from repro.svc.util import leaf

                def _loop():
                    leaf()

                def start():
                    threading.Thread(target=_loop).start()
                """,
            ),
        )
        assert "thread:repro.svc.runner:_loop" in graph.contexts_of(
            "repro.svc.util:leaf"
        )


class TestReachability:
    def test_reachable_from_is_transitive(self):
        graph = _graph(
            (
                "src/repro/svc/chain.py",
                """
                def c():
                    pass

                def b():
                    c()

                def a():
                    b()
                """,
            )
        )
        reach = graph.reachable_from("repro.svc.chain:a")
        assert {"repro.svc.chain:b", "repro.svc.chain:c"} <= reach

    def test_reachable_from_handles_cycles(self):
        graph = _graph(
            (
                "src/repro/svc/cycle.py",
                """
                def ping():
                    pong()

                def pong():
                    ping()
                """,
            )
        )
        reach = graph.reachable_from("repro.svc.cycle:ping")
        assert "repro.svc.cycle:pong" in reach
        assert "repro.svc.cycle:ping" in reach


class TestConflict:
    def test_distinct_thread_contexts_conflict(self):
        assert conflict("thread:m:f", "main")
        assert conflict("thread:m:f", "thread:m:g")

    def test_identical_contexts_do_not_conflict(self):
        assert not conflict("thread:m:f", "thread:m:f")
        assert not conflict("main", "main")

    def test_signal_contexts_never_conflict(self):
        # Signal handlers interleave on the main thread; they are a
        # reentrancy problem (RL-C003), not a memory-visibility one.
        assert not conflict("signal:m:h", "main")
        assert not conflict("signal:m:h", "thread:m:f")

    def test_conflicting_pair_scans_label_sets(self):
        assert conflicting_pair({"main", "thread:m:f"})
        assert not conflicting_pair({"main", "signal:m:h"})
        assert not conflicting_pair({"main"})
        assert not conflicting_pair(set())


class TestMemoisation:
    def test_of_returns_the_same_graph_per_project(self):
        project = ProjectModel.from_sources(
            [("src/repro/svc/one.py", "def f():\n    pass\n")]
        )
        assert CallGraph.of(project) is CallGraph.of(project)
