"""Per-rule fixtures for the concurrency pack (RL-C001..RL-C005).

Separate from the main table because these snippets are structurally
bigger (a race needs a class, a thread entry, and both sides of the
boundary to exist) and because several ``suppressed`` variants exercise
the bracketed ``# reprolint: ignore[...]`` suppression alias.
"""

from __future__ import annotations

from tests.lint.fixtures import RuleFixture, _src

CONCURRENCY_FIXTURES: tuple[RuleFixture, ...] = (
    RuleFixture(
        rule_id="RL-C001",
        path="src/repro/sim/snippet.py",
        bad=_src(
            """
            import sqlite3
            import threading

            __all__ = ["Worker"]


            class Worker:
                def __init__(self, path: str) -> None:
                    self.conn = sqlite3.connect(path)
                    self._thread = threading.Thread(target=self._loop, daemon=True)
                    self._thread.start()

                def _loop(self) -> None:
                    self.conn.execute("SELECT 1")

                def summary(self) -> int:
                    cur = self.conn.execute("SELECT COUNT(*) FROM t")
                    return int(cur.fetchone()[0])
            """
        ),
        good=_src(
            """
            import sqlite3
            import threading

            __all__ = ["Worker"]


            class Worker:
                def __init__(self, path: str) -> None:
                    self.path = path
                    self._thread = threading.Thread(target=self._loop, daemon=True)
                    self._thread.start()

                def _loop(self) -> None:
                    conn = sqlite3.connect(self.path)
                    try:
                        conn.execute("SELECT 1")
                    finally:
                        conn.close()

                def summary(self) -> int:
                    conn = sqlite3.connect(self.path)
                    try:
                        cur = conn.execute("SELECT COUNT(*) FROM t")
                        return int(cur.fetchone()[0])
                    finally:
                        conn.close()
            """
        ),
        suppressed=_src(
            """
            import sqlite3
            import threading

            __all__ = ["Worker"]


            class Worker:
                def __init__(self, path: str) -> None:
                    self.conn = sqlite3.connect(path)  # reprolint: ignore[RL-C001]
                    self._thread = threading.Thread(target=self._loop, daemon=True)
                    self._thread.start()

                def _loop(self) -> None:
                    self.conn.execute("SELECT 1")

                def summary(self) -> int:
                    cur = self.conn.execute("SELECT COUNT(*) FROM t")
                    return int(cur.fetchone()[0])
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-C002",
        path="src/repro/sim/snippet.py",
        bad=_src(
            """
            import threading

            __all__ = ["Counter"]


            class Counter:
                def __init__(self) -> None:
                    self.total = 0
                    self._thread = threading.Thread(target=self._tick, daemon=True)
                    self._thread.start()

                def _tick(self) -> None:
                    self.total += 1

                def read(self) -> int:
                    return self.total
            """
        ),
        good=_src(
            """
            import threading

            __all__ = ["Counter"]


            class Counter:
                def __init__(self) -> None:
                    self.total = 0
                    self._lock = threading.Lock()
                    self._thread = threading.Thread(target=self._tick, daemon=True)
                    self._thread.start()

                def _tick(self) -> None:
                    with self._lock:
                        self.total += 1

                def read(self) -> int:
                    with self._lock:
                        return self.total
            """
        ),
        suppressed=_src(
            """
            import threading

            __all__ = ["Counter"]


            class Counter:
                def __init__(self) -> None:
                    self.total = 0
                    self._thread = threading.Thread(target=self._tick, daemon=True)
                    self._thread.start()

                def _tick(self) -> None:
                    self.total += 1  # reprolint: ignore[RL-C002]

                def read(self) -> int:
                    return self.total
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-C003",
        path="src/repro/sim/snippet.py",
        bad=_src(
            """
            import logging
            import signal

            __all__ = ["install"]

            _LOG = logging.getLogger(__name__)


            def _handler(signum: int, frame: object) -> None:
                _LOG.warning("received signal %d", signum)


            def install() -> None:
                signal.signal(signal.SIGTERM, _handler)
            """
        ),
        good=_src(
            """
            import signal
            import threading

            __all__ = ["STOP", "install"]

            STOP = threading.Event()


            def _handler(signum: int, frame: object) -> None:
                STOP.set()


            def install() -> None:
                signal.signal(signal.SIGTERM, _handler)
            """
        ),
        suppressed=_src(
            """
            import logging
            import signal

            __all__ = ["install"]

            _LOG = logging.getLogger(__name__)


            def _handler(signum: int, frame: object) -> None:
                _LOG.warning("received signal %d", signum)  # reprolint: ignore[RL-C003]


            def install() -> None:
                signal.signal(signal.SIGTERM, _handler)
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-C004",
        path="src/repro/sim/snippet.py",
        bad=_src(
            """
            __all__ = ["read_header"]


            def read_header(path: str) -> str:
                handle = open(path, "r", encoding="utf-8")
                first = handle.readline()
                if not first:
                    return ""
                handle.close()
                return first
            """
        ),
        good=_src(
            """
            __all__ = ["read_header"]


            def read_header(path: str) -> str:
                with open(path, "r", encoding="utf-8") as handle:
                    return handle.readline()
            """
        ),
        suppressed=_src(
            """
            __all__ = ["read_header"]


            def read_header(path: str) -> str:
                handle = open(path, "r", encoding="utf-8")  # reprolint: disable=RL-C004
                first = handle.readline()
                if not first:
                    return ""
                handle.close()
                return first
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-C005",
        path="src/repro/sim/snippet.py",
        bad=_src(
            """
            import threading

            __all__ = ["run_once"]


            def run_once(work) -> None:
                worker = threading.Thread(target=work)
                worker.start()
            """
        ),
        good=_src(
            """
            import threading

            __all__ = ["run_once"]


            def run_once(work) -> None:
                worker = threading.Thread(target=work)
                worker.start()
                worker.join()
            """
        ),
        suppressed=_src(
            """
            import threading

            __all__ = ["run_once"]


            def run_once(work) -> None:
                worker = threading.Thread(target=work)  # reprolint: ignore[RL-C005]
                worker.start()
            """
        ),
    ),
)
