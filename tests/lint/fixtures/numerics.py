"""Per-rule fixtures for the array-semantics pack (RL-N001..RL-N005).

Separate from the main table because each snippet must carry enough
array context (allocations, annotations, shapes) for the abstract
interpreter to reason about, and every ``suppressed`` variant exercises
the bracketed ``# reprolint: ignore[...]`` suppression alias the pack's
in-tree exemptions use.  RL-N001 is scoped to the bit-for-bit layers,
so its fixture lives under ``em/``; the others are project-wide.
"""

from __future__ import annotations

from tests.lint.fixtures import RuleFixture, _src

NUMERICS_FIXTURES: tuple[RuleFixture, ...] = (
    RuleFixture(
        rule_id="RL-N001",
        path="src/repro/em/snippet.py",
        bad=_src(
            """
            import numpy as np

            __all__ = ["compact"]


            def compact(field_v_m: np.ndarray) -> np.ndarray:
                return field_v_m.astype(np.float32)
            """
        ),
        good=_src(
            """
            import numpy as np

            __all__ = ["compact"]


            def compact(field_v_m: np.ndarray) -> np.ndarray:
                return field_v_m.astype(np.float64)
            """
        ),
        suppressed=_src(
            """
            import numpy as np

            __all__ = ["compact"]


            def compact(field_v_m: np.ndarray) -> np.ndarray:
                return field_v_m.astype(np.float32)  # reprolint: ignore[RL-N001]
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-N002",
        path="src/repro/analysis/snippet.py",
        bad=_src(
            """
            import numpy as np

            __all__ = ["gaps"]


            def gaps(n: int) -> np.ndarray:
                xs = np.zeros(n, dtype=np.float64)
                ys = np.zeros((n, 1), dtype=np.float64)
                return xs - ys
            """
        ),
        good=_src(
            """
            import numpy as np

            __all__ = ["gaps"]


            def gaps(n: int) -> np.ndarray:
                xs = np.zeros(n, dtype=np.float64)
                return xs[:, None] - xs[None, :]
            """
        ),
        suppressed=_src(
            """
            import numpy as np

            __all__ = ["gaps"]


            def gaps(n: int) -> np.ndarray:
                xs = np.zeros(n, dtype=np.float64)
                ys = np.zeros((n, 1), dtype=np.float64)
                return xs - ys  # reprolint: ignore[RL-N002]
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-N003",
        path="src/repro/analysis/snippet.py",
        bad=_src(
            """
            import numpy as np

            __all__ = ["zero_head"]


            def zero_head(samples: np.ndarray) -> np.ndarray:
                head = samples[0:8]
                head[:] = 0.0
                return head
            """
        ),
        good=_src(
            """
            import numpy as np

            __all__ = ["zero_head"]


            def zero_head(samples: np.ndarray) -> np.ndarray:
                head = samples[0:8].copy()
                head[:] = 0.0
                return head
            """
        ),
        suppressed=_src(
            """
            import numpy as np

            __all__ = ["zero_head"]


            def zero_head(samples: np.ndarray) -> np.ndarray:
                head = samples[0:8]
                head[:] = 0.0  # reprolint: ignore[RL-N003]
                return head
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-N004",
        path="src/repro/analysis/snippet.py",
        bad=_src(
            """
            import numpy as np

            __all__ = ["hottest"]


            def hottest(readings: np.ndarray) -> float:
                return float(readings.max())
            """
        ),
        good=_src(
            """
            import numpy as np

            __all__ = ["hottest"]


            def hottest(readings: np.ndarray) -> float:
                if readings.size == 0:
                    return 0.0
                return float(readings.max())
            """
        ),
        suppressed=_src(
            """
            import numpy as np

            __all__ = ["hottest"]


            def hottest(readings: np.ndarray) -> float:
                return float(readings.max())  # reprolint: ignore[RL-N004]
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-N005",
        path="src/repro/analysis/snippet.py",
        bad=_src(
            """
            import numpy as np

            __all__ = ["cell_keys"]


            def cell_keys(n: int) -> np.ndarray:
                cols = np.arange(n)
                return cols * 100000
            """
        ),
        good=_src(
            """
            import numpy as np

            __all__ = ["cell_keys"]


            def cell_keys(n: int) -> np.ndarray:
                cols = np.arange(n, dtype=np.int64)
                return cols * 100000
            """
        ),
        suppressed=_src(
            """
            import numpy as np

            __all__ = ["cell_keys"]


            def cell_keys(n: int) -> np.ndarray:
                cols = np.arange(n)
                return cols * 100000  # reprolint: ignore[RL-N005]
            """
        ),
    ),
)
