"""Shared per-rule fixtures for the reprolint tests.

Each shipped rule gets one :class:`RuleFixture` with three minimal
sources: ``bad`` (the rule fires, and *only* that rule), ``good`` (the
idiomatic fix, fully clean), and ``suppressed`` (the bad snippet with an
inline ``# reprolint: disable=...`` comment).  The static-analysis gate
asserts the table covers every registered rule, so adding a rule without
a fixture fails the suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from textwrap import dedent


@dataclass(frozen=True)
class RuleFixture:
    rule_id: str
    #: Virtual path used for linting; chosen to satisfy the rule's scope.
    path: str
    bad: str
    good: str
    suppressed: str
    #: Companion ``(path, source)`` modules linted alongside every variant;
    #: used by cross-module (project) rules.  Must themselves be clean.
    extra_files: tuple[tuple[str, str], ...] = ()


def _src(text: str) -> str:
    return dedent(text).lstrip("\n")


RULE_FIXTURES: tuple[RuleFixture, ...] = (
    RuleFixture(
        rule_id="RL-D001",
        path="src/repro/sim/snippet.py",
        bad=_src(
            """
            import random

            __all__ = ["draw"]


            def draw() -> float:
                return random.random()
            """
        ),
        good=_src(
            """
            import numpy as np

            __all__ = ["draw"]


            def draw(rng: np.random.Generator) -> float:
                return float(rng.random())
            """
        ),
        suppressed=_src(
            """
            import random

            __all__ = ["draw"]


            def draw() -> float:
                return random.random()  # reprolint: disable=RL-D001
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-D002",
        path="src/repro/sim/snippet.py",
        bad=_src(
            """
            import numpy as np

            __all__ = ["fresh"]


            def fresh() -> np.random.Generator:
                return np.random.default_rng()
            """
        ),
        good=_src(
            """
            import numpy as np

            __all__ = ["fresh"]


            def fresh(seed: int) -> np.random.Generator:
                return np.random.default_rng(seed)
            """
        ),
        suppressed=_src(
            """
            import numpy as np

            __all__ = ["fresh"]


            def fresh() -> np.random.Generator:
                return np.random.default_rng()  # reprolint: disable=RL-D002
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-D003",
        path="src/repro/sim/snippet.py",
        bad=_src(
            """
            import time

            __all__ = ["seed_now"]


            def seed_now() -> int:
                return int(time.time())
            """
        ),
        good=_src(
            """
            __all__ = ["seed_now"]


            def seed_now(configured_seed: int) -> int:
                return configured_seed
            """
        ),
        suppressed=_src(
            """
            import time

            __all__ = ["seed_now"]


            def seed_now() -> int:
                return int(time.time())  # reprolint: disable=RL-D003
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-D004",
        path="src/repro/sim/snippet.py",
        bad=_src(
            """
            import numpy as np

            __all__ = ["Planner"]


            class Planner:
                def __init__(self, seed: int | np.random.Generator = 0) -> None:
                    if isinstance(seed, np.random.Generator):
                        self._rng = seed
                    else:
                        self._rng = np.random.default_rng(seed)
            """
        ),
        good=_src(
            """
            import numpy as np

            from repro.utils.rng import coerce_rng

            __all__ = ["Planner"]


            class Planner:
                def __init__(self, seed: int | np.random.Generator = 0) -> None:
                    self._rng = coerce_rng(seed, "planner")
            """
        ),
        suppressed=_src(
            """
            import numpy as np

            __all__ = ["Planner"]


            class Planner:
                def __init__(self, seed: int | np.random.Generator = 0) -> None:
                    if isinstance(seed, np.random.Generator):  # reprolint: disable=RL-D004
                        self._rng = seed
                    else:
                        self._rng = np.random.default_rng(seed)
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-P001",
        path="src/repro/em/snippet.py",
        bad=_src(
            """
            __all__ = ["is_dead"]


            def is_dead(energy_j: float) -> bool:
                return energy_j == 0.0
            """
        ),
        good=_src(
            """
            __all__ = ["is_dead"]


            def is_dead(energy_j: float) -> bool:
                return energy_j <= 1e-12
            """
        ),
        suppressed=_src(
            """
            __all__ = ["is_dead"]


            def is_dead(energy_j: float) -> bool:
                return energy_j == 0.0  # reprolint: disable=RL-P001
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-P002",
        path="src/repro/em/snippet.py",
        bad=_src(
            """
            __all__ = ["total_power"]


            def total_power(tx_power_dbm: float, rx_power_w: float) -> float:
                return tx_power_dbm + rx_power_w
            """
        ),
        good=_src(
            """
            __all__ = ["total_power"]


            def total_power(tx_power_dbm: float, rx_power_w: float) -> float:
                tx_power_w = 10.0 ** ((tx_power_dbm - 30.0) / 10.0)
                return tx_power_w + rx_power_w
            """
        ),
        suppressed=_src(
            """
            __all__ = ["total_power"]


            def total_power(tx_power_dbm: float, rx_power_w: float) -> float:
                return tx_power_dbm + rx_power_w  # reprolint: disable=RL-P002
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-P003",
        path="src/repro/em/snippet.py",
        bad=_src(
            """
            __all__ = ["Antenna"]


            class Antenna:
                def __init__(self, gain: float) -> None:
                    self.gain = gain
            """
        ),
        good=_src(
            """
            from repro.utils.validation import check_positive

            __all__ = ["Antenna"]


            class Antenna:
                def __init__(self, gain: float) -> None:
                    self.gain = check_positive("gain", gain)
            """
        ),
        suppressed=_src(
            """
            __all__ = ["Antenna"]


            class Antenna:
                def __init__(self, gain: float) -> None:  # reprolint: disable=RL-P003
                    self.gain = gain
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-H001",
        path="src/repro/analysis/snippet.py",
        bad=_src(
            """
            __all__ = ["extend"]


            def extend(item: int, acc: list = []) -> list:
                acc.append(item)
                return acc
            """
        ),
        good=_src(
            """
            __all__ = ["extend"]


            def extend(item: int, acc: list | None = None) -> list:
                acc = [] if acc is None else acc
                acc.append(item)
                return acc
            """
        ),
        suppressed=_src(
            """
            __all__ = ["extend"]


            def extend(item: int, acc: list = []) -> list:  # reprolint: disable=RL-H001
                acc.append(item)
                return acc
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-H002",
        path="src/repro/analysis/snippet.py",
        bad=_src(
            """
            __all__ = ["swallow"]


            def swallow(fn) -> object:
                try:
                    return fn()
                except:
                    return None
            """
        ),
        good=_src(
            """
            __all__ = ["swallow"]


            def swallow(fn) -> object:
                try:
                    return fn()
                except Exception:
                    return None
            """
        ),
        suppressed=_src(
            """
            __all__ = ["swallow"]


            def swallow(fn) -> object:
                try:
                    return fn()
                except:  # reprolint: disable=RL-H002
                    return None
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-H003",
        path="src/repro/analysis/snippet.py",
        bad=_src(
            """
            def helper() -> int:
                return 1
            """
        ),
        good=_src(
            """
            __all__ = ["helper"]


            def helper() -> int:
                return 1
            """
        ),
        suppressed=_src(
            """
            # reprolint: disable=RL-H003
            def helper() -> int:
                return 1
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-H005",
        path="src/repro/em/snippet.py",
        bad=_src(
            """
            import numpy as np

            __all__ = ["harvest_all"]


            def harvest_all(rect, powers) -> np.ndarray:
                return np.array([rect.harvest(p) for p in powers])
            """
        ),
        good=_src(
            """
            import numpy as np

            __all__ = ["harvest_all"]


            def harvest_all(rect, powers) -> np.ndarray:
                return rect.harvest(np.asarray(powers, dtype=float))
            """
        ),
        suppressed=_src(
            """
            import numpy as np

            __all__ = ["harvest_all"]


            def harvest_all(rect, powers) -> np.ndarray:
                return np.array([rect.harvest(p) for p in powers])  # reprolint: disable=RL-H005
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-H004",
        path="src/repro/analysis/snippet.py",
        bad=_src(
            """
            __all__ = ["lookup"]


            def lookup(id: int) -> int:
                return id + 1
            """
        ),
        good=_src(
            """
            __all__ = ["lookup"]


            def lookup(node_id: int) -> int:
                return node_id + 1
            """
        ),
        suppressed=_src(
            """
            __all__ = ["lookup"]


            def lookup(id: int) -> int:  # reprolint: disable=RL-H004
                return id + 1
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-D005",
        path="src/repro/pkg/main.py",
        bad=_src(
            """
            import numpy as np

            from repro.pkg.helper import consume

            __all__: list[str] = []


            def run(seed: int) -> float:
                rng = np.random.default_rng(seed)
                return consume(rng)
            """
        ),
        good=_src(
            """
            from repro.pkg.helper import consume
            from repro.utils.rng import coerce_rng

            __all__: list[str] = []


            def run(seed: int) -> float:
                rng = coerce_rng(seed)
                return consume(rng)
            """
        ),
        suppressed=_src(
            """
            import numpy as np

            from repro.pkg.helper import consume

            __all__: list[str] = []


            def run(seed: int) -> float:
                rng = np.random.default_rng(seed)
                return consume(rng)  # reprolint: disable=RL-D005
            """
        ),
        extra_files=(
            (
                "src/repro/pkg/helper.py",
                _src(
                    """
                    __all__ = ["consume"]


                    def consume(rng) -> float:
                        return float(rng.standard_normal())
                    """
                ),
            ),
        ),
    ),
    RuleFixture(
        rule_id="RL-D006",
        path="src/repro/pkg/config.py",
        bad=_src(
            """
            import os

            from repro.utils.rng import make_rng

            __all__: list[str] = []


            def build():
                raw = int(os.environ["REPRO_SEED"])
                return make_rng(seed=raw)
            """
        ),
        good=_src(
            """
            import os

            from repro.utils.rng import make_rng
            from repro.utils.validation import check_non_negative

            __all__: list[str] = []


            def build():
                raw = check_non_negative(int(os.environ["REPRO_SEED"]), name="seed")
                return make_rng(seed=raw)
            """
        ),
        suppressed=_src(
            """
            import os

            from repro.utils.rng import make_rng

            __all__: list[str] = []


            def build():
                raw = int(os.environ["REPRO_SEED"])
                return make_rng(seed=raw)  # reprolint: disable=RL-D006
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-P004",
        path="src/repro/pkg/link.py",
        bad=_src(
            """
            from repro.pkg.conversions import noise_floor_dbm

            __all__: list[str] = []


            def margin(tx_power_w: float) -> float:
                noise = noise_floor_dbm(180.0)
                return tx_power_w - noise
            """
        ),
        good=_src(
            """
            from repro.pkg.conversions import noise_floor_dbm
            from repro.utils.units import dbm_to_w

            __all__: list[str] = []


            def margin(tx_power_w: float) -> float:
                noise_w = dbm_to_w(noise_floor_dbm(180.0))
                return tx_power_w - noise_w
            """
        ),
        suppressed=_src(
            """
            from repro.pkg.conversions import noise_floor_dbm

            __all__: list[str] = []


            def margin(tx_power_w: float) -> float:
                noise = noise_floor_dbm(180.0)
                return tx_power_w - noise  # reprolint: disable=RL-P004
            """
        ),
        extra_files=(
            (
                "src/repro/pkg/conversions.py",
                _src(
                    """
                    __all__ = ["noise_floor_dbm"]


                    def noise_floor_dbm(bandwidth_hz: float) -> float:
                        return -174.0 + 10.0
                    """
                ),
            ),
        ),
    ),
    RuleFixture(
        rule_id="RL-H006",
        path="src/repro/pkg/surface.py",
        bad=_src(
            """
            __all__ = ["thing", "missing"]


            def thing() -> int:
                return 1
            """
        ),
        good=_src(
            """
            __all__ = ["thing"]


            def thing() -> int:
                return 1
            """
        ),
        suppressed=_src(
            """
            __all__ = ["thing", "missing"]  # reprolint: disable=RL-H006


            def thing() -> int:
                return 1
            """
        ),
    ),
    RuleFixture(
        rule_id="RL-H007",
        path="src/repro/pkg/alpha.py",
        bad=_src(
            """
            from repro.pkg.beta import beat

            __all__: list[str] = []


            def alpha() -> int:
                return beat() + 1
            """
        ),
        good=_src(
            """
            import repro.pkg.gamma

            __all__: list[str] = []


            def alpha() -> int:
                return repro.pkg.gamma.base() + 1
            """
        ),
        suppressed=_src(
            """
            from repro.pkg.beta import beat  # reprolint: disable=RL-H007

            __all__: list[str] = []


            def alpha() -> int:
                return beat() + 1
            """
        ),
        extra_files=(
            (
                "src/repro/pkg/beta.py",
                _src(
                    """
                    from repro.pkg.alpha import alpha

                    __all__: list[str] = []


                    def beat() -> int:
                        return alpha() - 1
                    """
                ),
            ),
            (
                "src/repro/pkg/gamma.py",
                _src(
                    """
                    __all__: list[str] = []


                    def base() -> int:
                        return 42
                    """
                ),
            ),
        ),
    ),
)

# The concurrency and numerics packs' fixtures live in their own modules
# (the snippets are structurally larger); the imports sit below the table
# because those modules import RuleFixture/_src back from this package.
from tests.lint.fixtures.concurrency import CONCURRENCY_FIXTURES  # noqa: E402
from tests.lint.fixtures.numerics import NUMERICS_FIXTURES  # noqa: E402

RULE_FIXTURES = RULE_FIXTURES + CONCURRENCY_FIXTURES + NUMERICS_FIXTURES
