"""LintCache tests: content addressing, invalidation, crash tolerance."""

import json

from repro.lint import LintCache, LintEngine
from repro.lint.cache import source_digest
from repro.lint.findings import Finding
from repro.lint.registry import ruleset_signature

_DIRTY = "def f(acc=[]):\n    return acc\n"


def _cache(tmp_path):
    return LintCache(tmp_path / "cache", ruleset_signature())


class TestCacheBasics:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = _cache(tmp_path)
        finding = Finding(
            path="src/repro/x.py", line=3, col=4,
            rule_id="RL-H001", message="msg",
        )
        assert cache.get("src/repro/x.py", "source") is None
        cache.put("src/repro/x.py", "source", [finding])
        assert cache.get("src/repro/x.py", "source") == [finding]
        assert cache.hits == 1 and cache.misses == 1

    def test_source_change_invalidates(self, tmp_path):
        cache = _cache(tmp_path)
        cache.put("src/repro/x.py", "a = 1\n", [])
        assert cache.get("src/repro/x.py", "a = 2\n") is None

    def test_path_participates_in_the_key(self, tmp_path):
        # Rule scoping is path-sensitive, so identical bytes at another
        # location must not share an entry.
        cache = _cache(tmp_path)
        cache.put("src/repro/em/x.py", "a = 1\n", [])
        assert cache.get("src/repro/analysis/x.py", "a = 1\n") is None

    def test_signature_change_invalidates(self, tmp_path):
        old = LintCache(tmp_path / "cache", "sig-one")
        new = LintCache(tmp_path / "cache", "sig-two")
        old.put("src/repro/x.py", "a = 1\n", [])
        assert new.get("src/repro/x.py", "a = 1\n") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = _cache(tmp_path)
        cache.put("src/repro/x.py", "a = 1\n", [])
        for entry in (tmp_path / "cache").glob("*.json"):
            entry.write_text("{truncated")
        assert cache.get("src/repro/x.py", "a = 1\n") is None

    def test_source_digest_is_sha256_hex(self):
        digest = source_digest("a = 1\n")
        assert len(digest) == 64
        int(digest, 16)


class TestEngineCacheIntegration:
    def test_warm_run_reproduces_cold_findings(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(_DIRTY)
        engine = LintEngine()
        cache = _cache(tmp_path)
        cold = engine.lint_paths([target], cache=cache)
        warm = engine.lint_paths([target], cache=cache)
        assert [f.format() for f in warm] == [f.format() for f in cold]
        assert cache.hits >= 1

    def test_project_findings_survive_warm_runs(self, tmp_path):
        # The warm run serves the cross-module pass from the project
        # entry; a dead export must be reported on it too.
        a = tmp_path / "src" / "repro" / "pkg" / "a.py"
        a.parent.mkdir(parents=True)
        a.write_text(
            "__all__ = ['used', 'unused']\n\n\ndef used() -> int:\n"
            "    return 1\n\n\ndef unused() -> int:\n    return 2\n"
        )
        b = a.with_name("b.py")
        b.write_text(
            "from repro.pkg.a import used\n"
            "__all__: list[str] = []\n"
            "def f() -> int:\n    return used()\n"
        )
        engine = LintEngine()
        cache = _cache(tmp_path)
        cold = engine.lint_paths([a.parent], cache=cache)
        warm = engine.lint_paths([a.parent], cache=cache)
        assert [f.rule_id for f in cold] == ["RL-H006"]
        assert [f.format() for f in warm] == [f.format() for f in cold]

    def test_project_entry_round_trip(self, tmp_path):
        cache = _cache(tmp_path)
        items = [("src/repro/a.py", "a = 1\n"), ("src/repro/b.py", "b = 2\n")]
        finding = Finding(
            path="src/repro/a.py", line=1, col=0,
            rule_id="RL-X001", message="cross-module msg",
        )
        assert cache.get_project(items) is None
        cache.put_project(items, [finding])
        assert cache.get_project(items) == [finding]

    def test_project_key_ignores_item_order(self, tmp_path):
        cache = _cache(tmp_path)
        items = [("src/repro/a.py", "a = 1\n"), ("src/repro/b.py", "b = 2\n")]
        cache.put_project(items, [])
        assert cache.get_project(list(reversed(items))) == []

    def test_editing_any_file_invalidates_the_project_entry(self, tmp_path):
        # The project key hashes every module's content: a cross-file
        # edit (an input of the import/call graphs) must be a miss even
        # for findings anchored in an untouched file.
        cache = _cache(tmp_path)
        items = [("src/repro/a.py", "a = 1\n"), ("src/repro/b.py", "b = 2\n")]
        cache.put_project(items, [])
        edited = [("src/repro/a.py", "a = 1\n"), ("src/repro/b.py", "b = 3\n")]
        assert cache.get_project(edited) is None

    def test_adding_a_file_invalidates_the_project_entry(self, tmp_path):
        cache = _cache(tmp_path)
        items = [("src/repro/a.py", "a = 1\n")]
        cache.put_project(items, [])
        grown = items + [("src/repro/b.py", "b = 2\n")]
        assert cache.get_project(grown) is None

    def test_cross_file_edit_recomputes_project_findings(self, tmp_path):
        # End-to-end: removing the import from b.py turns a.py's export
        # dead; the warm engine run must surface the new RL-H006 even
        # though a.py itself is byte-identical.
        a = tmp_path / "src" / "repro" / "pkg" / "a.py"
        a.parent.mkdir(parents=True)
        a.write_text(
            "__all__ = ['helper']\n\n\ndef helper() -> int:\n    return 1\n"
        )
        b = a.with_name("b.py")
        b.write_text(
            "from repro.pkg.a import helper\n"
            "__all__: list[str] = []\n"
            "def f() -> int:\n    return helper()\n"
        )
        engine = LintEngine()
        cache = _cache(tmp_path)
        before = engine.lint_paths([a.parent], cache=cache)
        assert "RL-H006" not in {f.rule_id for f in before}
        b.write_text("__all__: list[str] = []\n")
        after = engine.lint_paths([a.parent], cache=cache)
        assert "RL-H006" in {f.rule_id for f in after}

    def test_cache_entries_are_json_documents(self, tmp_path):
        cache = _cache(tmp_path)
        cache.put("src/repro/x.py", "a = 1\n", [])
        entries = list((tmp_path / "cache").glob("*.json"))
        assert len(entries) == 1
        payload = json.loads(entries[0].read_text())
        assert payload["version"] == 1
        assert payload["findings"] == []


class TestParallelMode:
    def test_parallel_matches_serial(self, tmp_path):
        for index in range(6):
            (tmp_path / f"mod{index}.py").write_text(_DIRTY)
        engine = LintEngine()
        serial = engine.lint_paths([tmp_path], jobs=1)
        parallel = engine.lint_paths([tmp_path], jobs=2)
        assert [f.format() for f in parallel] == [f.format() for f in serial]
        assert serial  # the comparison is not vacuous

    def test_custom_rule_engine_falls_back_to_serial(self, tmp_path):
        from repro.lint.rules.hygiene import NoBareExcept

        (tmp_path / "mod.py").write_text(
            "try:\n    pass\nexcept:\n    pass\n"
        )
        (tmp_path / "mod2.py").write_text(_DIRTY)
        engine = LintEngine(rules=[NoBareExcept], project_rules=())
        findings = engine.lint_paths([tmp_path], jobs=4)
        assert [f.rule_id for f in findings] == ["RL-H002"]
