"""Reporter tests: SARIF 2.1.0 document shape, statistics, text tally."""

import json

from repro.lint import lint_source, render_sarif, render_statistics, render_text
from repro.lint.registry import all_project_rules, all_rules

_DIRTY = "def f(acc=[]):\n    return acc\n"


def _findings():
    return lint_source(_DIRTY, "src/repro/analysis/mod.py")


class TestSarifRenderer:
    def test_document_envelope(self):
        payload = json.loads(render_sarif(_findings()))
        assert payload["version"] == "2.1.0"
        assert payload["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(payload["runs"]) == 1

    def test_driver_carries_the_full_rule_catalogue(self):
        payload = json.loads(render_sarif([]))
        driver = payload["runs"][0]["tool"]["driver"]
        assert driver["name"] == "reprolint"
        ids = [rule["id"] for rule in driver["rules"]]
        assert ids == sorted(ids)
        expected = {cls.rule_id for cls in (*all_rules(), *all_project_rules())}
        assert set(ids) == expected
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]

    def test_results_have_physical_locations(self):
        findings = _findings()
        payload = json.loads(render_sarif(findings))
        results = payload["runs"][0]["results"]
        assert len(results) == len(findings) > 0
        for result, finding in zip(results, findings):
            assert result["ruleId"] == finding.rule_id
            assert result["level"] == "error"
            assert result["message"]["text"] == finding.message
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == finding.path
            region = location["region"]
            assert region["startLine"] == finding.line
            # SARIF columns are 1-based; reprolint's are 0-based.
            assert region["startColumn"] == finding.col + 1

    def test_rule_index_points_into_the_catalogue(self):
        payload = json.loads(render_sarif(_findings()))
        run = payload["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_empty_findings_render_an_empty_results_array(self):
        payload = json.loads(render_sarif([]))
        assert payload["runs"][0]["results"] == []


class TestTextAndStatistics:
    def test_text_tally_counts_findings(self):
        findings = _findings()
        text = render_text(findings)
        assert f"reprolint: {len(findings)} findings" in text

    def test_statistics_order_and_total(self):
        stats = render_statistics(_findings())
        lines = stats.splitlines()
        assert lines[-1].startswith("total")
        counts = [int(line.split()[-1]) for line in lines[:-1]]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == int(lines[-1].split()[-1])

    def test_statistics_aggregate_timings_by_pack(self):
        timings = {
            "RL-N001": 0.010,
            "RL-N004": 0.020,
            "RL-C002": 0.001,
            "RL-H001": 0.002,
        }
        stats = render_statistics(_findings(), timings)
        section = stats.split("pack timings:")[1].splitlines()
        rows = [line.split() for line in section if line]
        assert [row[0] for row in rows] == ["RL-N", "RL-H", "RL-C"]
        assert rows[0][1] == "30.0"  # RL-N001 + RL-N004, in ms

    def test_statistics_omit_timing_section_without_timings(self):
        assert "pack timings" not in render_statistics(_findings())
        assert "pack timings" not in render_statistics(_findings(), {})
