"""Domain-level tests for the array-semantics abstract interpreter.

Mirrors ``test_cfg.py``'s precision suites: the lattice operations are
pinned by algebraic-law and table tests, the broadcast unifier by the
cases the rules depend on (unknown dims, 0-dims, scalar promotion,
mutual stretching), and the may-alias transfer by interpreting small
functions end to end and asserting which events survive.
"""

import itertools

import pytest

from repro.lint.arrays import (
    DTYPE_TOP,
    ArrayAnalysis,
    ArrayValue,
    Env,
    broadcast_shapes,
    dtype_join,
    dtype_meet,
    format_shape,
    promote,
    shape_join,
)
from repro.lint.project import ProjectModel

_DTYPES = [
    None, "bool", "pyint", "int32", "intp", "int64", "pyfloat",
    "float32", "float64", "complex128", DTYPE_TOP,
]


def _events(source: str, path: str = "src/repro/em/mod.py"):
    project = ProjectModel.from_sources([(path, source)])
    analysis = ArrayAnalysis.of(project)
    return [
        (event.kind, event.node.lineno)
        for record in project
        for event in analysis.events(record)
    ]


def _kinds(source: str, path: str = "src/repro/em/mod.py"):
    return [kind for kind, _line in _events(source, path)]


# ----------------------------------------------------------------------
# Dtype lattice laws
# ----------------------------------------------------------------------
class TestDtypeLattice:
    @pytest.mark.parametrize("dtype", _DTYPES)
    def test_join_and_meet_are_idempotent(self, dtype):
        assert dtype_join(dtype, dtype) == dtype
        assert dtype_meet(dtype, dtype) == dtype

    def test_join_and_meet_are_commutative(self):
        for a, b in itertools.product(_DTYPES, repeat=2):
            assert dtype_join(a, b) == dtype_join(b, a)
            assert dtype_meet(a, b) == dtype_meet(b, a)

    def test_join_is_associative(self):
        for a, b, c in itertools.product(_DTYPES, repeat=3):
            assert dtype_join(dtype_join(a, b), c) == dtype_join(
                a, dtype_join(b, c)
            )

    def test_bottom_and_top_behave(self):
        # None is the identity of join and the absorber of meet.
        for dtype in _DTYPES:
            assert dtype_join(None, dtype) == dtype
            assert dtype_meet(None, dtype) is None
        # TOP absorbs join and is the identity of meet.
        for dtype in _DTYPES[1:]:
            assert dtype_join(DTYPE_TOP, dtype) == DTYPE_TOP
            assert dtype_meet(DTYPE_TOP, dtype) == dtype

    @pytest.mark.parametrize(
        ("a", "b", "expected"),
        [
            ("bool", "int32", "int32"),
            ("int32", "int64", "int64"),
            ("int64", "float32", "float32"),
            ("float32", "float64", "float64"),
            ("float64", "complex128", "complex128"),
            ("pyint", "int32", "int32"),
            ("pyfloat", "float32", "float32"),
        ],
    )
    def test_join_table(self, a, b, expected):
        assert dtype_join(a, b) == expected
        assert dtype_meet(a, b) == (a if expected == b else b)


class TestPromotion:
    @pytest.mark.parametrize(
        ("a", "b", "expected"),
        [
            # Weak python scalars never widen a concrete same-kind dtype.
            ("float32", "pyfloat", "float32"),
            ("float64", "pyfloat", "float64"),
            ("int32", "pyint", "int32"),
            ("int64", "pyint", "int64"),
            # A python float against an int array produces float64.
            ("int64", "pyfloat", "float64"),
            ("int32", "pyfloat", "float64"),
            ("bool", "pyint", "intp"),
            # Concrete pairs take the chain maximum.
            ("int32", "float32", "float32"),
            ("float32", "float64", "float64"),
            ("int32", "int64", "int64"),
            ("float64", "complex128", "complex128"),
            # Two weak scalars stay weak (float wins).
            ("pyint", "pyfloat", "pyfloat"),
        ],
    )
    def test_promotion_table(self, a, b, expected):
        assert promote(a, b) == expected
        assert promote(b, a) == expected

    def test_unknown_operand_poisons_the_result(self):
        assert promote(DTYPE_TOP, "float64") == DTYPE_TOP
        assert promote(None, "float64") == DTYPE_TOP


# ----------------------------------------------------------------------
# Symbolic shapes
# ----------------------------------------------------------------------
class TestShapeJoin:
    def test_equal_dims_survive_and_conflicts_go_unknown(self):
        assert shape_join(("n", 2), ("n", 3)) == ("n", None)
        assert shape_join(("n", 2), ("n", 2)) == ("n", 2)

    def test_rank_mismatch_or_unknown_is_unknown(self):
        assert shape_join(("n",), ("n", 2)) is None
        assert shape_join(None, ("n",)) is None


class TestBroadcast:
    def test_matching_symbols_unify_without_stretch(self):
        assert broadcast_shapes(("n",), ("n",)) == (("n",), False)

    def test_literal_one_stretches_one_side_only(self):
        shape, mutual = broadcast_shapes(("n", 1), ("n", "m"))
        assert shape == ("n", "m")
        assert mutual is False

    def test_mutual_stretch_is_detected(self):
        shape, mutual = broadcast_shapes(("n",), ("n", 1))
        assert shape == ("n", "n")
        assert mutual is True

    def test_scalar_promotion_is_never_a_stretch(self):
        assert broadcast_shapes((), ("n", "m")) == (("n", "m"), False)
        assert broadcast_shapes(("n",), ()) == (("n",), False)

    def test_zero_dims_pass_through(self):
        assert broadcast_shapes((0,), (0,)) == ((0,), False)
        # A literal 1 against 0 stretches nothing (0 is not > 1).
        assert broadcast_shapes((1,), (0,)) == ((0,), False)

    def test_unknown_dims_unify_to_unknown_without_stretch(self):
        shape, mutual = broadcast_shapes((None, 2), ("n", 2))
        assert shape == (None, 2)
        assert mutual is False

    def test_unknown_rank_stays_unknown(self):
        assert broadcast_shapes(None, ("n",)) == (None, False)

    def test_distinct_symbols_do_not_claim_a_stretch(self):
        # n and m may be equal at runtime; without a literal 1 there is
        # no broadcast evidence, so the dim goes unknown quietly.
        shape, mutual = broadcast_shapes(("n",), ("m",))
        assert shape == (None,)
        assert mutual is False

    def test_distinct_symbol_outer_product_is_a_mutual_stretch(self):
        # (n,) op (m, 1) -> (m, n): both sides replicate.
        shape, mutual = broadcast_shapes(("n",), ("m", 1))
        assert shape == ("m", "n")
        assert mutual is True

    def test_format_shape(self):
        assert format_shape(("n", 1)) == "(n, 1)"
        assert format_shape(("n",)) == "(n,)"
        assert format_shape(None) == "(?)"


# ----------------------------------------------------------------------
# Environment lattice (what the CFG solver relies on)
# ----------------------------------------------------------------------
class TestEnv:
    def test_empty_frozenset_is_the_solver_identity(self):
        env = Env({"x": ArrayValue(dtype="float64")})
        assert (frozenset() | env) is env
        assert (env | frozenset()) is env

    def test_join_merges_per_variable(self):
        left = Env({"x": ArrayValue(dtype="float32", shape=("n",))})
        right = Env({"x": ArrayValue(dtype="float64", shape=("n",))})
        merged = left | right
        assert merged["x"].dtype == "float64"
        assert merged["x"].shape == ("n",)

    def test_one_sided_bindings_survive_a_join(self):
        left = Env({"x": ArrayValue(dtype="float64")})
        right = Env({"y": ArrayValue(dtype="int64")})
        merged = left | right
        assert set(merged) == {"x", "y"}

    def test_equality_is_structural(self):
        a = Env({"x": ArrayValue(dtype="float64")})
        b = Env({"x": ArrayValue(dtype="float64")})
        assert a == b
        assert a != Env({"x": ArrayValue(dtype="float32")})


# ----------------------------------------------------------------------
# May-alias transfer, end to end
# ----------------------------------------------------------------------
class TestAliasTransfer:
    def test_slice_of_parameter_keeps_the_alias(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(x: np.ndarray) -> np.ndarray:\n"
            "    v = x[0:4]\n"
            "    v[:] = 0.0\n"
            "    return v\n"
        )
        assert kinds == ["alias-write"]

    def test_reshape_and_ravel_keep_the_alias(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(x: np.ndarray) -> np.ndarray:\n"
            "    v = x.reshape(2, 2).ravel()\n"
            "    v += 1.0\n"
            "    return v\n"
        )
        assert kinds == ["alias-write"]

    def test_copy_cuts_the_alias(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(x: np.ndarray) -> np.ndarray:\n"
            "    v = x[0:4].copy()\n"
            "    v[:] = 0.0\n"
            "    return v\n"
        )
        assert kinds == []

    def test_arithmetic_produces_a_fresh_buffer(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(x: np.ndarray) -> np.ndarray:\n"
            "    v = x * 2.0\n"
            "    v[:] = 0.0\n"
            "    return v\n"
        )
        assert kinds == []

    def test_sibling_views_of_one_allocation_conflict(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(n: int) -> np.ndarray:\n"
            "    buf = np.zeros(n, dtype=np.float64)\n"
            "    view = buf[0:2]\n"
            "    view[:] = 1.0\n"
            "    return buf\n"
        )
        assert kinds == ["alias-write"]

    def test_dead_sibling_does_not_conflict(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(n: int) -> np.ndarray:\n"
            "    buf = np.zeros(n, dtype=np.float64)\n"
            "    view = buf[0:2]\n"
            "    view[:] = 1.0\n"
            "    return view\n"
        )
        assert kinds == []


# ----------------------------------------------------------------------
# Guard recognition (RL-N004 precision)
# ----------------------------------------------------------------------
class TestGuards:
    def test_unguarded_parameter_reduction_fires(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(x: np.ndarray) -> float:\n"
            "    return float(x.min())\n"
        )
        assert kinds == ["empty-reduce"]

    def test_early_exit_size_guard_silences(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(x: np.ndarray) -> float:\n"
            "    if x.size == 0:\n"
            "        return 0.0\n"
            "    return float(x.min())\n"
        )
        assert kinds == []

    def test_len_link_guard_silences(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(x: np.ndarray) -> float:\n"
            "    n = len(x)\n"
            "    if n == 0:\n"
            "        return 0.0\n"
            "    return float(x.min())\n"
        )
        assert kinds == []

    def test_positive_symbolic_dim_needs_no_guard(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(k: int) -> float:\n"
            "    buf = np.zeros(k + 1, dtype=np.float64)\n"
            "    return float(buf.max())\n"
        )
        assert kinds == []

    def test_local_unknown_shape_is_not_reported(self):
        # Locals of unknown shape with no external provenance stay
        # silent — flagging them would drown the rule in noise.
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(n: int) -> float:\n"
            "    a = np.zeros(n, dtype=np.float64)\n"
            "    b = np.flatnonzero(a > 0.0)\n"
            "    return float(b.argmax())\n"
        )
        assert kinds == []


# ----------------------------------------------------------------------
# Inter-procedural summaries
# ----------------------------------------------------------------------
class TestSummaries:
    def test_view_returned_by_helper_carries_aliasing(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['head', 'f']\n"
            "def head(x: np.ndarray) -> np.ndarray:\n"
            "    return x[0:4]\n"
            "def f(y: np.ndarray) -> np.ndarray:\n"
            "    h = head(y)\n"
            "    h[:] = 0.0\n"
            "    return h\n"
        )
        assert kinds == ["alias-write"]

    def test_fresh_array_returned_by_helper_is_safe(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['dup', 'f']\n"
            "def dup(x: np.ndarray) -> np.ndarray:\n"
            "    return x[0:4].copy()\n"
            "def f(y: np.ndarray) -> np.ndarray:\n"
            "    h = dup(y)\n"
            "    h[:] = 0.0\n"
            "    return h\n"
        )
        assert kinds == []

    def test_recursive_helpers_terminate_at_top(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['g', 'f']\n"
            "def g(x: np.ndarray, depth: int) -> np.ndarray:\n"
            "    if depth == 0:\n"
            "        return x\n"
            "    return g(x[0:2], depth - 1)\n"
            "def f(y: np.ndarray) -> float:\n"
            "    h = g(y, 3)\n"
            "    return float(h.sum())\n"
        )
        assert kinds == []


# ----------------------------------------------------------------------
# Dtype tracking, end to end
# ----------------------------------------------------------------------
class TestDtypeTracking:
    def test_narrowing_astype_fires_and_widening_does_not(self):
        narrow = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(x: np.ndarray) -> np.ndarray:\n"
            "    return x.astype(np.float32)\n"
        )
        widen = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(x: np.ndarray) -> np.ndarray:\n"
            "    return x.astype(np.float64)\n"
        )
        assert narrow == ["narrow"]
        assert widen == []

    def test_int_true_division_fires(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(n: int) -> np.ndarray:\n"
            "    a = np.arange(n, dtype=np.int64)\n"
            "    b = np.arange(n, dtype=np.int64)\n"
            "    return a / b\n"
        )
        assert kinds == ["narrow"]

    def test_mixed_where_fires(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(n: int) -> np.ndarray:\n"
            "    a = np.zeros(n, dtype=np.float32)\n"
            "    b = np.zeros(n, dtype=np.float64)\n"
            "    return np.where(a > 0.0, a, b)\n"
        )
        assert kinds == ["narrow"]

    def test_platform_int_product_fires_and_int64_does_not(self):
        bad = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(n: int) -> np.ndarray:\n"
            "    keys = np.arange(n)\n"
            "    return keys * 100000\n"
        )
        good = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(n: int) -> np.ndarray:\n"
            "    keys = np.arange(n, dtype=np.int64)\n"
            "    return keys * 100000\n"
        )
        assert bad == ["int-overflow"]
        assert good == []

    def test_branch_join_widens_the_dtype(self):
        # float32 on one branch, float64 on the other: the join is
        # float64, so a later astype(np.float64) cannot be a narrowing.
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(n: int, flag: bool) -> np.ndarray:\n"
            "    if flag:\n"
            "        a = np.zeros(n, dtype=np.float64)\n"
            "    else:\n"
            "        a = np.ones(n, dtype=np.float64)\n"
            "    return a.astype(np.float64)\n"
        )
        assert kinds == []


class TestBroadcastTracking:
    def test_mutual_stretch_fires(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(n: int) -> np.ndarray:\n"
            "    xs = np.zeros(n, dtype=np.float64)\n"
            "    ys = np.zeros((n, 1), dtype=np.float64)\n"
            "    return xs + ys\n"
        )
        assert kinds == ["broadcast"]

    def test_explicit_axis_insertion_is_exempt(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(n: int) -> np.ndarray:\n"
            "    xs = np.zeros(n, dtype=np.float64)\n"
            "    return xs[:, None] - xs[None, :]\n"
        )
        assert kinds == []

    def test_same_shape_arithmetic_is_silent(self):
        kinds = _kinds(
            "import numpy as np\n"
            "__all__ = ['f']\n"
            "def f(n: int) -> np.ndarray:\n"
            "    xs = np.zeros(n, dtype=np.float64)\n"
            "    return xs * 2.0 + xs\n"
        )
        assert kinds == []
