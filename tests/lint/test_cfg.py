"""Unit tests for the per-function CFG and its forward may-solver.

The transfer function used throughout models a toy resource protocol:
``h = acquire()`` generates the fact ``h``; ``release(h)`` kills it; a
``with h:`` statement kills it (context-managed).  ``leaks(src)`` is the
fact set that may survive to function EXIT — exactly how RL-C004
consumes the solver.
"""

import ast
from textwrap import dedent

from repro.lint.cfg import build_cfg


def _transfer(stmt, facts):
    out = set(facts)
    if (
        isinstance(stmt, ast.Assign)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Name)
        and stmt.value.func.id == "acquire"
        and isinstance(stmt.targets[0], ast.Name)
    ):
        out.add(stmt.targets[0].id)
    elif (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Name)
        and stmt.value.func.id == "release"
        and stmt.value.args
        and isinstance(stmt.value.args[0], ast.Name)
    ):
        out.discard(stmt.value.args[0].id)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if isinstance(item.context_expr, ast.Name):
                out.discard(item.context_expr.id)
    return frozenset(out)


def _cfg(source):
    func = ast.parse(dedent(source)).body[0]
    return build_cfg(func)


def leaks(source):
    cfg = _cfg(source)
    in_sets, _out_sets = cfg.forward_may(_transfer)
    return set(in_sets[cfg.exit.id])


class TestStructure:
    def test_entry_and_exit_sentinels_exist(self):
        cfg = _cfg("def f():\n    x = 1\n")
        kinds = {node.kind for node in cfg.nodes}
        assert {"entry", "exit", "stmt"} == kinds
        assert cfg.entry.stmt is None and cfg.exit.stmt is None

    def test_statement_nodes_excludes_sentinels(self):
        cfg = _cfg("def f():\n    x = 1\n    y = 2\n")
        stmts = list(cfg.statement_nodes())
        assert len(stmts) == 2
        assert all(node.kind == "stmt" for node in stmts)

    def test_predecessors_invert_successors(self):
        cfg = _cfg("def f():\n    if c:\n        x = 1\n    y = 2\n")
        preds = cfg.predecessors()
        for node in cfg.nodes:
            for succ in node.successors:
                assert node.id in preds[succ]

    def test_unreachable_code_after_return_is_disconnected(self):
        cfg = _cfg("def f():\n    return 1\n    x = acquire()\n")
        in_sets, _ = cfg.forward_may(_transfer)
        assert in_sets[cfg.exit.id] == frozenset()


class TestLinear:
    def test_release_on_the_straight_line_is_clean(self):
        assert leaks(
            """
            def f():
                h = acquire()
                use(h)
                release(h)
            """
        ) == set()

    def test_missing_release_leaks(self):
        assert leaks(
            """
            def f():
                h = acquire()
                use(h)
            """
        ) == {"h"}


class TestBranches:
    def test_release_on_only_one_branch_may_leak(self):
        assert leaks(
            """
            def f(c):
                h = acquire()
                if c:
                    release(h)
            """
        ) == {"h"}

    def test_release_on_both_branches_is_clean(self):
        assert leaks(
            """
            def f(c):
                h = acquire()
                if c:
                    release(h)
                else:
                    release(h)
            """
        ) == set()

    def test_early_return_bypassing_release_leaks(self):
        assert leaks(
            """
            def f(c):
                h = acquire()
                if c:
                    return None
                release(h)
            """
        ) == {"h"}


class TestLoops:
    def test_release_after_loop_is_clean(self):
        assert leaks(
            """
            def f(items):
                h = acquire()
                for item in items:
                    use(h, item)
                release(h)
            """
        ) == set()

    def test_break_bypasses_the_loop_else_release(self):
        # ``else`` runs only on normal loop exit; the break path leaks.
        assert leaks(
            """
            def f(items):
                h = acquire()
                for item in items:
                    if bad(item):
                        break
                else:
                    release(h)
            """
        ) == {"h"}

    def test_return_inside_loop_leaks(self):
        assert leaks(
            """
            def f(items):
                h = acquire()
                while True:
                    if done():
                        return None
                    release(h)
                    h = acquire()
            """
        ) == {"h"}

    def test_continue_keeps_the_back_edge(self):
        assert leaks(
            """
            def f(items):
                h = acquire()
                for item in items:
                    if skip(item):
                        continue
                    use(h)
                release(h)
            """
        ) == set()


class TestWith:
    def test_with_statement_releases_the_managed_name(self):
        assert leaks(
            """
            def f():
                h = acquire()
                with h:
                    use(h)
            """
        ) == set()


class TestTry:
    def test_finally_release_covers_normal_and_return_paths(self):
        assert leaks(
            """
            def f():
                h = acquire()
                try:
                    use(h)
                    return done()
                finally:
                    release(h)
            """
        ) == set()

    def test_finally_release_covers_the_raise_path(self):
        assert leaks(
            """
            def f():
                h = acquire()
                try:
                    raise ValueError("boom")
                finally:
                    release(h)
            """
        ) == set()

    def test_nested_finallies_chain_abnormal_exits(self):
        assert leaks(
            """
            def f():
                h = acquire()
                try:
                    try:
                        return early()
                    finally:
                        tidy()
                finally:
                    release(h)
            """
        ) == set()

    def test_handler_return_after_acquisition_leaks(self):
        # use(h) may raise after the acquisition succeeded, so the
        # handler's return path carries the live fact.
        assert leaks(
            """
            def f():
                try:
                    h = acquire()
                    use(h)
                except ValueError:
                    return None
                release(h)
            """
        ) == {"h"}

    def test_failed_acquisition_does_not_reach_the_handler(self):
        # If acquire() itself raises, nothing was acquired: the
        # exception edge carries the facts *entering* the statement.
        assert leaks(
            """
            def f():
                try:
                    h = acquire()
                except OSError:
                    return None
                with h:
                    use(h)
            """
        ) == set()

    def test_else_clause_runs_on_the_no_raise_path(self):
        assert leaks(
            """
            def f():
                h = acquire()
                try:
                    use(h)
                except ValueError:
                    release(h)
                else:
                    release(h)
            """
        ) == set()


class TestSolver:
    def test_out_sets_reflect_statement_effects(self):
        cfg = _cfg("def f():\n    h = acquire()\n    release(h)\n")
        in_sets, out_sets = cfg.forward_may(_transfer)
        gen_node = next(
            n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Assign)
        )
        assert out_sets[gen_node.id] == frozenset({"h"})
        assert in_sets[cfg.exit.id] == frozenset()

    def test_init_facts_flow_from_entry(self):
        cfg = _cfg("def f():\n    use()\n")
        in_sets, _ = cfg.forward_may(_transfer, init=frozenset({"seed"}))
        assert in_sets[cfg.exit.id] == frozenset({"seed"})

    def test_loop_reaches_a_fixpoint(self):
        # A loop that re-acquires under a different name every pass must
        # terminate with both facts at exit (may-union over iterations).
        assert leaks(
            """
            def f(c):
                a = acquire()
                while c:
                    b = acquire()
            """
        ) == {"a", "b"}
