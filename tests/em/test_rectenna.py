"""Tests for the nonlinear rectenna harvesting model."""

import math

import pytest

from repro.em.rectenna import Rectenna
from repro.em.waves import phasor


class TestEfficiencyCurve:
    def test_zero_below_sensitivity(self):
        rect = Rectenna(sensitivity_w=1e-4)
        assert rect.harvest(0.99e-4) == 0.0
        assert rect.efficiency(0.5e-4) == 0.0

    def test_turns_on_at_sensitivity(self):
        rect = Rectenna(sensitivity_w=1e-4)
        assert rect.harvest(1.01e-4) > 0.0

    def test_efficiency_monotone_above_sensitivity(self):
        rect = Rectenna()
        powers = [1e-3, 1e-2, 1e-1, 1.0]
        effs = [rect.efficiency(p) for p in powers]
        assert effs == sorted(effs)

    def test_efficiency_bounded_by_peak(self):
        rect = Rectenna(peak_efficiency=0.55)
        assert rect.efficiency(1e6) <= 0.55

    def test_half_peak_at_knee(self):
        rect = Rectenna(knee_power_w=5e-3, sensitivity_w=0.0)
        assert rect.efficiency(5e-3) == pytest.approx(0.55 / 2.0)

    def test_harvest_never_exceeds_input(self):
        rect = Rectenna()
        for p in (1e-4, 1e-2, 1.0, 100.0):
            assert rect.harvest(p) <= p

    def test_saturation_caps_output(self):
        rect = Rectenna(saturation_w=0.5)
        assert rect.harvest(1e6) == 0.5

    def test_harvest_monotone(self):
        rect = Rectenna()
        harvests = [rect.harvest(p) for p in (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)]
        assert harvests == sorted(harvests)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            Rectenna().harvest(-1.0)

    def test_rejects_zero_peak_efficiency(self):
        with pytest.raises(ValueError):
            Rectenna(peak_efficiency=0.0)


class TestFieldInterface:
    def test_harvest_from_field_uses_power_convention(self):
        rect = Rectenna()
        field = phasor(0.1, 1.2)  # power 0.01 W
        assert rect.harvest_from_field(field) == pytest.approx(rect.harvest(0.01))


class TestNonlinearSuperposition:
    """The effect the paper's Section II demonstrates."""

    def test_destructive_pair_forfeits_all_harvest(self):
        rect = Rectenna()
        waves = [phasor(0.1, 0.0), phasor(0.1, math.pi)]
        gap = rect.superposition_gap(waves)
        individual = 2.0 * rect.harvest(0.01)
        assert gap == pytest.approx(individual)

    def test_constructive_pair_gains_over_independent(self):
        rect = Rectenna()
        waves = [phasor(0.05, 0.0), phasor(0.05, 0.0)]
        # Constructive: harvest(4 P) with rising efficiency beats 2*harvest(P).
        assert rect.superposition_gap(waves) < 0.0

    def test_gap_zero_for_single_wave(self):
        rect = Rectenna()
        assert rect.superposition_gap([phasor(0.1, 0.3)]) == pytest.approx(0.0)

    def test_sub_sensitivity_residual_harvests_nothing(self):
        # An imperfect null whose residual is below the diode threshold
        # still yields exactly zero — the attacker's margin of error.
        rect = Rectenna(sensitivity_w=80e-6)
        residual_amplitude = math.sqrt(50e-6)
        waves = [
            phasor(0.1, 0.0),
            phasor(0.1 - residual_amplitude, math.pi),
        ]
        coherent = abs(sum(waves)) ** 2
        assert coherent < rect.sensitivity_w
        assert rect.harvest(coherent) == 0.0
