"""Tests for the multi-antenna charger: beamforming and null steering."""

import cmath

import pytest

from repro.em.charger_array import (
    AntennaElement,
    ChargerArray,
    minimum_null_residual,
    solve_null_phases,
)
from repro.em.propagation import FriisModel
from repro.em.rectenna import Rectenna
from repro.utils.geometry import Point


def residual(amps, phases):
    return abs(sum(a * cmath.exp(1j * p) for a, p in zip(amps, phases)))


class TestSolveNullPhases:
    def test_two_equal_amplitudes(self):
        phases = solve_null_phases([1.0, 1.0])
        assert residual([1.0, 1.0], phases) < 1e-9

    def test_two_unequal_amplitudes_hit_lower_bound(self):
        amps = [2.0, 1.0]
        phases = solve_null_phases(amps)
        assert residual(amps, phases) == pytest.approx(1.0, abs=1e-9)

    def test_collinear_trap_escaped(self):
        # Alternating 0/pi on these amplitudes is a coordinate-descent
        # saddle point (regression test for the initial implementation).
        amps = [1.0, 1.01, 0.99, 1.02]
        phases = solve_null_phases(amps)
        assert residual(amps, phases) < 1e-6

    @pytest.mark.parametrize("n", [3, 4, 5, 7, 8])
    def test_feasible_instances_null_out(self, n):
        amps = [1.0 + 0.05 * i for i in range(n)]
        phases = solve_null_phases(amps)
        assert residual(amps, phases) < 1e-6

    def test_dominant_amplitude_infeasible(self):
        amps = [10.0, 1.0, 1.0]
        phases = solve_null_phases(amps)
        assert residual(amps, phases) == pytest.approx(8.0, abs=1e-6)

    def test_single_element(self):
        assert solve_null_phases([1.0]) == [0.0]

    def test_empty(self):
        assert solve_null_phases([]) == []

    def test_zero_amplitudes_kept_at_zero_phase(self):
        phases = solve_null_phases([0.0, 1.0, 1.0])
        assert phases[0] == 0.0
        assert residual([0.0, 1.0, 1.0], phases) < 1e-9

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ValueError):
            solve_null_phases([1.0, -0.5])


class TestMinimumNullResidual:
    def test_feasible_is_zero(self):
        assert minimum_null_residual([1.0, 1.0, 1.0]) == 0.0

    def test_infeasible_is_gap(self):
        assert minimum_null_residual([5.0, 1.0, 1.0]) == pytest.approx(3.0)

    def test_empty(self):
        assert minimum_null_residual([]) == 0.0


class TestChargerArray:
    @pytest.fixture()
    def array(self):
        return ChargerArray.uniform_linear(4)

    @pytest.fixture()
    def geometry(self):
        return Point(0.0, 0.0), Point(1.0, 0.3)

    def test_uniform_linear_centred(self):
        array = ChargerArray.uniform_linear(4, spacing=0.2)
        xs = [e.offset.x for e in array.elements]
        assert sum(xs) == pytest.approx(0.0)
        assert xs == sorted(xs)

    def test_total_tx_power(self):
        array = ChargerArray.uniform_linear(4, tx_power_per_element=3.0)
        assert array.total_tx_power == pytest.approx(12.0)

    def test_beamform_maximises_over_spoof(self, array, geometry):
        charger, victim = geometry
        bf = array.rf_power_at(victim, charger, array.beamform_phases(charger, victim))
        sp = array.rf_power_at(victim, charger, array.spoof_phases(charger, victim))
        assert bf > 1e3 * sp

    def test_beamform_achieves_coherent_gain(self, geometry):
        charger, victim = geometry
        one = ChargerArray.uniform_linear(1)
        four = ChargerArray.uniform_linear(4)
        p1 = one.rf_power_at(victim, charger, one.beamform_phases(charger, victim))
        p4 = four.rf_power_at(victim, charger, four.beamform_phases(charger, victim))
        # K^2 scaling up to geometry spread: 4 elements -> ~16x.
        assert p4 / p1 > 8.0

    def test_spoof_nulls_the_rectenna(self, array, geometry):
        charger, victim = geometry
        field = array.field_at(victim, charger, array.spoof_phases(charger, victim))
        assert abs(field) ** 2 < 1e-12

    def test_spoof_requires_two_elements(self):
        single = ChargerArray.uniform_linear(1)
        with pytest.raises(ValueError):
            single.spoof_phases(Point(0, 0), Point(1, 0))

    def test_pilot_sees_power_during_spoof(self, array, geometry):
        charger, victim = geometry
        pilot_power = array.pilot_power("spoof", charger, victim)
        rect = Rectenna()
        rectenna_power = array.rf_power_at(
            victim, charger, array.spoof_phases(charger, victim)
        )
        assert pilot_power > 1e-6  # presence detector threshold scale
        assert pilot_power > 1e3 * rectenna_power

    def test_pilot_point_is_offset(self, array, geometry):
        charger, victim = geometry
        pilot = array.pilot_point(victim, charger)
        assert victim.distance_to(pilot) == pytest.approx(array.pilot_offset)

    def test_phases_for_modes(self, array, geometry):
        charger, victim = geometry
        assert array.phases_for("beamform", charger, victim) == array.beamform_phases(
            charger, victim
        )
        with pytest.raises(ValueError):
            array.phases_for("jam", charger, victim)

    def test_delivered_power_modes(self, array, geometry):
        charger, victim = geometry
        rect = Rectenna()
        genuine = array.delivered_power("beamform", charger, victim, rect)
        spoofed = array.delivered_power("spoof", charger, victim, rect)
        assert genuine > 0.0
        assert spoofed == 0.0

    def test_wrong_phase_count_rejected(self, array, geometry):
        charger, victim = geometry
        with pytest.raises(ValueError):
            array.field_at(victim, charger, [0.0, 0.0])

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError):
            ChargerArray(elements=())

    def test_antenna_element_validates_power(self):
        with pytest.raises(ValueError):
            AntennaElement(offset=Point(0, 0), tx_power=0.0)

    def test_custom_propagation_respected(self):
        array = ChargerArray.uniform_linear(
            2, propagation=FriisModel(tx_gain=4.0)
        )
        base = ChargerArray.uniform_linear(2)
        charger, victim = Point(0, 0), Point(2, 0)
        p_gain = array.rf_power_at(
            victim, charger, array.beamform_phases(charger, victim)
        )
        p_base = base.rf_power_at(
            victim, charger, base.beamform_phases(charger, victim)
        )
        assert p_gain == pytest.approx(4.0 * p_base, rel=1e-6)
