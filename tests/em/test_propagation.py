"""Tests for RF propagation models."""

import math

import pytest

from repro.em.propagation import (
    POWERCAST_FREQUENCY_HZ,
    EmpiricalChargingModel,
    FriisModel,
    wavelength,
)


class TestWavelength:
    def test_915mhz(self):
        assert wavelength(POWERCAST_FREQUENCY_HZ) == pytest.approx(0.3276, abs=1e-3)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            wavelength(0.0)


class TestFriisModel:
    def test_inverse_square_law(self):
        model = FriisModel()
        p1 = model.received_power(1.0, 1.0)
        p2 = model.received_power(1.0, 2.0)
        assert p1 / p2 == pytest.approx(4.0)

    def test_power_scales_linearly_with_tx(self):
        model = FriisModel()
        assert model.received_power(6.0, 1.0) == pytest.approx(
            6.0 * model.received_power(1.0, 1.0)
        )

    def test_received_power_below_transmitted(self):
        model = FriisModel()
        assert model.received_power(3.0, 1.0) < 3.0

    def test_field_amplitude_squares_to_power(self):
        model = FriisModel()
        amp = model.field_amplitude(2.0, 1.5)
        assert amp**2 == pytest.approx(model.received_power(2.0, 1.5))

    def test_near_field_clamp(self):
        model = FriisModel(min_distance=0.1)
        assert model.received_power(1.0, 0.0) == model.received_power(1.0, 0.1)
        assert model.received_power(1.0, 0.05) == model.received_power(1.0, 0.1)

    def test_path_phase_is_negative_and_scales(self):
        model = FriisModel()
        lam = model.wavelength
        assert model.path_phase(lam) == pytest.approx(-2.0 * math.pi)
        assert model.path_phase(lam / 2.0) == pytest.approx(-math.pi)

    def test_path_phase_not_clamped(self):
        model = FriisModel(min_distance=0.1)
        assert model.path_phase(0.01) != model.path_phase(0.1)

    def test_gains_multiply(self):
        base = FriisModel()
        gained = FriisModel(tx_gain=2.0, rx_gain=3.0)
        assert gained.received_power(1.0, 1.0) == pytest.approx(
            6.0 * base.received_power(1.0, 1.0)
        )

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            FriisModel().received_power(1.0, -1.0)


class TestEmpiricalChargingModel:
    def test_monotone_decreasing_with_distance(self):
        model = EmpiricalChargingModel()
        powers = [model.received_power(3.0, d) for d in (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert powers == sorted(powers, reverse=True)

    def test_zero_beyond_max_distance(self):
        model = EmpiricalChargingModel(max_distance=5.0)
        assert model.received_power(3.0, 5.01) == 0.0
        assert model.received_power(3.0, 5.0) > 0.0

    def test_efficiency_equals_unit_power(self):
        model = EmpiricalChargingModel()
        assert model.efficiency(1.0) == pytest.approx(
            model.received_power(1.0, 1.0)
        )

    def test_beta_regularises_contact(self):
        model = EmpiricalChargingModel(alpha=0.012, beta=0.25)
        assert model.received_power(3.0, 0.0) == pytest.approx(
            3.0 * 0.012 / 0.25**2
        )

    def test_efficiency_below_one(self):
        model = EmpiricalChargingModel()
        assert model.efficiency(0.0) < 1.0

    def test_charging_range(self):
        assert EmpiricalChargingModel(max_distance=7.0).charging_range() == 7.0
