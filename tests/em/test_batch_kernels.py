"""Batched EM kernels agree with their scalar counterparts.

The array-in/array-out paths (``fields_at_many`` and friends,
``solve_null_phases_batch``, ndarray ``Rectenna``/``FriisModel``/
``two_wave_rf_power``) exist purely for speed; every answer must match
what the scalar API already gives.
"""

import math

import numpy as np
import pytest

from repro.em import (
    ChargerArray,
    FriisModel,
    Rectenna,
    solve_null_phases,
    solve_null_phases_batch,
    two_wave_rf_power,
)
from repro.em.charger_array import minimum_null_residual
from repro.utils.geometry import Point

CHARGER = Point(0.0, 0.0)


def observation_grid():
    rng = np.random.default_rng(7)
    return np.column_stack(
        [rng.uniform(0.5, 6.0, size=24), rng.uniform(-3.0, 3.0, size=24)]
    )


class TestFieldsAtMany:
    def test_matches_scalar_field_at(self):
        array = ChargerArray.uniform_linear(4)
        obs = observation_grid()
        phases = [0.1, -0.4, 1.2, 2.2]
        fields = array.fields_at_many(obs, CHARGER, phases)
        for row, field in zip(obs, fields):
            scalar = array.field_at(Point(row[0], row[1]), CHARGER, phases)
            assert field == pytest.approx(scalar, rel=1e-12, abs=1e-18)

    def test_per_observation_phase_vectors(self):
        array = ChargerArray.uniform_linear(3)
        obs = observation_grid()[:5]
        phase_rows = np.linspace(0.0, 1.0, 15).reshape(5, 3)
        fields = array.fields_at_many(obs, CHARGER, phase_rows)
        for row, phases, field in zip(obs, phase_rows, fields):
            scalar = array.field_at(Point(row[0], row[1]), CHARGER, list(phases))
            assert field == pytest.approx(scalar, rel=1e-12, abs=1e-18)

    def test_rf_powers_match_scalar(self):
        array = ChargerArray.uniform_linear(4)
        obs = observation_grid()
        phases = array.beamform_phases(CHARGER, Point(3.0, 0.0))
        powers = array.rf_powers_at_many(obs, CHARGER, phases)
        for row, power in zip(obs, powers):
            scalar = array.rf_power_at(Point(row[0], row[1]), CHARGER, phases)
            assert power == pytest.approx(scalar, rel=1e-12)

    def test_shape_validation(self):
        array = ChargerArray.uniform_linear(4)
        with pytest.raises(ValueError, match="observations"):
            array.fields_at_many(np.zeros((3, 3)), CHARGER, [0.0] * 4)
        with pytest.raises(ValueError, match="phases"):
            array.fields_at_many(observation_grid(), CHARGER, [0.0] * 3)
        with pytest.raises(ValueError, match="phase vectors"):
            array.fields_at_many(
                observation_grid(), CHARGER, np.zeros((3, 4))
            )


class TestBatchPhaseSolvers:
    def test_beamform_phases_many_matches_scalar(self):
        array = ChargerArray.uniform_linear(5)
        obs = observation_grid()
        batch = array.beamform_phases_many(CHARGER, obs)
        for row, phases in zip(obs, batch):
            scalar = array.beamform_phases(CHARGER, Point(row[0], row[1]))
            np.testing.assert_allclose(phases, scalar, rtol=1e-12)

    def test_spoof_phases_many_null_every_target(self):
        array = ChargerArray.uniform_linear(4)
        obs = observation_grid()
        batch = array.spoof_phases_many(CHARGER, obs)
        assert batch.shape == (len(obs), 4)
        genuine = array.delivered_powers_many(
            "beamform", CHARGER, obs, Rectenna()
        )
        for row, phases in zip(obs, batch):
            target = Point(row[0], row[1])
            residual_rf = array.rf_power_at(target, CHARGER, list(phases))
            # The null crushes the RF far below any beamformed harvest.
            assert residual_rf < 1e-18
        assert (genuine > 0.0).all()

    def test_spoof_requires_two_elements(self):
        array = ChargerArray.uniform_linear(1)
        with pytest.raises(ValueError, match="two elements"):
            array.spoof_phases_many(CHARGER, observation_grid())

    def test_solve_null_phases_batch_matches_scalar(self):
        rng = np.random.default_rng(11)
        amps = rng.uniform(0.0, 2.0, size=(30, 6))
        batch = solve_null_phases_batch(amps)
        for row_amps, row_phases in zip(amps, batch):
            scalar = solve_null_phases(list(row_amps))
            np.testing.assert_array_equal(row_phases, scalar)

    def test_batch_residuals_near_optimal(self):
        rng = np.random.default_rng(13)
        # Include infeasible rows (one dominant amplitude).
        amps = rng.uniform(0.0, 1.0, size=(20, 5))
        amps[::4, 0] = 10.0
        phases = solve_null_phases_batch(amps)
        residuals = np.abs((amps * np.exp(1j * phases)).sum(axis=1))
        for row_amps, residual in zip(amps, residuals):
            best = minimum_null_residual(list(row_amps))
            assert residual <= best + 1e-9

    def test_batch_input_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            solve_null_phases_batch(np.ones(4))
        with pytest.raises(ValueError, match=">= 0"):
            solve_null_phases_batch(np.array([[1.0, -1.0]]))


class TestElementwiseKernels:
    def test_rectenna_array_matches_scalar(self):
        rect = Rectenna()
        powers = np.array([0.0, 1e-6, 80e-6, 1e-3, 0.05, 5.0])
        harvested = rect.harvest(powers)
        efficiencies = rect.efficiency(powers)
        for p, h, eta in zip(powers, harvested, efficiencies):
            assert h == rect.harvest(float(p))
            assert eta == rect.efficiency(float(p))

    def test_rectenna_array_validation(self):
        with pytest.raises(ValueError, match="rf_power_w"):
            Rectenna().harvest(np.array([1e-3, -1e-3]))

    def test_friis_array_matches_scalar(self):
        model = FriisModel()
        distances = np.array([0.0, 0.05, 0.5, 3.0, 40.0])
        powers = model.received_power(2.0, distances)
        amplitudes = model.field_amplitude(2.0, distances)
        path = model.path_phase(distances)
        for d, p, a, ph in zip(distances, powers, amplitudes, path):
            assert p == model.received_power(2.0, float(d))
            assert a == model.field_amplitude(2.0, float(d))
            assert ph == model.path_phase(float(d))

    def test_two_wave_rf_power_array_matches_scalar(self):
        offsets = np.linspace(0.0, 2.0 * math.pi, 33)
        batch = two_wave_rf_power(0.01, 0.004, offsets)
        for d, p in zip(offsets, batch):
            assert p == pytest.approx(
                two_wave_rf_power(0.01, 0.004, float(d)), rel=1e-15, abs=0.0
            )
        assert batch.min() >= 0.0


class TestFloat64Boundary:
    """Narrowed-float input is rejected at the batch API boundary.

    ``require_float64`` guards every array-accepting ``ChargerArray``
    entry point: float32 data has already lost the precision the
    bit-for-bit kernels depend on, so it must fail loudly instead of
    being silently widened.
    """

    def test_fields_at_many_rejects_float32_observations(self):
        array = ChargerArray.uniform_linear(4)
        obs = observation_grid().astype(np.float32)
        with pytest.raises(TypeError, match="observations must be float64"):
            array.fields_at_many(obs, CHARGER, [0.0] * 4)

    def test_fields_at_many_rejects_float32_phases(self):
        array = ChargerArray.uniform_linear(4)
        phases = np.zeros(4, dtype=np.float32)
        with pytest.raises(TypeError, match="emitted_phases must be float64"):
            array.fields_at_many(observation_grid(), CHARGER, phases)

    def test_beamform_phases_many_rejects_float32_targets(self):
        array = ChargerArray.uniform_linear(3)
        targets = observation_grid().astype(np.float32)
        with pytest.raises(TypeError, match="targets must be float64"):
            array.beamform_phases_many(CHARGER, targets)

    def test_spoof_phases_many_rejects_float32_targets(self):
        array = ChargerArray.uniform_linear(3)
        targets = observation_grid().astype(np.float32)
        with pytest.raises(TypeError, match="targets must be float64"):
            array.spoof_phases_many(CHARGER, targets)

    def test_exact_inputs_still_widen(self):
        # Python lists and integer arrays convert exactly — the boundary
        # only rejects dtypes where precision was already lost.
        array = ChargerArray.uniform_linear(2)
        obs = np.array([[1, 0], [2, 0]], dtype=np.int64)
        fields = array.fields_at_many(obs, CHARGER, [0.0, 0.0])
        assert fields.dtype == np.complex128
        expected = array.fields_at_many(
            obs.astype(np.float64), CHARGER, [0.0, 0.0]
        )
        np.testing.assert_array_equal(fields, expected)
