"""Tests for complex-phasor wave superposition."""

import cmath
import math

import pytest

from repro.em.waves import (
    coherent_power,
    field_phasor,
    incoherent_power,
    normalized_phasors,
    phase_difference,
    phasor,
    superpose,
)
from repro.utils.geometry import Point


class TestPhasor:
    def test_amplitude_and_phase(self):
        p = phasor(2.0, math.pi / 2.0)
        assert abs(p) == pytest.approx(2.0)
        assert cmath.phase(p) == pytest.approx(math.pi / 2.0)

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ValueError):
            phasor(-1.0, 0.0)


class TestSuperposition:
    def test_in_phase_amplitudes_add(self):
        total = superpose([phasor(1.0, 0.0), phasor(2.0, 0.0)])
        assert abs(total) == pytest.approx(3.0)

    def test_anti_phase_cancels(self):
        total = superpose([phasor(1.0, 0.0), phasor(1.0, math.pi)])
        assert abs(total) == pytest.approx(0.0, abs=1e-12)

    def test_coherent_power_constructive_quadruples(self):
        # Two equal waves in phase: 4x one wave's power, not 2x.
        one = coherent_power([phasor(1.0, 0.0)])
        both = coherent_power([phasor(1.0, 0.0), phasor(1.0, 0.0)])
        assert both == pytest.approx(4.0 * one)

    def test_incoherent_power_is_sum(self):
        phasors = [phasor(1.0, 0.0), phasor(1.0, math.pi)]
        assert incoherent_power(phasors) == pytest.approx(2.0)
        # The whole point: coherent differs from incoherent.
        assert coherent_power(phasors) == pytest.approx(0.0, abs=1e-12)

    def test_quadrature_power(self):
        phasors = [phasor(1.0, 0.0), phasor(1.0, math.pi / 2.0)]
        assert coherent_power(phasors) == pytest.approx(2.0)


class TestFieldPhasor:
    def test_power_convention(self):
        p = field_phasor(0.5, Point(0, 0), Point(3, 4), wavelength=0.3)
        assert abs(p) ** 2 == pytest.approx(0.25)

    def test_path_phase_accumulation(self):
        lam = 0.3
        p = field_phasor(1.0, Point(0, 0), Point(lam, 0), wavelength=lam)
        # One full wavelength: phase wraps back to 0.
        assert cmath.phase(p) == pytest.approx(0.0, abs=1e-9)

    def test_half_wavelength_flips_sign(self):
        lam = 0.3
        p = field_phasor(1.0, Point(0, 0), Point(lam / 2.0, 0), wavelength=lam)
        assert cmath.phase(p) == pytest.approx(math.pi, abs=1e-9) or cmath.phase(
            p
        ) == pytest.approx(-math.pi, abs=1e-9)

    def test_rejects_bad_wavelength(self):
        with pytest.raises(ValueError):
            field_phasor(1.0, Point(0, 0), Point(1, 0), wavelength=0.0)


class TestHelpers:
    def test_phase_difference_wraps(self):
        a = phasor(1.0, 3.0)
        b = phasor(1.0, -3.0)
        diff = phase_difference(a, b)
        assert -math.pi < diff <= math.pi

    def test_phase_difference_of_zero_undefined(self):
        with pytest.raises(ValueError):
            phase_difference(0j, phasor(1.0, 0.0))

    def test_normalized_phasors_parallel_lists(self):
        ps = normalized_phasors([1.0, 2.0], [0.0, math.pi])
        assert abs(ps[0]) == pytest.approx(1.0)
        assert abs(ps[1]) == pytest.approx(2.0)

    def test_normalized_phasors_length_mismatch(self):
        with pytest.raises(ValueError):
            normalized_phasors([1.0], [0.0, 1.0])
