"""Tests for the Section II superposition experiment (EXP-01's engine)."""

import math

import numpy as np
import pytest

from repro.em.rectenna import Rectenna
from repro.em.superposition import (
    cancellation_depth_db,
    fit_two_wave_model,
    superposition_sweep,
    two_wave_rf_power,
)
from repro.utils.rng import make_rng


def full_sweep(points=73, **kwargs):
    offsets = [i * 2.0 * math.pi / (points - 1) for i in range(points)]
    return superposition_sweep(offsets, **kwargs)


class TestTwoWaveRfPower:
    def test_constructive(self):
        assert two_wave_rf_power(1.0, 1.0, 0.0) == pytest.approx(4.0)

    def test_destructive(self):
        assert two_wave_rf_power(1.0, 1.0, math.pi) == pytest.approx(0.0, abs=1e-12)

    def test_quadrature(self):
        assert two_wave_rf_power(1.0, 1.0, math.pi / 2.0) == pytest.approx(2.0)

    def test_unequal_waves_leave_residual(self):
        p = two_wave_rf_power(1.0, 0.25, math.pi)
        assert p == pytest.approx((1.0 - 0.5) ** 2)

    def test_never_negative(self):
        for dphi in np.linspace(0, 2 * math.pi, 100):
            assert two_wave_rf_power(0.7, 0.7, float(dphi)) >= 0.0


class TestSweep:
    def test_shapes_and_keys(self):
        sweep = full_sweep()
        assert set(sweep) == {"phase_offsets", "rf_power", "harvested", "incoherent_rf"}
        assert all(len(v) == 73 for v in sweep.values())

    def test_incoherent_is_constant(self):
        sweep = full_sweep(wave_power_w=0.01)
        assert np.allclose(sweep["incoherent_rf"], 0.02)

    def test_null_at_pi(self):
        sweep = full_sweep()
        idx = np.argmin(np.abs(sweep["phase_offsets"] - math.pi))
        assert sweep["rf_power"][idx] == pytest.approx(0.0, abs=1e-12)
        assert sweep["harvested"][idx] == 0.0

    def test_peak_at_zero(self):
        sweep = full_sweep(wave_power_w=0.01)
        assert sweep["rf_power"][0] == pytest.approx(0.04)

    def test_coherent_oscillates_about_incoherent(self):
        sweep = full_sweep()
        assert sweep["rf_power"].max() > sweep["incoherent_rf"][0]
        assert sweep["rf_power"].min() < sweep["incoherent_rf"][0]

    def test_harvested_uses_rectenna(self):
        rect = Rectenna(saturation_w=1e-6)
        sweep = full_sweep(rectenna=rect)
        assert sweep["harvested"].max() <= 1e-6

    def test_noise_requires_rng(self):
        with pytest.raises(ValueError):
            full_sweep(noise_std_w=1e-4)

    def test_negative_noise_std_rejected(self):
        # Regression: a negative noise_std_w used to be silently accepted
        # (it slipped past the "> 0 requires an rng" guard) and then fed
        # to rng.normal as a negative scale.
        with pytest.raises(ValueError, match="noise_std_w"):
            full_sweep(noise_std_w=-1e-4)
        with pytest.raises(ValueError, match="noise_std_w"):
            full_sweep(noise_std_w=-1e-4, rng=make_rng(3, "neg-noise"))

    def test_noise_is_applied_and_non_negative(self):
        rng = make_rng(3, "sweep-noise")
        noisy = full_sweep(noise_std_w=1e-3, rng=rng)
        clean = full_sweep()
        assert not np.allclose(noisy["harvested"], clean["harvested"])
        assert (noisy["harvested"] >= 0.0).all()

    def test_unequal_amplitude_ratio(self):
        sweep = full_sweep(amplitude_ratio=0.5)
        # Residual at pi: (1 - 0.5)^2 * P1.
        idx = np.argmin(np.abs(sweep["phase_offsets"] - math.pi))
        assert sweep["rf_power"][idx] == pytest.approx(0.25 * 0.01, rel=1e-6)


class TestDepthAndFit:
    def test_depth_infinite_for_perfect_null(self):
        assert cancellation_depth_db(full_sweep()) == math.inf

    def test_depth_finite_for_unequal_waves(self):
        depth = cancellation_depth_db(full_sweep(amplitude_ratio=0.5))
        expected = 10.0 * math.log10((1.5**2) / (0.5**2))
        assert depth == pytest.approx(expected, rel=1e-6)

    def test_depth_rejects_empty(self):
        with pytest.raises(ValueError):
            cancellation_depth_db({"rf_power": np.array([])})

    def test_fit_recovers_model(self):
        sweep = full_sweep(wave_power_w=0.01)
        fit = fit_two_wave_model(sweep["phase_offsets"], sweep["rf_power"])
        assert fit.p_sum == pytest.approx(0.02, rel=1e-6)
        assert fit.p_cross == pytest.approx(0.02, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.modulation_index == pytest.approx(1.0, rel=1e-6)

    def test_fit_modulation_below_one_for_unequal(self):
        sweep = full_sweep(amplitude_ratio=0.5)
        fit = fit_two_wave_model(sweep["phase_offsets"], sweep["rf_power"])
        assert 0.0 < fit.modulation_index < 1.0

    def test_fit_requires_three_points(self):
        with pytest.raises(ValueError):
            fit_two_wave_model([0.0, 1.0], [1.0, 2.0])

    def test_fit_tolerates_noise(self):
        rng = make_rng(11, "fit-noise")
        offsets = np.linspace(0, 2 * math.pi, 100)
        clean = np.array([two_wave_rf_power(0.01, 0.01, d) for d in offsets])
        noisy = clean + rng.normal(0.0, 5e-4, clean.shape)
        fit = fit_two_wave_model(offsets, noisy)
        assert fit.p_sum == pytest.approx(0.02, rel=0.1)
        assert fit.r_squared > 0.9
