"""Tests for benign request schedulers."""

import pytest

from repro.mc.scheduling import EdfScheduler, FcfsScheduler, NjnpScheduler
from repro.network.requests import ChargingRequest
from repro.utils.geometry import Point


@pytest.fixture()
def requests():
    return [
        ChargingRequest(time=10.0, node_id=0, deadline=100.0, energy_needed_j=1.0),
        ChargingRequest(time=5.0, node_id=1, deadline=50.0, energy_needed_j=1.0),
        ChargingRequest(time=20.0, node_id=2, deadline=30.0, energy_needed_j=1.0),
    ]


@pytest.fixture()
def positions():
    return {0: Point(1.0, 0.0), 1: Point(50.0, 0.0), 2: Point(100.0, 0.0)}


class TestFcfs:
    def test_oldest_first(self, requests, positions):
        pick = FcfsScheduler().select(requests, Point(0, 0), positions, 25.0)
        assert pick.node_id == 1

    def test_empty(self, positions):
        assert FcfsScheduler().select([], Point(0, 0), positions, 0.0) is None

    def test_tie_breaks_by_node_id(self, positions):
        requests = [
            ChargingRequest(5.0, 7, 50.0, 1.0),
            ChargingRequest(5.0, 3, 50.0, 1.0),
        ]
        positions = {7: Point(0, 0), 3: Point(0, 0)}
        assert FcfsScheduler().select(requests, Point(0, 0), positions, 9.0).node_id == 3


class TestNjnp:
    def test_nearest_first(self, requests, positions):
        pick = NjnpScheduler().select(requests, Point(0.0, 0.0), positions, 25.0)
        assert pick.node_id == 0

    def test_depends_on_charger_position(self, requests, positions):
        pick = NjnpScheduler().select(requests, Point(99.0, 0.0), positions, 25.0)
        assert pick.node_id == 2

    def test_empty(self, positions):
        assert NjnpScheduler().select([], Point(0, 0), positions, 0.0) is None


class TestEdf:
    def test_earliest_deadline(self, requests, positions):
        pick = EdfScheduler().select(requests, Point(0, 0), positions, 25.0)
        assert pick.node_id == 2

    def test_empty(self, positions):
        assert EdfScheduler().select([], Point(0, 0), positions, 0.0) is None


class TestNames:
    def test_scheduler_names(self):
        assert FcfsScheduler().name == "FcfsScheduler"
        assert NjnpScheduler().name == "NjnpScheduler"
        assert EdfScheduler().name == "EdfScheduler"
