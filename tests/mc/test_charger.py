"""Tests for the mobile charger and its charging hardware."""

import pytest

from repro.mc.charger import (
    ChargeMode,
    MobileCharger,
    default_charging_hardware,
)
from repro.utils.geometry import Point


@pytest.fixture(scope="module")
def hardware():
    return default_charging_hardware()


class TestChargingHardware:
    def test_genuine_rate_in_watts(self, hardware):
        assert 1.0 < hardware.genuine_rate_w < 10.0

    def test_spoof_delivers_nothing(self, hardware):
        assert hardware.spoof_rate_w == 0.0

    def test_emission_is_total_tx_power(self, hardware):
        assert hardware.emission_w == pytest.approx(24.0)

    def test_pilot_trips_for_genuine_and_spoof(self, hardware):
        assert hardware.pilot_indicates_charging(ChargeMode.GENUINE)
        assert hardware.pilot_indicates_charging(ChargeMode.SPOOF)

    def test_pilot_silent_for_pretend(self, hardware):
        assert not hardware.pilot_indicates_charging(ChargeMode.PRETEND)

    def test_delivered_rate_by_mode(self, hardware):
        assert hardware.delivered_rate_w(ChargeMode.GENUINE) > 0.0
        assert hardware.delivered_rate_w(ChargeMode.SPOOF) == 0.0
        assert hardware.delivered_rate_w(ChargeMode.PRETEND) == 0.0

    def test_emission_by_mode(self, hardware):
        assert hardware.emission_for(ChargeMode.GENUINE) == hardware.emission_w
        assert hardware.emission_for(ChargeMode.SPOOF) == hardware.emission_w
        assert hardware.emission_for(ChargeMode.PRETEND) == 0.0

    def test_service_duration_proportional(self, hardware):
        assert hardware.service_duration_for(2000.0) == pytest.approx(
            2.0 * hardware.service_duration_for(1000.0)
        )

    def test_service_duration_zero_for_zero(self, hardware):
        assert hardware.service_duration_for(0.0) == 0.0

    def test_rejects_negative_energy(self, hardware):
        with pytest.raises(ValueError):
            hardware.service_duration_for(-1.0)


class TestMobileChargerTravel:
    @pytest.fixture()
    def charger(self):
        return MobileCharger(depot=Point(0.0, 0.0), battery_capacity_j=100_000.0)

    def test_travel_time_and_energy(self, charger):
        dest = Point(30.0, 40.0)  # 50 m away
        assert charger.travel_time_to(dest) == pytest.approx(10.0)
        assert charger.travel_energy_to(dest) == pytest.approx(2500.0)

    def test_travel_updates_state(self, charger):
        dest = Point(30.0, 40.0)
        arrival = charger.travel_to(dest)
        assert arrival == pytest.approx(10.0)
        assert charger.position == dest
        assert charger.energy_j == pytest.approx(97_500.0)
        assert charger.distance_travelled_m == pytest.approx(50.0)

    def test_travel_beyond_battery_raises(self):
        charger = MobileCharger(depot=Point(0, 0), battery_capacity_j=100.0)
        with pytest.raises(RuntimeError):
            charger.travel_to(Point(100.0, 0.0))

    def test_wait_until_advances_clock_free(self, charger):
        charger.wait_until(500.0)
        assert charger.clock == 500.0
        assert charger.energy_j == charger.battery_capacity_j

    def test_wait_backwards_rejected(self, charger):
        charger.wait_until(10.0)
        with pytest.raises(ValueError):
            charger.wait_until(5.0)


class TestMobileChargerService:
    @pytest.fixture()
    def charger(self):
        return MobileCharger(depot=Point(0.0, 0.0), battery_capacity_j=500_000.0)

    def test_genuine_service_record(self, charger):
        record = charger.perform_service(7, 100.0, ChargeMode.GENUINE)
        assert record.node_id == 7
        assert record.duration == pytest.approx(100.0)
        assert record.delivered_j == pytest.approx(
            charger.hardware.genuine_rate_w * 100.0
        )
        assert record.believed_j == record.delivered_j
        assert record.claimed_j == record.delivered_j
        assert record.emission_j == pytest.approx(2400.0)

    def test_spoof_service_delivers_nothing_but_claims_all(self, charger):
        record = charger.perform_service(7, 100.0, ChargeMode.SPOOF)
        assert record.delivered_j == 0.0
        assert record.believed_j == pytest.approx(
            charger.hardware.genuine_rate_w * 100.0
        )
        assert record.claimed_j == record.believed_j
        assert record.emission_j == pytest.approx(2400.0)

    def test_pretend_service_is_free_and_fools_nobody(self, charger):
        record = charger.perform_service(7, 100.0, ChargeMode.PRETEND)
        assert record.delivered_j == 0.0
        assert record.believed_j == 0.0
        assert record.claimed_j > 0.0  # it still lies to the BS
        assert record.emission_j == 0.0

    def test_service_drains_charger(self, charger):
        before = charger.energy_j
        charger.perform_service(1, 100.0, ChargeMode.GENUINE)
        assert charger.energy_j == pytest.approx(before - 2400.0)

    def test_service_advances_clock(self, charger):
        charger.perform_service(1, 100.0, ChargeMode.GENUINE)
        assert charger.clock == pytest.approx(100.0)

    def test_services_logged(self, charger):
        charger.perform_service(1, 10.0, ChargeMode.GENUINE)
        charger.perform_service(2, 20.0, ChargeMode.SPOOF)
        assert [s.node_id for s in charger.services] == [1, 2]

    def test_service_beyond_battery_raises(self):
        charger = MobileCharger(depot=Point(0, 0), battery_capacity_j=100.0)
        with pytest.raises(RuntimeError):
            charger.perform_service(1, 1_000.0, ChargeMode.GENUINE)

    def test_can_afford(self, charger):
        assert charger.can_afford(Point(10.0, 0.0), 100.0)
        assert not charger.can_afford(Point(10.0, 0.0), 1e9)


class TestDepotRecharge:
    def test_recharge_refills_and_costs_time(self):
        charger = MobileCharger(
            depot=Point(0.0, 0.0),
            battery_capacity_j=100_000.0,
            depot_recharge_s=600.0,
        )
        charger.travel_to(Point(100.0, 0.0))
        done = charger.recharge_at_depot()
        assert charger.position == charger.depot
        assert charger.energy_j == charger.battery_capacity_j
        # 40 s return drive + 600 s refill after the 20 s outbound drive.
        assert done == pytest.approx(20.0 + 20.0 + 600.0)
