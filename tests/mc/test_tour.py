"""Tests for TSP tour construction."""

import pytest

from repro.mc.tour import nearest_neighbour_tour, tour_cost, two_opt
from repro.utils.geometry import Point
from repro.utils.rng import make_rng


def random_points(n, seed=0):
    rng = make_rng(seed, "tour-tests")
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, 100, size=(n, 2))]


class TestTourCost:
    def test_square_closed(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert tour_cost(pts, [0, 1, 2, 3]) == pytest.approx(4.0)

    def test_open_route(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert tour_cost(pts, [0, 1, 2, 3], closed=False) == pytest.approx(3.0)

    def test_trivial_orders(self):
        pts = [Point(0, 0), Point(1, 1)]
        assert tour_cost(pts, [0]) == 0.0
        assert tour_cost(pts, []) == 0.0


class TestNearestNeighbour:
    def test_visits_everything_once(self):
        pts = random_points(20)
        order = nearest_neighbour_tour(pts)
        assert sorted(order) == list(range(20))

    def test_starts_at_requested_index(self):
        pts = random_points(10)
        assert nearest_neighbour_tour(pts, start_index=4)[0] == 4

    def test_greedy_on_line(self):
        pts = [Point(0, 0), Point(10, 0), Point(5, 0), Point(20, 0)]
        assert nearest_neighbour_tour(pts, 0) == [0, 2, 1, 3]

    def test_empty(self):
        assert nearest_neighbour_tour([]) == []

    def test_bad_start_index(self):
        with pytest.raises(IndexError):
            nearest_neighbour_tour(random_points(3), start_index=5)


class TestTwoOpt:
    def test_never_worsens(self):
        pts = random_points(30, seed=2)
        order = nearest_neighbour_tour(pts)
        improved = two_opt(pts, order)
        assert tour_cost(pts, improved) <= tour_cost(pts, order) + 1e-9

    def test_fixes_obvious_crossing(self):
        # A square visited in crossing order 0-2-1-3.
        pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        improved = two_opt(pts, [0, 2, 1, 3])
        assert tour_cost(pts, improved) == pytest.approx(4.0)

    def test_preserves_permutation(self):
        pts = random_points(25, seed=3)
        improved = two_opt(pts, nearest_neighbour_tour(pts))
        assert sorted(improved) == list(range(25))

    def test_open_route_improvement(self):
        pts = random_points(20, seed=4)
        order = list(range(20))
        improved = two_opt(pts, order, closed=False)
        assert tour_cost(pts, improved, closed=False) <= tour_cost(
            pts, order, closed=False
        ) + 1e-9

    def test_short_tours_returned_as_is(self):
        pts = random_points(3)
        assert two_opt(pts, [0, 1, 2]) == [0, 1, 2]
