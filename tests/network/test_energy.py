"""Tests for the first-order radio energy model."""

import pytest

from repro.network.energy import RadioEnergyModel, node_power_w


class TestRadioEnergyModel:
    def test_tx_energy_grows_with_distance_squared(self):
        model = RadioEnergyModel()
        amp = lambda d: model.tx_energy_per_bit(d) - model.e_elec_j_per_bit
        assert amp(20.0) == pytest.approx(4.0 * amp(10.0))

    def test_tx_includes_electronics(self):
        model = RadioEnergyModel()
        assert model.tx_energy_per_bit(0.0) == pytest.approx(model.e_elec_j_per_bit)

    def test_rx_energy_is_electronics_only(self):
        model = RadioEnergyModel()
        assert model.rx_energy_per_bit() == model.e_elec_j_per_bit

    def test_powers_scale_with_rate(self):
        model = RadioEnergyModel()
        assert model.tx_power(2000.0, 10.0) == pytest.approx(
            2.0 * model.tx_power(1000.0, 10.0)
        )
        assert model.rx_power(2000.0) == pytest.approx(2.0 * model.rx_power(1000.0))

    def test_default_magnitudes(self):
        # 10 kbps over 20 m should cost about 0.9 mW of radio power.
        model = RadioEnergyModel()
        radio_only = model.tx_power(10_000.0, 20.0)
        assert radio_only == pytest.approx(0.9e-3, rel=1e-6)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            RadioEnergyModel().tx_power(-1.0, 10.0)


class TestNodePower:
    def test_leaf_node(self):
        model = RadioEnergyModel()
        power = node_power_w(model, own_rate_bps=1000.0, relay_rate_bps=0.0,
                             uplink_distance_m=10.0)
        expected = model.baseline_w + model.tx_power(1000.0, 10.0)
        assert power == pytest.approx(expected)

    def test_relay_pays_rx_and_tx(self):
        model = RadioEnergyModel()
        power = node_power_w(model, own_rate_bps=1000.0, relay_rate_bps=5000.0,
                             uplink_distance_m=10.0)
        expected = (
            model.baseline_w
            + model.rx_power(5000.0)
            + model.tx_power(6000.0, 10.0)
        )
        assert power == pytest.approx(expected)

    def test_relay_load_strictly_increases_power(self):
        model = RadioEnergyModel()
        light = node_power_w(model, 1000.0, 0.0, 10.0)
        heavy = node_power_w(model, 1000.0, 50_000.0, 10.0)
        assert heavy > light

    def test_baseline_floor(self):
        model = RadioEnergyModel()
        assert node_power_w(model, 0.0, 0.0, 0.0) == pytest.approx(model.baseline_w)
