"""Tests for the data-gathering routing tree."""

import networkx as nx
import pytest

from repro.network.routing import (
    build_routing_tree,
    descendants_by_node,
    subtree_sizes,
)
from repro.network.topology import BASE_STATION_ID, communication_graph, deploy_uniform
from repro.utils.geometry import Point
from repro.utils.rng import make_rng


def chain_graph():
    """BS - 0 - 1 - 2 in a line."""
    positions = [Point(10, 0), Point(20, 0), Point(30, 0)]
    return communication_graph(positions, Point(0, 0), comm_range=11.0)


def diamond_graph():
    """BS at origin; 0 and 1 one hop away; 2 reachable via both."""
    positions = [Point(10, 0), Point(0, 10), Point(10, 10)]
    return communication_graph(positions, Point(0, 0), comm_range=12.0)


class TestBuildRoutingTree:
    def test_chain_parents(self):
        tree = build_routing_tree(chain_graph())
        assert tree.parent[0] == BASE_STATION_ID
        assert tree.parent[1] == 0
        assert tree.parent[2] == 1

    def test_uplink_distances(self):
        tree = build_routing_tree(chain_graph())
        assert tree.uplink_distance[0] == pytest.approx(10.0)
        assert tree.uplink_distance[2] == pytest.approx(10.0)

    def test_hop_count_dominates_distance(self):
        # Node 2 can go through 0 or 1 (equal hops); ties break by length,
        # both equal here, so either parent is fine — but hop count must
        # be 2, never a longer path.
        tree = build_routing_tree(diamond_graph())
        assert tree.depth(2) == 2

    def test_path_to_base(self):
        tree = build_routing_tree(chain_graph())
        assert tree.path_to_base(2) == [2, 1, 0, BASE_STATION_ID]

    def test_children_sorted(self):
        tree = build_routing_tree(diamond_graph())
        assert tree.children(BASE_STATION_ID) == [0, 1]

    def test_dead_node_reroutes_or_strands(self):
        tree = build_routing_tree(chain_graph(), alive={1, 2})
        # Node 0 dead: 1 and 2 are out of range of the BS -> stranded.
        assert not tree.is_connected(1)
        assert 1 in tree.disconnected
        assert 2 in tree.disconnected

    def test_alternative_route_used_after_death(self):
        tree = build_routing_tree(diamond_graph(), alive={1, 2})
        assert tree.parent[2] == 1

    def test_missing_base_station_rejected(self):
        graph = nx.Graph()
        graph.add_node(0)
        with pytest.raises(ValueError):
            build_routing_tree(graph)

    def test_connected_nodes_sorted(self):
        tree = build_routing_tree(chain_graph())
        assert tree.connected_nodes() == [0, 1, 2]

    def test_path_for_stranded_raises(self):
        tree = build_routing_tree(chain_graph(), alive={2})
        with pytest.raises(KeyError):
            tree.path_to_base(2)


class TestSubtreeAggregates:
    def test_chain_subtree_sizes(self):
        tree = build_routing_tree(chain_graph())
        sizes = subtree_sizes(tree)
        assert sizes[2] == 1
        assert sizes[1] == 2
        assert sizes[0] == 3
        assert sizes[BASE_STATION_ID] == 3

    def test_descendants(self):
        tree = build_routing_tree(chain_graph())
        desc = descendants_by_node(tree)
        assert desc[0] == frozenset({1, 2})
        assert desc[2] == frozenset()
        assert desc[BASE_STATION_ID] == frozenset({0, 1, 2})


class TestOnRandomTopology:
    def test_tree_spans_connected_component(self):
        rng = make_rng(3, "routing")
        dep = deploy_uniform(60, rng)
        tree = build_routing_tree(dep.graph())
        assert len(tree.connected_nodes()) == 60

    def test_every_path_terminates_at_base(self):
        rng = make_rng(4, "routing")
        dep = deploy_uniform(40, rng)
        tree = build_routing_tree(dep.graph())
        for node_id in tree.connected_nodes():
            assert tree.path_to_base(node_id)[-1] == BASE_STATION_ID

    def test_deterministic(self):
        rng = make_rng(5, "routing")
        dep = deploy_uniform(40, rng)
        t1 = build_routing_tree(dep.graph())
        t2 = build_routing_tree(dep.graph())
        assert t1.parent == t2.parent


class TestDeepChainTopology:
    """Regression: the subtree accumulators used to recurse per child and
    blew Python's ~1000-frame stack on chain topologies; the iterative
    post-order sweep must handle chains far past that depth."""

    DEPTH = 1600  # > default recursion limit with headroom

    def _deep_chain_tree(self):
        # BS at the origin, nodes strung out every 10 m with a 15 m radio
        # range: each node hears only its immediate neighbours, so the
        # routing tree is a single chain DEPTH hops deep.
        positions = [Point(10.0 * (i + 1), 0.0) for i in range(self.DEPTH)]
        graph = communication_graph(positions, Point(0.0, 0.0), comm_range=15.0)
        return graph, build_routing_tree(graph)

    def test_subtree_sizes_on_deep_chain(self):
        _, tree = self._deep_chain_tree()
        sizes = subtree_sizes(tree)
        assert sizes[BASE_STATION_ID] == self.DEPTH
        assert sizes[0] == self.DEPTH
        assert sizes[self.DEPTH - 1] == 1
        assert sizes[self.DEPTH // 2] == self.DEPTH - self.DEPTH // 2

    def test_descendants_on_deep_chain(self):
        _, tree = self._deep_chain_tree()
        desc = descendants_by_node(tree)
        assert desc[BASE_STATION_ID] == frozenset(range(self.DEPTH))
        assert desc[self.DEPTH - 1] == frozenset()
        assert desc[self.DEPTH - 3] == frozenset(
            {self.DEPTH - 2, self.DEPTH - 1}
        )

    def test_relay_loads_and_key_nodes_on_deep_chain(self):
        from repro.network.keynodes import identify_key_nodes
        from repro.network.traffic import TrafficModel, relay_loads

        graph, tree = self._deep_chain_tree()
        traffic = TrafficModel.homogeneous(self.DEPTH, 100.0)
        loads = relay_loads(tree, traffic)
        assert loads[0] == pytest.approx(100.0 * (self.DEPTH - 1))
        assert loads[self.DEPTH - 1] == 0.0
        infos = identify_key_nodes(graph, tree, traffic, count=3)
        # On a chain every inner node is an articulation point; the one
        # closest to the base station strands the most and ranks first.
        assert [info.node_id for info in infos] == [0, 1, 2]
