"""Invariants of the structure-of-arrays energy ledger.

The vectorized :meth:`EnergyLedger.advance_all_to` carries the whole
event loop, so it must be indistinguishable from the scalar reference
path :meth:`EnergyLedger.advance_slot_to`: same drains bit for bit, the
same deaths at the same instants, and the historical death-id contract
(ascending order, each id exactly once per run).
"""

import numpy as np
import pytest

from repro.network import build_network
from repro.network.energy_ledger import EnergyLedger


def clone_ledger(ledger: EnergyLedger) -> EnergyLedger:
    clone = EnergyLedger(len(ledger))
    clone.capacity_j[:] = ledger.capacity_j
    clone.energy_j[:] = ledger.energy_j
    clone.believed_j[:] = ledger.believed_j
    clone.consumption_w[:] = ledger.consumption_w
    clone.clock[:] = ledger.clock
    clone.death_time[:] = ledger.death_time
    clone.alive[:] = ledger.alive
    return clone


def assert_ledgers_bitwise_equal(actual: EnergyLedger, expected: EnergyLedger):
    np.testing.assert_array_equal(actual.energy_j, expected.energy_j)
    np.testing.assert_array_equal(actual.believed_j, expected.believed_j)
    np.testing.assert_array_equal(actual.clock, expected.clock)
    np.testing.assert_array_equal(actual.alive, expected.alive)
    np.testing.assert_array_equal(actual.death_time, expected.death_time)


def random_ledger(count: int, rng: np.random.Generator) -> EnergyLedger:
    ledger = EnergyLedger(count)
    for slot in range(count):
        ledger.init_slot(
            slot,
            capacity_j=float(rng.uniform(50.0, 200.0)),
            initial_frac=float(rng.uniform(0.05, 1.0)),
        )
        ledger.consumption_w[slot] = float(rng.uniform(0.0, 3.0))
    return ledger


class TestLedgerBasics:
    def test_rejects_empty_ledger(self):
        with pytest.raises(ValueError, match="at least one slot"):
            EnergyLedger(0)

    def test_backwards_advance_rejected(self):
        ledger = EnergyLedger(3)
        for slot in range(3):
            ledger.init_slot(slot, capacity_j=100.0, initial_frac=1.0)
        ledger.advance_all_to(5.0)
        with pytest.raises(ValueError, match="cannot advance"):
            ledger.advance_all_to(4.0)


class TestDeadNodesStayDead:
    def test_dead_nodes_never_regain_energy_on_advance(self):
        ledger = EnergyLedger(2)
        for slot in range(2):
            ledger.init_slot(slot, capacity_j=100.0, initial_frac=1.0)
        ledger.consumption_w[:] = [50.0, 1.0]

        assert ledger.advance_all_to(3.0) == [0]
        assert ledger.alive.tolist() == [False, True]
        assert ledger.energy_j[0] == 0.0
        assert ledger.death_time[0] == 2.0  # 100 J / 50 W

        # Charging a dead slot is a no-op...
        ledger.charge_slot(0, 1_000.0, 1_000.0)
        assert ledger.energy_j[0] == 0.0
        assert ledger.believed_j[0] == 0.0

        # ...and no later advance resurrects it or moves its death time.
        for time in (5.0, 8.0, 21.0):
            died = ledger.advance_all_to(time)
            assert 0 not in died
            assert ledger.energy_j[0] == 0.0
            assert not ledger.alive[0]
            assert ledger.death_time[0] == 2.0


class TestDeathIdContract:
    def test_death_ids_ascending_and_exactly_once(self):
        ledger = EnergyLedger(6)
        for slot in range(6):
            ledger.init_slot(slot, capacity_j=100.0, initial_frac=1.0)
        # Slots 1, 3, 4 die within the first advance; slot 0 in the
        # second; slot 5 much later; slot 2 draws nothing and never dies.
        ledger.consumption_w[:] = [10.0, 200.0, 0.0, 150.0, 400.0, 1.0]

        assert ledger.advance_all_to(1.0) == [1, 3, 4]
        assert ledger.advance_all_to(11.0) == [0]
        assert ledger.advance_all_to(100.0) == [5]
        assert ledger.advance_all_to(1_000.0) == []
        assert ledger.alive_ids() == [2]
        assert ledger.dead_ids() == [0, 1, 3, 4, 5]


class TestScalarVectorEquivalence:
    def test_vectorized_advance_matches_scalar_path_on_random_schedules(self):
        for seed in range(20):
            rng = np.random.default_rng(seed)
            count = int(rng.integers(1, 9))
            vec = random_ledger(count, rng)
            ref = clone_ledger(vec)

            time = 0.0
            for _ in range(40):
                time += float(rng.uniform(0.0, 40.0))
                died_vec = vec.advance_all_to(time)
                died_ref = [
                    slot
                    for slot in range(count)
                    if ref.advance_slot_to(slot, time)
                ]
                assert died_vec == died_ref, f"seed {seed} @ t={time}"
                assert_ledgers_bitwise_equal(vec, ref)
                # Occasionally recharge a slot (both paths identically).
                if rng.random() < 0.3:
                    slot = int(rng.integers(0, count))
                    delivered = float(rng.uniform(0.0, 150.0))
                    vec.charge_slot(slot, delivered, delivered)
                    ref.charge_slot(slot, delivered, delivered)
                    assert_ledgers_bitwise_equal(vec, ref)

    def test_network_advance_matches_per_node_scalar_path(self):
        for seed in (0, 1, 2):
            net = build_network(
                25, seed=seed, width=60.0, height=60.0, battery_capacity_j=500.0
            )
            mirror = clone_ledger(net.ledger)
            rng = np.random.default_rng(seed + 100)

            time = 0.0
            seen_deaths: list[int] = []
            for _ in range(60):
                time += float(rng.uniform(100.0, 20_000.0))
                died = net.advance_to(time)
                died_ref = [
                    slot
                    for slot in range(len(mirror))
                    if mirror.advance_slot_to(slot, time)
                ]
                assert died == died_ref
                assert died == sorted(died)
                assert not set(died) & set(seen_deaths)
                seen_deaths.extend(died)
                assert_ledgers_bitwise_equal(net.ledger, mirror)
                if died:
                    # Routing (and hence every draw) changes after deaths;
                    # mirror the new consumption so the paths stay paired.
                    net.recompute_consumption()
                    mirror.consumption_w[:] = net.ledger.consumption_w
                if net.ledger.alive_count() == 0:
                    break


class TestLoadArrays:
    def test_round_trip_matches_per_slot_fills(self):
        rng = np.random.default_rng(7)
        reference = random_ledger(16, rng)
        loaded = EnergyLedger(16)
        loaded.load_arrays(
            capacity_j=reference.capacity_j,
            energy_j=reference.energy_j,
            believed_j=reference.believed_j,
            consumption_w=reference.consumption_w,
            clock=reference.clock,
            alive=reference.alive,
        )
        assert_ledgers_bitwise_equal(loaded, reference)

    def test_scalar_clock_broadcasts(self):
        ledger = EnergyLedger(3)
        ledger.load_arrays(
            capacity_j=np.full(3, 100.0),
            energy_j=np.full(3, 50.0),
            believed_j=np.full(3, 50.0),
            consumption_w=np.zeros(3),
            clock=4.5,
            alive=np.ones(3, dtype=bool),
        )
        np.testing.assert_array_equal(ledger.clock, np.full(3, 4.5))

    def test_float32_arrays_rejected_at_the_boundary(self):
        ledger = EnergyLedger(3)
        with pytest.raises(TypeError, match="capacity_j must be float64"):
            ledger.load_arrays(
                capacity_j=np.full(3, 100.0, dtype=np.float32),
                energy_j=np.full(3, 50.0),
                believed_j=np.full(3, 50.0),
                consumption_w=np.zeros(3),
                clock=0.0,
                alive=np.ones(3, dtype=bool),
            )

    def test_shape_mismatch_rejected(self):
        ledger = EnergyLedger(3)
        with pytest.raises(ValueError, match=r"energy_j must have shape \(3,\)"):
            ledger.load_arrays(
                capacity_j=np.full(3, 100.0),
                energy_j=np.full(4, 50.0),
                believed_j=np.full(3, 50.0),
                consumption_w=np.zeros(3),
                clock=0.0,
                alive=np.ones(3, dtype=bool),
            )
