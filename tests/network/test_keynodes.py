"""Tests for key-node identification and weighting."""

import pytest

from repro.network.keynodes import connectivity_impact, identify_key_nodes
from repro.network.routing import build_routing_tree
from repro.network.topology import BASE_STATION_ID, communication_graph
from repro.network.traffic import TrafficModel
from repro.utils.geometry import Point


def bridge_topology():
    """Two groups joined only through node 1 (the bridge).

    BS - 0 - 1 - 2 - 3: node 1 strands {2, 3}; node 0 strands {1, 2, 3}.
    """
    positions = [Point(10, 0), Point(20, 0), Point(30, 0), Point(40, 0)]
    graph = communication_graph(positions, Point(0, 0), comm_range=11.0)
    tree = build_routing_tree(graph)
    traffic = TrafficModel.homogeneous(4, 100.0)
    return graph, tree, traffic


class TestConnectivityImpact:
    def test_bridge_strands_downstream(self):
        graph, _tree, _traffic = bridge_topology()
        assert connectivity_impact(graph, 1) == 2
        assert connectivity_impact(graph, 0) == 3
        assert connectivity_impact(graph, 3) == 0

    def test_base_station_not_a_candidate(self):
        graph, *_ = bridge_topology()
        with pytest.raises(ValueError):
            connectivity_impact(graph, BASE_STATION_ID)

    def test_unknown_node(self):
        graph, *_ = bridge_topology()
        with pytest.raises(KeyError):
            connectivity_impact(graph, 99)


class TestIdentifyKeyNodes:
    def test_most_critical_first(self):
        graph, tree, traffic = bridge_topology()
        infos = identify_key_nodes(graph, tree, traffic, count=4)
        assert infos[0].node_id == 0  # strands most, relays most
        assert infos[0].weight == pytest.approx(1.0)
        assert [i.node_id for i in infos[:3]] == [0, 1, 2]

    def test_weights_normalised_and_positive(self):
        graph, tree, traffic = bridge_topology()
        infos = identify_key_nodes(graph, tree, traffic, count=4)
        weights = [i.weight for i in infos]
        assert max(weights) == pytest.approx(1.0)
        assert all(w > 0.0 for w in weights)
        assert weights == sorted(weights, reverse=True)

    def test_articulation_flag(self):
        graph, tree, traffic = bridge_topology()
        infos = {i.node_id: i for i in identify_key_nodes(graph, tree, traffic, 4)}
        assert infos[0].is_articulation
        assert infos[1].is_articulation
        assert not infos[3].is_articulation

    def test_count_truncates(self):
        graph, tree, traffic = bridge_topology()
        assert len(identify_key_nodes(graph, tree, traffic, count=2)) == 2

    def test_exclusion(self):
        graph, tree, traffic = bridge_topology()
        infos = identify_key_nodes(
            graph, tree, traffic, count=4, exclude=frozenset({0})
        )
        assert all(i.node_id != 0 for i in infos)

    def test_stranded_count_recorded(self):
        graph, tree, traffic = bridge_topology()
        infos = {i.node_id: i for i in identify_key_nodes(graph, tree, traffic, 4)}
        assert infos[1].stranded_count == 2

    def test_rejects_zero_count(self):
        graph, tree, traffic = bridge_topology()
        with pytest.raises(ValueError):
            identify_key_nodes(graph, tree, traffic, count=0)
