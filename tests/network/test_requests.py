"""Tests for charging-request prediction."""

import pytest

from repro.network.node import SensorNode
from repro.network.requests import ChargingRequest, predict_request
from repro.utils.geometry import Point


def make_node(**kwargs) -> SensorNode:
    defaults = dict(
        node_id=3,
        position=Point(0.0, 0.0),
        battery_capacity_j=1000.0,
        request_threshold_frac=0.2,
    )
    defaults.update(kwargs)
    return SensorNode(**defaults)


class TestChargingRequest:
    def test_window_width(self):
        req = ChargingRequest(time=10.0, node_id=1, deadline=110.0, energy_needed_j=5.0)
        assert req.window_width == pytest.approx(100.0)

    def test_rejects_deadline_before_time(self):
        with pytest.raises(ValueError):
            ChargingRequest(time=10.0, node_id=1, deadline=5.0, energy_needed_j=5.0)

    def test_rejects_negative_energy(self):
        with pytest.raises(ValueError):
            ChargingRequest(time=0.0, node_id=1, deadline=1.0, energy_needed_j=-1.0)

    def test_ordering_by_time(self):
        early = ChargingRequest(1.0, 5, 10.0, 1.0)
        late = ChargingRequest(2.0, 1, 10.0, 1.0)
        assert early < late


class TestPredictRequest:
    def test_basic_prediction(self):
        node = make_node()
        node.set_consumption(2.0)
        req = predict_request(node)
        assert req is not None
        assert req.time == pytest.approx(400.0)  # believed hits 200 J
        assert req.deadline == pytest.approx(500.0)  # true hits 0
        assert req.energy_needed_j == pytest.approx(800.0)

    def test_none_for_dead_node(self):
        node = make_node()
        node.set_consumption(100.0)
        node.advance_to(50.0)
        assert predict_request(node) is None

    def test_none_for_zero_draw(self):
        assert predict_request(make_node()) is None

    def test_immediate_when_already_below_threshold(self):
        node = make_node(initial_energy_frac=0.15)
        node.set_consumption(1.0)
        req = predict_request(node)
        assert req is not None
        assert req.time == pytest.approx(node.clock)

    def test_spoofed_node_never_requests_again(self):
        # Belief pinned at full while truth drains: the belief crosses the
        # threshold only after the node is already dead, so no request.
        node = make_node(initial_energy_frac=0.3)
        node.set_consumption(1.0)
        node.receive_charge(delivered_j=0.0, believed_j=700.0)  # belief -> 1000
        req = predict_request(node)
        assert req is None

    def test_deficit_measured_at_request_time(self):
        node = make_node()
        node.set_consumption(2.0)
        req = predict_request(node)
        # At request, believed energy is exactly the threshold.
        assert req.energy_needed_j == pytest.approx(
            node.battery_capacity_j - node.request_threshold_j
        )
