"""Tests for the uniform spatial grid index.

The index is a pure pre-filter: every query must return *bitwise* the
same answer as the dense O(N^2) scan it replaced.  These tests pin that
equivalence against brute force across randomized deployments, regular
lattices (the worst case for on-boundary distances), duplicate points,
and the degenerate empty / single-point inputs.
"""

import numpy as np
import pytest

from repro.network.spatial import SpatialGridIndex
from repro.network.topology import BASE_STATION_ID, communication_graph
from repro.utils.geometry import Point
from repro.utils.rng import make_rng


def brute_pairs(points: np.ndarray, radius: float):
    """Reference all-pairs join: the seed's double loop, verbatim order.

    ``dx * dx`` rather than ``dx**2``: the scalar float64 power routes
    through ``pow()`` and can land one ulp off the multiply that numpy
    lowers the seed's vectorized ``deltas**2`` to.
    """
    i_out, j_out, d_out = [], [], []
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            dx = points[i, 0] - points[j, 0]
            dy = points[i, 1] - points[j, 1]
            d = np.sqrt(dx * dx + dy * dy)
            if d <= radius:
                i_out.append(i)
                j_out.append(j)
                d_out.append(d)
    return i_out, j_out, d_out


def brute_query(points: np.ndarray, x: float, y: float, radius: float):
    deltas = points - (x, y)
    dist = np.sqrt(deltas[:, 0] ** 2 + deltas[:, 1] ** 2)
    return np.flatnonzero(dist <= radius)


@pytest.fixture()
def rng():
    return make_rng(29, "spatial-tests")


class TestPairsWithin:
    @pytest.mark.parametrize("cell_factor", [0.5, 1.0, 2.5])
    def test_matches_brute_force_randomized(self, rng, cell_factor):
        for _ in range(15):
            n = int(rng.integers(2, 120))
            side = float(rng.uniform(20.0, 300.0))
            radius = float(rng.uniform(5.0, 60.0))
            points = rng.uniform(0.0, side, size=(n, 2))
            index = SpatialGridIndex(points, cell_size=radius * cell_factor)
            i, j, d = index.pairs_within(radius)
            bi, bj, bd = brute_pairs(points, radius)
            assert i.tolist() == bi
            assert j.tolist() == bj
            assert d.tolist() == bd  # bitwise, not approx

    def test_no_duplicate_pairs_when_radius_spans_cells(self, rng):
        # radius >> cell: the half-neighbourhood join touches offsets with
        # |dx|, |dy| > 1 where naive composite-key arithmetic aliased
        # across grid columns and double-counted cell pairs.
        points = rng.uniform(0.0, 50.0, size=(120, 2))
        index = SpatialGridIndex(points, cell_size=4.0)
        i, j, _ = index.pairs_within(22.0)
        pairs = list(zip(i.tolist(), j.tolist()))
        assert len(pairs) == len(set(pairs))
        assert all(a < b for a, b in pairs)

    def test_lattice_points_on_exact_boundaries(self):
        # Integer lattice with radius exactly the lattice pitch: every
        # axis-neighbour distance equals the radius, the hardest case for
        # a <= comparison to reproduce bit for bit.
        xs, ys = np.meshgrid(np.arange(8.0), np.arange(8.0))
        points = np.column_stack([xs.ravel(), ys.ravel()])
        index = SpatialGridIndex(points, cell_size=1.0)
        i, j, d = index.pairs_within(1.0)
        bi, bj, bd = brute_pairs(points, 1.0)
        assert i.tolist() == bi
        assert j.tolist() == bj
        assert d.tolist() == bd

    def test_duplicate_points_pair_at_distance_zero(self):
        points = np.array([[5.0, 5.0], [5.0, 5.0], [5.0, 5.0]])
        i, j, d = SpatialGridIndex(points, cell_size=2.0).pairs_within(1.0)
        assert list(zip(i.tolist(), j.tolist())) == [(0, 1), (0, 2), (1, 2)]
        assert d.tolist() == [0.0, 0.0, 0.0]

    def test_empty_and_single_point(self):
        empty = SpatialGridIndex(np.zeros((0, 2)), cell_size=1.0)
        i, j, d = empty.pairs_within(10.0)
        assert len(i) == len(j) == len(d) == 0
        single = SpatialGridIndex(np.array([[3.0, 4.0]]), cell_size=1.0)
        i, j, d = single.pairs_within(10.0)
        assert len(i) == len(j) == len(d) == 0


class TestQueryRadius:
    def test_matches_brute_force_randomized(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 150))
            points = rng.uniform(0.0, 100.0, size=(n, 2))
            radius = float(rng.uniform(3.0, 40.0))
            index = SpatialGridIndex(points, cell_size=radius)
            x, y = (float(v) for v in rng.uniform(-10.0, 110.0, size=2))
            assert (
                index.query_radius(x, y, radius).tolist()
                == brute_query(points, x, y, radius).tolist()
            )

    def test_far_outside_occupied_territory(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        index = SpatialGridIndex(points, cell_size=1.0)
        assert index.query_radius(500.0, 500.0, 2.0).tolist() == []

    def test_empty_index(self):
        index = SpatialGridIndex(np.zeros((0, 2)), cell_size=1.0)
        assert index.query_radius(0.0, 0.0, 5.0).tolist() == []


class TestAnyWithin:
    def test_matches_dense_predicate(self, rng):
        for _ in range(10):
            sensors = rng.uniform(0.0, 80.0, size=(int(rng.integers(1, 90)), 2))
            queries = rng.uniform(0.0, 80.0, size=(40, 2))
            radius = float(rng.uniform(2.0, 25.0))
            index = SpatialGridIndex(sensors, cell_size=radius)
            mask = index.any_within(queries, radius**2)
            deltas = queries[:, None, :] - sensors[None, :, :]
            dense = ((deltas**2).sum(axis=-1) <= radius**2).any(axis=1)
            assert np.array_equal(mask, dense)

    def test_empty_index_covers_nothing(self):
        index = SpatialGridIndex(np.zeros((0, 2)), cell_size=1.0)
        assert not index.any_within(np.array([[0.0, 0.0]]), 100.0).any()


class TestCommunicationGraphEquivalence:
    def _brute_graph(self, positions, base_station, comm_range):
        import networkx as nx

        all_points = list(positions) + [base_station]
        ids = list(range(len(positions))) + [BASE_STATION_ID]
        graph = nx.Graph()
        graph.add_nodes_from(ids)
        coords = np.array([(p.x, p.y) for p in all_points], dtype=float)
        for a in range(len(all_points)):
            for b in range(a + 1, len(all_points)):
                dx = coords[a, 0] - coords[b, 0]
                dy = coords[a, 1] - coords[b, 1]
                d = float(np.sqrt(dx * dx + dy * dy))
                if d <= comm_range:
                    graph.add_edge(ids[a], ids[b], distance=d)
        return graph

    def test_identical_to_dense_double_loop(self, rng):
        for _ in range(8):
            n = int(rng.integers(2, 80))
            positions = [
                Point(float(x), float(y))
                for x, y in rng.uniform(0.0, 120.0, size=(n, 2))
            ]
            bs = Point(60.0, 60.0)
            r = float(rng.uniform(10.0, 40.0))
            fast = communication_graph(positions, bs, r)
            brute = self._brute_graph(positions, bs, r)
            # Same edges, same float64 lengths, same insertion order —
            # downstream Dijkstra tie-breaking depends on all three.
            assert list(fast.edges(data="distance")) == list(
                brute.edges(data="distance")
            )
            assert list(fast.nodes) == list(brute.nodes)


class TestIndexDtypes:
    def test_same_cell_join_positions_are_int64(self):
        # Regression: the (0, 0) offset used np.arange's platform-int
        # default while every other join path produced int64; composite
        # key math must stay int64 on every path (RL-N005).
        rng = make_rng(5)
        pts = rng.uniform(0.0, 50.0, size=(64, 2))
        index = SpatialGridIndex(pts, cell_size=10.0)
        a_pos, b_pos = index._join_offset(0, 0)
        assert a_pos.dtype == np.int64
        assert b_pos.dtype == np.int64

    def test_pair_indices_are_int64(self):
        rng = make_rng(6)
        pts = rng.uniform(0.0, 50.0, size=(64, 2))
        i, j, dist = SpatialGridIndex(pts, cell_size=10.0).pairs_within(12.0)
        assert i.dtype == np.int64
        assert j.dtype == np.int64
        assert dist.dtype == np.float64
