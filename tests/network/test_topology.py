"""Tests for deployments and the communication graph."""

import networkx as nx
import pytest

from repro.network.topology import (
    BASE_STATION_ID,
    Deployment,
    communication_graph,
    deploy_clustered,
    deploy_grid,
    deploy_uniform,
)
from repro.utils.geometry import Point
from repro.utils.rng import make_rng


@pytest.fixture()
def rng():
    return make_rng(13, "topo-tests")


class TestCommunicationGraph:
    def test_edges_within_range_only(self):
        positions = [Point(0, 0), Point(5, 0), Point(20, 0)]
        graph = communication_graph(positions, Point(0, 5), comm_range=10.0)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        assert graph.has_edge(0, BASE_STATION_ID)

    def test_edge_distance_attribute(self):
        positions = [Point(0, 0), Point(3, 4)]
        graph = communication_graph(positions, Point(100, 100), comm_range=10.0)
        assert graph.edges[0, 1]["distance"] == pytest.approx(5.0)

    def test_base_station_always_present(self):
        graph = communication_graph([Point(0, 0)], Point(50, 50), comm_range=1.0)
        assert BASE_STATION_ID in graph
        assert graph.degree(BASE_STATION_ID) == 0


class TestDeployUniform:
    def test_count_and_bounds(self, rng):
        dep = deploy_uniform(50, rng, width=80.0, height=60.0, comm_range=25.0)
        assert dep.node_count == 50
        for p in dep.positions:
            assert 0.0 <= p.x <= 80.0
            assert 0.0 <= p.y <= 60.0

    def test_connected(self, rng):
        dep = deploy_uniform(50, rng)
        assert nx.is_connected(dep.graph())

    def test_default_base_station_centre(self, rng):
        dep = deploy_uniform(60, rng, width=100.0, height=100.0)
        assert dep.base_station == Point(50.0, 50.0)

    def test_reproducible(self):
        a = deploy_uniform(20, make_rng(5, "t"), comm_range=30.0)
        b = deploy_uniform(20, make_rng(5, "t"), comm_range=30.0)
        assert a.positions == b.positions

    def test_impossible_density_raises(self, rng):
        with pytest.raises(RuntimeError):
            deploy_uniform(
                3, rng, width=1000.0, height=1000.0, comm_range=5.0, max_attempts=5
            )

    def test_rejects_zero_nodes(self, rng):
        with pytest.raises(ValueError):
            deploy_uniform(0, rng)


class TestDeployGrid:
    def test_positions_on_lattice(self):
        dep = deploy_grid(2, 3, spacing=10.0)
        assert dep.node_count == 6
        assert Point(0.0, 0.0) in dep.positions
        assert Point(20.0, 10.0) in dep.positions

    def test_connected_by_default_range(self):
        dep = deploy_grid(3, 3, spacing=10.0)
        assert nx.is_connected(dep.graph())

    def test_too_small_range_raises(self):
        with pytest.raises(RuntimeError):
            deploy_grid(1, 3, spacing=10.0, comm_range=5.0)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            deploy_grid(0, 3)


class TestDeployClustered:
    def test_connected_and_counted(self, rng):
        dep = deploy_clustered(60, 4, rng, comm_range=25.0)
        assert dep.node_count == 60
        assert nx.is_connected(dep.graph())

    def test_positions_clipped_to_field(self, rng):
        dep = deploy_clustered(60, 3, rng, width=50.0, height=50.0, comm_range=30.0)
        for p in dep.positions:
            assert 0.0 <= p.x <= 50.0
            assert 0.0 <= p.y <= 50.0

    def test_rejects_zero_clusters(self, rng):
        with pytest.raises(ValueError):
            deploy_clustered(10, 0, rng)


class TestDeploymentValidation:
    def test_rejects_empty_positions(self):
        with pytest.raises(ValueError):
            Deployment((), Point(0, 0), 10.0, 10.0, 5.0)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            Deployment((Point(0, 0),), Point(0, 0), 0.0, 10.0, 5.0)
