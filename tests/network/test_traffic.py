"""Tests for the traffic model and relay-load computation."""

import pytest

from repro.network.routing import build_routing_tree
from repro.network.topology import communication_graph
from repro.network.traffic import TrafficModel, relay_loads, upstream_loads
from repro.utils.geometry import Point
from repro.utils.rng import make_rng


def chain_graph():
    positions = [Point(10, 0), Point(20, 0), Point(30, 0)]
    return communication_graph(positions, Point(0, 0), comm_range=11.0)


class TestTrafficModel:
    def test_homogeneous(self):
        model = TrafficModel.homogeneous(4, 2000.0)
        assert model.node_count == 4
        assert all(model.rate(i) == 2000.0 for i in range(4))

    def test_heterogeneous_within_bounds(self):
        rng = make_rng(1, "traffic")
        model = TrafficModel.heterogeneous(50, rng, low_bps=1000.0, high_bps=5000.0)
        assert all(1000.0 <= model.rate(i) <= 5000.0 for i in range(50))

    def test_heterogeneous_reproducible(self):
        a = TrafficModel.heterogeneous(10, make_rng(2, "t"))
        b = TrafficModel.heterogeneous(10, make_rng(2, "t"))
        assert a.rates_bps == b.rates_bps

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            TrafficModel.heterogeneous(5, make_rng(0, "t"), low_bps=10.0, high_bps=5.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            TrafficModel((-1.0,))


class TestRelayLoads:
    def test_chain_relays_accumulate(self):
        tree = build_routing_tree(chain_graph())
        traffic = TrafficModel.homogeneous(3, 100.0)
        loads = relay_loads(tree, traffic)
        assert loads[2] == pytest.approx(0.0)
        assert loads[1] == pytest.approx(100.0)
        assert loads[0] == pytest.approx(200.0)

    def test_upstream_adds_own_rate(self):
        tree = build_routing_tree(chain_graph())
        traffic = TrafficModel.homogeneous(3, 100.0)
        ups = upstream_loads(tree, traffic)
        assert ups[0] == pytest.approx(300.0)
        assert ups[2] == pytest.approx(100.0)

    def test_dead_descendants_stop_contributing(self):
        graph = chain_graph()
        tree = build_routing_tree(graph, alive={0, 1})
        traffic = TrafficModel.homogeneous(3, 100.0)
        loads = relay_loads(tree, traffic, alive={0, 1})
        assert loads[0] == pytest.approx(100.0)

    def test_heterogeneous_rates_respected(self):
        tree = build_routing_tree(chain_graph())
        traffic = TrafficModel((10.0, 20.0, 40.0))
        loads = relay_loads(tree, traffic)
        assert loads[0] == pytest.approx(60.0)
        assert loads[1] == pytest.approx(40.0)
