"""Tests for sensing-coverage metrics."""

import numpy as np
import pytest

from repro.network.coverage import coverage_ratio, covered_fraction_of_points
from repro.network.network import Network, build_network
from repro.network.topology import Deployment
from repro.network.traffic import TrafficModel
from repro.utils.geometry import Point


class TestCoveredFraction:
    def test_single_sensor_partial_cover(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0], [100.0, 0.0]])
        sensors = np.array([[0.0, 0.0]])
        frac = covered_fraction_of_points(points, sensors, sensing_radius_m=15.0)
        assert frac == pytest.approx(2.0 / 3.0)

    def test_no_sensors_cover_nothing(self):
        points = np.array([[0.0, 0.0]])
        assert covered_fraction_of_points(
            points, np.zeros((0, 2)), sensing_radius_m=10.0
        ) == 0.0

    def test_radius_boundary_inclusive(self):
        points = np.array([[12.0, 0.0]])
        sensors = np.array([[0.0, 0.0]])
        assert covered_fraction_of_points(points, sensors, 12.0) == 1.0

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            covered_fraction_of_points(np.zeros((0, 2)), np.zeros((1, 2)), 5.0)

    def test_bad_radius_rejected(self):
        with pytest.raises(ValueError):
            covered_fraction_of_points(
                np.zeros((1, 2)), np.zeros((1, 2)), 0.0
            )


class TestCoverageRatio:
    def test_full_network_covers_most_of_field(self):
        network = build_network(100, seed=5)
        assert coverage_ratio(network) > 0.8

    def test_deaths_reduce_coverage(self):
        network = build_network(100, seed=5)
        before = coverage_ratio(network)
        # Kill a third of the nodes.
        for node_id in list(network.alive_ids())[:33]:
            node = network.nodes[node_id]
            node.set_consumption(1e9)
        network.advance_to(1.0)
        network.recompute_consumption()
        after = coverage_ratio(network)
        assert after < before

    def test_stranded_nodes_do_not_count(self):
        # BS - 0 - 1: killing 0 strands 1; coverage collapses even
        # though node 1 is alive.
        deployment = Deployment(
            positions=(Point(10.0, 5.0), Point(20.0, 5.0)),
            base_station=Point(0.0, 5.0),
            width=30.0,
            height=10.0,
            comm_range=11.0,
        )
        network = Network(deployment, TrafficModel.homogeneous(2, 100.0))
        full = coverage_ratio(network, sensing_radius_m=8.0)
        network.nodes[0].set_consumption(1e9)
        network.advance_to(1.0)
        network.recompute_consumption()
        assert network.stranded_ids() == {1}
        assert coverage_ratio(network, sensing_radius_m=8.0) == 0.0
        assert full > 0.0

    def test_grid_resolution_validated(self):
        network = build_network(60, seed=5)
        with pytest.raises(ValueError):
            coverage_ratio(network, grid_resolution=1)


class TestBlockedEvaluationEquivalence:
    """The blocked / spatial-index sweeps must reproduce the seed's dense
    ``(m, n, 2)`` broadcast bit for bit, in bounded memory."""

    def _dense_fraction(self, points, sensors, radius):
        deltas = points[:, None, :] - sensors[None, :, :]
        covered = ((deltas**2).sum(axis=-1) <= radius**2).any(axis=1)
        return float(covered.mean())

    def test_blocked_matches_dense_randomized(self):
        rng = np.random.default_rng(42)
        for _ in range(10):
            m = int(rng.integers(1, 1500))
            n = int(rng.integers(1, 3000))
            radius = float(rng.uniform(2.0, 30.0))
            points = rng.uniform(0.0, 120.0, size=(m, 2))
            sensors = rng.uniform(0.0, 120.0, size=(n, 2))
            assert covered_fraction_of_points(
                points, sensors, radius
            ) == self._dense_fraction(points, sensors, radius)

    def test_indexed_path_matches_dense(self):
        # Above the index threshold the evaluation routes through the
        # spatial grid; the answer must not move.
        rng = np.random.default_rng(43)
        points = rng.uniform(0.0, 200.0, size=(400, 2))
        sensors = rng.uniform(0.0, 200.0, size=(5000, 2))
        assert covered_fraction_of_points(
            points, sensors, 6.0
        ) == self._dense_fraction(points, sensors, 6.0)

    def test_peak_memory_bounded_at_scale(self):
        # The seed's single broadcast allocated ~1 GB for a 25x25 grid
        # over 10^5 sensors; the rewrite must stay well under 64 MB no
        # matter how many sensors there are.
        import tracemalloc

        rng = np.random.default_rng(44)
        xs, ys = np.meshgrid(np.linspace(0, 4000, 25), np.linspace(0, 4000, 25))
        points = np.column_stack([xs.ravel(), ys.ravel()])
        sensors = rng.uniform(0.0, 4000.0, size=(100_000, 2))
        tracemalloc.start()
        frac = covered_fraction_of_points(points, sensors, 12.0)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert 0.0 < frac < 1.0
        assert peak < 64 * 1024 * 1024, f"peak {peak / 1e6:.0f} MB"
