"""Tests for the sensor node's energy dynamics and spoofable belief."""

import math

import pytest

from repro.network.node import NodeState, SensorNode
from repro.utils.geometry import Point


def make_node(**kwargs) -> SensorNode:
    defaults = dict(
        node_id=0,
        position=Point(0.0, 0.0),
        battery_capacity_j=1000.0,
        request_threshold_frac=0.2,
    )
    defaults.update(kwargs)
    return SensorNode(**defaults)


class TestConstruction:
    def test_starts_full_by_default(self):
        node = make_node()
        assert node.energy_j == 1000.0
        assert node.believed_energy_j == 1000.0
        assert node.alive

    def test_initial_fraction(self):
        node = make_node(initial_energy_frac=0.5)
        assert node.energy_j == 500.0

    def test_request_threshold_j(self):
        assert make_node().request_threshold_j == pytest.approx(200.0)

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            make_node(node_id=-1)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            make_node(battery_capacity_j=0.0)


class TestDrain:
    def test_linear_drain(self):
        node = make_node()
        node.set_consumption(1.0)
        node.advance_to(100.0)
        assert node.energy_j == pytest.approx(900.0)
        assert node.believed_energy_j == pytest.approx(900.0)

    def test_zero_consumption_holds_energy(self):
        node = make_node()
        node.advance_to(1e6)
        assert node.energy_j == 1000.0

    def test_death_at_depletion(self):
        node = make_node()
        node.set_consumption(10.0)
        node.advance_to(100.0)
        assert not node.alive
        assert node.state == NodeState.DEAD
        assert node.death_time == pytest.approx(100.0)
        assert node.energy_j == 0.0

    def test_death_mid_interval_records_exact_time(self):
        node = make_node()
        node.set_consumption(10.0)
        node.advance_to(250.0)
        assert node.death_time == pytest.approx(100.0)

    def test_time_cannot_flow_backwards(self):
        node = make_node()
        node.advance_to(10.0)
        with pytest.raises(ValueError):
            node.advance_to(5.0)

    def test_advance_to_same_time_is_noop(self):
        node = make_node()
        node.set_consumption(1.0)
        node.advance_to(10.0)
        node.advance_to(10.0)
        assert node.energy_j == pytest.approx(990.0)

    def test_dead_node_clock_still_advances(self):
        node = make_node()
        node.set_consumption(100.0)
        node.advance_to(20.0)
        assert not node.alive
        node.advance_to(30.0)
        assert node.clock == 30.0


class TestPredictions:
    def test_predicted_death_time(self):
        node = make_node()
        node.set_consumption(2.0)
        assert node.predicted_death_time() == pytest.approx(500.0)

    def test_predicted_death_infinite_without_draw(self):
        assert make_node().predicted_death_time() == math.inf

    def test_predicted_request_time(self):
        node = make_node()
        node.set_consumption(2.0)
        # Believed energy reaches 200 J after draining 800 J.
        assert node.predicted_request_time() == pytest.approx(400.0)

    def test_request_immediate_when_below_threshold(self):
        node = make_node(initial_energy_frac=0.1)
        node.set_consumption(1.0)
        node.advance_to(5.0)
        assert node.predicted_request_time() == pytest.approx(5.0)

    def test_predictions_track_after_advance(self):
        node = make_node()
        node.set_consumption(2.0)
        node.advance_to(100.0)
        assert node.predicted_death_time() == pytest.approx(500.0)


class TestCharging:
    def test_genuine_charge_raises_both(self):
        node = make_node(initial_energy_frac=0.5)
        node.receive_charge(delivered_j=300.0, believed_j=300.0)
        assert node.energy_j == pytest.approx(800.0)
        assert node.believed_energy_j == pytest.approx(800.0)

    def test_spoofed_charge_raises_only_belief(self):
        node = make_node(initial_energy_frac=0.2)
        node.receive_charge(delivered_j=0.0, believed_j=800.0)
        assert node.energy_j == pytest.approx(200.0)
        assert node.believed_energy_j == pytest.approx(1000.0)
        assert node.belief_gap_j() == pytest.approx(800.0)

    def test_charge_clamped_at_capacity(self):
        node = make_node()
        node.receive_charge(delivered_j=5000.0, believed_j=5000.0)
        assert node.energy_j == 1000.0
        assert node.believed_energy_j == 1000.0

    def test_dead_node_cannot_be_revived(self):
        node = make_node()
        node.set_consumption(100.0)
        node.advance_to(20.0)
        node.receive_charge(500.0, 500.0)
        assert not node.alive
        assert node.energy_j == 0.0

    def test_spoofed_node_dies_believing_itself_charged(self):
        """The attack's core mechanic, in miniature."""
        node = make_node(initial_energy_frac=0.25)
        node.set_consumption(1.0)
        node.advance_to(50.0)  # true 200 J, believed 200 J
        node.receive_charge(delivered_j=0.0, believed_j=800.0)
        assert node.believed_energy_j == pytest.approx(1000.0)
        # Belief says ~1000 J -> no further request before true death.
        assert node.predicted_request_time() > node.predicted_death_time()
        node.advance_to(500.0)
        assert not node.alive

    def test_belief_floor_at_zero(self):
        node = make_node(initial_energy_frac=1.0)
        node.receive_charge(0.0, 0.0)
        node.set_consumption(1.0)
        node.advance_to(999.0)
        assert node.believed_energy_j >= 0.0


class TestSetInitialEnergy:
    def test_resets_both(self):
        node = make_node()
        node.set_initial_energy(0.7)
        assert node.energy_j == pytest.approx(700.0)
        assert node.believed_energy_j == pytest.approx(700.0)

    def test_rejected_after_evolution(self):
        node = make_node()
        node.advance_to(1.0)
        with pytest.raises(RuntimeError):
            node.set_initial_energy(0.5)


class TestRepr:
    def test_repr_mentions_id_and_state(self):
        text = repr(make_node(node_id=7))
        assert "id=7" in text
        assert "alive" in text
