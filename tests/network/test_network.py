"""Tests for the Network façade."""

import pytest

from repro.network.energy import RadioEnergyModel
from repro.network.network import Network, build_network
from repro.network.topology import deploy_grid
from repro.network.traffic import TrafficModel


@pytest.fixture()
def grid_network():
    dep = deploy_grid(2, 4, spacing=10.0, comm_range=15.0)
    traffic = TrafficModel.homogeneous(8, 1000.0)
    return Network(dep, traffic, battery_capacity_j=1000.0)


class TestConstruction:
    def test_build_network_convenience(self):
        net = build_network(30, seed=11)
        assert len(net.nodes) == 30
        assert len(net.alive_ids()) == 30

    def test_traffic_size_mismatch_rejected(self):
        dep = deploy_grid(2, 2, spacing=10.0)
        with pytest.raises(ValueError):
            Network(dep, TrafficModel.homogeneous(5, 100.0))

    def test_consumption_assigned_on_construction(self, grid_network):
        for node in grid_network.nodes.values():
            assert node.consumption_w > 0.0

    def test_relays_draw_more_than_leaves(self):
        net = build_network(60, seed=3)
        tree = net.routing_tree
        depths = {i: tree.depth(i) for i in tree.connected_nodes()}
        near = [net.nodes[i].consumption_w for i, d in depths.items() if d == 1]
        far = [net.nodes[i].consumption_w for i, d in depths.items() if d >= 3]
        assert max(near) > max(far)


class TestKeyNodes:
    def test_refresh_annotates(self, grid_network):
        infos = grid_network.refresh_key_nodes(3)
        assert len(infos) == 3
        for info in infos:
            node = grid_network.nodes[info.node_id]
            assert node.is_key
            assert node.weight == info.weight
        assert grid_network.key_ids() == {i.node_id for i in infos}

    def test_refresh_clears_previous(self, grid_network):
        first = grid_network.refresh_key_nodes(5)
        grid_network.refresh_key_nodes(1)
        flagged = [i for i, n in grid_network.nodes.items() if n.is_key]
        assert len(flagged) == 1

    def test_dead_nodes_excluded(self, grid_network):
        victim = grid_network.refresh_key_nodes(1)[0].node_id
        node = grid_network.nodes[victim]
        node.set_consumption(1e9)
        node.advance_to(1.0)
        grid_network.recompute_consumption()
        infos = grid_network.refresh_key_nodes(3)
        assert all(i.node_id != victim for i in infos)


class TestDynamics:
    def test_advance_reports_deaths(self, grid_network):
        doomed = 0
        grid_network.nodes[doomed].set_consumption(1000.0)
        died = grid_network.advance_to(2.0)
        assert died == [doomed]
        assert doomed in grid_network.dead_ids()

    def test_recompute_zeroes_dead_consumption(self, grid_network):
        grid_network.nodes[0].set_consumption(1000.0)
        grid_network.advance_to(2.0)
        grid_network.recompute_consumption()
        assert grid_network.nodes[0].consumption_w == 0.0

    def test_stranded_nodes_fall_to_baseline(self):
        # A 1x3 chain: killing the middle strands the far node.
        from repro.network.topology import Deployment
        from repro.utils.geometry import Point

        dep = Deployment(
            positions=(Point(10, 0), Point(20, 0), Point(30, 0)),
            base_station=Point(0, 0),
            width=40.0,
            height=10.0,
            comm_range=11.0,
        )
        net = Network(dep, TrafficModel.homogeneous(3, 1000.0))
        net.nodes[1].set_consumption(1e9)
        net.advance_to(1.0)
        net.recompute_consumption()
        assert net.stranded_ids() == {2}
        assert net.nodes[2].consumption_w == pytest.approx(
            RadioEnergyModel().baseline_w
        )

    def test_next_death_time(self, grid_network):
        expected = min(
            n.predicted_death_time() for n in grid_network.nodes.values()
        )
        assert grid_network.next_death_time() == pytest.approx(expected)

    def test_next_request_earliest(self, grid_network):
        req = grid_network.next_request()
        assert req is not None
        for node in grid_network.nodes.values():
            assert req.time <= node.predicted_request_time() + 1e-6

    def test_total_true_energy_decreases(self, grid_network):
        before = grid_network.total_true_energy()
        grid_network.advance_to(100.0)
        assert grid_network.total_true_energy() < before

    def test_repr(self, grid_network):
        assert "n=8" in repr(grid_network)
