"""Unit tests for the base-station detectors (no full simulation).

Detectors only need the event objects and a ``sim``-shaped accessor for
nodes, so a minimal stub keeps these tests fast and surgical.
"""

import numpy as np

from repro.detection.auditors import (
    DeathAfterChargeAuditor,
    NeglectMonitor,
    RandomVoltageAuditor,
    TrajectoryAnomalyDetector,
    default_detector_suite,
)
from repro.mc.charger import ChargeMode
from repro.network.node import SensorNode
from repro.sim.events import NodeDied, RequestIssued, ServiceCompleted
from repro.utils.geometry import Point


class StubTree:
    def __init__(self, connected=None):
        self._connected = connected

    def is_connected(self, node_id):
        return True if self._connected is None else node_id in self._connected


class StubNetwork:
    def __init__(self, nodes, connected=None):
        self.nodes = nodes
        self.routing_tree = StubTree(connected)

    def alive_mask(self):
        size = max(self.nodes, default=-1) + 1
        mask = np.zeros(size, dtype=bool)
        for node_id, node in self.nodes.items():
            mask[node_id] = node.alive
        return mask


class StubSim:
    def __init__(self, nodes=None, connected=None):
        self.network = StubNetwork(nodes or {}, connected)


def service_event(node_id=1, time=100.0, mode=ChargeMode.GENUINE,
                  claimed=8000.0, believed_after=10_000.0, capacity=10_800.0):
    return ServiceCompleted(
        time=time, node_id=node_id, start_time=time - 100.0, mode=mode,
        delivered_j=claimed if mode == ChargeMode.GENUINE else 0.0,
        believed_j=claimed, claimed_j=claimed, emission_j=2400.0,
        is_key=False, believed_energy_after_j=believed_after,
        battery_capacity_j=capacity,
    )


def death_event(node_id=1, time=200.0):
    return NodeDied(time=time, node_id=node_id, is_key=False,
                    was_spoofed=False, stranded_count=0)


def request_event(node_id=1, time=50.0):
    return RequestIssued(time=time, node_id=node_id, deadline=time + 1000.0,
                         energy_needed_j=100.0, is_key=False)


class TestDeathAfterCharge:
    def test_death_within_grace_detects(self):
        detector = DeathAfterChargeAuditor(grace_s=3600.0)
        sim = StubSim()
        assert detector.observe_service(service_event(time=100.0), sim) is None
        alarm = detector.observe_death(death_event(time=2000.0), sim)
        assert alarm is not None
        assert detector.detected

    def test_death_after_grace_is_fine(self):
        detector = DeathAfterChargeAuditor(grace_s=3600.0)
        sim = StubSim()
        detector.observe_service(service_event(time=100.0), sim)
        assert detector.observe_death(death_event(time=10_000.0), sim) is None
        assert not detector.detected

    def test_uncharged_death_ignored(self):
        detector = DeathAfterChargeAuditor()
        assert detector.observe_death(death_event(node_id=9), StubSim()) is None

    def test_threshold_tolerates_flags(self):
        detector = DeathAfterChargeAuditor(grace_s=3600.0, flag_threshold=2)
        sim = StubSim()
        detector.observe_service(service_event(node_id=1, time=100.0), sim)
        assert detector.observe_death(death_event(node_id=1, time=200.0), sim) is None
        detector.observe_service(service_event(node_id=2, time=300.0), sim)
        alarm = detector.observe_death(death_event(node_id=2, time=400.0), sim)
        assert alarm is not None

    def test_latest_service_counts(self):
        detector = DeathAfterChargeAuditor(grace_s=100.0)
        sim = StubSim()
        detector.observe_service(service_event(time=100.0), sim)
        detector.observe_service(service_event(time=5000.0), sim)
        alarm = detector.observe_death(death_event(time=5050.0), sim)
        assert alarm is not None


class TestTrajectoryAnomaly:
    def test_honest_claim_passes(self):
        detector = TrajectoryAnomalyDetector()
        event = service_event(claimed=8000.0, believed_after=10_000.0)
        assert detector.observe_service(event, StubSim()) is None

    def test_false_claim_detected(self):
        detector = TrajectoryAnomalyDetector()
        event = service_event(
            mode=ChargeMode.PRETEND, claimed=8000.0, believed_after=2000.0
        )
        alarm = detector.observe_service(event, StubSim())
        assert alarm is not None
        assert "claimed" in alarm.reason

    def test_spoof_passes_because_victim_is_fooled(self):
        # The victim credited itself the claim -> telemetry agrees.
        detector = TrajectoryAnomalyDetector()
        event = service_event(
            mode=ChargeMode.SPOOF, claimed=8000.0, believed_after=9_500.0
        )
        assert detector.observe_service(event, StubSim()) is None

    def test_capacity_clamp_not_penalised(self):
        detector = TrajectoryAnomalyDetector()
        # Claim exceeds capacity; telemetry capped at capacity: fine.
        event = service_event(
            claimed=12_000.0, believed_after=10_800.0, capacity=10_800.0
        )
        assert detector.observe_service(event, StubSim()) is None

    def test_tolerance_respected(self):
        detector = TrajectoryAnomalyDetector(tolerance=0.5)
        event = service_event(claimed=8000.0, believed_after=4100.0)
        assert detector.observe_service(event, StubSim()) is None

    def test_zero_claim_ignored(self):
        detector = TrajectoryAnomalyDetector()
        event = service_event(claimed=0.0, believed_after=0.0)
        assert detector.observe_service(event, StubSim()) is None


class TestRandomVoltageAuditor:
    def make_node(self, node_id, true_j, believed_j):
        node = SensorNode(node_id, Point(0, 0), battery_capacity_j=10_800.0)
        node.set_initial_energy(true_j / 10_800.0)
        node.receive_charge(0.0, max(believed_j - true_j, 0.0))
        return node

    def test_audit_catches_belief_gap(self):
        auditor = RandomVoltageAuditor(seed=1)
        node = self.make_node(3, true_j=2000.0, believed_j=10_000.0)
        sim = StubSim({3: node})
        auditor.observe_service(service_event(node_id=3, time=10.0), sim)
        outcome = auditor.perform_audit(100.0, sim)
        assert outcome.audit is not None
        assert outcome.audit.mismatch
        assert outcome.detection is not None

    def test_honest_node_passes_audit(self):
        auditor = RandomVoltageAuditor(seed=1)
        node = self.make_node(3, true_j=9000.0, believed_j=9000.0)
        sim = StubSim({3: node})
        auditor.observe_service(service_event(node_id=3, time=10.0), sim)
        outcome = auditor.perform_audit(100.0, sim)
        assert outcome.audit is not None
        assert not outcome.audit.mismatch
        assert outcome.detection is None

    def test_no_candidates_no_audit(self):
        auditor = RandomVoltageAuditor(seed=1)
        outcome = auditor.perform_audit(100.0, StubSim({}))
        assert outcome.audit is None

    def test_stranded_nodes_not_auditable(self):
        auditor = RandomVoltageAuditor(seed=1)
        node = self.make_node(3, true_j=2000.0, believed_j=10_000.0)
        sim = StubSim({3: node}, connected=set())  # nobody reachable
        auditor.observe_service(service_event(node_id=3, time=10.0), sim)
        assert auditor.perform_audit(100.0, sim).audit is None

    def test_lookback_expires_candidates(self):
        auditor = RandomVoltageAuditor(seed=1, lookback_s=1000.0)
        node = self.make_node(3, true_j=2000.0, believed_j=10_000.0)
        sim = StubSim({3: node})
        auditor.observe_service(service_event(node_id=3, time=10.0), sim)
        assert auditor.perform_audit(5000.0, sim).audit is None

    def test_dead_nodes_not_auditable(self):
        auditor = RandomVoltageAuditor(seed=1)
        node = self.make_node(3, true_j=2000.0, believed_j=10_000.0)
        node.set_consumption(1e9)
        node.advance_to(50.0)
        sim = StubSim({3: node})
        auditor.observe_service(service_event(node_id=3, time=10.0), sim)
        assert auditor.perform_audit(100.0, sim).audit is None

    def test_audit_times_are_exponential(self):
        auditor = RandomVoltageAuditor(seed=2, mean_interval_s=3600.0)
        times = [auditor.next_audit_time(0.0) for _ in range(200)]
        assert all(t > 0.0 for t in times)
        mean = sum(times) / len(times)
        assert 2500.0 < mean < 4700.0  # loose CLT check


class TestNeglectMonitor:
    def test_expired_requests_trigger(self):
        monitor = NeglectMonitor(expiry_threshold=0.3, min_requests=2)
        sim = StubSim()
        for node_id in (1, 2):
            monitor.observe_request(request_event(node_id=node_id), sim)
        assert monitor.observe_death(death_event(node_id=1), sim) is not None

    def test_served_requests_do_not_count(self):
        monitor = NeglectMonitor(expiry_threshold=0.3, min_requests=2)
        sim = StubSim()
        for node_id in (1, 2, 3):
            monitor.observe_request(request_event(node_id=node_id), sim)
        monitor.observe_service(service_event(node_id=1), sim)
        assert monitor.observe_death(death_event(node_id=1), sim) is None

    def test_min_requests_suppresses_early_alarm(self):
        monitor = NeglectMonitor(expiry_threshold=0.1, min_requests=50)
        sim = StubSim()
        monitor.observe_request(request_event(node_id=1), sim)
        assert monitor.observe_death(death_event(node_id=1), sim) is None

    def test_ratio_below_threshold_quiet(self):
        monitor = NeglectMonitor(expiry_threshold=0.5, min_requests=2)
        sim = StubSim()
        for node_id in range(1, 6):
            monitor.observe_request(request_event(node_id=node_id), sim)
            monitor.observe_service(service_event(node_id=node_id), sim)
        monitor.observe_request(request_event(node_id=99), sim)
        assert monitor.observe_death(death_event(node_id=99), sim) is None

    def test_duplicate_requests_counted_once(self):
        monitor = NeglectMonitor()
        sim = StubSim()
        monitor.observe_request(request_event(node_id=1), sim)
        monitor.observe_request(request_event(node_id=1), sim)
        assert monitor.total_requests == 1


class TestSuite:
    def test_default_suite_composition(self):
        names = {d.name for d in default_detector_suite()}
        assert names == {
            "death-after-charge",
            "voltage-audit",
            "trajectory-anomaly",
            "neglect",
        }

    def test_audit_interval_override(self):
        suite = default_detector_suite(seed=3, audit_interval_s=7200.0)
        auditor = next(d for d in suite if d.name == "voltage-audit")
        assert auditor.mean_interval_s == 7200.0

    def test_audit_interval_default_untouched(self):
        default = next(
            d for d in default_detector_suite() if d.name == "voltage-audit"
        )
        overridden = next(
            d
            for d in default_detector_suite(audit_interval_s=123.0)
            if d.name == "voltage-audit"
        )
        assert default.mean_interval_s != 123.0
        assert overridden.mean_interval_s == 123.0

    def test_audit_interval_override_matches_mutation(self):
        # The constructor path must give the same RNG stream as the old
        # post-construction mutation (benchmarks rely on byte-stable
        # tables across this refactor).
        ctor = next(
            d
            for d in default_detector_suite(seed=5, audit_interval_s=43200.0)
            if d.name == "voltage-audit"
        )
        mutated = next(
            d for d in default_detector_suite(seed=5) if d.name == "voltage-audit"
        )
        mutated.mean_interval_s = 43200.0
        assert ctor.next_audit_time(0.0) == mutated.next_audit_time(0.0)

    def test_detection_latches(self):
        detector = DeathAfterChargeAuditor(grace_s=3600.0)
        sim = StubSim()
        detector.observe_service(service_event(time=100.0), sim)
        detector.observe_death(death_event(time=200.0), sim)
        first_time = detector.detection_time
        detector.observe_service(service_event(time=5000.0), sim)
        detector.observe_death(death_event(time=5100.0), sim)
        assert detector.detection_time == first_time


class TestIncludeTwin:
    def test_include_twin_appends_twin_detector(self):
        suite = default_detector_suite(seed=1, include_twin=True)
        assert [d.name for d in suite] == [
            "death-after-charge",
            "voltage-audit",
            "trajectory-anomaly",
            "neglect",
            "twin",
        ]

    def test_default_excludes_twin(self):
        assert "twin" not in {d.name for d in default_detector_suite(seed=1)}

    def test_periodic_suite_byte_identical_with_flag_off(self):
        # include_twin=False must not perturb the periodic suite in any
        # way — same classes, same parameters, same RNG states, byte for
        # byte.
        import pickle

        baseline = pickle.dumps(default_detector_suite(seed=9))
        flagged = pickle.dumps(
            default_detector_suite(seed=9, include_twin=False)
        )
        assert baseline == flagged

    def test_twin_rides_alongside_unchanged_periodic_suite(self):
        import pickle

        with_twin = default_detector_suite(seed=9, include_twin=True)
        baseline = pickle.dumps(default_detector_suite(seed=9))
        assert pickle.dumps(with_twin[:-1]) == baseline
