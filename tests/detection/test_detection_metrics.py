"""Tests for detection metrics aggregation."""

import pytest

from repro.detection.metrics import detection_rate, summarize_detections


class TestDetectionRate:
    def test_basic(self):
        assert detection_rate([True, False, True, False]) == pytest.approx(0.5)

    def test_all_clean(self):
        assert detection_rate([False] * 5) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            detection_rate([])


class TestSummarize:
    def test_mixed_outcomes(self):
        summary = summarize_detections(
            [("voltage-audit", 100.0), None, ("neglect", 300.0), None]
        )
        assert summary.trials == 4
        assert summary.detected == 2
        assert summary.rate == pytest.approx(0.5)
        assert summary.mean_time_to_detection_s == pytest.approx(200.0)
        assert summary.by_detector == {"voltage-audit": 1, "neglect": 1}

    def test_all_clean(self):
        summary = summarize_detections([None, None])
        assert summary.rate == 0.0
        assert summary.mean_time_to_detection_s is None
        assert summary.by_detector == {}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_detections([])
