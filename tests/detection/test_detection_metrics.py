"""Tests for detection metrics aggregation."""

import pytest

from repro.detection.metrics import detection_rate, summarize_detections


class TestDetectionRate:
    def test_basic(self):
        assert detection_rate([True, False, True, False]) == pytest.approx(0.5)

    def test_all_clean(self):
        assert detection_rate([False] * 5) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            detection_rate([])


class TestSummarize:
    def test_mixed_outcomes(self):
        summary = summarize_detections(
            [("voltage-audit", 100.0), None, ("neglect", 300.0), None]
        )
        assert summary.trials == 4
        assert summary.detected == 2
        assert summary.rate == pytest.approx(0.5)
        assert summary.mean_time_to_detection_s == pytest.approx(200.0)
        assert summary.by_detector == {"voltage-audit": 1, "neglect": 1}

    def test_all_clean(self):
        summary = summarize_detections([None, None])
        assert summary.rate == 0.0
        assert summary.mean_time_to_detection_s is None
        assert summary.by_detector == {}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_detections([])


class TestSummarizeLatencies:
    def test_mixed_detected_and_censored(self):
        from repro.detection.metrics import summarize_latencies

        summary = summarize_latencies([100.0, None, 300.0, None],
                                      censored_at_s=1000.0)
        assert summary.trials == 4
        assert summary.detected == 2
        assert summary.censored == 2
        assert summary.rate == pytest.approx(0.5)
        assert summary.censored_at_s == 1000.0
        assert summary.median_latency_s == pytest.approx(200.0)
        assert summary.mean_latency_s == pytest.approx(200.0)
        # Censored runs enter the censored median AT the horizon — never
        # as zero, never as infinity, never silently dropped.
        assert summary.median_censored_latency_s == pytest.approx(650.0)

    def test_never_detected_is_not_latency_zero(self):
        from repro.detection.metrics import summarize_latencies

        summary = summarize_latencies([None, None, None], censored_at_s=500.0)
        assert summary.detected == 0
        assert summary.rate == 0.0
        # Detected-only statistics are undefined, not zero.
        assert summary.median_latency_s is None
        assert summary.mean_latency_s is None
        # The censored median pins every run at the horizon.
        assert summary.median_censored_latency_s == pytest.approx(500.0)

    def test_all_detected(self):
        from repro.detection.metrics import summarize_latencies

        summary = summarize_latencies([10.0, 30.0, 20.0], censored_at_s=100.0)
        assert summary.censored == 0
        assert summary.median_latency_s == pytest.approx(20.0)
        assert summary.median_censored_latency_s == pytest.approx(20.0)

    def test_empty_rejected(self):
        from repro.detection.metrics import summarize_latencies

        with pytest.raises(ValueError):
            summarize_latencies([], censored_at_s=100.0)

    @pytest.mark.parametrize("bad", [0.0, -5.0, float("inf"), float("nan")])
    def test_horizon_validated(self, bad):
        from repro.detection.metrics import summarize_latencies

        with pytest.raises(ValueError):
            summarize_latencies([10.0], censored_at_s=bad)

    @pytest.mark.parametrize("bad", [-1.0, float("inf"), float("nan")])
    def test_latency_values_validated(self, bad):
        from repro.detection.metrics import summarize_latencies

        with pytest.raises(ValueError):
            summarize_latencies([bad], censored_at_s=100.0)
