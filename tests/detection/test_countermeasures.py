"""Tests for the in-service charge-verification defence."""

from repro.detection.countermeasures import ChargeVerificationDefense
from repro.mc.charger import ChargeMode
from repro.sim.events import ServiceCompleted


def service(mode, delivered, claimed=8000.0):
    return ServiceCompleted(
        time=100.0, node_id=1, start_time=0.0, mode=mode,
        delivered_j=delivered, believed_j=claimed, claimed_j=claimed,
        emission_j=2400.0, is_key=True,
        believed_energy_after_j=10_000.0, battery_capacity_j=10_800.0,
    )


class TestProbing:
    def test_spoof_caught_when_probed(self):
        defense = ChargeVerificationDefense(probe_rate=1.0, seed=1)
        alarm = defense.observe_service(service(ChargeMode.SPOOF, 0.0), None)
        assert alarm is not None
        assert defense.detected
        assert defense.probes_run == 1

    def test_genuine_passes_probe(self):
        defense = ChargeVerificationDefense(probe_rate=1.0, seed=1)
        alarm = defense.observe_service(service(ChargeMode.GENUINE, 8000.0), None)
        assert alarm is None
        assert defense.probes_run == 1

    def test_zero_probe_rate_never_catches(self):
        defense = ChargeVerificationDefense(probe_rate=0.0, seed=1)
        for _ in range(50):
            assert defense.observe_service(service(ChargeMode.SPOOF, 0.0), None) is None
        assert defense.probes_run == 0

    def test_probe_rate_is_statistical(self):
        defense = ChargeVerificationDefense(probe_rate=0.3, seed=2)
        for _ in range(400):
            defense.observe_service(service(ChargeMode.GENUINE, 8000.0), None)
        assert 80 <= defense.probes_run <= 160  # ~120 expected

    def test_zero_claims_ignored(self):
        defense = ChargeVerificationDefense(probe_rate=1.0, seed=1)
        event = service(ChargeMode.PRETEND, 0.0, claimed=0.0)
        assert defense.observe_service(event, None) is None

    def test_mismatch_ratio_tolerance(self):
        defense = ChargeVerificationDefense(
            probe_rate=1.0, mismatch_ratio=0.5, seed=1
        )
        # 60% of the claim delivered: passes at ratio 0.5.
        assert defense.observe_service(service(ChargeMode.GENUINE, 4800.0), None) is None
        # 40%: fails.
        assert defense.observe_service(service(ChargeMode.GENUINE, 3200.0), None) is not None


class TestEndToEndDefence:
    def test_probing_defeats_csa(self):
        from repro.attack.attacker import CsaAttacker
        from repro.sim.scenario import ScenarioConfig
        from repro.sim.wrsn_sim import WrsnSimulation

        cfg = ScenarioConfig(node_count=60, key_count=6, horizon_days=40)
        sim = WrsnSimulation(
            cfg.build_network(seed=3),
            cfg.build_charger(),
            CsaAttacker(key_count=cfg.key_count),
            detectors=[ChargeVerificationDefense(probe_rate=1.0, seed=3)],
            horizon_s=cfg.horizon_s,
        )
        result = sim.run()
        assert result.detected
        assert result.detections[0].detector == "charge-verification"

    def test_probing_leaves_benign_charger_alone(self):
        from repro.sim.benign import BenignController
        from repro.sim.scenario import ScenarioConfig
        from repro.sim.wrsn_sim import WrsnSimulation

        cfg = ScenarioConfig(node_count=60, key_count=6, horizon_days=40)
        sim = WrsnSimulation(
            cfg.build_network(seed=3),
            cfg.build_charger(),
            BenignController(),
            detectors=[ChargeVerificationDefense(probe_rate=1.0, seed=3)],
            horizon_s=cfg.horizon_s,
        )
        result = sim.run()
        assert not result.detected
