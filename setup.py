"""Setup shim enabling legacy editable installs.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs (which build a wheel) fail.  ``pip install -e . --no-use-pep517
--no-build-isolation`` uses this shim instead.
"""

from setuptools import setup

setup()
