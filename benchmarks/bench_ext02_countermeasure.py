"""EXT-02 — closing the attack: in-service charge verification.

Extension experiment (the defence the attack family motivates): nodes
probe their own harvest during a random fraction of charging services
(:class:`repro.detection.ChargeVerificationDefense`).  Sweep the probe
rate and measure CSA's detection probability and how many key nodes it
manages to exhaust *before* the first alarm.  Unlike every behavioural
detector, probing reads physical ground truth, so its catch probability
per spoof is exactly the probe rate — the defender dials its assurance
directly against its probing energy budget.
"""

from _common import BENCH_CONFIG, emit

from repro.analysis.tables import series_table
from repro.attack.attacker import CsaAttacker
from repro.detection.auditors import default_detector_suite
from repro.detection.countermeasures import ChargeVerificationDefense
from repro.sim.wrsn_sim import WrsnSimulation

PROBE_RATES = (0.0, 0.1, 0.25, 0.5, 1.0)
SEEDS = (1, 2, 3, 4)
CFG = BENCH_CONFIG.with_(node_count=100, key_count=10)


def run_once(seed: int, probe_rate: float):
    detectors = default_detector_suite(seed) + [
        ChargeVerificationDefense(probe_rate=probe_rate, seed=seed)
    ]
    sim = WrsnSimulation(
        CFG.build_network(seed=seed),
        CFG.build_charger(),
        CsaAttacker(key_count=CFG.key_count),
        detectors=detectors,
        horizon_s=CFG.horizon_s,
        stop_on_detection=True,
    )
    return sim.run()


def run_experiment():
    detect_cells, kill_cells = [], []
    for rate in PROBE_RATES:
        detections, kills = [], []
        for seed in SEEDS:
            result = run_once(seed, rate)
            detections.append(float(result.detected))
            kills.append(len(result.exhausted_key_ids()))
        detect_cells.append(detections)
        kill_cells.append(kills)
    return detect_cells, kill_cells


def bench_ext02_countermeasure(benchmark):
    detect_cells, kill_cells = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    avg = lambda c: sum(c) / len(c)
    table = series_table(
        "probe_rate",
        list(PROBE_RATES),
        {
            "detection_rate": [f"{avg(c):.2f}" for c in detect_cells],
            "key_kills_before_alarm": [f"{avg(c):.1f}" for c in kill_cells],
        },
        title=(
            "EXT-02: in-service charge verification vs CSA "
            "(runs halt at first alarm)"
        ),
    )
    emit("ext02_countermeasure", table)

    # No probing: the attack proceeds as in EXP-03.
    assert avg(kill_cells[0]) >= 8.0
    # Full probing: the very first spoof is caught; damage collapses.
    assert avg(detect_cells[-1]) == 1.0
    assert avg(kill_cells[-1]) <= 1.0
    # Detection rises monotonically-ish with the probe rate.
    assert avg(detect_cells[-1]) >= avg(detect_cells[1])
