"""EXP-01 — the Section II superposition experiment.

Paper anchor: the bench measurement motivating the attack — two coherent
waves charging one rectenna deliver anything from 4x one wave's power
down to zero as their relative phase sweeps, while the incoherent
(linear-intuition) prediction stays flat.  Regenerates the harvested-
power-vs-phase series and the fitted interference model.
"""

import math

from _common import emit

from repro.analysis.tables import series_table
from repro.em.superposition import (
    cancellation_depth_db,
    fit_two_wave_model,
    superposition_sweep,
)


def run_experiment():
    offsets = [i * 2.0 * math.pi / 24 for i in range(25)]
    return superposition_sweep(offsets, wave_power_w=10e-3), offsets


def bench_exp01_superposition(benchmark):
    sweep, offsets = benchmark.pedantic(run_experiment, rounds=3, iterations=1)
    fit = fit_two_wave_model(sweep["phase_offsets"], sweep["rf_power"])
    depth = cancellation_depth_db(sweep)

    table = series_table(
        "phase/pi",
        [f"{o / math.pi:.2f}" for o in offsets],
        {
            "coherent_rf_mW": [f"{p * 1e3:.2f}" for p in sweep["rf_power"]],
            "harvested_mW": [f"{p * 1e3:.2f}" for p in sweep["harvested"]],
            "incoherent_rf_mW": [f"{p * 1e3:.2f}" for p in sweep["incoherent_rf"]],
        },
        title="EXP-01: two-wave superposition sweep (10 mW per wave)",
    )
    summary = (
        f"\nfit: P(dphi) = {fit.p_sum * 1e3:.2f} + "
        f"{fit.p_cross * 1e3:.2f} cos(dphi) mW  "
        f"(r^2 = {fit.r_squared:.4f}, modulation index = "
        f"{fit.modulation_index:.3f})\n"
        f"cancellation depth: "
        + ("perfect null (inf dB)" if math.isinf(depth) else f"{depth:.1f} dB")
    )
    emit("exp01_superposition", table + summary)

    assert fit.r_squared > 0.999
    assert sweep["harvested"].min() == 0.0
    assert sweep["rf_power"].max() > 3.9 * 10e-3
