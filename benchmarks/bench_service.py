"""SVC-01 — campaign-service worker-fleet throughput scaling.

Drains the same synthetic sleep campaign through the persistent job
queue with a one-worker and a two-worker fleet and compares end-to-end
throughput (trials per second of wall time, measured from fleet start
to the queue reporting the campaign finished).  Sleep trials are pure
wait, so a second worker process should come close to doubling
throughput; the run asserts at least a 1.5x speedup, which leaves room
for lease/commit overhead and worker start-up.

Results land in ``benchmarks/results/BENCH_service.json``.
"""

import tempfile
import time
from pathlib import Path

import pytest
from _common import emit, emit_json

from repro.campaign.store import CampaignStore
from repro.service.queue import JobQueue
from repro.service.testing import sleep_spec
from repro.service.worker import run_worker_fleet

TRIALS = 30
SLEEP_S = 0.1
WORKER_COUNTS = (1, 2)
MIN_SPEEDUP = 1.5


def drain_with_fleet(worker_count: int) -> dict:
    """Submit a fresh campaign and time a fleet draining it."""
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        data_dir = Path(tmp)
        db, store_root = data_dir / "queue.sqlite3", data_dir / "store"
        spec = sleep_spec(TRIALS, SLEEP_S, name=f"bench-svc-{worker_count}w")
        with JobQueue(db, CampaignStore(store_root)) as queue:
            queue.submit(spec)
        start = time.perf_counter()
        fleet = run_worker_fleet(
            worker_count, db, store_root,
            max_idle_s=0.5, poll_interval_s=0.02, lease_ttl_s=10.0,
        )
        try:
            with JobQueue(db, CampaignStore(store_root)) as queue:
                while not queue.campaign_status(spec.name)["finished"]:
                    time.sleep(0.02)
                elapsed = time.perf_counter() - start
                status = queue.campaign_status(spec.name)
                usage = queue.usage(spec.name)
        finally:
            for process in fleet:
                process.join(timeout=30.0)
                if process.is_alive():
                    process.kill()
                    process.join()
        assert status["job_counts"]["done"] == TRIALS
        return {
            "workers": worker_count,
            "elapsed_s": elapsed,
            "throughput_trials_per_s": TRIALS / elapsed,
            "requeues": usage["requeues"],
            "cpu_seconds": usage["cpu_seconds"],
        }


def run_experiment() -> dict:
    runs = {str(count): drain_with_fleet(count) for count in WORKER_COUNTS}
    speedup = (
        runs["2"]["throughput_trials_per_s"]
        / runs["1"]["throughput_trials_per_s"]
    )
    return {
        "trials": TRIALS,
        "sleep_s": SLEEP_S,
        "min_speedup": MIN_SPEEDUP,
        "runs": runs,
        "speedup_2w_over_1w": speedup,
    }


def bench_service_fleet_scaling(benchmark):
    payload = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [
        f"{run['workers']} worker(s): {run['elapsed_s']:.2f}s "
        f"({run['throughput_trials_per_s']:.1f} trials/s)"
        for run in payload["runs"].values()
    ]
    lines.append(f"speedup (2w / 1w): {payload['speedup_2w_over_1w']:.2f}x")
    emit("bench_service", "\n".join(lines))
    emit_json("service", payload)
    assert payload["speedup_2w_over_1w"] >= MIN_SPEEDUP, (
        f"2-worker fleet only {payload['speedup_2w_over_1w']:.2f}x faster "
        f"than 1 worker (need >= {MIN_SPEEDUP}x)"
    )


if __name__ == "__main__":
    pytest.main([__file__, "--benchmark-only"])
