"""LINT — reprolint engine throughput: cold serial vs warm parallel+cache.

Times the full lint of ``src/repro`` three ways and persists the series
in ``BENCH_lint.json``:

* **cold serial** — no cache, one process: the pre-optimisation path and
  the baseline every other mode is compared against;
* **cold parallel** — process-pool per-file pass on an empty cache;
* **warm cached** — every per-file result served from the
  content-addressed cache, so only cache lookups and the cross-module
  project passes run.

The warm-cache run must beat the cold serial run (``_SPEEDUP_FLOOR``);
all three modes must agree finding-for-finding with the serial path,
so the speed never comes at the cost of a dropped diagnostic.

A fourth timing runs the registry *minus* the concurrency pack
(RL-C001..C005): the call-graph + CFG layers must not inflate a cold
run beyond ``_PACK_OVERHEAD_CEILING`` of the pack-free time.  A fifth
does the same for the array-semantics pack (RL-N001..N005): the
abstract interpreter is gated to numpy-touching functions, so it too
must stay within the ceiling.
"""

import os
import pathlib
import time

import pytest
from _common import emit, emit_json

from repro.analysis.tables import format_table
from repro.lint import LintCache, LintEngine
from repro.lint.registry import ruleset_signature

SRC_TREE = pathlib.Path(__file__).parent.parent / "src" / "repro"

#: Required cold-serial / warm-cache speedup.  The warm path skips every
#: per-file AST walk, so the cold per-file cost disappears and only the
#: (uncacheable) project passes re-run; the floor leaves headroom for
#: scheduler noise on shared runners.
_SPEEDUP_FLOOR = 1.3

#: Maximum cold-serial slowdown an analysis pack (concurrency RL-C,
#: array semantics RL-N) may cost relative to the same registry without
#: it.  The call graph, CFGs, and the array interpreter are linear
#: passes over ASTs the engine parses anyway — gated to the functions
#: they apply to — so each must stay a fraction of total lint time, not
#: a multiple of it.
_PACK_OVERHEAD_CEILING = 1.5

#: Timed repetitions per mode; the minimum is reported to damp scheduler
#: noise on shared CI runners.
_ROUNDS = 3

_RESULTS: dict[str, float] = {}


def _time_lint(cache_factory=None, jobs=1, engine=None):
    engine = engine if engine is not None else LintEngine()
    best = float("inf")
    findings = None
    for round_index in range(_ROUNDS):
        cache = cache_factory(round_index) if cache_factory else None
        start = time.perf_counter()
        findings = engine.lint_paths([SRC_TREE], cache=cache, jobs=jobs)
        best = min(best, time.perf_counter() - start)
    return best, findings


def _engine_without_pack(prefix):
    from repro.lint.registry import all_project_rules, all_rules

    return LintEngine(
        rules=[c for c in all_rules() if not c.rule_id.startswith(prefix)],
        project_rules=[
            c for c in all_project_rules()
            if not c.rule_id.startswith(prefix)
        ],
    )


def bench_lint_modes(tmp_path, benchmark):
    serial_s, serial_findings = _time_lint()

    # A fresh cache directory per round keeps every parallel round cold.
    jobs = max(2, os.cpu_count() or 1)
    parallel_s, parallel_findings = _time_lint(
        cache_factory=lambda i: LintCache(
            tmp_path / f"cold{i}", ruleset_signature()
        ),
        jobs=jobs,
    )

    warm_cache = LintCache(tmp_path / "warm", ruleset_signature())
    engine = LintEngine()
    engine.lint_paths([SRC_TREE], cache=warm_cache)  # populate
    warm_s, warm_findings = _time_lint(
        cache_factory=lambda _i: warm_cache, jobs=jobs
    )
    assert warm_cache.hits > 0

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    as_rows = lambda fs: [f.format() for f in fs]  # noqa: E731
    assert as_rows(parallel_findings) == as_rows(serial_findings)
    assert as_rows(warm_findings) == as_rows(serial_findings)

    no_c_s, _ = _time_lint(engine=_engine_without_pack("RL-C"))
    no_n_s, _ = _time_lint(engine=_engine_without_pack("RL-N"))

    _RESULTS["cold serial"] = serial_s
    _RESULTS[f"cold parallel (jobs={jobs})"] = parallel_s
    _RESULTS["warm cached"] = warm_s
    _RESULTS["cold serial (no RL-C pack)"] = no_c_s
    _RESULTS["cold serial (no RL-N pack)"] = no_n_s

    speedup = serial_s / warm_s
    assert speedup >= _SPEEDUP_FLOOR, (
        f"warm-cache lint only {speedup:.2f}x faster than cold serial, "
        f"below the {_SPEEDUP_FLOOR:.1f}x floor"
    )

    concurrency_overhead = serial_s / no_c_s
    assert concurrency_overhead <= _PACK_OVERHEAD_CEILING, (
        f"concurrency pack costs {concurrency_overhead:.2f}x of a "
        f"pack-free cold run, above the {_PACK_OVERHEAD_CEILING:.1f}x "
        "ceiling"
    )

    numerics_overhead = serial_s / no_n_s
    assert numerics_overhead <= _PACK_OVERHEAD_CEILING, (
        f"array-semantics pack costs {numerics_overhead:.2f}x of a "
        f"pack-free cold run, above the {_PACK_OVERHEAD_CEILING:.1f}x "
        "ceiling"
    )

    rows = [
        [mode, f"{seconds * 1e3:.1f}", f"{serial_s / seconds:.2f}x"]
        for mode, seconds in _RESULTS.items()
    ]
    emit(
        "lint",
        format_table(
            ["mode", "time (ms)", "speedup"],
            rows,
            title=(
                f"reprolint over src/repro ({len(serial_findings)} findings, "
                f"best of {_ROUNDS})"
            ),
        ),
    )
    emit_json(
        "lint",
        {
            "modes": {mode: seconds for mode, seconds in _RESULTS.items()},
            "jobs": jobs,
            "rounds": _ROUNDS,
            "speedup_warm_vs_cold_serial": speedup,
            "speedup_floor": _SPEEDUP_FLOOR,
            "concurrency_pack_overhead": concurrency_overhead,
            "numerics_pack_overhead": numerics_overhead,
            "pack_overhead_ceiling": _PACK_OVERHEAD_CEILING,
            "findings": len(serial_findings),
        },
    )


if __name__ == "__main__":
    pytest.main([__file__, "--benchmark-only"])
