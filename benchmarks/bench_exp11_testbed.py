"""EXP-11 — the testbed campaign (paper's Table, reconstructed).

Paper anchor: the bench validation and the abstract's headline sentence:
"CSA can exhaust at least 80% of key nodes without being detected."
Runs the 8-node simulated bench across trials with per-trial hardware
and placement variation, printing per-trial outcomes and the aggregate
verdict on the claim.
"""

from _common import emit

from repro.analysis.tables import format_table
from repro.testbed.testbed_sim import run_testbed

TRIALS = 20


def bench_exp11_testbed(benchmark):
    summary = benchmark.pedantic(
        run_testbed, kwargs={"trial_count": TRIALS}, rounds=1, iterations=1
    )
    rows = [
        [
            t.seed,
            f"{t.exhausted_key_count}/{t.key_count}",
            f"{t.exhausted_ratio:.2f}",
            "yes" if t.detected else "no",
            t.spoof_services,
            t.genuine_services,
        ]
        for t in summary.trials
    ]
    table = format_table(
        ["trial", "exhausted", "ratio", "detected", "spoofs", "genuine"],
        rows,
        title=f"EXP-11: simulated 8-node testbed campaign ({TRIALS} trials)",
    )
    verdict = (
        f"\nmean exhausted ratio: {summary.mean_exhausted_ratio:.2f}   "
        f"detections: {summary.detection_count}/{TRIALS}\n"
        f"headline claim (>= 80% exhausted, undetected): "
        f"{'HOLDS' if summary.headline_claim_holds else 'FAILS'}"
    )
    emit("exp11_testbed", table + verdict)

    assert summary.headline_claim_holds
