"""EXP-08 — empirical approximation ratio vs. the theoretical bound.

Paper anchor: the "bounded performance guarantee".  On exactly solvable
instances, CSA's utility is compared against the optimum from the
Pareto-label DP; the observed ratios must sit above the (1 - 1/e)/2
worst-case line — and in practice sit near 1.
"""

from _common import emit

from repro.analysis.tables import format_table
from repro.core.bounds import GREEDY_GUARANTEE, check_guarantee
from repro.core.csa import CsaPlanner
from repro.core.optimal import solve_tide_exact
from repro.core.tide import TideInstance, TideTarget
from repro.utils.geometry import Point
from repro.utils.rng import make_rng

SIZES = (6, 8, 10)
INSTANCES_PER_SIZE = 10


def random_instance(n: int, seed: int) -> TideInstance:
    rng = make_rng(seed, "exp08")
    targets = []
    for i in range(n):
        release = float(rng.uniform(0.0, 86_400.0))
        width = float(rng.uniform(2 * 3600.0, 30 * 3600.0))
        duration = float(rng.uniform(600.0, 3_000.0))
        targets.append(
            TideTarget(
                node_id=i,
                weight=float(rng.uniform(0.2, 1.0)),
                position=Point(
                    float(rng.uniform(0, 100)), float(rng.uniform(0, 100))
                ),
                window_start=release,
                window_end=release + width,
                service_duration=duration,
                service_energy_j=24.0 * duration,
            )
        )
    return TideInstance(
        targets=tuple(targets),
        start_position=Point(50, 50),
        start_time=0.0,
        energy_budget_j=float(rng.uniform(150_000.0, 450_000.0)),
    )


def run_experiment():
    planner = CsaPlanner()
    rows = []
    for n in SIZES:
        ratios = []
        for k in range(INSTANCES_PER_SIZE):
            inst = random_instance(n, seed=n * 1000 + k)
            cert = check_guarantee(
                inst, planner.plan(inst), solve_tide_exact(inst)
            )
            assert cert.holds, f"bound violated at n={n}, k={k}"
            ratios.append(cert.ratio)
        rows.append(
            [
                n,
                INSTANCES_PER_SIZE,
                f"{min(ratios):.3f}",
                f"{sum(ratios) / len(ratios):.3f}",
                f"{GREEDY_GUARANTEE:.3f}",
            ]
        )
    return rows


def bench_exp08_approx_ratio(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["targets", "instances", "min_ratio", "mean_ratio", "theoretical_bound"],
        rows,
        title="EXP-08: CSA / OPT empirical approximation ratio",
    )
    emit("exp08_approx_ratio", table)

    for row in rows:
        assert float(row[2]) >= GREEDY_GUARANTEE
        assert float(row[3]) >= 0.9  # near-optimal in practice
