"""EXP-03 — exhausted key-node ratio vs. network size (the headline figure).

Paper anchor: the abstract's claim that CSA "can exhaust at least 80% of
key nodes", across network sizes, against the planning baselines.  All
attackers share the same stealth envelope and cover-traffic behaviour;
only the TIDE planner differs, so the gap is pure planning quality.
"""

from _common import (
    BENCH_CONFIG,
    csa_attacker_factory,
    emit,
    mean_ratio,
    planner_attacker_factory,
    run_attack,
)

from repro.analysis.tables import series_table
from repro.core.baselines import (
    GreedyWeightPlanner,
    NearestFirstPlanner,
    RandomPlanner,
)

NODE_COUNTS = (50, 100, 150, 200, 250)
SEEDS = (1, 2, 3)

ATTACKERS = {
    "CSA": lambda cfg: csa_attacker_factory(cfg.key_count),
    "Greedy-Weight": lambda cfg: planner_attacker_factory(
        GreedyWeightPlanner, cfg.key_count
    ),
    "Nearest-First": lambda cfg: planner_attacker_factory(
        NearestFirstPlanner, cfg.key_count
    ),
    "Random": lambda cfg: planner_attacker_factory(
        lambda: RandomPlanner(0), cfg.key_count
    ),
}


def run_experiment():
    series = {name: [] for name in ATTACKERS}
    for n in NODE_COUNTS:
        cfg = BENCH_CONFIG.with_(node_count=n)
        for name, factory_maker in ATTACKERS.items():
            make = factory_maker(cfg)
            ratios = [
                run_attack(cfg, seed, controller=make()).exhausted_key_ratio()
                for seed in SEEDS
            ]
            series[name].append(ratios)
    return series


def bench_exp03_exhaust_vs_n(benchmark):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    formatted = {
        name: [mean_ratio(cell) for cell in cells]
        for name, cells in series.items()
    }
    table = series_table(
        "nodes",
        list(NODE_COUNTS),
        formatted,
        title=(
            "EXP-03: exhausted key-node ratio vs network size "
            f"(key nodes = {BENCH_CONFIG.key_count}, seeds = {len(SEEDS)})"
        ),
    )
    emit("exp03_exhaust_vs_n", table)

    # Shape assertions: CSA >= 0.8 everywhere and dominates every
    # baseline on average.
    csa_means = [sum(c) / len(c) for c in series["CSA"]]
    assert all(m >= 0.8 for m in csa_means)
    for name in ATTACKERS:
        if name == "CSA":
            continue
        other_means = [sum(c) / len(c) for c in series[name]]
        assert sum(csa_means) >= sum(other_means) - 1e-9
