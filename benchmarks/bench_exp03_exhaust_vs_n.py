"""EXP-03 — exhausted key-node ratio vs. network size (the headline figure).

Paper anchor: the abstract's claim that CSA "can exhaust at least 80% of
key nodes", across network sizes, against the planning baselines.  All
attackers share the same stealth envelope and cover-traffic behaviour;
only the TIDE planner differs, so the gap is pure planning quality.

Runs as a campaign (``repro.campaign.experiments:exp03_spec``): the grid
executes through the crash-isolated executor and the printed table is
reassembled from per-trial metrics in the original sweep order.
"""

from _common import bench_executor, emit, emit_json, mean_ratio, series_sidecar

from repro.analysis.tables import series_table
from repro.campaign import run_campaign
from repro.campaign.experiments import (
    BENCH_CONFIG,
    EXP03_ATTACKERS,
    EXP03_NODE_COUNTS,
    EXP03_SEEDS,
    exp03_spec,
)

NODE_COUNTS = EXP03_NODE_COUNTS
SEEDS = EXP03_SEEDS
ATTACKERS = EXP03_ATTACKERS


def run_experiment():
    result = run_campaign(exp03_spec(), executor=bench_executor())
    return {
        name: [
            result.values("exhausted_key_ratio", node_count=n, attacker=name)
            for n in NODE_COUNTS
        ]
        for name in ATTACKERS
    }


def bench_exp03_exhaust_vs_n(benchmark):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    formatted = {
        name: [mean_ratio(cell) for cell in cells]
        for name, cells in series.items()
    }
    table = series_table(
        "nodes",
        list(NODE_COUNTS),
        formatted,
        title=(
            "EXP-03: exhausted key-node ratio vs network size "
            f"(key nodes = {BENCH_CONFIG.key_count}, seeds = {len(SEEDS)})"
        ),
    )
    emit("exp03_exhaust_vs_n", table)
    emit_json(
        "exp03_exhaust_vs_n",
        series_sidecar("nodes", NODE_COUNTS, series),
    )

    # Shape assertions: CSA >= 0.8 everywhere and dominates every
    # baseline on average.
    csa_means = [sum(c) / len(c) for c in series["CSA"]]
    assert all(m >= 0.8 for m in csa_means)
    for name in ATTACKERS:
        if name == "CSA":
            continue
        other_means = [sum(c) / len(c) for c in series[name]]
        assert sum(csa_means) >= sum(other_means) - 1e-9
