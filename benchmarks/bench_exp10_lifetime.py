"""EXP-10 — network health over time: attacked vs. benign.

Paper anchor: the network-impact figure.  Tracks the cumulative dead-
node count over the campaign for (a) an honestly charged network and
(b) the same network (same seed, same hardware) under the CSA attacker,
plus the first-partition time — the moment the attack starts isolating
regions from the base station.
"""

from _common import BENCH_CONFIG, emit, run_attack

from repro.analysis.metrics import lifetime_metrics
from repro.analysis.tables import series_table
from repro.attack.attacker import CsaAttacker
from repro.sim.benign import BenignController

SEEDS = (1, 2)
CFG = BENCH_CONFIG.with_(node_count=100, key_count=10)
SAMPLE_DAYS = (7, 14, 21, 28, 35, 42)


def dead_by_day(result, days):
    deaths = sorted(d.time for d in result.trace.deaths())
    counts = []
    for day in days:
        t = day * 86_400.0
        counts.append(sum(1 for dt in deaths if dt <= t))
    return counts


def run_experiment():
    attacked = [
        run_attack(CFG, seed, controller=CsaAttacker(key_count=CFG.key_count))
        for seed in SEEDS
    ]
    benign = [
        run_attack(CFG, seed, controller=BenignController()) for seed in SEEDS
    ]
    return attacked, benign


def bench_exp10_lifetime(benchmark):
    attacked, benign = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    att_series = [dead_by_day(r, SAMPLE_DAYS) for r in attacked]
    ben_series = [dead_by_day(r, SAMPLE_DAYS) for r in benign]
    avg = lambda rows: [sum(col) / len(col) for col in zip(*rows)]

    table = series_table(
        "day",
        list(SAMPLE_DAYS),
        {
            "dead_under_attack": [f"{v:.1f}" for v in avg(att_series)],
            "dead_benign": [f"{v:.1f}" for v in avg(ben_series)],
        },
        title="EXP-10: cumulative dead nodes over the campaign (N=100)",
    )

    partitions = [lifetime_metrics(r).first_partition_s for r in attacked]
    partition_note = "\nfirst partition under attack: " + ", ".join(
        "none" if p is None else f"day {p / 86_400.0:.1f}" for p in partitions
    )
    att_cov = [lifetime_metrics(r).coverage_ratio for r in attacked]
    ben_cov = [lifetime_metrics(r).coverage_ratio for r in benign]
    coverage_note = (
        f"\nfinal sensing coverage: attacked "
        f"{sum(att_cov) / len(att_cov):.0%} vs benign "
        f"{sum(ben_cov) / len(ben_cov):.0%}"
    )
    emit("exp10_lifetime", table + partition_note + coverage_note)

    assert sum(att_cov) / len(att_cov) < sum(ben_cov) / len(ben_cov)

    # Shape: the benign network loses nobody; the attacked one decays.
    assert all(v == 0 for row in ben_series for v in row)
    assert avg(att_series)[-1] > 0.0
