"""EXP-07 — detection rate vs. defender audit intensity.

Paper anchor: the "without being detected" claim, made falsifiable.
Sweeps the voltage auditor's mean interval and measures the fraction of
runs caught for three attackers: CSA (full stealth), the same planner
with the stealth windows stripped, and the blatant pretender.  The
paper-shaped result: CSA's curve hugs zero while both ablations are
caught at every realistic audit intensity.
"""

from _common import BENCH_CONFIG, emit, run_attack

from repro.analysis.tables import series_table
from repro.attack.attacker import BlatantAttacker, CsaAttacker, PlannedAttacker
from repro.core.windows import StealthPolicy

AUDIT_INTERVALS_H = (12.0, 24.0, 48.0, 96.0)
SEEDS = (1, 2, 3, 4)
CFG = BENCH_CONFIG.with_(node_count=100, key_count=10)

ATTACKERS = {
    "CSA": lambda: CsaAttacker(key_count=CFG.key_count),
    "CSA-no-windows": lambda: PlannedAttacker(
        stealth=StealthPolicy.none(), key_count=CFG.key_count
    ),
    "Blatant": lambda: BlatantAttacker(key_count=CFG.key_count),
}


def run_experiment():
    rates = {name: [] for name in ATTACKERS}
    exhaustion = {name: [] for name in ATTACKERS}
    for interval_h in AUDIT_INTERVALS_H:
        for name, factory in ATTACKERS.items():
            results = [
                run_attack(
                    CFG, seed, controller=factory(),
                    audit_interval_s=interval_h * 3600.0,
                )
                for seed in SEEDS
            ]
            rates[name].append(
                sum(r.detected for r in results) / len(results)
            )
            exhaustion[name].append(
                sum(r.exhausted_key_ratio() for r in results) / len(results)
            )
    return rates, exhaustion


def bench_exp07_detection(benchmark):
    rates, exhaustion = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = series_table(
        "audit_interval_h",
        list(AUDIT_INTERVALS_H),
        {
            **{f"det[{k}]": [f"{v:.2f}" for v in vs] for k, vs in rates.items()},
            "exh[CSA]": [f"{v:.2f}" for v in exhaustion["CSA"]],
        },
        title=(
            "EXP-07: detection rate vs voltage-audit intensity "
            f"({len(SEEDS)} seeds per point)"
        ),
    )
    emit("exp07_detection", table)

    # Shape: the blatant attacker is always caught (by telemetry, audit-
    # rate independent); stripping the windows is caught at every audit
    # intensity except possibly the laziest; CSA stays far below both.
    assert all(r == 1.0 for r in rates["Blatant"])
    assert sum(rates["CSA-no-windows"][:3]) >= 2.0
    assert sum(rates["CSA"]) <= 0.5 * sum(rates["CSA-no-windows"])
    # And stealth does not blunt the damage.
    assert min(exhaustion["CSA"]) >= 0.7
