"""EXP-07 — detection rate vs. defender audit intensity.

Paper anchor: the "without being detected" claim, made falsifiable.
Sweeps the voltage auditor's mean interval and measures the fraction of
runs caught for three attackers: CSA (full stealth), the same planner
with the stealth windows stripped, and the blatant pretender.  The
paper-shaped result: CSA's curve hugs zero while both ablations are
caught at every realistic audit intensity.

Runs as a campaign (``repro.campaign.experiments:exp07_spec``); the
printed table is reassembled from per-trial metrics in the original
sweep order.
"""

from _common import bench_executor, emit, emit_json, series_sidecar

from repro.analysis.tables import series_table
from repro.campaign import run_campaign
from repro.campaign.experiments import (
    EXP07_ATTACKERS,
    EXP07_AUDIT_INTERVALS_H,
    EXP07_SEEDS,
    exp07_spec,
)

AUDIT_INTERVALS_H = EXP07_AUDIT_INTERVALS_H
SEEDS = EXP07_SEEDS
ATTACKERS = EXP07_ATTACKERS


def run_experiment():
    result = run_campaign(exp07_spec(), executor=bench_executor())
    detect_cells = {
        name: [
            result.values("detected", audit_interval_h=h, attacker=name)
            for h in AUDIT_INTERVALS_H
        ]
        for name in ATTACKERS
    }
    exhaust_cells = {
        name: [
            result.values(
                "exhausted_key_ratio", audit_interval_h=h, attacker=name
            )
            for h in AUDIT_INTERVALS_H
        ]
        for name in ATTACKERS
    }
    return detect_cells, exhaust_cells


def bench_exp07_detection(benchmark):
    detect_cells, exhaust_cells = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    avg = lambda c: sum(c) / len(c)
    rates = {name: [avg(c) for c in cells] for name, cells in detect_cells.items()}
    exhaustion = {
        name: [avg(c) for c in cells] for name, cells in exhaust_cells.items()
    }
    table = series_table(
        "audit_interval_h",
        list(AUDIT_INTERVALS_H),
        {
            **{f"det[{k}]": [f"{v:.2f}" for v in vs] for k, vs in rates.items()},
            "exh[CSA]": [f"{v:.2f}" for v in exhaustion["CSA"]],
        },
        title=(
            "EXP-07: detection rate vs voltage-audit intensity "
            f"({len(SEEDS)} seeds per point)"
        ),
    )
    emit("exp07_detection", table)
    emit_json(
        "exp07_detection",
        series_sidecar(
            "audit_interval_h",
            AUDIT_INTERVALS_H,
            {
                **{f"det[{k}]": cells for k, cells in detect_cells.items()},
                "exh[CSA]": exhaust_cells["CSA"],
            },
        ),
    )

    # Shape: the blatant attacker is always caught (by telemetry, audit-
    # rate independent); stripping the windows is caught at every audit
    # intensity except possibly the laziest; CSA stays far below both.
    assert all(r == 1.0 for r in rates["Blatant"])
    assert sum(rates["CSA-no-windows"][:3]) >= 2.0
    assert sum(rates["CSA"]) <= 0.5 * sum(rates["CSA-no-windows"])
    # And stealth does not blunt the damage.
    assert min(exhaustion["CSA"]) >= 0.7
