"""EXT-03 — the grace-period arms race.

Extension experiment: the death-after-charge detector and the attacker's
grace margin chase each other.  Sweep the *defender's* grace window with
the attacker's margin fixed at its default 3 h: the moment the detector
looks further back than the attacker stays ahead of, every spoofed death
lands inside the window and detection is certain.  Then let the attacker
adapt (margin = defender grace + 1 h, if it knows the deployment's
detector configuration): stealth is restored — at the price of ever
longer audit exposure, which the voltage auditor eventually converts
into detections anyway.  Defences compose: pushing on one detector
squeezes the attacker onto the other.
"""

from _common import BENCH_CONFIG, emit

from repro.analysis.tables import series_table
from repro.attack.attacker import CsaAttacker
from repro.core.windows import StealthPolicy
from repro.detection.auditors import (
    DeathAfterChargeAuditor,
    NeglectMonitor,
    RandomVoltageAuditor,
    TrajectoryAnomalyDetector,
)
from repro.sim.wrsn_sim import WrsnSimulation

DETECTOR_GRACE_H = (1.0, 2.0, 4.0, 8.0, 16.0)
SEEDS = (1, 2, 3, 4)
CFG = BENCH_CONFIG.with_(node_count=100, key_count=10)
FIXED_ATTACKER_GRACE_H = 3.0


def run_once(seed: int, detector_grace_h: float, attacker_grace_h: float):
    stealth = StealthPolicy(
        grace_period_s=attacker_grace_h * 3600.0,
        exposure_cap_s=max(attacker_grace_h * 3600.0 + 10_800.0, 21_600.0),
    )
    detectors = [
        DeathAfterChargeAuditor(grace_s=detector_grace_h * 3600.0),
        RandomVoltageAuditor(seed=seed),
        TrajectoryAnomalyDetector(),
        NeglectMonitor(),
    ]
    sim = WrsnSimulation(
        CFG.build_network(seed=seed),
        CFG.build_charger(),
        CsaAttacker(key_count=CFG.key_count, stealth=stealth),
        detectors=detectors,
        horizon_s=CFG.horizon_s,
    )
    return sim.run()


def run_experiment():
    fixed_det, adaptive_det, adaptive_exh = [], [], []
    for grace_h in DETECTOR_GRACE_H:
        fixed = [
            float(run_once(s, grace_h, FIXED_ATTACKER_GRACE_H).detected)
            for s in SEEDS
        ]
        adaptive_runs = [run_once(s, grace_h, grace_h + 1.0) for s in SEEDS]
        fixed_det.append(fixed)
        adaptive_det.append([float(r.detected) for r in adaptive_runs])
        adaptive_exh.append(
            [r.exhausted_key_ratio() for r in adaptive_runs]
        )
    return fixed_det, adaptive_det, adaptive_exh


def bench_ext03_grace_race(benchmark):
    fixed_det, adaptive_det, adaptive_exh = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    avg = lambda c: sum(c) / len(c)
    table = series_table(
        "detector_grace_h",
        list(DETECTOR_GRACE_H),
        {
            "det[attacker@3h]": [f"{avg(c):.2f}" for c in fixed_det],
            "det[attacker@grace+1h]": [f"{avg(c):.2f}" for c in adaptive_det],
            "exh[attacker@grace+1h]": [f"{avg(c):.2f}" for c in adaptive_exh],
        },
        title=(
            "EXT-03: death-after-charge grace arms race "
            f"({len(SEEDS)} seeds per point)"
        ),
    )
    emit("ext03_grace_race", table)

    # A fixed attacker is safe while it out-margins the detector and is
    # caught deterministically once it does not.
    assert avg(fixed_det[0]) == 0.0  # detector 1 h < attacker 3 h
    assert avg(fixed_det[2]) == 1.0  # detector 4 h > attacker 3 h
    # The adaptive attacker dodges the death detector everywhere, but at
    # 16 h of forced exposure the voltage auditor starts collecting.
    assert avg(adaptive_det[0]) <= 0.25
    assert avg(adaptive_det[-1]) >= avg(adaptive_det[0])
    assert avg(adaptive_exh[0]) >= 0.8
