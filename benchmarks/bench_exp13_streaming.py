"""EXP-13 — streaming digital twin vs periodic audits.

The detection experiment the periodic-audit sweeps (EXP-07) cannot ask:
not *whether* the defender eventually notices, but *how long* the
attacker owns the network first.  Runs the declarative scenario matrix
(benign references, baseline CSA, intermittent spoofing, control-channel
command spoofing, probabilistic on-demand arrivals) with both defences
deployed side by side, and compares per-family first-alarm latencies
with explicit right-censoring at the horizon (never-detected runs count
at the horizon, not as zero — see ``repro.detection.metrics``).

The headline gate: at equal (zero) false-positive rate on the benign
references, the twin's median detection latency on baseline CSA beats
the periodic suite's.  The twin must also catch the command-spoofing
attacker, whose per-session telemetry shortfall is sized to slip under
the trajectory detector's tolerance.

Smoke scale for CI: ``REPRO_BENCH_EXP13_SMOKE=1`` shrinks the network
and seed count (the gates still hold there).
"""

import dataclasses
import os

from _common import bench_executor, emit, emit_json

from repro.analysis.tables import series_table
from repro.campaign import run_campaign
from repro.detection.metrics import summarize_latencies
from repro.scenarios import scenario_matrix_spec
from repro.scenarios.trials import DEFAULT_MATRIX

SMOKE = bool(os.environ.get("REPRO_BENCH_EXP13_SMOKE"))
SCENARIOS = DEFAULT_MATRIX
SEEDS = (1, 2) if SMOKE else (1, 2, 3, 4, 5)
#: Config overrides applied on top of each scenario (empty = BENCH_CONFIG).
SCALE = (
    {"node_count": 60, "key_count": 6, "horizon_days": 40.0} if SMOKE else {}
)
BENIGN_SCENARIOS = ("benign", "benign-on-demand")


def run_experiment():
    spec = scenario_matrix_spec(SCENARIOS, seeds=SEEDS, **SCALE)
    result = run_campaign(spec, executor=bench_executor())
    rows = {}
    for name in SCENARIOS:
        horizon = result.values("horizon_s", scenario=name)[0]
        rows[name] = {
            "horizon_s": horizon,
            "twin": result.values("twin_latency_s", scenario=name),
            "periodic": result.values("periodic_latency_s", scenario=name),
            "exhausted": result.values("exhausted_key_ratio", scenario=name),
        }
    return rows


def bench_exp13_streaming(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    summaries = {}
    for name, row in rows.items():
        summaries[name] = {
            "twin": summarize_latencies(row["twin"], censored_at_s=row["horizon_s"]),
            "periodic": summarize_latencies(
                row["periodic"], censored_at_s=row["horizon_s"]
            ),
        }

    def fmt_latency(summary):
        med = summary.median_censored_latency_s
        mark = "" if summary.censored == 0 else f" ({summary.censored}cens)"
        return f"{med / 3600:.1f}h{mark}"

    table = series_table(
        "scenario",
        list(SCENARIOS),
        {
            "twin_rate": [
                f"{summaries[n]['twin'].rate:.2f}" for n in SCENARIOS
            ],
            "periodic_rate": [
                f"{summaries[n]['periodic'].rate:.2f}" for n in SCENARIOS
            ],
            "twin_med": [fmt_latency(summaries[n]["twin"]) for n in SCENARIOS],
            "periodic_med": [
                fmt_latency(summaries[n]["periodic"]) for n in SCENARIOS
            ],
            "exhausted": [
                f"{sum(rows[n]['exhausted']) / len(rows[n]['exhausted']):.2f}"
                for n in SCENARIOS
            ],
        },
        title=(
            "EXP-13: streaming twin vs periodic audits "
            f"({len(SEEDS)} seeds per scenario"
            + (", smoke scale)" if SMOKE else ")")
        ),
    )
    emit("exp13_streaming", table)
    emit_json(
        "exp13_streaming",
        {
            "smoke": SMOKE,
            "seeds": list(SEEDS),
            "scale_overrides": SCALE,
            "scenarios": {
                name: {
                    "horizon_s": rows[name]["horizon_s"],
                    "twin_latencies_s": rows[name]["twin"],
                    "periodic_latencies_s": rows[name]["periodic"],
                    "exhausted_key_ratio": rows[name]["exhausted"],
                    "twin": dataclasses.asdict(summaries[name]["twin"]),
                    "periodic": dataclasses.asdict(summaries[name]["periodic"]),
                }
                for name in SCENARIOS
            },
        },
    )

    # Equal false-positive rate: neither family ever fires on the benign
    # references (deterministic or probabilistic arrivals).
    for name in BENIGN_SCENARIOS:
        assert summaries[name]["twin"].detected == 0, name
        assert summaries[name]["periodic"].detected == 0, name

    # The headline gate: on baseline CSA the twin catches every run and
    # its median latency beats the periodic suite's (censored medians,
    # so never-detected periodic runs count at the horizon, not as wins).
    csa_twin = summaries["csa-baseline"]["twin"]
    csa_periodic = summaries["csa-baseline"]["periodic"]
    assert csa_twin.rate == 1.0
    assert (
        csa_twin.median_censored_latency_s
        < csa_periodic.median_censored_latency_s
    )

    # The control-channel attacker is invisible per-session (shortfall
    # under the trajectory tolerance) but the twin's CUSUM accumulates it.
    assert summaries["command-spoof"]["twin"].rate == 1.0

    # Stealth did not blunt the attack the twin is catching.
    csa_exhaustion = rows["csa-baseline"]["exhausted"]
    assert sum(csa_exhaustion) / len(csa_exhaustion) >= 0.7
