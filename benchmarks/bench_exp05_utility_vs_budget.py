"""EXP-05 — attack utility vs. mobile-charger energy budget.

Paper anchor: the evaluation sweep over charger capacity.  Run at the
TIDE planning level (network state frozen at campaign start, depot
refills excluded) so the budget is the *only* binding resource; utility
rises with budget and saturates once every stealthy window fits.
"""

from _common import BENCH_CONFIG, emit

from repro.analysis.aggregate import mean_ci
from repro.analysis.tables import series_table
from repro.core.baselines import NearestFirstPlanner, RandomPlanner
from repro.core.csa import CsaPlanner
from repro.core.tide import TideInstance
from repro.core.windows import StealthPolicy, derive_targets
from repro.mc.charger import default_charging_hardware

BUDGETS_MJ = (0.25, 0.5, 1.0, 1.5, 2.0, 3.0)
SEEDS = (1, 2, 3, 4, 5)
CFG = BENCH_CONFIG.with_(node_count=150, key_count=20)

PLANNERS = {
    "CSA": CsaPlanner,
    "Nearest-First": NearestFirstPlanner,
    "Random": lambda: RandomPlanner(0),
}


def build_instance(seed: int, budget_j: float) -> TideInstance:
    network = CFG.build_network(seed=seed)
    network.refresh_key_nodes(CFG.key_count)
    hardware = default_charging_hardware()
    targets = derive_targets(network, hardware, StealthPolicy(), now=0.0)
    return TideInstance(
        targets=tuple(targets),
        start_position=CFG.depot,
        start_time=0.0,
        energy_budget_j=budget_j,
        speed_m_s=CFG.mc_speed_m_s,
        travel_cost_j_per_m=CFG.mc_travel_cost_j_per_m,
    )


def run_experiment():
    series = {name: [] for name in PLANNERS}
    for budget in BUDGETS_MJ:
        instances = [build_instance(seed, budget * 1e6) for seed in SEEDS]
        for name, planner_factory in PLANNERS.items():
            utilities = [
                planner_factory().plan(inst).utility for inst in instances
            ]
            series[name].append(utilities)
    return series


def bench_exp05_utility_vs_budget(benchmark):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    formatted = {
        name: [
            f"{mean_ci(c).mean:.2f}±{mean_ci(c).ci_half_width:.2f}"
            for c in cells
        ]
        for name, cells in series.items()
    }
    table = series_table(
        "budget_MJ",
        list(BUDGETS_MJ),
        formatted,
        title=(
            "EXP-05: attack utility vs MC energy budget "
            f"(N={CFG.node_count}, key nodes={CFG.key_count})"
        ),
    )
    emit("exp05_utility_vs_budget", table)

    csa_means = [sum(c) / len(c) for c in series["CSA"]]
    # Monotone non-decreasing in budget, and CSA dominates at the
    # tightest budget where cost-benefit selection matters most.
    for a, b in zip(csa_means, csa_means[1:]):
        assert b >= a - 1e-9
    for name in ("Nearest-First", "Random"):
        other = sum(series[name][0]) / len(series[name][0])
        assert csa_means[0] >= other - 1e-9
