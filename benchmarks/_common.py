"""Shared plumbing for the benchmark suite.

Each ``bench_expNN_*.py`` regenerates one of the paper's tables or
figures (see DESIGN.md §5): it sweeps the figure's x-axis, runs the
relevant pipeline across seeds, prints the same rows/series the paper
reports, and persists them under ``benchmarks/results/``.  Timing runs
through pytest-benchmark so ``pytest benchmarks/ --benchmark-only``
exercises everything.

The shared trial kernel (:func:`repro.sim.runner.run_attack`) and the
benchmark scenario (:data:`repro.campaign.experiments.BENCH_CONFIG`)
live in the library so campaign worker processes can import them; this
module re-exports them for the benchmark scripts.  Campaign-migrated
experiments (exp03/exp04/exp07/ext04) run through
:func:`repro.campaign.run_campaign` — ``bench_executor`` picks the
process-pool executor unless ``REPRO_BENCH_SERIAL=1``.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.analysis.aggregate import mean_ci
from repro.attack.attacker import CsaAttacker, PlannedAttacker
from repro.campaign.executor import ParallelExecutor, SerialExecutor
from repro.campaign.experiments import BENCH_CONFIG
from repro.core.windows import StealthPolicy
from repro.sim.runner import run_attack

__all__ = [
    "BENCH_CONFIG",
    "RESULTS_DIR",
    "bench_executor",
    "csa_attacker_factory",
    "emit",
    "emit_json",
    "mean_ratio",
    "planner_attacker_factory",
    "run_attack",
    "series_sidecar",
]

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> None:
    """Persist machine-readable series data as ``BENCH_<name>.json``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def series_sidecar(x_name, x_values, cells_by_series) -> dict:
    """JSON sidecar payload: raw per-seed cells plus mean±CI per point."""
    series = {}
    for series_name, cells in cells_by_series.items():
        stats = [mean_ci(list(cell)) for cell in cells]
        series[series_name] = {
            "cells": [[float(v) for v in cell] for cell in cells],
            "mean": [s.mean for s in stats],
            "ci_half_width": [s.ci_half_width for s in stats],
        }
    return {"x": {"name": x_name, "values": list(x_values)}, "series": series}


def bench_executor():
    """The campaign executor benchmarks use (parallel unless overridden)."""
    if os.environ.get("REPRO_BENCH_SERIAL"):
        return SerialExecutor()
    return ParallelExecutor()


def csa_attacker_factory(key_count: int, stealth: StealthPolicy | None = None):
    """Factory for fresh CSA attackers (controllers are single-use)."""

    def make():
        return CsaAttacker(key_count=key_count, stealth=stealth)

    return make


def planner_attacker_factory(planner_factory, key_count: int):
    """Factory for baseline attackers wrapping a TIDE planner."""

    def make():
        return PlannedAttacker(planner=planner_factory(), key_count=key_count)

    return make


def mean_ratio(values) -> str:
    """Format a list of ratios as mean ± CI."""
    stats = mean_ci(list(values))
    return f"{stats.mean:.2f}±{stats.ci_half_width:.2f}"
