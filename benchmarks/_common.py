"""Shared plumbing for the benchmark suite.

Each ``bench_expNN_*.py`` regenerates one of the paper's tables or
figures (see DESIGN.md §5): it sweeps the figure's x-axis, runs the
relevant pipeline across seeds, prints the same rows/series the paper
reports, and persists them under ``benchmarks/results/``.  Timing runs
through pytest-benchmark so ``pytest benchmarks/ --benchmark-only``
exercises everything.
"""

from __future__ import annotations

import pathlib

from repro.analysis.aggregate import mean_ci
from repro.attack.attacker import CsaAttacker, PlannedAttacker
from repro.core.windows import StealthPolicy
from repro.detection.auditors import default_detector_suite
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import SimulationResult, WrsnSimulation

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_CONFIG = ScenarioConfig(node_count=100, key_count=10, horizon_days=42)
"""The benchmark suite's default scenario (overridden per experiment)."""


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_attack(
    cfg: ScenarioConfig,
    seed: int,
    controller=None,
    detectors: bool = True,
    audit_interval_s: float | None = None,
) -> SimulationResult:
    """One attack (or benign) simulation with the standard wiring."""
    network = cfg.build_network(seed=seed)
    charger = cfg.build_charger()
    if controller is None:
        controller = CsaAttacker(key_count=cfg.key_count)
    suite = default_detector_suite(seed) if detectors else []
    if audit_interval_s is not None and suite:
        for detector in suite:
            if detector.name == "voltage-audit":
                detector.mean_interval_s = audit_interval_s
    sim = WrsnSimulation(
        network, charger, controller, detectors=suite, horizon_s=cfg.horizon_s
    )
    return sim.run()


def csa_attacker_factory(key_count: int, stealth: StealthPolicy | None = None):
    """Factory for fresh CSA attackers (controllers are single-use)."""

    def make():
        return CsaAttacker(key_count=key_count, stealth=stealth)

    return make


def planner_attacker_factory(planner_factory, key_count: int):
    """Factory for baseline attackers wrapping a TIDE planner."""

    def make():
        return PlannedAttacker(planner=planner_factory(), key_count=key_count)

    return make


def mean_ratio(values) -> str:
    """Format a list of ratios as mean ± CI."""
    stats = mean_ci(list(values))
    return f"{stats.mean:.2f}±{stats.ci_half_width:.2f}"
