"""ABL-02 — the price and value of cover traffic.

DESIGN.md ablation: CSA with and without genuine "cover" charging of
non-target requesters.  Cover traffic costs real charger energy but (a)
keeps the neglect monitor quiet and (b) swells the voltage auditor's
candidate pool, diluting per-victim audit probability.
"""

from _common import BENCH_CONFIG, emit, run_attack

from repro.analysis.metrics import attack_metrics
from repro.analysis.tables import format_table
from repro.attack.attacker import CsaAttacker

SEEDS = (1, 2, 3, 4)
CFG = BENCH_CONFIG.with_(node_count=100, key_count=10)


def run_experiment():
    rows = []
    for cover in (True, False):
        results = [
            run_attack(
                CFG, seed,
                controller=CsaAttacker(
                    key_count=CFG.key_count, cover_traffic=cover
                ),
            )
            for seed in SEEDS
        ]
        metrics = [attack_metrics(r) for r in results]
        rows.append(
            [
                "on" if cover else "off",
                f"{sum(m.exhausted_key_ratio for m in metrics) / len(SEEDS):.2f}",
                f"{sum(m.detected for m in metrics) / len(SEEDS):.2f}",
                f"{sum(m.genuine_services for m in metrics) / len(SEEDS):.1f}",
                f"{sum(m.mc_energy_spent_j for m in metrics) / len(SEEDS) / 1e6:.2f}",
            ]
        )
    return rows


def bench_abl02_cover_traffic(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["cover_traffic", "exhausted_ratio", "detection_rate",
         "genuine_services", "mc_energy_MJ"],
        rows,
        title="ABL-02: cover traffic — stealth bought with energy",
    )
    emit("abl02_cover_traffic", table)

    with_cover, without = rows
    # Cover traffic costs energy and services...
    assert float(with_cover[4]) > float(without[4])
    assert float(with_cover[3]) > float(without[3])
    # ...and buys a lower detection rate.
    assert float(with_cover[2]) <= float(without[2])
