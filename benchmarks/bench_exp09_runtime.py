"""EXP-09 — planning and simulation runtime scalability.

Paper anchor: the algorithm-cost figure.  Times CSA planning across
instance sizes (the quantity an on-line attacker replans with) and the
exact DP at its practical limit, via pytest-benchmark's proper timing
machinery.

Also measures the simulator's event-loop advance throughput: every
popped event advances all ``N`` node batteries, so the advance is the
per-event cost floor of the whole discrete-event simulation.  The SoA
:class:`~repro.network.energy_ledger.EnergyLedger` path is benchmarked
against a faithful replica of the pre-ledger per-node-object loop, and
the series lands in the ``BENCH_exp09_runtime.json`` sidecar.
"""

import time

import pytest
from _common import emit, emit_json

from repro.analysis.tables import format_table
from repro.core.csa import CsaPlanner
from repro.core.optimal import solve_tide_exact
from repro.core.tide import TideInstance, TideTarget
from repro.network import build_network, communication_graph
from repro.utils.geometry import Point
from repro.utils.rng import make_rng

_RESULTS: dict[str, float] = {}
_SIM_RESULTS: dict[int, dict[str, float]] = {}
_TOPO_RESULTS: dict[int, dict[str, float]] = {}

#: Simulated event pops per timed drive (each pop advances all N nodes).
_ADVANCES = 200

#: Required ledger-vs-scalar speedup of the N=1000 advance loop.
_SPEEDUP_FLOOR = 5.0

#: Recorded CSA n=80 mean of the from-scratch insertion scan (every
#: (candidate, position) pair re-evaluated the whole trial route), from
#: the committed sidecar before the incremental rewrite.
_CSA_N80_BASELINE_S = 3.4517408187999536

#: Required speedup of the incremental insertion scan over that baseline.
_PLANNER_SPEEDUP_FLOOR = 5.0

#: Field side per sim-throughput N beyond the default 100 m square; keeps
#: node degree bounded so the one-time topology build stays tractable.
_SIM_FIELDS: dict[int, dict[str, float]] = {
    10_000: {"width": 1000.0, "height": 1000.0, "comm_range": 30.0},
}

#: Topology-smoke field side per N — constant density (~6 nodes per
#: 100 m x 100 m at comm_range 20), so edge counts scale linearly.
_TOPO_FIELD_SIDE: dict[int, float] = {10_000: 1250.0, 100_000: 4000.0}


class _ScalarNode:
    """Replica of the pre-ledger per-object node energy path.

    Carries exactly the state and arithmetic the historical
    ``SensorNode.advance_to`` used, so timing it against the ledger
    measures the refactor, not an artificial strawman.
    """

    __slots__ = (
        "node_id",
        "energy_j",
        "believed_j",
        "consumption_w",
        "clock",
        "alive",
        "death_time",
    )

    def __init__(self, node_id, energy_j, believed_j, consumption_w, clock):
        self.node_id = node_id
        self.energy_j = energy_j
        self.believed_j = believed_j
        self.consumption_w = consumption_w
        self.clock = clock
        self.alive = True
        self.death_time = None

    def advance_to(self, time_s):
        if time_s < self.clock - 1e-9:
            raise ValueError(f"node {self.node_id}: cannot advance backwards")
        dt = max(0.0, time_s - self.clock)
        if not self.alive:
            self.clock = time_s
            return False
        drained = self.consumption_w * dt
        died = False
        if drained >= self.energy_j - 1e-7 and self.consumption_w > 0.0:
            self.death_time = min(
                self.clock + self.energy_j / self.consumption_w, time_s
            )
            self.energy_j = 0.0
            self.believed_j = 0.0
            self.alive = False
            died = True
        else:
            self.energy_j -= drained
            self.believed_j = max(0.0, self.believed_j - drained)
        self.clock = time_s
        return died

    @classmethod
    def clone_network(cls, net):
        ledger = net.ledger
        return [
            cls(
                i,
                float(ledger.energy_j[i]),
                float(ledger.believed_j[i]),
                float(ledger.consumption_w[i]),
                float(ledger.clock[i]),
            )
            for i in range(len(ledger))
        ]


def _drive_ledger(ledger, dt):
    """One timed burst: _ADVANCES event pops through the SoA ledger."""
    time_s = float(ledger.clock[0])
    for _ in range(_ADVANCES):
        time_s += dt
        ledger.advance_all_to(time_s)


def _drive_scalar(nodes, dt):
    """The same burst through the historical per-node-object loop."""
    time_s = nodes[0].clock
    for _ in range(_ADVANCES):
        time_s += dt
        for node in nodes:
            node.advance_to(time_s)


def make_instance(n: int, seed: int = 0) -> TideInstance:
    rng = make_rng(seed, "exp09")
    targets = []
    for i in range(n):
        release = float(rng.uniform(0.0, 4 * 86_400.0))
        width = float(rng.uniform(2 * 3600.0, 30 * 3600.0))
        duration = float(rng.uniform(600.0, 3_000.0))
        targets.append(
            TideTarget(
                node_id=i,
                weight=float(rng.uniform(0.2, 1.0)),
                position=Point(
                    float(rng.uniform(0, 100)), float(rng.uniform(0, 100))
                ),
                window_start=release,
                window_end=release + width,
                service_duration=duration,
                service_energy_j=24.0 * duration,
            )
        )
    return TideInstance(
        targets=tuple(targets),
        start_position=Point(50, 50),
        start_time=0.0,
        energy_budget_j=5e6,
    )


@pytest.mark.parametrize("n", [10, 20, 40, 80])
def bench_exp09_csa_runtime(benchmark, n):
    instance = make_instance(n)
    planner = CsaPlanner()
    plan = benchmark(planner.plan, instance)
    mean = benchmark.stats.stats.mean
    _RESULTS[f"CSA n={n}"] = mean
    assert plan.evaluation.feasible
    if n == 80:
        # Regression floor on the incremental insertion scan: fall back
        # to from-scratch trial evaluation and this trips immediately.
        ceiling = _CSA_N80_BASELINE_S / _PLANNER_SPEEDUP_FLOOR
        assert mean <= ceiling, (
            f"CSA n=80 mean {mean:.3f}s exceeds {ceiling:.3f}s "
            f"({_PLANNER_SPEEDUP_FLOOR:.0f}x under the recorded "
            f"{_CSA_N80_BASELINE_S:.2f}s from-scratch baseline)"
        )


def bench_exp09_exact_runtime(benchmark):
    instance = make_instance(10)
    plan = benchmark.pedantic(
        solve_tide_exact, args=(instance,), rounds=3, iterations=1
    )
    _RESULTS["ExactDP n=10"] = benchmark.stats.stats.mean
    assert plan.evaluation.feasible


@pytest.mark.parametrize("n", [50, 200, 1000, 10_000])
def bench_exp09_sim_throughput(benchmark, n):
    """Event-loop advance throughput: SoA ledger vs the per-node loop."""
    net = build_network(n, seed=0, **_SIM_FIELDS.get(n, {}))
    dt = 0.25  # small steps: measures dispatch cost, nobody dies mid-drive

    benchmark(_drive_ledger, net.ledger, dt)
    ledger_s = benchmark.stats.stats.mean

    nodes = _ScalarNode.clone_network(net)
    scalar_reps = 2 if n >= 10_000 else (3 if n >= 1000 else 5)
    scalar_s = min(_timed(_drive_scalar, nodes, dt) for _ in range(scalar_reps))

    speedup = scalar_s / ledger_s
    _SIM_RESULTS[n] = {
        "advances": _ADVANCES,
        "ledger_events_per_s": _ADVANCES / ledger_s,
        "scalar_events_per_s": _ADVANCES / scalar_s,
        "speedup": speedup,
    }
    if n >= 1000:
        assert speedup >= _SPEEDUP_FLOOR, (
            f"N={n} advance loop speedup {speedup:.1f}x "
            f"below the {_SPEEDUP_FLOOR:.0f}x floor"
        )


@pytest.mark.parametrize("n", [10_000, 100_000])
def bench_exp09_topology_build(benchmark, n):
    """Communication-graph construction smoke at scale.

    The spatial grid index makes the all-pairs radio-range join linear in
    the (bounded-density) deployment instead of the seed's dense O(N^2)
    matrix, which at N=10^5 would need an ~80 GB broadcast.  One round
    per size: these are smoke points guarding tractability, not
    microbenchmarks.
    """
    side = _TOPO_FIELD_SIDE[n]
    rng = make_rng(0, f"exp09-topology-{n}")
    xs = rng.uniform(0.0, side, size=n)
    ys = rng.uniform(0.0, side, size=n)
    points = [Point(float(x), float(y)) for x, y in zip(xs, ys)]
    base_station = Point(side / 2.0, side / 2.0)

    graph = benchmark.pedantic(
        communication_graph,
        args=(points, base_station, 20.0),
        rounds=2 if n <= 10_000 else 1,
        iterations=1,
    )
    assert graph.number_of_nodes() == n + 1
    assert graph.number_of_edges() > 0
    _TOPO_RESULTS[n] = {
        "build_s": benchmark.stats.stats.mean,
        "edges": float(graph.number_of_edges()),
        "field_side_m": side,
    }


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def bench_exp09_report(benchmark):
    """Summarise the runtimes collected above into the figure table."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [[name, f"{mean * 1e3:.2f}"] for name, mean in sorted(_RESULTS.items())]
    sections = []
    if rows:
        sections.append(
            format_table(
                ["planner/size", "mean_ms"],
                rows,
                title="EXP-09: planning runtime",
            )
        )
    if _SIM_RESULTS:
        sim_rows = [
            [
                f"N={n}",
                f"{r['scalar_events_per_s']:.0f}",
                f"{r['ledger_events_per_s']:.0f}",
                f"{r['speedup']:.1f}x",
            ]
            for n, r in sorted(_SIM_RESULTS.items())
        ]
        sections.append(
            format_table(
                ["network size", "scalar_ev/s", "ledger_ev/s", "speedup"],
                sim_rows,
                title="EXP-09b: event-loop advance throughput",
            )
        )
    if _TOPO_RESULTS:
        topo_rows = [
            [
                f"N={n}",
                f"{r['field_side_m']:.0f}",
                f"{r['edges']:.0f}",
                f"{r['build_s']:.2f}",
            ]
            for n, r in sorted(_TOPO_RESULTS.items())
        ]
        sections.append(
            format_table(
                ["network size", "field_side_m", "edges", "build_s"],
                topo_rows,
                title="EXP-09c: topology build at scale (spatial grid index)",
            )
        )
    if _SIM_RESULTS:
        emit_json(
            "exp09_runtime",
            {
                "advance_throughput": {
                    str(n): r for n, r in sorted(_SIM_RESULTS.items())
                },
                "planning_runtime_s": dict(sorted(_RESULTS.items())),
                "speedup_floor": _SPEEDUP_FLOOR,
                "topology_build": {
                    str(n): r for n, r in sorted(_TOPO_RESULTS.items())
                },
                "csa_n80_baseline_s": _CSA_N80_BASELINE_S,
                "planner_speedup_floor": _PLANNER_SPEEDUP_FLOOR,
            },
        )
    if sections:
        emit("exp09_runtime", "\n\n".join(sections))
