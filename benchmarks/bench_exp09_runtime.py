"""EXP-09 — planning and simulation runtime scalability.

Paper anchor: the algorithm-cost figure.  Times CSA planning across
instance sizes (the quantity an on-line attacker replans with) and the
exact DP at its practical limit, via pytest-benchmark's proper timing
machinery.

Also measures the simulator's event-loop advance throughput: every
popped event advances all ``N`` node batteries, so the advance is the
per-event cost floor of the whole discrete-event simulation.  The SoA
:class:`~repro.network.energy_ledger.EnergyLedger` path is benchmarked
against a faithful replica of the pre-ledger per-node-object loop, and
the series lands in the ``BENCH_exp09_runtime.json`` sidecar.
"""

import time

import pytest
from _common import emit, emit_json

from repro.analysis.tables import format_table
from repro.core.csa import CsaPlanner
from repro.core.optimal import solve_tide_exact
from repro.core.tide import TideInstance, TideTarget
from repro.network import build_network
from repro.utils.geometry import Point
from repro.utils.rng import make_rng

_RESULTS: dict[str, float] = {}
_SIM_RESULTS: dict[int, dict[str, float]] = {}

#: Simulated event pops per timed drive (each pop advances all N nodes).
_ADVANCES = 200

#: Required ledger-vs-scalar speedup of the N=1000 advance loop.
_SPEEDUP_FLOOR = 5.0


class _ScalarNode:
    """Replica of the pre-ledger per-object node energy path.

    Carries exactly the state and arithmetic the historical
    ``SensorNode.advance_to`` used, so timing it against the ledger
    measures the refactor, not an artificial strawman.
    """

    __slots__ = (
        "node_id",
        "energy_j",
        "believed_j",
        "consumption_w",
        "clock",
        "alive",
        "death_time",
    )

    def __init__(self, node_id, energy_j, believed_j, consumption_w, clock):
        self.node_id = node_id
        self.energy_j = energy_j
        self.believed_j = believed_j
        self.consumption_w = consumption_w
        self.clock = clock
        self.alive = True
        self.death_time = None

    def advance_to(self, time_s):
        if time_s < self.clock - 1e-9:
            raise ValueError(f"node {self.node_id}: cannot advance backwards")
        dt = max(0.0, time_s - self.clock)
        if not self.alive:
            self.clock = time_s
            return False
        drained = self.consumption_w * dt
        died = False
        if drained >= self.energy_j - 1e-7 and self.consumption_w > 0.0:
            self.death_time = min(
                self.clock + self.energy_j / self.consumption_w, time_s
            )
            self.energy_j = 0.0
            self.believed_j = 0.0
            self.alive = False
            died = True
        else:
            self.energy_j -= drained
            self.believed_j = max(0.0, self.believed_j - drained)
        self.clock = time_s
        return died

    @classmethod
    def clone_network(cls, net):
        ledger = net.ledger
        return [
            cls(
                i,
                float(ledger.energy_j[i]),
                float(ledger.believed_j[i]),
                float(ledger.consumption_w[i]),
                float(ledger.clock[i]),
            )
            for i in range(len(ledger))
        ]


def _drive_ledger(ledger, dt):
    """One timed burst: _ADVANCES event pops through the SoA ledger."""
    time_s = float(ledger.clock[0])
    for _ in range(_ADVANCES):
        time_s += dt
        ledger.advance_all_to(time_s)


def _drive_scalar(nodes, dt):
    """The same burst through the historical per-node-object loop."""
    time_s = nodes[0].clock
    for _ in range(_ADVANCES):
        time_s += dt
        for node in nodes:
            node.advance_to(time_s)


def make_instance(n: int, seed: int = 0) -> TideInstance:
    rng = make_rng(seed, "exp09")
    targets = []
    for i in range(n):
        release = float(rng.uniform(0.0, 4 * 86_400.0))
        width = float(rng.uniform(2 * 3600.0, 30 * 3600.0))
        duration = float(rng.uniform(600.0, 3_000.0))
        targets.append(
            TideTarget(
                node_id=i,
                weight=float(rng.uniform(0.2, 1.0)),
                position=Point(
                    float(rng.uniform(0, 100)), float(rng.uniform(0, 100))
                ),
                window_start=release,
                window_end=release + width,
                service_duration=duration,
                service_energy_j=24.0 * duration,
            )
        )
    return TideInstance(
        targets=tuple(targets),
        start_position=Point(50, 50),
        start_time=0.0,
        energy_budget_j=5e6,
    )


@pytest.mark.parametrize("n", [10, 20, 40, 80])
def bench_exp09_csa_runtime(benchmark, n):
    instance = make_instance(n)
    planner = CsaPlanner()
    plan = benchmark(planner.plan, instance)
    _RESULTS[f"CSA n={n}"] = benchmark.stats.stats.mean
    assert plan.evaluation.feasible


def bench_exp09_exact_runtime(benchmark):
    instance = make_instance(10)
    plan = benchmark.pedantic(
        solve_tide_exact, args=(instance,), rounds=3, iterations=1
    )
    _RESULTS["ExactDP n=10"] = benchmark.stats.stats.mean
    assert plan.evaluation.feasible


@pytest.mark.parametrize("n", [50, 200, 1000])
def bench_exp09_sim_throughput(benchmark, n):
    """Event-loop advance throughput: SoA ledger vs the per-node loop."""
    net = build_network(n, seed=0)
    dt = 0.25  # small steps: measures dispatch cost, nobody dies mid-drive

    benchmark(_drive_ledger, net.ledger, dt)
    ledger_s = benchmark.stats.stats.mean

    nodes = _ScalarNode.clone_network(net)
    scalar_s = min(
        _timed(_drive_scalar, nodes, dt) for _ in range(3 if n >= 1000 else 5)
    )

    speedup = scalar_s / ledger_s
    _SIM_RESULTS[n] = {
        "advances": _ADVANCES,
        "ledger_events_per_s": _ADVANCES / ledger_s,
        "scalar_events_per_s": _ADVANCES / scalar_s,
        "speedup": speedup,
    }
    if n >= 1000:
        assert speedup >= _SPEEDUP_FLOOR, (
            f"N={n} advance loop speedup {speedup:.1f}x "
            f"below the {_SPEEDUP_FLOOR:.0f}x floor"
        )


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def bench_exp09_report(benchmark):
    """Summarise the runtimes collected above into the figure table."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [[name, f"{mean * 1e3:.2f}"] for name, mean in sorted(_RESULTS.items())]
    sections = []
    if rows:
        sections.append(
            format_table(
                ["planner/size", "mean_ms"],
                rows,
                title="EXP-09: planning runtime",
            )
        )
    if _SIM_RESULTS:
        sim_rows = [
            [
                f"N={n}",
                f"{r['scalar_events_per_s']:.0f}",
                f"{r['ledger_events_per_s']:.0f}",
                f"{r['speedup']:.1f}x",
            ]
            for n, r in sorted(_SIM_RESULTS.items())
        ]
        sections.append(
            format_table(
                ["network size", "scalar_ev/s", "ledger_ev/s", "speedup"],
                sim_rows,
                title="EXP-09b: event-loop advance throughput",
            )
        )
        emit_json(
            "exp09_runtime",
            {
                "advance_throughput": {
                    str(n): r for n, r in sorted(_SIM_RESULTS.items())
                },
                "planning_runtime_s": dict(sorted(_RESULTS.items())),
                "speedup_floor": _SPEEDUP_FLOOR,
            },
        )
    if sections:
        emit("exp09_runtime", "\n\n".join(sections))
