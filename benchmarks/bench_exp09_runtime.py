"""EXP-09 — planning runtime scalability.

Paper anchor: the algorithm-cost figure.  Times CSA planning across
instance sizes (the quantity an on-line attacker replans with) and the
exact DP at its practical limit, via pytest-benchmark's proper timing
machinery.
"""

import pytest
from _common import emit

from repro.analysis.tables import format_table
from repro.core.csa import CsaPlanner
from repro.core.optimal import solve_tide_exact
from repro.core.tide import TideInstance, TideTarget
from repro.utils.geometry import Point
from repro.utils.rng import make_rng

_RESULTS: dict[str, float] = {}


def make_instance(n: int, seed: int = 0) -> TideInstance:
    rng = make_rng(seed, "exp09")
    targets = []
    for i in range(n):
        release = float(rng.uniform(0.0, 4 * 86_400.0))
        width = float(rng.uniform(2 * 3600.0, 30 * 3600.0))
        duration = float(rng.uniform(600.0, 3_000.0))
        targets.append(
            TideTarget(
                node_id=i,
                weight=float(rng.uniform(0.2, 1.0)),
                position=Point(
                    float(rng.uniform(0, 100)), float(rng.uniform(0, 100))
                ),
                window_start=release,
                window_end=release + width,
                service_duration=duration,
                service_energy_j=24.0 * duration,
            )
        )
    return TideInstance(
        targets=tuple(targets),
        start_position=Point(50, 50),
        start_time=0.0,
        energy_budget_j=5e6,
    )


@pytest.mark.parametrize("n", [10, 20, 40, 80])
def bench_exp09_csa_runtime(benchmark, n):
    instance = make_instance(n)
    planner = CsaPlanner()
    plan = benchmark(planner.plan, instance)
    _RESULTS[f"CSA n={n}"] = benchmark.stats.stats.mean
    assert plan.evaluation.feasible


def bench_exp09_exact_runtime(benchmark):
    instance = make_instance(10)
    plan = benchmark.pedantic(
        solve_tide_exact, args=(instance,), rounds=3, iterations=1
    )
    _RESULTS["ExactDP n=10"] = benchmark.stats.stats.mean
    assert plan.evaluation.feasible


def bench_exp09_report(benchmark):
    """Summarise the runtimes collected above into the figure table."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [[name, f"{mean * 1e3:.2f}"] for name, mean in sorted(_RESULTS.items())]
    if rows:
        emit(
            "exp09_runtime",
            format_table(
                ["planner/size", "mean_ms"],
                rows,
                title="EXP-09: planning runtime",
            ),
        )
