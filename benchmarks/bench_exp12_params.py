"""EXP-12 — the simulation parameter table.

Paper anchor: the conventional "Table I: simulation settings".  Prints
the defaults every other experiment inherits (reconstruction R6 in
DESIGN.md) so the recorded results are self-describing.
"""

from _common import BENCH_CONFIG, emit

from repro.analysis.tables import format_table
from repro.mc.charger import default_charging_hardware
from repro.sim.scenario import ScenarioConfig


def bench_exp12_params(benchmark):
    cfg = ScenarioConfig()
    hardware = benchmark.pedantic(
        default_charging_hardware, rounds=1, iterations=1
    )
    rows = list(cfg.parameter_rows()) + [
        ("Charger array", f"{hardware.array.size} x 3 W elements"),
        ("Genuine charging rate", f"{hardware.genuine_rate_w:.2f} W"),
        ("Spoofed charging rate", f"{hardware.spoof_rate_w:.3g} W"),
        ("Service distance", f"{hardware.service_distance_m:.2f} m"),
        ("Benchmark default scenario", f"N={BENCH_CONFIG.node_count}, "
                                       f"key={BENCH_CONFIG.key_count}"),
    ]
    table = format_table(
        ["parameter", "value"],
        rows,
        title="EXP-12: simulation parameters (defaults)",
    )
    emit("exp12_params", table)
    assert hardware.genuine_rate_w > 0.0
