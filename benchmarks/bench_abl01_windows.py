"""ABL-01 — are the time windows load-bearing?

DESIGN.md ablation: the identical CSA planner run under three stealth
envelopes — full (grace + exposure cap), grace-only (audit-blind), and
none.  Damage barely moves; what the windows buy is *not getting
caught*.
"""

from _common import BENCH_CONFIG, emit, run_attack

from repro.analysis.tables import format_table
from repro.attack.attacker import PlannedAttacker
from repro.core.windows import StealthPolicy

SEEDS = (1, 2, 3, 4)
CFG = BENCH_CONFIG.with_(node_count=100, key_count=10)

POLICIES = {
    "full-stealth": StealthPolicy(),
    "grace-only": StealthPolicy.audit_blind(),
    "no-stealth": StealthPolicy.none(),
}


def run_experiment():
    rows = []
    for name, policy in POLICIES.items():
        results = [
            run_attack(
                CFG, seed,
                controller=PlannedAttacker(
                    stealth=policy, key_count=CFG.key_count
                ),
            )
            for seed in SEEDS
        ]
        rows.append(
            [
                name,
                f"{sum(r.exhausted_key_ratio() for r in results) / len(SEEDS):.2f}",
                f"{sum(r.detected for r in results) / len(SEEDS):.2f}",
            ]
        )
    return rows


def bench_abl01_windows(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["stealth_policy", "exhausted_ratio", "detection_rate"],
        rows,
        title="ABL-01: what the stealth windows buy",
    )
    emit("abl01_windows", table)

    by_name = {row[0]: row for row in rows}
    # Damage comparable across policies...
    assert float(by_name["full-stealth"][1]) >= 0.7
    # ...but stripping the windows hands the attacker to the detectors.
    assert float(by_name["no-stealth"][2]) > float(by_name["full-stealth"][2])
