"""EXT-04 — one compromised charger inside an honest fleet.

Extension experiment: multi-charger WRSNs are the norm in this
literature; what happens to CSA when the compromised charger is one of
several?  Honest co-chargers race the attacker to every requester — a
genuinely recharged victim's stealth window evaporates — so the attacker
must *claim* its victims the moment they request and camp at them until
the stealth window opens.  Even so, while it camps at one victim the
honest fleet rescues others: fleet redundancy passively blunts the
attack with no detector involved.

Runs as a campaign (``repro.campaign.experiments:ext04_spec``); the
printed table is reassembled from per-trial metrics in the original
sweep order.
"""

from _common import bench_executor, emit, emit_json, series_sidecar

from repro.analysis.tables import series_table
from repro.campaign import run_campaign
from repro.campaign.experiments import (
    EXT04_HONEST_COUNTS,
    EXT04_SEEDS,
    ext04_spec,
)

HONEST_COUNTS = EXT04_HONEST_COUNTS
SEEDS = EXT04_SEEDS


def run_experiment():
    result = run_campaign(ext04_spec(), executor=bench_executor())
    exhaust_cells = [
        result.values("exhausted_key_ratio", honest_count=h)
        for h in HONEST_COUNTS
    ]
    detect_cells = [
        [float(v) for v in result.values("detected", honest_count=h)]
        for h in HONEST_COUNTS
    ]
    spoof_cells = [
        result.values("spoof_services", honest_count=h) for h in HONEST_COUNTS
    ]
    return exhaust_cells, detect_cells, spoof_cells


def bench_ext04_fleet(benchmark):
    exhaust_cells, detect_cells, spoof_cells = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    avg = lambda c: sum(c) / len(c)
    table = series_table(
        "honest_co_chargers",
        list(HONEST_COUNTS),
        {
            "exhausted_ratio": [f"{avg(c):.2f}" for c in exhaust_cells],
            "detection_rate": [f"{avg(c):.2f}" for c in detect_cells],
            "spoofs": [f"{avg(c):.1f}" for c in spoof_cells],
        },
        title=(
            "EXT-04: CSA vs honest fleet redundancy "
            f"({len(SEEDS)} seeds per point)"
        ),
    )
    emit("ext04_fleet", table)
    emit_json(
        "ext04_fleet",
        series_sidecar(
            "honest_co_chargers",
            HONEST_COUNTS,
            {
                "exhausted_ratio": exhaust_cells,
                "detection_rate": detect_cells,
                "spoofs": spoof_cells,
            },
        ),
    )

    # Solo matches the headline experiment.
    assert avg(exhaust_cells[0]) >= 0.8
    # Redundancy blunts (never amplifies) the attack...
    assert avg(exhaust_cells[-1]) <= avg(exhaust_cells[0]) + 1e-9
    # ...and the attacker still does real damage against one co-charger.
    assert avg(exhaust_cells[1]) >= 0.3
