"""EXT-04 — one compromised charger inside an honest fleet.

Extension experiment: multi-charger WRSNs are the norm in this
literature; what happens to CSA when the compromised charger is one of
several?  Honest co-chargers race the attacker to every requester — a
genuinely recharged victim's stealth window evaporates — so the attacker
must *claim* its victims the moment they request and camp at them until
the stealth window opens.  Even so, while it camps at one victim the
honest fleet rescues others: fleet redundancy passively blunts the
attack with no detector involved.
"""

from _common import BENCH_CONFIG, emit

from repro.analysis.tables import series_table
from repro.attack.attacker import CsaAttacker
from repro.detection.auditors import default_detector_suite
from repro.mc.charger import ChargeMode
from repro.sim.benign import BenignController
from repro.sim.wrsn_sim import WrsnSimulation

HONEST_COUNTS = (0, 1, 2, 3)
SEEDS = (1, 2, 3)
CFG = BENCH_CONFIG.with_(node_count=100, key_count=10)


def run_once(seed: int, honest_count: int):
    extra = [
        (CFG.build_charger(), BenignController()) for _ in range(honest_count)
    ]
    sim = WrsnSimulation(
        CFG.build_network(seed=seed),
        CFG.build_charger(),
        CsaAttacker(key_count=CFG.key_count),
        detectors=default_detector_suite(seed),
        horizon_s=CFG.horizon_s,
        extra_units=extra,
    )
    return sim.run()


def run_experiment():
    exhaust_cells, detect_cells, spoof_cells = [], [], []
    for honest in HONEST_COUNTS:
        ratios, detections, spoofs = [], [], []
        for seed in SEEDS:
            result = run_once(seed, honest)
            ratios.append(result.exhausted_key_ratio())
            detections.append(float(result.detected))
            spoofs.append(
                sum(
                    1
                    for s in result.trace.services()
                    if s.mode == ChargeMode.SPOOF
                )
            )
        exhaust_cells.append(ratios)
        detect_cells.append(detections)
        spoof_cells.append(spoofs)
    return exhaust_cells, detect_cells, spoof_cells


def bench_ext04_fleet(benchmark):
    exhaust_cells, detect_cells, spoof_cells = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    avg = lambda c: sum(c) / len(c)
    table = series_table(
        "honest_co_chargers",
        list(HONEST_COUNTS),
        {
            "exhausted_ratio": [f"{avg(c):.2f}" for c in exhaust_cells],
            "detection_rate": [f"{avg(c):.2f}" for c in detect_cells],
            "spoofs": [f"{avg(c):.1f}" for c in spoof_cells],
        },
        title=(
            "EXT-04: CSA vs honest fleet redundancy "
            f"({len(SEEDS)} seeds per point)"
        ),
    )
    emit("ext04_fleet", table)

    # Solo matches the headline experiment.
    assert avg(exhaust_cells[0]) >= 0.8
    # Redundancy blunts (never amplifies) the attack...
    assert avg(exhaust_cells[-1]) <= avg(exhaust_cells[0]) + 1e-9
    # ...and the attacker still does real damage against one co-charger.
    assert avg(exhaust_cells[1]) >= 0.3
