"""ABL-04 — does local search on top of CSA pay?

DESIGN.md ablation: CSA vs CSA+ls (2-opt + or-opt + reinsertion) on
planning utility and planning time.  The expectation is a small utility
gain at a noticeable runtime multiple — evidence the greedy alone is the
right default for an on-line attacker that replans frequently.
"""

import time

from _common import emit

from repro.analysis.aggregate import mean_ci
from repro.analysis.tables import format_table
from repro.core.csa import CsaPlanner
from repro.core.tide import TideInstance, TideTarget
from repro.utils.geometry import Point
from repro.utils.rng import make_rng

SEEDS = tuple(range(12))
N_TARGETS = 14
BUDGET_J = 350_000.0


def crowded_instance(seed: int) -> TideInstance:
    """Clustered releases + tight budget: the regime where order matters."""
    rng = make_rng(seed, "abl04")
    targets = []
    for i in range(N_TARGETS):
        release = float(rng.uniform(0.0, 12 * 3600.0))
        width = float(rng.uniform(2 * 3600.0, 8 * 3600.0))
        duration = float(rng.uniform(900.0, 2_400.0))
        targets.append(
            TideTarget(
                node_id=i,
                weight=float(rng.uniform(0.2, 1.0)),
                position=Point(
                    float(rng.uniform(0, 100)), float(rng.uniform(0, 100))
                ),
                window_start=release,
                window_end=release + width,
                service_duration=duration,
                service_energy_j=24.0 * duration,
            )
        )
    return TideInstance(
        targets=tuple(targets),
        start_position=Point(50, 50),
        start_time=0.0,
        energy_budget_j=BUDGET_J,
    )


def run_experiment():
    base_utils, ls_utils = [], []
    base_time = ls_time = 0.0
    for seed in SEEDS:
        inst = crowded_instance(seed)
        t0 = time.perf_counter()
        base_utils.append(CsaPlanner().plan(inst).utility)
        base_time += time.perf_counter() - t0
        t0 = time.perf_counter()
        ls_utils.append(CsaPlanner(improve=True).plan(inst).utility)
        ls_time += time.perf_counter() - t0
    return base_utils, ls_utils, base_time / len(SEEDS), ls_time / len(SEEDS)


def bench_abl04_localsearch(benchmark):
    base_utils, ls_utils, base_ms, ls_ms = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    base_stats, ls_stats = mean_ci(base_utils), mean_ci(ls_utils)
    wins = sum(1 for b, l in zip(base_utils, ls_utils) if l > b + 1e-9)
    table = format_table(
        ["planner", "utility", "mean_plan_time_ms", "instances_improved"],
        [
            ["CSA", f"{base_stats.mean:.2f}±{base_stats.ci_half_width:.2f}",
             f"{base_ms * 1e3:.1f}", "-"],
            ["CSA+ls", f"{ls_stats.mean:.2f}±{ls_stats.ci_half_width:.2f}",
             f"{ls_ms * 1e3:.1f}", f"{wins}/{len(SEEDS)}"],
        ],
        title=(
            "ABL-04: local search on top of CSA "
            f"({N_TARGETS} crowded targets, {len(SEEDS)} instances)"
        ),
    )
    emit("abl04_localsearch", table)

    # Local search never loses utility and costs extra time.
    assert all(l >= b - 1e-9 for b, l in zip(base_utils, ls_utils))
    assert ls_ms >= base_ms
