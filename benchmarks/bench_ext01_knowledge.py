"""EXT-01 — attack robustness to consumption-estimation error.

Extension experiment (beyond the paper): the CSA planner's stealth
windows assume it knows each victim's consumption rate.  Sweep the
attacker's rate-estimation error for two attacker postures:

* **naive** — plans with the erroneous predictions as if they were
  exact.  Its stealth is knife-edge sensitive: the default grace margin
  over the defender's death-after-charge window is about an hour, and a
  mere 2% rate error on a ~60-hour death prediction already eats it, so
  detection shoots up while the *damage* stays intact (the windows are
  re-derived at every replan and the victims still die).
* **error-aware** — widens its stealth margins by 3 sigma of the death-
  time misestimate its rate error implies, restoring stealth at the
  cost of forfeiting targets whose widened windows become empty.

The experiment quantifies exactly that trade.
"""

from _common import BENCH_CONFIG, emit, run_attack

from repro.analysis.tables import series_table
from repro.attack.attacker import CsaAttacker
from repro.attack.knowledge import NoisyEstimator
from repro.utils.rng import make_rng

ERROR_STDS = (0.0, 0.02, 0.05, 0.1)
SEEDS = (1, 2, 3, 4)
CFG = BENCH_CONFIG.with_(node_count=100, key_count=10)
SAFETY_SIGMA = 3.0


def run_posture(std: float, safety_sigma: float):
    ratios, detections = [], []
    for seed in SEEDS:
        estimator = NoisyEstimator(std, make_rng(seed, f"ext01-{std}"))
        result = run_attack(
            CFG, seed,
            controller=CsaAttacker(
                key_count=CFG.key_count,
                estimator=estimator,
                error_safety_sigma=safety_sigma,
            ),
        )
        ratios.append(result.exhausted_key_ratio())
        detections.append(float(result.detected))
    return ratios, detections


def run_experiment():
    cells = {
        "naive_exh": [], "naive_det": [],
        "aware_exh": [], "aware_det": [],
    }
    for std in ERROR_STDS:
        n_ratio, n_det = run_posture(std, 0.0)
        a_ratio, a_det = run_posture(std, SAFETY_SIGMA)
        cells["naive_exh"].append(n_ratio)
        cells["naive_det"].append(n_det)
        cells["aware_exh"].append(a_ratio)
        cells["aware_det"].append(a_det)
    return cells


def bench_ext01_knowledge(benchmark):
    cells = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    avg = lambda c: sum(c) / len(c)
    table = series_table(
        "rate_error_std",
        list(ERROR_STDS),
        {
            name: [f"{avg(c):.2f}" for c in cells[key]]
            for name, key in (
                ("naive_exhausted", "naive_exh"),
                ("naive_detected", "naive_det"),
                ("aware_exhausted", "aware_exh"),
                ("aware_detected", "aware_det"),
            )
        },
        title=(
            "EXT-01: CSA under consumption-estimation error — naive vs "
            f"{SAFETY_SIGMA:.0f}-sigma error-aware margins "
            f"({len(SEEDS)} seeds per point)"
        ),
    )
    emit("ext01_knowledge", table)

    # Perfect knowledge: both postures, full damage, no detection.
    assert avg(cells["naive_exh"][0]) >= 0.8
    assert avg(cells["naive_det"][0]) == 0.0
    # The naive attacker's stealth collapses under error...
    assert avg(cells["naive_det"][-1]) >= 0.75
    # ...the error-aware one stays markedly stealthier...
    for naive, aware in zip(cells["naive_det"][1:], cells["aware_det"][1:]):
        assert avg(aware) <= avg(naive)
    # ...and still does real damage.
    assert avg(cells["aware_exh"][1]) >= 0.5
