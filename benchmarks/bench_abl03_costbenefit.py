"""ABL-03 — cost-benefit ratio vs. raw-gain greedy insertion.

DESIGN.md ablation: the same insertion machinery ranking candidates by
marginal utility per joule (the paper's rule) against raw marginal
utility.  The two rules only separate when service costs are
*heterogeneous* — in the default scenario every key node has the same
battery and threshold, so every spoof costs the same and the rules all
but coincide (we report that null result too).  The main sweep therefore
uses instances with 5x cost spread, where the denominator is what keeps
the planner from squandering a tight budget on heavy-but-expensive
targets.
"""

from _common import BENCH_CONFIG, emit

from repro.analysis.aggregate import mean_ci
from repro.analysis.tables import series_table
from repro.core.csa import CsaPlanner
from repro.core.tide import TideInstance, TideTarget
from repro.core.windows import StealthPolicy, derive_targets
from repro.mc.charger import default_charging_hardware
from repro.utils.geometry import Point
from repro.utils.rng import make_rng

BUDGETS_KJ = (60, 120, 240, 480)
SEEDS = tuple(range(10))
N_TARGETS = 18


def heterogeneous_instance(seed: int, budget_j: float) -> TideInstance:
    """Synthetic TIDE instance with a 5x spread of service costs."""
    rng = make_rng(seed, "abl03")
    targets = []
    for i in range(N_TARGETS):
        release = float(rng.uniform(0.0, 86_400.0))
        width = float(rng.uniform(6 * 3600.0, 36 * 3600.0))
        duration = float(rng.uniform(600.0, 3_000.0))  # 5x cost spread
        targets.append(
            TideTarget(
                node_id=i,
                weight=float(rng.uniform(0.2, 1.0)),
                position=Point(
                    float(rng.uniform(0, 100)), float(rng.uniform(0, 100))
                ),
                window_start=release,
                window_end=release + width,
                service_duration=duration,
                service_energy_j=24.0 * duration,
            )
        )
    return TideInstance(
        targets=tuple(targets),
        start_position=Point(50, 50),
        start_time=0.0,
        energy_budget_j=budget_j,
    )


def scenario_instance(seed: int, budget_j: float) -> TideInstance:
    """The default-scenario instance (homogeneous costs) for contrast."""
    cfg = BENCH_CONFIG.with_(node_count=150, key_count=20)
    network = cfg.build_network(seed=seed)
    network.refresh_key_nodes(cfg.key_count)
    targets = derive_targets(
        network, default_charging_hardware(), StealthPolicy(), now=0.0
    )
    return TideInstance(
        targets=tuple(targets),
        start_position=cfg.depot,
        start_time=0.0,
        energy_budget_j=budget_j,
        speed_m_s=cfg.mc_speed_m_s,
        travel_cost_j_per_m=cfg.mc_travel_cost_j_per_m,
    )


def run_experiment():
    ratio_cells, gain_cells = [], []
    for budget_kj in BUDGETS_KJ:
        ratio_utils, gain_utils = [], []
        for seed in SEEDS:
            inst = heterogeneous_instance(seed, budget_kj * 1e3)
            ratio_utils.append(CsaPlanner(cost_benefit=True).plan(inst).utility)
            gain_utils.append(CsaPlanner(cost_benefit=False).plan(inst).utility)
        ratio_cells.append(ratio_utils)
        gain_cells.append(gain_utils)

    # The homogeneous-cost contrast at one tight budget.
    scen_ratio, scen_gain = [], []
    for seed in (1, 2, 3):
        inst = scenario_instance(seed, 0.5e6)
        scen_ratio.append(CsaPlanner(cost_benefit=True).plan(inst).utility)
        scen_gain.append(CsaPlanner(cost_benefit=False).plan(inst).utility)
    return ratio_cells, gain_cells, scen_ratio, scen_gain


def bench_abl03_costbenefit(benchmark):
    ratio_cells, gain_cells, scen_ratio, scen_gain = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    fmt = lambda cells: [
        f"{mean_ci(c).mean:.2f}±{mean_ci(c).ci_half_width:.2f}" for c in cells
    ]
    table = series_table(
        "budget_kJ",
        list(BUDGETS_KJ),
        {"cost-benefit": fmt(ratio_cells), "gain-only": fmt(gain_cells)},
        title=(
            "ABL-03: insertion rule under tightening budgets "
            "(heterogeneous service costs, 5x spread)"
        ),
    )
    note = (
        "\nhomogeneous-cost contrast (default scenario, 0.5 MJ): "
        f"cost-benefit {sum(scen_ratio) / len(scen_ratio):.2f} vs "
        f"gain-only {sum(scen_gain) / len(scen_gain):.2f} "
        "(identical spoof costs -> the rules coincide)"
    )
    emit("abl03_costbenefit", table + note)

    ratio_means = [sum(c) / len(c) for c in ratio_cells]
    gain_means = [sum(c) / len(c) for c in gain_cells]
    # With heterogeneous costs the ratio rule wins clearly under the
    # tightest budgets and never loses meaningfully anywhere.
    assert ratio_means[0] > gain_means[0] * 1.05
    assert all(r >= g - 0.15 for r, g in zip(ratio_means, gain_means))
