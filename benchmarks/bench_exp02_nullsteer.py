"""EXP-02 — multi-antenna null steering vs. beamforming.

Paper anchor: the Section II demonstration that a charger array can put
full radiated power in the air while delivering nothing: for each array
size, the beamformed harvest, the spoofed (null-steered) harvest, and
the power the victim's charging-presence pilot still sees.
"""

from _common import emit

from repro.analysis.tables import format_table
from repro.em.charger_array import ChargerArray
from repro.em.rectenna import Rectenna
from repro.mc.charger import ChargeMode, ChargingHardware


def build_hardware(k: int) -> ChargingHardware:
    array = ChargerArray.uniform_linear(k, spacing=0.06, tx_power_per_element=3.0)
    rectenna = Rectenna(
        sensitivity_w=80e-6, peak_efficiency=0.55, knee_power_w=0.05,
        saturation_w=5.0,
    )
    return ChargingHardware(array=array, rectenna=rectenna, service_distance_m=0.1)


def run_experiment():
    rows = []
    for k in (2, 4, 6, 8):
        hw = build_hardware(k)
        rows.append(
            [
                k,
                f"{hw.emission_w:.0f}",
                f"{hw.genuine_rate_w:.2f}",
                f"{hw.spoof_rate_w:.3g}",
                f"{hw.pilot_rf_power_w(ChargeMode.SPOOF) * 1e6:.1f}",
            ]
        )
    return rows


def bench_exp02_nullsteer(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=3, iterations=1)
    table = format_table(
        ["antennas", "radiated_W", "genuine_harvest_W", "spoof_harvest_W",
         "pilot_rf_during_spoof_uW"],
        rows,
        title="EXP-02: beamform vs null-steer by array size (victim at 0.1 m)",
    )
    emit("exp02_nullsteer", table)

    # Spoofed delivery must collapse (a 2-element array with fixed
    # per-element power cannot null exactly — the residual is the
    # amplitude mismatch — but >= 4 elements kill delivery outright)
    # while the pilot still sees far more than its 1 uW threshold.
    for row in rows:
        assert float(row[3]) <= 0.01 * float(row[2])
        assert float(row[4]) >= 1.0
    for row in rows[1:]:
        assert float(row[3]) == 0.0
