"""EXP-06 — attack utility vs. stealth-window width.

Paper anchor: the evaluation sweep over the time-window constraint
itself (the "TIDE" in the paper's problem name).  Window width is
``exposure_cap - grace``.

Windows only *bind* when several key nodes' windows collide — the
synchronized-depletion regime (a network deployed at once with equal
batteries drains its heavy relays together).  This sweep therefore uses
that workload: 20 targets whose windows open within the same 8 hours.
A cautious attacker (minutes-wide windows) physically cannot chain the
colliding visits and forfeits targets; widening the windows recovers
them until the utility saturates at serving everything.  For contrast
the table also reports the spread-depletion regime (releases over 10
days), where the same sweep is flat — the shape EXP-05's budget sweep
already covers.
"""

from _common import emit

from repro.analysis.aggregate import mean_ci
from repro.analysis.tables import series_table
from repro.core.csa import CsaPlanner
from repro.core.tide import TideInstance, TideTarget
from repro.utils.geometry import Point
from repro.utils.rng import make_rng

WIDTHS_H = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
SEEDS = tuple(range(8))
N_TARGETS = 20
SERVICE_S = 2_208.0  # a full recharge at the default hardware (~37 min)
SERVICE_J = 24.0 * SERVICE_S


def clustered_instance(seed: int, width_h: float, release_span_h: float) -> TideInstance:
    rng = make_rng(seed, "exp06")
    targets = []
    for i in range(N_TARGETS):
        release = float(rng.uniform(0.0, release_span_h * 3600.0))
        targets.append(
            TideTarget(
                node_id=i,
                weight=float(rng.uniform(0.2, 1.0)),
                position=Point(
                    float(rng.uniform(0, 100)), float(rng.uniform(0, 100))
                ),
                window_start=release,
                window_end=release + width_h * 3600.0,
                service_duration=SERVICE_S,
                service_energy_j=SERVICE_J,
            )
        )
    return TideInstance(
        targets=tuple(targets),
        start_position=Point(50, 50),
        start_time=0.0,
        energy_budget_j=5e6,  # energy never binds; time is the resource
    )


def run_experiment():
    clustered_cells, spread_cells = [], []
    for width_h in WIDTHS_H:
        clustered, spread = [], []
        for seed in SEEDS:
            clustered.append(
                CsaPlanner()
                .plan(clustered_instance(seed, width_h, release_span_h=8.0))
                .utility
            )
            spread.append(
                CsaPlanner()
                .plan(clustered_instance(seed, width_h, release_span_h=240.0))
                .utility
            )
        clustered_cells.append(clustered)
        spread_cells.append(spread)
    return clustered_cells, spread_cells


def bench_exp06_window_width(benchmark):
    clustered_cells, spread_cells = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    fmt = lambda cells: [
        f"{mean_ci(c).mean:.2f}±{mean_ci(c).ci_half_width:.2f}" for c in cells
    ]
    table = series_table(
        "window_width_h",
        list(WIDTHS_H),
        {
            "synchronized_depletion": fmt(clustered_cells),
            "spread_depletion": fmt(spread_cells),
        },
        title=(
            "EXP-06: CSA utility vs stealth-window width "
            f"({N_TARGETS} targets, windows opening within 8 h vs 10 days)"
        ),
    )
    emit("exp06_window_width", table)

    clustered_means = [sum(c) / len(c) for c in clustered_cells]
    spread_means = [sum(c) / len(c) for c in spread_cells]
    # Under synchronized depletion, width is decisive: the widest windows
    # must beat the narrowest by a wide margin, monotonically.
    assert clustered_means[-1] > 1.3 * clustered_means[0]
    for a, b in zip(clustered_means, clustered_means[1:]):
        assert b >= a - 1e-9
    # Under spread depletion the sweep is (near) flat.
    assert spread_means[-1] <= 1.1 * spread_means[0] + 1e-9
