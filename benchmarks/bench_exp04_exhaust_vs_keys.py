"""EXP-04 — exhausted ratio vs. number of key nodes targeted.

Paper anchor: the evaluation sweep over attack ambition.  More targets
spread the same charger budget and crowd the stealth windows, so the
exhausted *ratio* degrades gracefully while the absolute kill count
rises; CSA stays ahead of the window-blind greedy throughout.
"""

from _common import (
    BENCH_CONFIG,
    csa_attacker_factory,
    emit,
    mean_ratio,
    planner_attacker_factory,
    run_attack,
)

from repro.analysis.tables import series_table
from repro.core.baselines import GreedyWeightPlanner

KEY_COUNTS = (5, 10, 15, 20, 25)
SEEDS = (1, 2, 3)
CFG = BENCH_CONFIG.with_(node_count=150)


def run_experiment():
    csa_cells, greedy_cells, kill_cells = [], [], []
    for k in KEY_COUNTS:
        cfg = CFG.with_(key_count=k)
        csa_ratios, greedy_ratios, kills = [], [], []
        for seed in SEEDS:
            csa_run = run_attack(
                cfg, seed, controller=csa_attacker_factory(k)()
            )
            csa_ratios.append(csa_run.exhausted_key_ratio())
            kills.append(len(csa_run.exhausted_key_ids()))
            greedy_run = run_attack(
                cfg, seed,
                controller=planner_attacker_factory(GreedyWeightPlanner, k)(),
            )
            greedy_ratios.append(greedy_run.exhausted_key_ratio())
        csa_cells.append(csa_ratios)
        greedy_cells.append(greedy_ratios)
        kill_cells.append(kills)
    return csa_cells, greedy_cells, kill_cells


def bench_exp04_exhaust_vs_keys(benchmark):
    csa_cells, greedy_cells, kill_cells = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = series_table(
        "key_nodes",
        list(KEY_COUNTS),
        {
            "CSA_ratio": [mean_ratio(c) for c in csa_cells],
            "Greedy_ratio": [mean_ratio(c) for c in greedy_cells],
            "CSA_kills": [f"{sum(c) / len(c):.1f}" for c in kill_cells],
        },
        title="EXP-04: exhaustion vs number of key nodes targeted (N=150)",
    )
    emit("exp04_exhaust_vs_keys", table)

    csa_means = [sum(c) / len(c) for c in csa_cells]
    greedy_means = [sum(c) / len(c) for c in greedy_cells]
    # CSA at least matches greedy overall, and absolute kills grow with
    # ambition.
    assert sum(csa_means) >= sum(greedy_means) - 1e-9
    kill_means = [sum(c) / len(c) for c in kill_cells]
    assert kill_means[-1] > kill_means[0]
