"""EXP-04 — exhausted ratio vs. number of key nodes targeted.

Paper anchor: the evaluation sweep over attack ambition.  More targets
spread the same charger budget and crowd the stealth windows, so the
exhausted *ratio* degrades gracefully while the absolute kill count
rises; CSA stays ahead of the window-blind greedy throughout.

Runs as a campaign (``repro.campaign.experiments:exp04_spec``); the
printed table is reassembled from per-trial metrics in the original
sweep order.
"""

from _common import bench_executor, emit, emit_json, mean_ratio, series_sidecar

from repro.analysis.tables import series_table
from repro.campaign import run_campaign
from repro.campaign.experiments import (
    EXP04_KEY_COUNTS,
    EXP04_SEEDS,
    exp04_spec,
)

KEY_COUNTS = EXP04_KEY_COUNTS
SEEDS = EXP04_SEEDS


def run_experiment():
    result = run_campaign(exp04_spec(), executor=bench_executor())
    csa_cells = [
        result.values("exhausted_key_ratio", key_count=k, attacker="CSA")
        for k in KEY_COUNTS
    ]
    greedy_cells = [
        result.values(
            "exhausted_key_ratio", key_count=k, attacker="Greedy-Weight"
        )
        for k in KEY_COUNTS
    ]
    kill_cells = [
        result.values("exhausted_key_count", key_count=k, attacker="CSA")
        for k in KEY_COUNTS
    ]
    return csa_cells, greedy_cells, kill_cells


def bench_exp04_exhaust_vs_keys(benchmark):
    csa_cells, greedy_cells, kill_cells = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = series_table(
        "key_nodes",
        list(KEY_COUNTS),
        {
            "CSA_ratio": [mean_ratio(c) for c in csa_cells],
            "Greedy_ratio": [mean_ratio(c) for c in greedy_cells],
            "CSA_kills": [f"{sum(c) / len(c):.1f}" for c in kill_cells],
        },
        title="EXP-04: exhaustion vs number of key nodes targeted (N=150)",
    )
    emit("exp04_exhaust_vs_keys", table)
    emit_json(
        "exp04_exhaust_vs_keys",
        series_sidecar(
            "key_nodes",
            KEY_COUNTS,
            {
                "CSA_ratio": csa_cells,
                "Greedy_ratio": greedy_cells,
                "CSA_kills": kill_cells,
            },
        ),
    )

    csa_means = [sum(c) / len(c) for c in csa_cells]
    greedy_means = [sum(c) / len(c) for c in greedy_cells]
    # CSA at least matches greedy overall, and absolute kills grow with
    # ambition.
    assert sum(csa_means) >= sum(greedy_means) - 1e-9
    kill_means = [sum(c) / len(c) for c in kill_cells]
    assert kill_means[-1] > kill_means[0]
