#!/usr/bin/env python3
"""Defending against the Charging Spoofing Attack.

Shows the defender's escalation ladder against the same CSA campaign:

1. behavioural detectors only (the default suite) — CSA walks through;
2. a hawkish voltage auditor — catches CSA, at an absurd audit budget;
3. in-service charge verification at a 25% probe duty cycle — catches
   the campaign at its first or second spoof, cheaply.

Run:  python examples/defending_the_network.py
"""

from repro import CsaAttacker, ScenarioConfig, WrsnSimulation
from repro.detection import (
    ChargeVerificationDefense,
    RandomVoltageAuditor,
    default_detector_suite,
)

CFG = ScenarioConfig(node_count=100, key_count=10, horizon_days=42)
SEED = 1


def campaign(detectors, label):
    sim = WrsnSimulation(
        CFG.build_network(seed=SEED),
        CFG.build_charger(),
        CsaAttacker(key_count=CFG.key_count),
        detectors=detectors,
        horizon_s=CFG.horizon_s,
        stop_on_detection=True,
    )
    result = sim.run()
    print(f"\n--- {label} ---")
    print(
        f"key nodes exhausted before any alarm: "
        f"{len(result.exhausted_key_ids())}/{len(result.initial_key_ids)}"
    )
    if result.detected:
        first = result.detections[0]
        print(f"caught by {first.detector} at day {first.time / 86_400:.1f}")
        print(f"  {first.reason}")
    else:
        print("never caught; the campaign ran to completion")


def main() -> None:
    print(f"CSA campaign vs three defender postures "
          f"(N={CFG.node_count}, seed {SEED})")

    campaign(default_detector_suite(SEED), "behavioural detectors (default)")

    hawkish = default_detector_suite(SEED)
    for detector in hawkish:
        if isinstance(detector, RandomVoltageAuditor):
            detector.mean_interval_s = 6 * 3600.0  # audit every 6 h (!)
    campaign(hawkish, "hawkish voltage audits every ~6 h")

    probing = default_detector_suite(SEED) + [
        ChargeVerificationDefense(probe_rate=0.25, seed=SEED)
    ]
    campaign(probing, "in-service charge verification (25% probe rate)")


if __name__ == "__main__":
    main()
