#!/usr/bin/env python3
"""The physics behind the attack: nonlinear superposition at a rectenna.

Reproduces the paper's Section II bench experiment in three acts:

1. Two coherent waves, phase swept 0..2*pi: harvested power swings from
   four times one wave's power down to zero, while the incoherent
   (linear-intuition) sum stays flat.
2. The full charger array: beamforming vs. null steering at the victim,
   with the pilot antenna still reading a strong field during the spoof.
3. The spoof report: the exact emission phases an attacker would program.

Run:  python examples/superposition_demo.py
"""

import math

from repro import default_charging_hardware, execute_spoof, superposition_sweep
from repro.em.superposition import cancellation_depth_db, fit_two_wave_model
from repro.mc.charger import ChargeMode


def act_one_two_waves() -> None:
    print("=== Act 1: two coherent 10 mW waves, relative phase swept ===")
    offsets = [i * math.pi / 6 for i in range(13)]
    sweep = superposition_sweep(offsets, wave_power_w=10e-3)
    print(f"{'phase':>8}  {'coherent RF':>12}  {'harvested':>10}  {'incoherent':>11}")
    for dphi, rf, dc, inc in zip(
        offsets, sweep["rf_power"], sweep["harvested"], sweep["incoherent_rf"]
    ):
        print(
            f"{dphi / math.pi:>6.2f}pi  {rf * 1e3:>9.2f} mW  "
            f"{dc * 1e3:>7.2f} mW  {inc * 1e3:>8.2f} mW"
        )
    fit = fit_two_wave_model(sweep["phase_offsets"], sweep["rf_power"])
    depth = cancellation_depth_db(sweep)
    depth_text = "infinite" if math.isinf(depth) else f"{depth:.1f} dB"
    print(f"fitted interference model r^2 = {fit.r_squared:.4f}; "
          f"cancellation depth {depth_text}")


def act_two_array() -> None:
    print("\n=== Act 2: the charger array, honest vs. malicious ===")
    hardware = default_charging_hardware()
    print(f"array: {hardware.array.size} elements, "
          f"{hardware.emission_w:.0f} W radiated either way")
    print(f"beamformed (honest) delivery:  {hardware.genuine_rate_w:.2f} W")
    print(f"null-steered (spoof) delivery: {hardware.spoof_rate_w:.3g} W")
    pilot = hardware.pilot_rf_power_w(ChargeMode.SPOOF)
    print(
        f"victim's pilot antenna during the spoof: {pilot * 1e6:.0f} uW "
        f"(presence threshold {hardware.presence_threshold_w * 1e6:.0f} uW) "
        f"-> indicator reads 'charging'"
    )


def act_three_report() -> None:
    print("\n=== Act 3: the spoof, as the attacker programs it ===")
    report = execute_spoof(default_charging_hardware())
    phases = ", ".join(f"{p:+.3f}" for p in report.phases_rad)
    print(f"emission phases (rad): [{phases}]")
    print(f"residual RF at rectenna: {report.rf_at_rectenna_w:.3g} W")
    print(f"harvested: {report.harvested_w:.3g} W "
          f"(an honest service would deliver {report.genuine_harvest_w:.2f} W)")
    suppression = (
        "infinite"
        if math.isinf(report.suppression_db)
        else f"{report.suppression_db:.1f} dB"
    )
    print(f"suppression: {suppression}; pilot tripped: {report.pilot_tripped}")


if __name__ == "__main__":
    act_one_two_waves()
    act_two_array()
    act_three_report()
