#!/usr/bin/env python3
"""The bench-top testbed campaign, end to end.

Mirrors the paper's testbed validation: an 8-node grid of coin-battery
sensors, a trolley charger with a compact 4-element pad, per-trial
hardware and placement variation, and the full detector suite scaled to
bench time constants.  Prints per-trial outcomes and the verdict on the
abstract's headline sentence.

Run:  python examples/testbed_campaign.py
"""

from repro import run_testbed
from repro.testbed import default_testbed_profile
from repro.utils.rng import RngFactory


def main() -> None:
    profile = default_testbed_profile()
    hardware = profile.build_hardware(RngFactory(0).stream("hardware"))

    print("=== Testbed profile ===")
    print(f"nodes: {profile.node_count} on a "
          f"{profile.node_rows}x{profile.node_cols} grid, "
          f"{profile.spacing_m:.1f} m pitch")
    print(f"node battery: {profile.battery_capacity_j:.0f} J")
    print(f"charger pad: {profile.element_count} elements at "
          f"~{profile.element_power_w:.1f} W "
          f"(±{profile.element_power_noise:.0%} per-trial variation)")
    print(f"genuine delivery (one draw): {hardware.genuine_rate_w:.3f} W; "
          f"spoofed: {hardware.spoof_rate_w:.3g} W")
    print(f"horizon: {profile.horizon_s / 3600:.0f} h per trial")

    print("\n=== Campaign (20 trials) ===")
    summary = run_testbed(trial_count=20)
    for trial in summary.trials:
        print(
            f"trial {trial.seed:>2}: exhausted {trial.exhausted_key_count}/"
            f"{trial.key_count} key nodes, "
            f"{'DETECTED' if trial.detected else 'undetected'}, "
            f"{trial.spoof_services} spoofs + {trial.genuine_services} genuine"
        )

    print(f"\nmean exhausted ratio: {summary.mean_exhausted_ratio:.0%}")
    print(f"trials detected: {summary.detection_count}/{len(summary.trials)}")
    print(
        "headline claim (>= 80% exhausted, undetected): "
        + ("HOLDS" if summary.headline_claim_holds else "FAILS")
    )


if __name__ == "__main__":
    main()
