#!/usr/bin/env python3
"""Attack strategies against the base station's detector suite.

Runs the same 100-node network (same seed) under four charger
behaviours and shows what the defenders see:

* an honest NJNP charger — the no-attack baseline;
* the full CSA attacker — stealth windows, null-steered emission,
  genuine cover traffic;
* the same planner with the stealth windows stripped — caught by
  voltage spot audits;
* the blatant pretender — caught almost immediately by telemetry.

Run:  python examples/attack_vs_defenders.py
"""

from repro import (
    BenignController,
    BlatantAttacker,
    CsaAttacker,
    PlannedAttacker,
    ScenarioConfig,
    StealthPolicy,
    WrsnSimulation,
)
from repro.analysis.metrics import attack_metrics, lifetime_metrics
from repro.detection import default_detector_suite

CFG = ScenarioConfig(node_count=100, key_count=10, horizon_days=42)
SEED = 2


def run(name: str, controller) -> None:
    sim = WrsnSimulation(
        CFG.build_network(seed=SEED),
        CFG.build_charger(),
        controller,
        detectors=default_detector_suite(SEED),
        horizon_s=CFG.horizon_s,
    )
    result = sim.run()
    attack = attack_metrics(result)
    health = lifetime_metrics(result)

    print(f"\n--- {name} ---")
    print(f"exhausted key nodes: {attack.exhausted_key_count}/{attack.key_count}")
    print(f"dead nodes overall:  {health.dead_count}")
    if result.detected:
        first = result.detections[0]
        print(
            f"DETECTED by {first.detector} at t = {first.time / 3600:.1f} h"
        )
        print(f"  reason: {first.reason}")
    else:
        print("detected: no")


def main() -> None:
    print(f"network: {CFG.node_count} nodes, seed {SEED}, "
          f"{CFG.horizon_days:.0f}-day horizon")
    run("honest charger (NJNP)", BenignController())
    run("CSA attacker (full stealth)", CsaAttacker(key_count=CFG.key_count))
    run(
        "CSA planner, stealth windows stripped",
        PlannedAttacker(stealth=StealthPolicy.none(), key_count=CFG.key_count),
    )
    run("blatant pretender", BlatantAttacker(key_count=CFG.key_count))


if __name__ == "__main__":
    main()
