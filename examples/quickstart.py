#!/usr/bin/env python3
"""Quickstart: launch the Charging Spoofing Attack on a WRSN.

Builds a 100-node wireless rechargeable sensor network, hands the mobile
charger to the CSA attacker, arms the base station's full detector
suite, and runs a 42-day campaign.  Prints the paper's headline numbers:
how many key nodes were exhausted and whether any detector noticed.

Run:  python examples/quickstart.py
"""

from repro import CsaAttacker, ScenarioConfig, WrsnSimulation
from repro.analysis.metrics import attack_metrics
from repro.detection import default_detector_suite


def main() -> None:
    cfg = ScenarioConfig(node_count=100, key_count=10, horizon_days=42)
    seed = 1

    network = cfg.build_network(seed=seed)
    charger = cfg.build_charger()
    attacker = CsaAttacker(key_count=cfg.key_count)

    sim = WrsnSimulation(
        network,
        charger,
        attacker,
        detectors=default_detector_suite(seed),
        horizon_s=cfg.horizon_s,
    )
    result = sim.run()
    metrics = attack_metrics(result)

    print("=== Charging Spoofing Attack: 42-day campaign ===")
    print(f"network: {cfg.node_count} nodes, {metrics.key_count} key nodes targeted")
    print(
        f"exhausted key nodes: {metrics.exhausted_key_count}/{metrics.key_count} "
        f"({metrics.exhausted_key_ratio:.0%})"
    )
    print(f"spoofed services: {metrics.spoof_services}")
    print(f"genuine cover services: {metrics.genuine_services}")
    print(f"charger energy spent: {metrics.mc_energy_spent_j / 1e6:.2f} MJ")
    print(f"nodes stranded from the base station: {metrics.stranded_nodes}")
    if metrics.detected:
        print(f"DETECTED at t = {metrics.detection_time_s / 3600:.1f} h")
    else:
        print("detected: no — every detector stayed silent")

    claim = metrics.exhausted_key_ratio >= 0.8 and not metrics.detected
    print(
        "\npaper's headline claim (>= 80% of key nodes exhausted, undetected): "
        + ("REPRODUCED" if claim else "not reproduced on this seed")
    )


if __name__ == "__main__":
    main()
