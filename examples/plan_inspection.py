#!/usr/bin/env python3
"""Inside the TIDE optimisation: windows, plans, and the guarantee.

Works at the planning layer, without running a simulation:

1. Derives the stealthy service windows for a network's key nodes and
   prints them (request, death, and the two-sided window in between).
2. Plans the spoofing route with CSA and several baselines, comparing
   utility and energy.
3. On a trimmed instance small enough for the exact DP, measures CSA's
   empirical approximation ratio against the (1 - 1/e)/2 guarantee.

Run:  python examples/plan_inspection.py
"""

from repro import (
    CsaPlanner,
    EdfPlanner,
    GreedyWeightPlanner,
    NearestFirstPlanner,
    RandomPlanner,
    ScenarioConfig,
    StealthPolicy,
    TideInstance,
    TspPlanner,
    derive_targets,
    solve_tide_exact,
)
from repro.core.bounds import GREEDY_GUARANTEE, check_guarantee
from repro.mc.charger import default_charging_hardware

CFG = ScenarioConfig(node_count=150, key_count=12)
SEED = 7
BUDGET_J = 1.2e6


def hours(seconds: float) -> str:
    return f"{seconds / 3600:7.1f} h"


def main() -> None:
    network = CFG.build_network(seed=SEED)
    network.refresh_key_nodes(CFG.key_count)
    hardware = default_charging_hardware()
    policy = StealthPolicy()

    targets = derive_targets(network, hardware, policy, now=0.0)
    print(f"=== Stealthy windows for {len(targets)} key nodes ===")
    print(f"{'node':>5} {'weight':>7} {'request':>10} {'death':>10} "
          f"{'window open':>12} {'window close':>13} {'service':>9}")
    for t in targets:
        print(
            f"{t.node_id:>5} {t.weight:>7.2f} {hours(t.request_time):>10} "
            f"{hours(t.death_time):>10} {hours(t.window_start):>12} "
            f"{hours(t.window_end):>13} {t.service_duration / 60:>6.0f} min"
        )

    instance = TideInstance(
        targets=tuple(targets),
        start_position=CFG.depot,
        start_time=0.0,
        energy_budget_j=BUDGET_J,
        speed_m_s=CFG.mc_speed_m_s,
        travel_cost_j_per_m=CFG.mc_travel_cost_j_per_m,
    )

    print(f"\n=== Plans under a {BUDGET_J / 1e6:.1f} MJ budget ===")
    planners = [
        CsaPlanner(),
        GreedyWeightPlanner(),
        NearestFirstPlanner(),
        EdfPlanner(),
        TspPlanner(),
        RandomPlanner(0),
    ]
    for planner in planners:
        plan = planner.plan(instance)
        print(
            f"{plan.planner_name:<15} utility {plan.utility:5.2f}  "
            f"victims {len(plan.served):2d}  "
            f"energy {plan.evaluation.energy_j / 1e6:4.2f} MJ  "
            f"route {list(plan.route)}"
        )

    small = TideInstance(
        targets=tuple(targets[:9]),
        start_position=CFG.depot,
        start_time=0.0,
        energy_budget_j=BUDGET_J / 2,
        speed_m_s=CFG.mc_speed_m_s,
        travel_cost_j_per_m=CFG.mc_travel_cost_j_per_m,
    )
    csa_plan = CsaPlanner().plan(small)
    optimal = solve_tide_exact(small)
    cert = check_guarantee(small, csa_plan, optimal)
    print("\n=== The bounded performance guarantee, checked ===")
    print(f"CSA utility {cert.csa_utility:.2f} vs optimal {cert.optimal_utility:.2f}")
    print(f"empirical ratio {cert.ratio:.3f} vs guaranteed {GREEDY_GUARANTEE:.3f} "
          f"-> bound {'holds' if cert.holds else 'VIOLATED'}")


if __name__ == "__main__":
    main()
