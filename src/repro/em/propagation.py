"""RF propagation models for wireless power transfer.

Two models are provided:

* :class:`FriisModel` — textbook free-space propagation.  Used by the
  phasor-level attack physics, where both the *amplitude* and the *phase*
  accumulated along each antenna-to-victim path matter.
* :class:`EmpiricalChargingModel` — the empirical received-power model
  ``P_r(d) = tx_power * alpha / (d + beta)^2`` calibrated against Powercast
  measurements, which is the de-facto charging model of the WRSN literature
  (including this paper's research group).  Used by the network-level
  simulator, where only delivered power matters.

All powers are in watts, distances in metres, frequencies in hertz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import (
    check_non_negative,
    check_non_negative_array,
    check_positive,
)

__all__ = [
    "POWERCAST_FREQUENCY_HZ",
    "SPEED_OF_LIGHT",
    "EmpiricalChargingModel",
    "FriisModel",
    "wavelength",
]

SPEED_OF_LIGHT = 299_792_458.0
"""Speed of light in vacuum, m/s."""

POWERCAST_FREQUENCY_HZ = 915e6
"""Centre frequency of the Powercast TX91501 charger (915 MHz ISM band)."""


def wavelength(frequency_hz: float) -> float:
    """Free-space wavelength in metres for the given frequency."""
    frequency_hz = check_positive("frequency_hz", frequency_hz)
    return SPEED_OF_LIGHT / frequency_hz


@dataclass(frozen=True)
class FriisModel:
    """Free-space propagation with explicit path phase.

    The complex field amplitude at distance ``d`` from a transmitter of
    power ``P_t`` is proportional to ``sqrt(P_t G_t G_r) * (lambda / 4 pi d)``
    with accumulated phase ``-2 pi d / lambda``.  Powers follow the Friis
    transmission equation.

    Parameters
    ----------
    frequency_hz:
        Carrier frequency.
    tx_gain, rx_gain:
        Linear (not dB) antenna gains.
    min_distance:
        Distances below this are clamped to it, avoiding the unphysical
        near-field singularity of the far-field formula.
    """

    frequency_hz: float = POWERCAST_FREQUENCY_HZ
    tx_gain: float = 1.0
    rx_gain: float = 1.0
    min_distance: float = 0.1

    def __post_init__(self) -> None:
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("tx_gain", self.tx_gain)
        check_positive("rx_gain", self.rx_gain)
        check_positive("min_distance", self.min_distance)

    @property
    def wavelength(self) -> float:
        """Carrier wavelength in metres."""
        return wavelength(self.frequency_hz)

    def _clamped(self, distance: float | np.ndarray) -> float | np.ndarray:
        if isinstance(distance, np.ndarray):
            return np.maximum(
                check_non_negative_array("distance", distance), self.min_distance
            )
        check_non_negative("distance", distance)
        return max(distance, self.min_distance)

    def received_power(
        self, tx_power: float, distance: float | np.ndarray
    ) -> float | np.ndarray:
        """Friis received power at ``distance`` for transmit power ``tx_power``.

        ``distance`` may be an ndarray; the result then has its shape
        (elementwise, identical arithmetic to the scalar path).
        """
        tx_power = check_non_negative("tx_power", tx_power)
        d = self._clamped(distance)
        factor = self.wavelength / (4.0 * math.pi * d)
        return tx_power * self.tx_gain * self.rx_gain * factor * factor

    def field_amplitude(
        self, tx_power: float, distance: float | np.ndarray
    ) -> float | np.ndarray:
        """Amplitude of the received field phasor, normalised so that the
        squared amplitude equals the Friis received power.  Elementwise
        over an ndarray of distances."""
        power = self.received_power(tx_power, distance)
        if isinstance(power, np.ndarray):
            return np.sqrt(power)
        return math.sqrt(power)

    def path_phase(self, distance: float | np.ndarray) -> float | np.ndarray:
        """Phase accumulated along a path of the given length, in radians.

        Propagation delays phase, so the accumulated phase is negative:
        ``-2 pi d / lambda``.  The *unclamped* distance is used — phase has
        no near-field singularity.  Elementwise over an ndarray.
        """
        if isinstance(distance, np.ndarray):
            check_non_negative_array("distance", distance)
        else:
            check_non_negative("distance", distance)
        return -2.0 * math.pi * distance / self.wavelength


@dataclass(frozen=True)
class EmpiricalChargingModel:
    """Empirical Powercast-style charging model.

    Delivered RF power at distance ``d`` from a charger transmitting
    ``tx_power`` watts::

        P_r(d) = tx_power * alpha / (d + beta)^2      for d <= max_distance
        P_r(d) = 0                                     otherwise

    The default constants are calibrated so that a 3 W transmitter delivers
    about 50 mW at 0.6 m (the Powercast TX91501 operating point quoted
    throughout this literature) and the effective charging range is a few
    metres.

    Parameters
    ----------
    alpha:
        Dimensionless gain constant (absorbs antenna gains and rectifier
        coupling).
    beta:
        Distance offset in metres regularising the near field.
    max_distance:
        Radius beyond which no power is delivered.
    """

    alpha: float = 0.012
    beta: float = 0.25
    max_distance: float = 5.0

    def __post_init__(self) -> None:
        check_positive("alpha", self.alpha)
        check_non_negative("beta", self.beta)
        check_positive("max_distance", self.max_distance)

    def received_power(self, tx_power: float, distance: float) -> float:
        """Delivered RF power in watts at the given distance."""
        tx_power = check_non_negative("tx_power", tx_power)
        distance = check_non_negative("distance", distance)
        if distance > self.max_distance:
            return 0.0
        denom = (distance + self.beta) ** 2
        return tx_power * self.alpha / denom

    def efficiency(self, distance: float) -> float:
        """Fraction of transmit power delivered at the given distance."""
        return self.received_power(1.0, distance)

    def charging_range(self) -> float:
        """Maximum distance at which any power is delivered."""
        return self.max_distance
