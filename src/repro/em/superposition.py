"""The paper's Section II experiment as code.

The paper motivates the Charging Spoofing Attack with bench experiments
showing that two coherent RF waves charging the same rectenna do **not**
deliver the sum of their individual powers: as the relative phase of the
second wave sweeps from 0 to 2*pi, the harvested power swings from nearly
four times one wave's power (constructive) down to (near) zero
(destructive).  This module reproduces those measurements on the phasor +
nonlinear-rectenna substrate and fits the closed-form two-wave model

    P_rf(dphi) = P1 + P2 + 2 * sqrt(P1 * P2) * cos(dphi)

to the sweep, the same way the paper extracts its superposition model from
measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.em.rectenna import Rectenna
from repro.utils.validation import check_non_negative

__all__ = [
    "SuperpositionFit",
    "cancellation_depth_db",
    "fit_two_wave_model",
    "superposition_sweep",
    "two_wave_rf_power",
]


def two_wave_rf_power(
    p1: float, p2: float, phase_offset: float | np.ndarray
) -> float | np.ndarray:
    """Coherent RF power of two waves of powers ``p1``, ``p2`` at relative phase.

    This is the closed-form interference law the sweep should follow.
    ``phase_offset`` may be an ndarray, in which case the whole sweep is
    evaluated in one fused pass and an array of the same shape returns.
    """
    p1 = check_non_negative("p1", p1)
    p2 = check_non_negative("p2", p2)
    cross = 2.0 * math.sqrt(p1 * p2)
    if isinstance(phase_offset, np.ndarray):
        # Floating-point cancellation can dip a hair below zero at dphi = pi.
        return np.maximum(p1 + p2 + cross * np.cos(phase_offset), 0.0)
    power = p1 + p2 + cross * math.cos(phase_offset)
    return max(power, 0.0)


def superposition_sweep(
    phase_offsets: Sequence[float],
    wave_power_w: float = 10e-3,
    amplitude_ratio: float = 1.0,
    rectenna: Rectenna | None = None,
    noise_std_w: float = 0.0,
    rng: np.random.Generator | None = None,
) -> dict[str, np.ndarray]:
    """Sweep the relative phase of two coherent waves and record powers.

    Parameters
    ----------
    phase_offsets:
        Relative phases (radians) to measure at.
    wave_power_w:
        RF power of the first wave at the rectenna.
    amplitude_ratio:
        Field-amplitude ratio of wave 2 to wave 1 (1.0 = equal waves).
    rectenna:
        Harvesting model; defaults to the Powercast-like :class:`Rectenna`.
    noise_std_w:
        Standard deviation of additive measurement noise on the harvested
        power, for testbed-style noisy sweeps.  Requires ``rng`` if > 0.

    Returns
    -------
    dict with arrays ``phase_offsets``, ``rf_power`` (coherent RF power at
    the rectenna), ``harvested`` (DC power out), and ``incoherent_rf``
    (the linear-intuition prediction, constant across the sweep).
    """
    wave_power_w = check_non_negative("wave_power_w", wave_power_w)
    amplitude_ratio = check_non_negative("amplitude_ratio", amplitude_ratio)
    noise_std_w = check_non_negative("noise_std_w", noise_std_w)
    if noise_std_w > 0.0 and rng is None:
        raise ValueError("noise_std_w > 0 requires an rng")
    rect = rectenna or Rectenna()

    offsets = np.asarray(phase_offsets, dtype=float)
    p1 = wave_power_w
    p2 = wave_power_w * amplitude_ratio**2
    rf = two_wave_rf_power(p1, p2, offsets)
    harvested = rect.harvest(rf)
    if noise_std_w > 0.0:
        assert rng is not None
        harvested = np.maximum(harvested + rng.normal(0.0, noise_std_w, harvested.shape), 0.0)
    incoherent = np.full_like(offsets, p1 + p2)
    return {
        "phase_offsets": offsets,
        "rf_power": rf,
        "harvested": harvested,
        "incoherent_rf": incoherent,
    }


def cancellation_depth_db(sweep: dict[str, np.ndarray]) -> float:
    """Depth of the destructive null in the sweep, in dB.

    Ratio of the maximum to the minimum coherent RF power across the sweep.
    Returns ``inf`` for a perfect null.
    """
    rf = np.asarray(sweep["rf_power"], dtype=float)
    if rf.size == 0:
        raise ValueError("sweep contains no samples")
    peak = float(rf.max())
    trough = float(rf.min())
    if peak <= 0.0:
        raise ValueError("sweep has no power anywhere; depth undefined")
    if trough <= 0.0:
        return math.inf
    return 10.0 * math.log10(peak / trough)


@dataclass(frozen=True)
class SuperpositionFit:
    """Least-squares fit of the two-wave interference law to a sweep.

    Attributes
    ----------
    p_sum:
        Fitted ``P1 + P2`` term, watts.
    p_cross:
        Fitted ``2 sqrt(P1 P2)`` interference amplitude, watts.
    r_squared:
        Coefficient of determination of the fit.
    """

    p_sum: float
    p_cross: float
    r_squared: float

    @property
    def modulation_index(self) -> float:
        """``p_cross / p_sum`` — 1.0 for equal-amplitude waves."""
        if self.p_sum == 0.0:  # reprolint: disable=RL-P001 (exact-zero sentinel)
            return 0.0
        return self.p_cross / self.p_sum


def fit_two_wave_model(
    phase_offsets: Sequence[float], rf_power: Sequence[float]
) -> SuperpositionFit:
    """Fit ``P(dphi) = p_sum + p_cross * cos(dphi)`` by linear least squares.

    This is the model the paper fits to its bench measurements; a high
    ``r_squared`` with ``modulation_index`` near 1 confirms the coherent
    (nonlinear-in-power) superposition regime that enables spoofing.
    """
    x = np.asarray(phase_offsets, dtype=float)
    y = np.asarray(rf_power, dtype=float)
    if x.shape != y.shape or x.size < 3:
        raise ValueError("need at least 3 paired samples to fit the model")
    design = np.column_stack([np.ones_like(x), np.cos(x)])
    coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
    predicted = design @ coeffs
    residual = float(((y - predicted) ** 2).sum())
    total = float(((y - y.mean()) ** 2).sum())
    # reprolint: disable-next=RL-P001 (exact-zero sentinel)
    r_squared = 1.0 if total == 0.0 else 1.0 - residual / total
    return SuperpositionFit(
        p_sum=float(coeffs[0]), p_cross=float(coeffs[1]), r_squared=r_squared
    )
