"""Nonlinear rectenna (rectifying antenna) harvesting model.

A rectenna converts incident RF power to DC.  Its conversion efficiency is
*not* constant: below a sensitivity threshold the diode does not turn on
and nothing is harvested; efficiency then rises with input power (the
diode's square-law region rewards concentrated power); finally the output
saturates at the converter's rating.

Two consequences matter for the Charging Spoofing Attack:

1. Because coherent waves add in *field*, not power, the harvested DC from
   several waves differs from the sum of their individual harvests — the
   "nonlinear superposition principle" the paper demonstrates.  A perfect
   destructive null yields **zero** harvest even though each wave alone
   would charge the node.
2. Even an imperfect null is amplified by the diode threshold: once the
   residual RF power falls below the rectifier sensitivity, harvested power
   is exactly zero, so the attacker does not need a perfect null.

The default constants approximate the Powercast P2110 harvester:
sensitivity around -11 dBm, peak efficiency ~55 %, and a soft knee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import (
    check_non_negative,
    check_non_negative_array,
    check_positive,
    check_probability,
)

__all__ = ["Rectenna"]


@dataclass(frozen=True)
class Rectenna:
    """Nonlinear RF-to-DC harvesting model.

    Parameters
    ----------
    sensitivity_w:
        Minimum incident RF power for the rectifier to turn on; below this
        the harvested power is exactly zero.  Default 80 µW (≈ -11 dBm).
    peak_efficiency:
        Asymptotic RF-to-DC conversion efficiency (0..1].
    knee_power_w:
        Input power at which efficiency reaches half of its peak.  Smaller
        values make the harvester behave linearly sooner.
    saturation_w:
        Maximum DC output power of the converter.
    """

    sensitivity_w: float = 80e-6
    peak_efficiency: float = 0.55
    knee_power_w: float = 5e-3
    saturation_w: float = 0.5

    def __post_init__(self) -> None:
        check_non_negative("sensitivity_w", self.sensitivity_w)
        check_probability("peak_efficiency", self.peak_efficiency)
        if self.peak_efficiency == 0.0:  # reprolint: disable=RL-P001
            raise ValueError("peak_efficiency must be > 0")
        check_positive("knee_power_w", self.knee_power_w)
        check_positive("saturation_w", self.saturation_w)

    def efficiency(self, rf_power_w: float | np.ndarray) -> float | np.ndarray:
        """Conversion efficiency at the given incident RF power.

        Zero below the sensitivity threshold; otherwise a saturating
        rational curve ``eta_max * P / (P + P_knee)`` capturing the diode's
        improving efficiency with drive level.

        Accepts an ndarray of powers and returns per-entry efficiencies
        of the same shape (the batched path used by the EM kernels).
        """
        if isinstance(rf_power_w, np.ndarray):
            rf = check_non_negative_array("rf_power_w", rf_power_w)
            eta = self.peak_efficiency * rf / (rf + self.knee_power_w)
            return np.where(rf < self.sensitivity_w, 0.0, eta)
        rf_power_w = check_non_negative("rf_power_w", rf_power_w)
        if rf_power_w < self.sensitivity_w:
            return 0.0
        return self.peak_efficiency * rf_power_w / (rf_power_w + self.knee_power_w)

    def harvest(self, rf_power_w: float | np.ndarray) -> float | np.ndarray:
        """Harvested DC power in watts for the given incident RF power.

        Elementwise over an ndarray of powers, one fused pass — the
        batched counterpart feeding :func:`superposition_sweep` and the
        charger-array power maps.
        """
        if isinstance(rf_power_w, np.ndarray):
            rf = check_non_negative_array("rf_power_w", rf_power_w)
            dc = self.efficiency(rf) * rf
            return np.minimum(dc, self.saturation_w)
        rf_power_w = check_non_negative("rf_power_w", rf_power_w)
        dc = self.efficiency(rf_power_w) * rf_power_w
        return min(dc, self.saturation_w)

    def harvest_from_field(self, field: complex) -> float:
        """Harvested DC power for a received field phasor.

        The phasor convention of :mod:`repro.em.waves` makes
        ``|field|**2`` the incident RF power.
        """
        return self.harvest(abs(field) ** 2)

    def superposition_gap(self, phasors: list[complex]) -> float:
        """Nonlinear-superposition gap for a set of coherent waves.

        Returns ``sum_i harvest(|E_i|^2) - harvest(|sum_i E_i|^2)`` — the
        difference between what linear intuition predicts and what the
        rectenna actually delivers.  Positive values mean destructive
        superposition stole harvested power; the spoofing attack maximises
        this gap (driving the second term to zero).
        """
        independent = sum(self.harvest(abs(p) ** 2) for p in phasors)
        coherent = abs(sum(phasors)) ** 2
        return independent - self.harvest(coherent)
