"""Complex-phasor representation of coherent RF waves.

A narrowband wave at the victim's antenna is represented by a single
complex phasor whose squared magnitude is the wave's RF power in watts
(the field amplitude is normalised to a 1-ohm reference so that
``power = |phasor|**2``).  Coherent waves from the same charger's antennas
add as *phasors*; waves from mutually incoherent sources add in *power*.

This distinction is the entire physical basis of the Charging Spoofing
Attack: the superposition of coherent waves is linear in field but
**nonlinear in power**, so a charger that radiates full power from every
antenna can still deliver zero power at a chosen point.
"""

from __future__ import annotations

import cmath
import math
from typing import Iterable, Sequence

from repro.utils.geometry import Point
from repro.utils.validation import check_non_negative

__all__ = [
    "coherent_power",
    "field_phasor",
    "incoherent_power",
    "phasor",
    "superpose",
]


def phasor(amplitude: float, phase: float) -> complex:
    """A phasor with the given amplitude (>= 0) and phase in radians."""
    amplitude = check_non_negative("amplitude", amplitude)
    return amplitude * cmath.exp(1j * phase)


def superpose(phasors: Iterable[complex]) -> complex:
    """Coherent superposition: the phasor sum of the inputs."""
    total = 0j
    for p in phasors:
        total += p
    return total


def coherent_power(phasors: Iterable[complex]) -> float:
    """RF power of the coherent superposition of the inputs, in watts."""
    return abs(superpose(phasors)) ** 2


def incoherent_power(phasors: Iterable[complex]) -> float:
    """Total RF power if the inputs were mutually incoherent, in watts.

    This is the power a *linear-superposition* intuition would predict for
    a multi-antenna charger, and the quantity the paper's Section II
    experiments contrast against the true coherent power.
    """
    return sum(abs(p) ** 2 for p in phasors)


def field_phasor(
    amplitude_at_receiver: float,
    source: Point,
    receiver: Point,
    wavelength: float,
    emitted_phase: float = 0.0,
) -> complex:
    """Phasor of a wave arriving at ``receiver`` from ``source``.

    Parameters
    ----------
    amplitude_at_receiver:
        Field amplitude *after* path loss (i.e. the propagation model has
        already been applied), normalised so its square is RF power.
    source, receiver:
        Positions in metres.
    wavelength:
        Carrier wavelength in metres.
    emitted_phase:
        Phase of the wave as it leaves the source, radians.

    The arriving phase is the emitted phase minus ``2 pi d / lambda``.
    """
    amplitude_at_receiver = check_non_negative(
        "amplitude_at_receiver", amplitude_at_receiver
    )
    if wavelength <= 0.0:
        raise ValueError(f"wavelength must be > 0, got {wavelength!r}")
    d = source.distance_to(receiver)
    path_phase = -2.0 * math.pi * d / wavelength
    return phasor(amplitude_at_receiver, emitted_phase + path_phase)


def phase_difference(a: complex, b: complex) -> float:
    """Phase of ``a`` relative to ``b``, wrapped to (-pi, pi]."""
    if a == 0 or b == 0:
        raise ValueError("phase of a zero phasor is undefined")
    diff = cmath.phase(a) - cmath.phase(b)
    while diff <= -math.pi:
        diff += 2.0 * math.pi
    while diff > math.pi:
        diff -= 2.0 * math.pi
    return diff


def normalized_phasors(amplitudes: Sequence[float], phases: Sequence[float]) -> list[complex]:
    """Build a phasor list from parallel amplitude and phase sequences."""
    if len(amplitudes) != len(phases):
        raise ValueError(
            f"amplitudes and phases must have equal length, "
            f"got {len(amplitudes)} and {len(phases)}"
        )
    return [phasor(a, p) for a, p in zip(amplitudes, phases)]
