"""The mobile charger's multi-antenna front end with phase control.

A charging spoofing attacker drives the same hardware a genuine charger
uses — an array of K coherent transmit antennas — but chooses per-antenna
emission phases adversarially:

* **Beamforming** (genuine charging): each antenna pre-compensates its path
  phase so all waves arrive *in phase* at the victim's rectenna, delivering
  the coherent-gain maximum (K^2 scaling of field power for equal
  amplitudes).
* **Spoofing** (the attack): phases are chosen so the waves arrive in a
  configuration whose phasor sum is (near) zero at the rectenna — a
  destructive null.  Each antenna still radiates full power, the RF field
  around the victim is strong (the victim's *charging-presence pilot
  detector*, a separate antenna a fraction of a wavelength away, still sees
  plenty of power), but the harvested DC power is zero.

The null-phase solver is exact whenever a null is geometrically feasible
(no amplitude exceeds the sum of the others — the polygon inequality) and
otherwise converges to the global minimum residual ``max(a) - sum(others)``.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.em.propagation import FriisModel
from repro.em.rectenna import Rectenna
from repro.utils.geometry import Point
from repro.utils.validation import (
    check_non_negative,
    check_non_negative_array,
    check_positive,
    require_float64,
)

__all__ = [
    "AntennaElement",
    "ChargerArray",
    "solve_null_phases",
    "solve_null_phases_batch",
]

PhaseMode = Literal["beamform", "spoof"]


def minimum_null_residual(amplitudes: Sequence[float]) -> float:
    """Smallest achievable ``|sum of phasors|`` for the given amplitudes.

    By the polygon inequality a zero sum is achievable iff no amplitude
    exceeds the sum of the others; otherwise the best possible residual is
    ``max(a) - sum(others)``.
    """
    amps = [check_non_negative(f"amplitudes[{i}]", a) for i, a in enumerate(amplitudes)]
    if not amps:
        return 0.0
    largest = max(amps)
    return max(0.0, 2.0 * largest - sum(amps))


def _descend(
    amps: np.ndarray, phases: np.ndarray, tol: float, max_iterations: int
) -> tuple[np.ndarray, np.ndarray]:
    """Cyclic coordinate descent on ``|sum_i a_i exp(j theta_i)|``, batched.

    Operates on ``(m, k)`` ndarrays: ``m`` independent phasor sets
    descend in lockstep, sweeping elements left to right exactly like
    the historical scalar loop.  The optimal phase for one element,
    holding the rest fixed, points exactly opposite the partial sum of
    the others; each update can only shrink a row's residual.  A row
    drops out of the active set once its residual is below ``tol`` or a
    full sweep fails to improve it meaningfully.  Returns the polished
    phases ``(m, k)`` and the final residuals ``(m,)``.
    """
    phases = np.array(phases, dtype=float)
    phasors = amps * np.exp(1j * phases)
    total = phasors.sum(axis=1)
    active = np.abs(total) > tol
    for _ in range(max_iterations):
        if not active.any():
            break
        before = np.abs(total)
        for i in range(amps.shape[1]):
            others = total - phasors[:, i]
            # Zero amplitudes never move; a zero partial sum means any
            # phase is equivalent, so those rows are left as they are.
            updatable = active & (amps[:, i] > 0.0) & (np.abs(others) > 0.0)
            if not updatable.any():
                continue
            new_phase = np.angle(-others)
            new_phasor = amps[:, i] * np.exp(1j * new_phase)
            phases[updatable, i] = new_phase[updatable]
            phasors[updatable, i] = new_phasor[updatable]
            total = np.where(updatable, others + new_phasor, total)
        resid = np.abs(total)
        active &= (resid > tol) & (resid <= before - tol * 0.5)
    return phases, np.abs(total)


def _clamped_acos(value: float) -> float:
    """acos with the argument clamped into [-1, 1] (float-dust safety)."""
    return math.acos(min(1.0, max(-1.0, value)))


def solve_null_phases(
    amplitudes: Sequence[float],
    tol: float = 1e-12,
    max_iterations: int = 200,
) -> list[float]:
    """Phases making a set of fixed-amplitude phasors sum to (near) zero.

    Exact analytic construction.  Let ``A`` be the largest amplitude and
    greedily split the remaining amplitudes into two groups ``B`` and
    ``C`` of near-equal sums (descending order, always into the lighter
    group; the classic bound gives ``|B - C| <= second-largest <= A``).
    Whenever the null is feasible — ``A <= B + C``, the polygon
    inequality — the three super-vectors ``(A, B, C)`` satisfy the
    triangle inequality, so the triangle closes: place ``A`` at angle 0
    and the two groups at the law-of-cosines angles on either side of
    ``pi``.  Members of a group share its angle.  When the null is
    infeasible the same formulas degenerate (the acos arguments clamp)
    into the collinear split achieving the unavoidable minimum
    ``A - (B + C)``.

    A single cyclic-coordinate-descent polish pass then scrubs floating-
    point dust; it can only reduce the residual.

    Returns phases in radians, one per amplitude.  Amplitudes of zero
    keep phase 0.
    """
    amps = [check_non_negative(f"amplitudes[{i}]", a) for i, a in enumerate(amplitudes)]
    n = len(amps)
    if n == 0:
        return []
    if n == 1:
        return [0.0]

    order = sorted(range(n), key=lambda i: -amps[i])
    dominant = order[0]
    if amps[dominant] <= 0.0:
        return [0.0] * n
    # The optimal phases are scale-invariant; normalising by the largest
    # amplitude keeps the squared terms below well clear of float
    # underflow for subnormal inputs.
    scale = amps[dominant]
    unit = [a / scale for a in amps]
    a_mag = 1.0

    # Greedy balanced partition of the rest into groups B and C.
    group_of: dict[int, int] = {}
    sums = [0.0, 0.0]
    for idx in order[1:]:
        lighter = 0 if sums[0] <= sums[1] else 1
        group_of[idx] = lighter
        sums[lighter] += unit[idx]
    b_mag, c_mag = sums

    # Close the triangle: A e^{i0} + B e^{i beta} + C e^{i gamma} = 0.
    # Denominators can underflow to zero for subnormal amplitudes; the
    # collinear split is the right degenerate answer there too.
    denom_b = 2.0 * a_mag * b_mag
    denom_c = 2.0 * a_mag * c_mag
    # reprolint: disable-next=RL-P001 (exact-zero guards against division by zero)
    if b_mag <= 0.0 or c_mag <= 0.0 or denom_b == 0.0 or denom_c == 0.0:
        beta = gamma = math.pi
    else:
        theta_b = _clamped_acos((a_mag**2 + b_mag**2 - c_mag**2) / denom_b)
        theta_c = _clamped_acos((a_mag**2 + c_mag**2 - b_mag**2) / denom_c)
        beta = math.pi - theta_b
        gamma = math.pi + theta_c

    phases = [0.0] * n
    for i in range(n):
        if i == dominant:
            phases[i] = 0.0
        elif amps[i] == 0.0:  # reprolint: disable=RL-P001 (exact-zero sentinel)
            phases[i] = 0.0
        else:
            phases[i] = beta if group_of[i] == 0 else gamma

    polished, _residuals = _descend(
        np.asarray([amps], dtype=float),
        np.asarray([phases], dtype=float),
        tol,
        max_iterations,
    )
    return [float(p) for p in polished[0]]


def solve_null_phases_batch(
    amplitudes: np.ndarray | Sequence[Sequence[float]],
    tol: float = 1e-12,
    max_iterations: int = 200,
) -> np.ndarray:
    """Vectorized :func:`solve_null_phases` over many amplitude rows.

    Same analytic triangle construction and descent polish, batched: row
    ``j`` of the returned ``(m, k)`` phase array nulls ``amplitudes[j]``.
    The greedy partition is sequential over the ``k`` elements (its
    greedy state is inherently serial) but vectorized across the ``m``
    rows, and the polish runs all rows through the ndarray
    :func:`_descend` in lockstep.
    """
    amps = check_non_negative_array("amplitudes", amplitudes)
    if amps.ndim != 2:
        raise ValueError(
            f"amplitudes must be 2-D (rows of element amplitudes), "
            f"got shape {amps.shape}"
        )
    m, n = amps.shape
    phases = np.zeros((m, n))
    if n <= 1 or m == 0:
        return phases

    # Explicit int64 rather than the platform-int arange default, so the
    # row-index math stays overflow-free on 32-bit builds at any m.
    rows = np.arange(m, dtype=np.int64)
    # Descending amplitude; 'stable' keeps ties in index order, matching
    # the scalar solver's sort.
    order = np.argsort(-amps, axis=1, kind="stable")
    dominant = order[:, 0]
    scale = amps[rows, dominant]
    solvable = scale > 0.0
    unit = np.divide(
        amps, scale[:, None], out=np.zeros_like(amps), where=solvable[:, None]
    )

    # Greedy balanced partition of the rest into groups B and C.
    group = np.zeros((m, n), dtype=np.int64)
    sums = np.zeros((m, 2))
    for j in range(1, n):
        idx = order[:, j]
        lighter = (sums[:, 0] > sums[:, 1]).astype(np.int64)
        group[rows, idx] = lighter
        sums[rows, lighter] += unit[rows, idx]
    b_mag = sums[:, 0]
    c_mag = sums[:, 1]

    # Close the triangle per row (a_mag normalised to 1); degenerate rows
    # fall back to the collinear split, exactly like the scalar solver.
    denom_b = 2.0 * b_mag
    denom_c = 2.0 * c_mag
    # reprolint: disable-next=RL-P001 (exact-zero guards against division by zero)
    degenerate = (b_mag <= 0.0) | (c_mag <= 0.0) | (denom_b == 0.0) | (denom_c == 0.0)
    safe_b = np.where(degenerate, 1.0, denom_b)
    safe_c = np.where(degenerate, 1.0, denom_c)
    cos_b = np.clip((1.0 + b_mag**2 - c_mag**2) / safe_b, -1.0, 1.0)
    cos_c = np.clip((1.0 + c_mag**2 - b_mag**2) / safe_c, -1.0, 1.0)
    beta = np.where(degenerate, math.pi, math.pi - np.arccos(cos_b))
    gamma = np.where(degenerate, math.pi, math.pi + np.arccos(cos_c))

    phases = np.where(group == 0, beta[:, None], gamma[:, None])
    phases[rows, dominant] = 0.0
    # reprolint: disable-next=RL-P001 (exact-zero sentinel)
    phases[amps == 0.0] = 0.0

    polished, _residuals = _descend(amps, phases, tol, max_iterations)
    return polished


@dataclass(frozen=True)
class AntennaElement:
    """One transmit antenna of the charger array.

    Parameters
    ----------
    offset:
        Position of the element relative to the charger's reference point,
        in metres.
    tx_power:
        Radiated power of this element, watts.
    """

    offset: Point
    tx_power: float

    def __post_init__(self) -> None:
        check_positive("tx_power", self.tx_power)


def _uniform_linear_offsets(count: int, spacing: float) -> list[Point]:
    """Element offsets of a uniform linear array centred on the origin."""
    start = -(count - 1) * spacing / 2.0
    return [Point(start + i * spacing, 0.0) for i in range(count)]


@dataclass(frozen=True)
class ChargerArray:
    """A coherent multi-antenna wireless charger.

    Parameters
    ----------
    elements:
        The transmit elements.  At least one is required; spoofing needs at
        least two.
    propagation:
        Far-field propagation model supplying per-path amplitude and phase.
    pilot_offset:
        Displacement, in metres, of the victim's charging-presence pilot
        antenna from its energy-harvesting rectenna.  The spoof null is
        steered at the rectenna; at ``pilot_offset`` away the path lengths
        differ by a fraction of a wavelength, so the null does not hold and
        the pilot detector still reads a strong field.  Default is a
        quarter wavelength at 915 MHz (~8.2 cm), the scale of a separate
        antenna on the same sensor board.
    """

    elements: tuple[AntennaElement, ...]
    propagation: FriisModel = field(default_factory=FriisModel)
    pilot_offset: float = 0.082

    def __post_init__(self) -> None:
        if not self.elements:
            raise ValueError("ChargerArray requires at least one element")
        check_positive("pilot_offset", self.pilot_offset)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def uniform_linear(
        cls,
        count: int,
        spacing: float = 0.164,
        tx_power_per_element: float = 1.0,
        propagation: FriisModel | None = None,
        pilot_offset: float = 0.082,
    ) -> "ChargerArray":
        """A uniform linear array of ``count`` equal-power elements.

        The default spacing is half a wavelength at 915 MHz.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        check_positive("spacing", spacing)
        elements = tuple(
            AntennaElement(offset, tx_power_per_element)
            for offset in _uniform_linear_offsets(count, spacing)
        )
        return cls(
            elements=elements,
            propagation=propagation or FriisModel(),
            pilot_offset=pilot_offset,
        )

    # ------------------------------------------------------------------
    # Geometry and per-path quantities
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of transmit elements."""
        return len(self.elements)

    @property
    def total_tx_power(self) -> float:
        """Total radiated power of the array, watts."""
        return sum(e.tx_power for e in self.elements)

    def element_positions(self, charger_position: Point) -> list[Point]:
        """Absolute element positions when the charger sits at the given point."""
        return [
            charger_position.translated(e.offset.x, e.offset.y) for e in self.elements
        ]

    def _path_quantities(
        self, charger_position: Point, observation: Point
    ) -> tuple[list[float], list[float]]:
        """Per-element (amplitude, path phase) at the observation point."""
        amplitudes: list[float] = []
        path_phases: list[float] = []
        for element, pos in zip(self.elements, self.element_positions(charger_position)):
            d = pos.distance_to(observation)
            amplitudes.append(self.propagation.field_amplitude(element.tx_power, d))
            path_phases.append(self.propagation.path_phase(d))
        return amplitudes, path_phases

    def _path_quantities_many(
        self, charger_position: Point, observations: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-element (amplitudes, path phases) at many observation points.

        ``observations`` is an ``(m, 2)`` array of xy coordinates; both
        returned arrays are ``(m, k)`` for a ``k``-element array.
        """
        obs = np.asarray(observations, dtype=float)
        if obs.ndim != 2 or obs.shape[1] != 2:
            raise ValueError(
                f"observations must have shape (m, 2), got {obs.shape}"
            )
        elem_xy = np.array(
            [(p.x, p.y) for p in self.element_positions(charger_position)],
            dtype=float,
        )
        d = np.hypot(
            obs[:, None, 0] - elem_xy[None, :, 0],
            obs[:, None, 1] - elem_xy[None, :, 1],
        )
        amplitudes = np.empty_like(d)
        for j, element in enumerate(self.elements):
            amplitudes[:, j] = self.propagation.field_amplitude(
                element.tx_power, d[:, j]
            )
        path_phases = self.propagation.path_phase(d)
        return amplitudes, path_phases

    # ------------------------------------------------------------------
    # Fields and powers
    # ------------------------------------------------------------------
    def field_at(
        self,
        observation: Point,
        charger_position: Point,
        emitted_phases: Sequence[float],
    ) -> complex:
        """Coherent field phasor at ``observation`` for the given emission phases."""
        if len(emitted_phases) != self.size:
            raise ValueError(
                f"expected {self.size} phases, got {len(emitted_phases)}"
            )
        amplitudes, path_phases = self._path_quantities(charger_position, observation)
        total = 0j
        for amp, path, emitted in zip(amplitudes, path_phases, emitted_phases):
            total += amp * cmath.exp(1j * (emitted + path))
        return total

    def rf_power_at(
        self,
        observation: Point,
        charger_position: Point,
        emitted_phases: Sequence[float],
    ) -> float:
        """Coherent RF power (watts) at the observation point."""
        return abs(self.field_at(observation, charger_position, emitted_phases)) ** 2

    def fields_at_many(
        self,
        observations: np.ndarray,
        charger_position: Point,
        emitted_phases: np.ndarray | Sequence[float],
    ) -> np.ndarray:
        """Coherent field phasors at many observation points at once.

        The batched counterpart of :meth:`field_at`.  ``observations`` is
        an ``(m, 2)`` array of xy coordinates; ``emitted_phases`` is
        either one ``(k,)`` phase vector shared by every observation or
        an ``(m, k)`` array of per-observation vectors.  Returns the
        ``(m,)`` complex field phasors.
        """
        observations = require_float64(observations, "observations")
        phases = require_float64(emitted_phases, "emitted_phases")
        if phases.ndim not in (1, 2) or phases.shape[-1] != self.size:
            raise ValueError(
                f"expected {self.size} phases per observation, "
                f"got shape {phases.shape}"
            )
        amplitudes, path_phases = self._path_quantities_many(
            charger_position, observations
        )
        if phases.ndim == 2 and phases.shape[0] != amplitudes.shape[0]:
            raise ValueError(
                f"got {phases.shape[0]} phase vectors for "
                f"{amplitudes.shape[0]} observations"
            )
        return (amplitudes * np.exp(1j * (phases + path_phases))).sum(axis=1)

    def rf_powers_at_many(
        self,
        observations: np.ndarray,
        charger_position: Point,
        emitted_phases: np.ndarray | Sequence[float],
    ) -> np.ndarray:
        """Coherent RF powers (watts) at many observation points at once."""
        fields = self.fields_at_many(observations, charger_position, emitted_phases)
        return np.abs(fields) ** 2

    # ------------------------------------------------------------------
    # Phase solvers
    # ------------------------------------------------------------------
    def beamform_phases(self, charger_position: Point, target: Point) -> list[float]:
        """Emission phases aligning every wave in phase at ``target``."""
        _, path_phases = self._path_quantities(charger_position, target)
        return [-p for p in path_phases]

    def spoof_phases(self, charger_position: Point, target: Point) -> list[float]:
        """Emission phases steering a destructive null onto ``target``.

        The arriving phases must null out, so the solver works on the
        amplitudes alone and the path phases are then compensated exactly
        as in beamforming.
        """
        if self.size < 2:
            raise ValueError("spoofing requires an array of at least two elements")
        amplitudes, path_phases = self._path_quantities(charger_position, target)
        arrival_phases = solve_null_phases(amplitudes)
        return [a - p for a, p in zip(arrival_phases, path_phases)]

    def phases_for(
        self, mode: PhaseMode, charger_position: Point, target: Point
    ) -> list[float]:
        """Emission phases for the requested mode at the given geometry."""
        if mode == "beamform":
            return self.beamform_phases(charger_position, target)
        if mode == "spoof":
            return self.spoof_phases(charger_position, target)
        raise ValueError(f"unknown phase mode: {mode!r}")

    def beamform_phases_many(
        self, charger_position: Point, targets: np.ndarray
    ) -> np.ndarray:
        """Beamforming phases for many targets at once, ``(m, k)``."""
        targets = require_float64(targets, "targets")
        _, path_phases = self._path_quantities_many(charger_position, targets)
        return -path_phases

    def spoof_phases_many(
        self, charger_position: Point, targets: np.ndarray
    ) -> np.ndarray:
        """Null-steering phases for many targets at once, ``(m, k)``.

        One :func:`solve_null_phases_batch` call solves every target's
        arrival phases; path compensation is then a single subtraction.
        """
        if self.size < 2:
            raise ValueError("spoofing requires an array of at least two elements")
        targets = require_float64(targets, "targets")
        amplitudes, path_phases = self._path_quantities_many(
            charger_position, targets
        )
        arrival_phases = solve_null_phases_batch(amplitudes)
        return arrival_phases - path_phases

    def phases_for_many(
        self, mode: PhaseMode, charger_position: Point, targets: np.ndarray
    ) -> np.ndarray:
        """Per-target emission phase vectors for the requested mode."""
        if mode == "beamform":
            return self.beamform_phases_many(charger_position, targets)
        if mode == "spoof":
            return self.spoof_phases_many(charger_position, targets)
        raise ValueError(f"unknown phase mode: {mode!r}")

    # ------------------------------------------------------------------
    # Victim-side observables
    # ------------------------------------------------------------------
    def pilot_point(self, target: Point, charger_position: Point) -> Point:
        """Location of the victim's pilot (charging-presence) antenna.

        Placed ``pilot_offset`` metres from the rectenna, perpendicular to
        the charger-victim axis so the displacement changes the per-element
        path lengths asymmetrically and the null does not carry over.
        """
        dx = target.x - charger_position.x
        dy = target.y - charger_position.y
        norm = math.hypot(dx, dy)
        if norm == 0.0:  # reprolint: disable=RL-P001 (exact-zero sentinel)
            return target.translated(self.pilot_offset, 0.0)
        # Unit vector perpendicular to the line of sight.
        ux, uy = -dy / norm, dx / norm
        return target.translated(ux * self.pilot_offset, uy * self.pilot_offset)

    def delivered_power(
        self,
        mode: PhaseMode,
        charger_position: Point,
        target: Point,
        rectenna: Rectenna,
    ) -> float:
        """Harvested DC power (watts) at the victim's rectenna."""
        phases = self.phases_for(mode, charger_position, target)
        return rectenna.harvest(self.rf_power_at(target, charger_position, phases))

    def pilot_power(
        self,
        mode: PhaseMode,
        charger_position: Point,
        target: Point,
    ) -> float:
        """RF power (watts) seen by the victim's pilot detector."""
        phases = self.phases_for(mode, charger_position, target)
        pilot = self.pilot_point(target, charger_position)
        return self.rf_power_at(pilot, charger_position, phases)

    def delivered_powers_many(
        self,
        mode: PhaseMode,
        charger_position: Point,
        targets: np.ndarray,
        rectenna: Rectenna,
    ) -> np.ndarray:
        """Harvested DC powers (watts) at many victims' rectennas at once."""
        phases = self.phases_for_many(mode, charger_position, targets)
        rf = self.rf_powers_at_many(targets, charger_position, phases)
        return rectenna.harvest(rf)
