"""Electromagnetic substrate for wireless power transfer.

This subpackage models the physical layer the Charging Spoofing Attack
exploits:

* :mod:`repro.em.propagation` — path loss and path phase for RF power
  transfer (free-space Friis and the empirical Powercast-style model used
  throughout the WRSN charging literature).
* :mod:`repro.em.waves` — complex-phasor representation of coherent waves
  and their superposition.
* :mod:`repro.em.rectenna` — the nonlinear rectifying antenna that converts
  incident RF power to DC; the *nonlinear superposition effect* (harvest of
  a sum of fields differs from the sum of harvests) lives here.
* :mod:`repro.em.charger_array` — the mobile charger's multi-antenna front
  end with phase control: constructive beamforming for genuine charging and
  destructive null steering for spoofing.
* :mod:`repro.em.superposition` — the paper's Section II experiment as
  code: sweep relative phase, measure harvested power, fit the cancellation
  model.

The hot-path kernels are batched: :meth:`ChargerArray.fields_at_many`
(and its companions ``rf_powers_at_many``, ``spoof_phases_many``,
``beamform_phases_many``, ``delivered_powers_many``) take an ``(m, 2)``
ndarray of observation points and return per-point phasors/powers from a
single vectorized field solve, with :func:`solve_null_phases_batch`
nulling every target's arrival phases at once.  ``Rectenna.harvest`` /
``efficiency``, the :class:`FriisModel` path quantities, and
:func:`two_wave_rf_power` all accept ndarrays elementwise, so sweeps and
attack/detection scans never fall back to per-point Python loops.
"""

from repro.em.charger_array import (
    AntennaElement,
    ChargerArray,
    solve_null_phases,
    solve_null_phases_batch,
)
from repro.em.propagation import (
    POWERCAST_FREQUENCY_HZ,
    EmpiricalChargingModel,
    FriisModel,
    wavelength,
)
from repro.em.rectenna import Rectenna
from repro.em.superposition import (
    SuperpositionFit,
    cancellation_depth_db,
    fit_two_wave_model,
    superposition_sweep,
    two_wave_rf_power,
)
from repro.em.waves import (
    coherent_power,
    field_phasor,
    incoherent_power,
    superpose,
)

__all__ = [
    "AntennaElement",
    "ChargerArray",
    "EmpiricalChargingModel",
    "FriisModel",
    "POWERCAST_FREQUENCY_HZ",
    "Rectenna",
    "SuperpositionFit",
    "cancellation_depth_db",
    "coherent_power",
    "field_phasor",
    "fit_two_wave_model",
    "incoherent_power",
    "solve_null_phases",
    "solve_null_phases_batch",
    "superpose",
    "superposition_sweep",
    "two_wave_rf_power",
    "wavelength",
]
