"""The WRSN simulation orchestrator.

Drives the network, one or more mobile chargers (each with its own
mission controller — honest or malicious) and the base-station detectors
through a shared discrete-event loop.  Node energies are piecewise
linear, so requests and deaths are *predicted* events revalidated on pop
(see :mod:`repro.sim.engine`); the chargers' travel/wait/serve cycles
and the detectors' audits supply the remaining events.

The loop maintains four invariants:

1. Every node's local clock equals the simulation clock whenever a
   handler runs (``_advance`` walks all nodes forward first).
2. A charger's clock equals the simulation clock whenever its controller
   is consulted.
3. The trace is time-ordered and contains every observable occurrence,
   so metrics and detectors never need private channels into the loop.
4. A pending request is *claimed* by at most one charger at a time, so
   fleet members never race to the same node.

Single-charger deployments (the paper's setting) use the plain
``(network, charger, controller)`` constructor; fleets add
``extra_units`` — each an independent ``(charger, controller)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.detection.monitors import Detector
from repro.mc.charger import ChargeMode, MobileCharger
from repro.network.network import Network
from repro.network.requests import ChargingRequest, predict_request
from repro.sim.actions import (
    CommandSpoofAction,
    IdleAction,
    MissionController,
    RechargeAction,
    ServeAction,
)
from repro.sim.arrivals import ArrivalModel
from repro.sim.engine import EventQueue
from repro.sim.events import (
    DepotRecharged,
    DetectionRaised,
    NodeDied,
    RequestIssued,
    RoutingRecomputed,
    ServiceAborted,
    ServiceCompleted,
    TraceEvent,
)
from repro.sim.hooks import SimulationHook
from repro.sim.trace import SimulationTrace
from repro.utils.validation import check_positive

__all__ = ["SimulationResult", "WrsnSimulation"]

_EPS = 1e-6


@dataclass
class SimulationResult:
    """Everything a finished run leaves behind.

    ``charger`` is the first (or only) unit's charger, preserving the
    single-charger API; ``chargers`` lists the whole fleet.
    """

    trace: SimulationTrace
    network: Network
    charger: MobileCharger
    controller_name: str
    horizon_s: float
    ended_at: float
    initial_key_ids: frozenset[int]
    detections: list[DetectionRaised] = field(default_factory=list)
    charger_stranded: bool = False
    chargers: list[MobileCharger] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.chargers:
            self.chargers = [self.charger]

    @property
    def detected(self) -> bool:
        """Whether any detector fired during the run."""
        return bool(self.detections)

    def exhausted_key_ids(self) -> frozenset[int]:
        """Initially annotated key nodes that are dead at the end."""
        return frozenset(
            node_id
            for node_id in self.initial_key_ids
            if not self.network.nodes[node_id].alive
        )

    def exhausted_key_ratio(self) -> float:
        """Fraction of the initial key nodes exhausted (0 if none existed)."""
        if not self.initial_key_ids:
            return 0.0
        return len(self.exhausted_key_ids()) / len(self.initial_key_ids)


class WrsnSimulation:
    """One network, one or more chargers, a suite of detectors.

    Parameters
    ----------
    network, charger, controller:
        The substrate entities (mutated in place by the run); the first
        charger/controller pair.
    detectors:
        Base-station detectors observing the run.
    horizon_s:
        Simulated duration.  Default 45 days — long enough for multi-
        cycle charging campaigns at the default energy scales.
    stop_on_detection:
        Halt the run at the first alarm (detection-latency experiments);
        by default the run continues so damage and detection can both be
        measured.
    extra_units:
        Additional ``(charger, controller)`` pairs forming a fleet.
        Every controller receives its charger via its ``charger``
        attribute before ``on_start``.
    hooks:
        Passive :class:`~repro.sim.hooks.SimulationHook` observers,
        notified of every trace record as it is emitted (before the
        detectors see it) plus run start/end.  The digital-twin feed in
        :mod:`repro.twin` is the canonical hook.
    arrival_model:
        Optional :class:`~repro.sim.arrivals.ArrivalModel` adding
        stochastic lag between a node's threshold crossing and its
        request reaching the base station.  ``None`` (default) keeps the
        seed's instantaneous arrivals bit-for-bit.
    """

    def __init__(
        self,
        network: Network,
        charger: MobileCharger,
        controller: MissionController,
        detectors: Sequence[Detector] = (),
        horizon_s: float = 45.0 * 86_400.0,
        stop_on_detection: bool = False,
        extra_units: Sequence[tuple[MobileCharger, MissionController]] = (),
        hooks: Sequence[SimulationHook] = (),
        arrival_model: ArrivalModel | None = None,
    ) -> None:
        self.network = network
        self.detectors = list(detectors)
        self.horizon_s = check_positive("horizon_s", horizon_s)
        self.stop_on_detection = stop_on_detection
        self.hooks = list(hooks)
        self.arrival_model = arrival_model

        self._units: list[tuple[MobileCharger, MissionController]] = [
            (charger, controller)
        ] + list(extra_units)
        seen_chargers = set()
        for mc, ctrl in self._units:
            if id(mc) in seen_chargers:
                raise ValueError("each unit needs its own MobileCharger")
            seen_chargers.add(id(mc))
            ctrl.charger = mc  # controllers command their own vehicle

        self.now = 0.0
        self.trace = SimulationTrace()
        self.detections: list[DetectionRaised] = []
        self._queue = EventQueue()
        self._pending: dict[int, ChargingRequest] = {}
        self._claimed: dict[int, int] = {}  # node id -> claiming unit
        self._request_due: dict[int, float] = {}  # delayed-arrival due times
        self._spoofed: set[int] = set()
        n = len(self._units)
        self._mc_idle = [True] * n
        self._mc_busy = [False] * n
        self._stranded_units: set[int] = set()
        self._halted = False
        self._ran = False

    # ------------------------------------------------------------------
    # Unit accessors (single-charger API preserved)
    # ------------------------------------------------------------------
    @property
    def charger(self) -> MobileCharger:
        """The first (or only) charger."""
        return self._units[0][0]

    @property
    def controller(self) -> MissionController:
        """The first (or only) controller."""
        return self._units[0][1]

    @property
    def chargers(self) -> list[MobileCharger]:
        """Every charger in the fleet."""
        return [mc for mc, _ctrl in self._units]

    @property
    def unit_count(self) -> int:
        """Number of (charger, controller) units."""
        return len(self._units)

    # ------------------------------------------------------------------
    # Public state queries (used by controllers and detectors)
    # ------------------------------------------------------------------
    def pending_requests(self) -> list[ChargingRequest]:
        """Outstanding charging requests, oldest first."""
        return sorted(self._pending.values(), key=lambda r: (r.time, r.node_id))

    def unclaimed_requests(self) -> list[ChargingRequest]:
        """Outstanding requests no charger is currently heading for."""
        return [
            r for r in self.pending_requests() if r.node_id not in self._claimed
        ]

    def spoofed_ids(self) -> frozenset[int]:
        """Nodes that have received a spoofed or pretend service."""
        return frozenset(self._spoofed)

    # ------------------------------------------------------------------
    # Node event scheduling
    # ------------------------------------------------------------------
    def _reschedule_node(self, node_id: int) -> None:
        node = self.network.nodes[node_id]
        key = ("node", node_id)
        if not node.alive:
            # Dead nodes never reschedule: purge the version entry
            # outright (any outstanding predictions go stale) instead of
            # leaving it to grow the version table over long horizons.
            self._queue.forget(key)
            self._request_due.pop(node_id, None)
            return
        self._queue.invalidate(key)
        if (
            node_id not in self._pending
            and self.network.routing_tree.is_connected(node_id)
        ):
            due = self._request_due.get(node_id)
            if due is not None:
                # A crossing already happened and its reporting delay is
                # running; re-aim at the stored due time (self-healing
                # under version-stamp invalidation).
                self._queue.schedule(max(due, self.now), "request", node_id, key)
            else:
                request_time = node.predicted_request_time()
                if request_time != float("inf"):
                    self._queue.schedule(
                        max(request_time, self.now), "request", node_id, key
                    )
        death_time = node.predicted_death_time()
        if death_time != float("inf"):
            self._queue.schedule(max(death_time, self.now), "death", node_id, key)

    def _reschedule_all_nodes(self) -> None:
        for node_id in self.network.nodes:
            self._reschedule_node(node_id)

    # ------------------------------------------------------------------
    # Core transitions
    # ------------------------------------------------------------------
    def _advance(self, time: float) -> None:
        died = self.network.advance_to(time)
        self.now = max(self.now, time)
        for node_id in died:
            self._process_death(node_id)

    def _notify_controllers(self, event) -> None:
        for _mc, ctrl in self._units:
            ctrl.on_event(event, self)

    def _emit(self, event: TraceEvent) -> None:
        """Record a trace event and stream it to every hook.

        Hooks run immediately after the record is appended — before any
        detector observes the event — so a hook-fed detector (the twin)
        always has the observation in hand when it is asked to judge it.
        """
        self.trace.record(event)
        for hook in self.hooks:
            hook.on_trace_event(event, self)

    def _process_death(self, node_id: int) -> None:
        node = self.network.nodes[node_id]
        self._pending.pop(node_id, None)
        self._claimed.pop(node_id, None)
        self._request_due.pop(node_id, None)
        self.network.recompute_consumption()
        stranded = len(self.network.stranded_ids())
        event = NodeDied(
            time=self.now,
            node_id=node_id,
            is_key=node.is_key,
            was_spoofed=node_id in self._spoofed,
            stranded_count=stranded,
        )
        self._emit(event)
        self._emit(
            RoutingRecomputed(
                time=self.now,
                alive_count=len(self.network.alive_ids()),
                stranded_count=stranded,
            )
        )
        for detector in self.detectors:
            self._maybe_detect(detector.observe_death(event, self))
        self._notify_controllers(event)
        self._reschedule_all_nodes()
        self._wake_all_chargers()

    def _maybe_detect(self, detection: DetectionRaised | None) -> None:
        if detection is None:
            return
        self._emit(detection)
        self.detections.append(detection)
        if self.stop_on_detection:
            self._halted = True

    def _wake_unit(self, unit: int) -> None:
        """Prompt one idle charger to reconsider (new request, death, ...).

        A *busy* charger (travelling, serving, recharging) is never
        interrupted; it reconsiders when its current activity completes.
        Wake events are versioned per unit so a newer wake supersedes any
        earlier scheduled one.
        """
        if (
            self._mc_idle[unit]
            and not self._mc_busy[unit]
            and unit not in self._stranded_units
        ):
            key = ("mc", unit)
            self._queue.invalidate(key)
            self._queue.schedule(self.now, "mc_free", unit, version_key=key)

    def _wake_all_chargers(self) -> None:
        for unit in range(len(self._units)):
            self._wake_unit(unit)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handle_request(self, node_id: int) -> None:
        node = self.network.nodes[node_id]
        if not node.alive or node_id in self._pending:
            return
        if node.believed_energy_j > node.request_threshold_j + _EPS:
            # Prediction drifted (or a charge arrived while a reporting
            # delay was running): the crossing is moot — forget any
            # pending due time and re-aim at the next real crossing.
            self._request_due.pop(node_id, None)
            self._reschedule_node(node_id)
            return
        if self.arrival_model is not None and node_id not in self._request_due:
            delay = self.arrival_model.delay_s(node_id, self.now)
            if delay < 0.0:
                raise ValueError(
                    f"arrival model returned negative delay {delay!r} "
                    f"for node {node_id}"
                )
            if delay > 0.0:
                self._request_due[node_id] = self.now + delay
                self._reschedule_node(node_id)
                return
        due = self._request_due.get(node_id)
        if due is not None and due > self.now + _EPS:
            self._reschedule_node(node_id)  # popped early; re-aim at due
            return
        self._request_due.pop(node_id, None)
        request = predict_request(node)
        if request is None:
            return
        self._pending[node_id] = request
        event = RequestIssued(
            time=self.now,
            node_id=node_id,
            deadline=request.deadline,
            energy_needed_j=request.energy_needed_j,
            is_key=node.is_key,
        )
        self._emit(event)
        for detector in self.detectors:
            self._maybe_detect(detector.observe_request(event, self))
        self._notify_controllers(event)
        self._reschedule_node(node_id)
        self._wake_all_chargers()

    def _handle_mc_free(self, unit: int) -> None:
        if unit in self._stranded_units or self._mc_busy[unit]:
            return
        mc, controller = self._units[unit]
        mc.wait_until(self.now)
        action = controller.next_action(self)
        if action is None:
            self._mc_idle[unit] = True
            return
        try:
            self._execute(unit, action)
        except RuntimeError as exc:
            # The charger ran itself dry mid-plan; it is now a brick in
            # the field.  Record and stop driving it.
            self._emit(ServiceAborted(time=self.now, node_id=-1, reason=str(exc)))
            self._stranded_units.add(unit)

    def _execute(self, unit: int, action) -> None:
        mc, _controller = self._units[unit]
        if isinstance(action, IdleAction):
            # Idling is interruptible: requests and deaths re-wake the
            # charger before `until` via _wake_unit.
            self._mc_idle[unit] = True
            wake = max(action.until, self.now)
            key = ("mc", unit)
            self._queue.invalidate(key)
            self._queue.schedule(wake, "mc_free", unit, version_key=key)
        elif isinstance(action, RechargeAction):
            self._mc_idle[unit] = False
            self._mc_busy[unit] = True
            energy_before = mc.energy_j
            mc.travel_to(mc.depot)
            done = mc.clock + mc.depot_recharge_s
            self._queue.schedule(done, "recharge_done", (unit, energy_before))
        elif isinstance(action, (ServeAction, CommandSpoofAction)):
            self._mc_idle[unit] = False
            self._mc_busy[unit] = True
            self._claimed[action.node_id] = unit
            node = self.network.nodes[action.node_id]
            mc.travel_to(node.position)
            start = max(mc.clock, action.not_before)
            self._queue.schedule(start, "service_start", (unit, action))
        else:
            raise TypeError(f"unknown action: {action!r}")

    def _release_claim(self, unit: int, node_id: int) -> None:
        if self._claimed.get(node_id) == unit:
            del self._claimed[node_id]

    def _handle_service_start(
        self, unit: int, action: ServeAction | CommandSpoofAction
    ) -> None:
        if unit in self._stranded_units:
            return
        mc, controller = self._units[unit]
        node = self.network.nodes[action.node_id]
        mc.wait_until(self.now)
        if not node.alive:
            self._release_claim(unit, action.node_id)
            event = ServiceAborted(
                time=self.now,
                node_id=action.node_id,
                reason="target died before service began",
            )
            self._emit(event)
            controller.on_event(event, self)
            self._mc_busy[unit] = False
            self._queue.schedule(self.now, "mc_free", unit)
            return
        early_stopped = False
        if isinstance(action, CommandSpoofAction):
            # The session begins as a legitimate genuine serve sized to
            # the true deficit; the forged stop command ends it at
            # ``stop_fraction`` of the duty, and the charger logs the
            # *full* session anyway.
            mode = ChargeMode.GENUINE
            deficit = node.battery_capacity_j - node.energy_j
            duty = mc.hardware.service_duration_for(max(deficit, 0.0))
            duration = duty * action.stop_fraction
            claimed_duration = duty
            early_stopped = action.stop_fraction < 1.0
        else:
            mode = action.mode
            claimed_duration = None
            if action.duration_s is not None:
                duration = action.duration_s
            elif action.mode == ChargeMode.GENUINE:
                deficit = node.battery_capacity_j - node.energy_j
                duration = mc.hardware.service_duration_for(max(deficit, 0.0))
            else:
                deficit = node.battery_capacity_j - node.believed_energy_j
                duration = mc.hardware.service_duration_for(max(deficit, 0.0))
        try:
            record = mc.perform_service(
                action.node_id, duration, mode, claimed_duration_s=claimed_duration
            )
        except RuntimeError as exc:
            self._release_claim(unit, action.node_id)
            self._emit(
                ServiceAborted(time=self.now, node_id=action.node_id, reason=str(exc))
            )
            self._stranded_units.add(unit)
            return
        self._queue.schedule(
            record.end_time, "service_end", (unit, record, early_stopped)
        )

    def _handle_service_end(self, unit: int, record, early_stopped: bool = False) -> None:
        node = self.network.nodes[record.node_id]
        node.receive_charge(record.delivered_j, record.believed_j)
        if record.mode in (ChargeMode.SPOOF, ChargeMode.PRETEND) or early_stopped:
            self._spoofed.add(record.node_id)
        self._pending.pop(record.node_id, None)
        self._request_due.pop(record.node_id, None)
        self._release_claim(unit, record.node_id)
        self._reschedule_node(record.node_id)
        event = ServiceCompleted(
            time=self.now,
            node_id=record.node_id,
            start_time=record.start_time,
            mode=record.mode,
            delivered_j=record.delivered_j,
            believed_j=record.believed_j,
            claimed_j=record.claimed_j,
            emission_j=record.emission_j,
            is_key=node.is_key,
            believed_energy_after_j=node.believed_energy_j,
            battery_capacity_j=node.battery_capacity_j,
            charger_index=unit,
            early_stopped=early_stopped,
        )
        self._emit(event)
        for detector in self.detectors:
            self._maybe_detect(detector.observe_service(event, self))
        self._notify_controllers(event)
        self._mc_busy[unit] = False
        self._queue.schedule(self.now, "mc_free", unit)

    def _handle_recharge_done(self, unit: int, energy_before: float) -> None:
        mc, _controller = self._units[unit]
        mc.wait_until(self.now)
        mc.energy_j = mc.battery_capacity_j
        self._emit(
            DepotRecharged(
                time=self.now, energy_before_j=energy_before, charger_index=unit
            )
        )
        self._mc_busy[unit] = False
        self._queue.schedule(self.now, "mc_free", unit)

    def _handle_audit(self, detector: Detector) -> None:
        outcome = detector.perform_audit(self.now, self)
        if outcome.audit is not None:
            self._emit(outcome.audit)
        self._maybe_detect(outcome.detection)
        next_time = detector.next_audit_time(self.now)
        if next_time is not None and next_time <= self.horizon_s:
            self._queue.schedule(next_time, "audit", detector)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation once; a simulation object is single-use."""
        if self._ran:
            raise RuntimeError("a WrsnSimulation can only run once")
        self._ran = True

        for _mc, controller in self._units:
            controller.on_start(self)
        initial_key_ids = frozenset(self.network.key_ids())
        for hook in self.hooks:
            hook.on_run_start(self)
        self._reschedule_all_nodes()
        for detector in self.detectors:
            first = detector.next_audit_time(0.0)
            if first is not None and first <= self.horizon_s:
                self._queue.schedule(first, "audit", detector)
        for unit in range(len(self._units)):
            self._queue.schedule(0.0, "mc_free", unit, version_key=("mc", unit))

        while not self._halted:
            event = self._queue.pop()
            if event is None or event.time > self.horizon_s:
                break
            self._advance(event.time)
            if self._halted:
                break
            if event.kind == "request":
                self._handle_request(event.payload)
            elif event.kind == "death":
                # Deaths are realised inside _advance; a popped death
                # event whose node is somehow still alive means its
                # prediction drifted — re-aim it.
                if self.network.nodes[event.payload].alive:
                    self._reschedule_node(event.payload)
            elif event.kind == "mc_free":
                self._handle_mc_free(event.payload)
            elif event.kind == "service_start":
                self._handle_service_start(*event.payload)
            elif event.kind == "service_end":
                self._handle_service_end(*event.payload)
            elif event.kind == "recharge_done":
                self._handle_recharge_done(*event.payload)
            elif event.kind == "audit":
                self._handle_audit(event.payload)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {event.kind!r}")

        if not self._halted:
            self._advance(self.horizon_s)

        result = SimulationResult(
            trace=self.trace,
            network=self.network,
            charger=self.charger,
            controller_name=getattr(
                self.controller, "name", type(self.controller).__name__
            ),
            horizon_s=self.horizon_s,
            ended_at=self.now,
            initial_key_ids=initial_key_ids,
            detections=self.detections,
            charger_stranded=bool(self._stranded_units),
            chargers=self.chargers,
        )
        for hook in self.hooks:
            hook.on_run_end(self, result)
        return result
