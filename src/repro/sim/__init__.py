"""Discrete-event simulation of the full WRSN + charger + attacker system.

* :mod:`repro.sim.engine` — the event queue and clock.
* :mod:`repro.sim.events` — the event and trace-record taxonomy.
* :mod:`repro.sim.actions` — actions a mission controller can order and
  the controller interface itself.
* :mod:`repro.sim.arrivals` — probabilistic request-arrival models.
* :mod:`repro.sim.benign` — the honest charging controller.
* :mod:`repro.sim.hooks` — passive observers of the live event loop.
* :mod:`repro.sim.trace` — structured trace recording.
* :mod:`repro.sim.wrsn_sim` — the simulation orchestrator.
* :mod:`repro.sim.scenario` — named default parameter sets.
"""

from repro.sim.actions import (
    CommandSpoofAction,
    IdleAction,
    MissionController,
    RechargeAction,
    ServeAction,
)
from repro.sim.arrivals import ArrivalModel, ExponentialArrivals
from repro.sim.benign import BenignController
from repro.sim.engine import EventQueue
from repro.sim.events import (
    AuditPerformed,
    DetectionRaised,
    NodeDied,
    RequestIssued,
    ServiceAborted,
    ServiceCompleted,
    TraceEvent,
)
from repro.sim.hooks import SimulationHook
from repro.sim.scenario import ScenarioConfig
from repro.sim.trace import SimulationTrace
from repro.sim.wrsn_sim import SimulationResult, WrsnSimulation

__all__ = [
    "ArrivalModel",
    "AuditPerformed",
    "BenignController",
    "CommandSpoofAction",
    "DetectionRaised",
    "EventQueue",
    "ExponentialArrivals",
    "IdleAction",
    "MissionController",
    "NodeDied",
    "RechargeAction",
    "RequestIssued",
    "ScenarioConfig",
    "ServeAction",
    "ServiceAborted",
    "ServiceCompleted",
    "SimulationHook",
    "SimulationResult",
    "SimulationTrace",
    "TraceEvent",
    "WrsnSimulation",
]
