"""Discrete-event simulation of the full WRSN + charger + attacker system.

* :mod:`repro.sim.engine` — the event queue and clock.
* :mod:`repro.sim.events` — the event and trace-record taxonomy.
* :mod:`repro.sim.actions` — actions a mission controller can order and
  the controller interface itself.
* :mod:`repro.sim.benign` — the honest charging controller.
* :mod:`repro.sim.trace` — structured trace recording.
* :mod:`repro.sim.wrsn_sim` — the simulation orchestrator.
* :mod:`repro.sim.scenario` — named default parameter sets.
"""

from repro.sim.actions import (
    IdleAction,
    MissionController,
    RechargeAction,
    ServeAction,
)
from repro.sim.benign import BenignController
from repro.sim.engine import EventQueue
from repro.sim.events import (
    AuditPerformed,
    DetectionRaised,
    NodeDied,
    RequestIssued,
    ServiceAborted,
    ServiceCompleted,
    TraceEvent,
)
from repro.sim.scenario import ScenarioConfig
from repro.sim.trace import SimulationTrace
from repro.sim.wrsn_sim import SimulationResult, WrsnSimulation

__all__ = [
    "AuditPerformed",
    "BenignController",
    "DetectionRaised",
    "EventQueue",
    "IdleAction",
    "MissionController",
    "NodeDied",
    "RechargeAction",
    "RequestIssued",
    "ScenarioConfig",
    "ServeAction",
    "ServiceAborted",
    "ServiceCompleted",
    "SimulationResult",
    "SimulationTrace",
    "TraceEvent",
    "WrsnSimulation",
]
