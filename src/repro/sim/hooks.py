"""Simulation hooks: live observers of the event loop.

A hook rides along inside :class:`~repro.sim.wrsn_sim.WrsnSimulation` and
is notified *as the run unfolds* — at run start, after every trace record,
and at run end.  This is the supported way to stream observations out of
the engine (the digital-twin feed in :mod:`repro.twin` is the canonical
consumer); before hooks existed, online consumers had to mine the trace
after the fact, which cannot express "react at time t with only the
information available at time t".

Hooks are passive: they must not mutate the simulation.  Anything a hook
needs to *influence* the run (raising alarms, halting) goes through the
:class:`~repro.detection.monitors.Detector` interface instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import TraceEvent
    from repro.sim.wrsn_sim import SimulationResult, WrsnSimulation

__all__ = ["SimulationHook"]


class SimulationHook:
    """Base class for engine observers; every callback defaults to no-op.

    Callbacks fire in hook-registration order, and for any one trace
    event a hook runs *before* the detectors observe it — so a detector
    built on a hook-fed stream (the twin) always sees the observation it
    is about to judge.
    """

    def on_run_start(self, sim: "WrsnSimulation") -> None:
        """The run is about to enter its event loop.

        Controllers have been started (key nodes annotated) and the
        network's initial consumption rates are final; no event has been
        processed yet.
        """

    def on_trace_event(self, event: "TraceEvent", sim: "WrsnSimulation") -> None:
        """One record was just appended to the trace."""

    def on_run_end(self, sim: "WrsnSimulation", result: "SimulationResult") -> None:
        """The run finished; ``result`` is what :meth:`run` will return."""
