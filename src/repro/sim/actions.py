"""Mission-controller interface and the actions it can order.

The simulation asks its controller — honest dispatcher or attacker — what
the mobile charger should do whenever the charger becomes free.  The
controller answers with one of three actions (or ``None`` to idle until
something happens):

* :class:`ServeAction` — drive to a node and radiate at it, genuinely or
  spoofed, optionally waiting for a ``not_before`` instant (the attacker
  waits for stealth windows to open).
* :class:`CommandSpoofAction` — begin a legitimate genuine serve, then
  cut it short with a forged control-channel stop while logging the full
  session (the OCPP RemoteStop attack mapped onto this simulator).
* :class:`RechargeAction` — return to the depot and refill.
* :class:`IdleAction` — explicitly do nothing until a given time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from repro.mc.charger import ChargeMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.events import TraceEvent
    from repro.sim.wrsn_sim import WrsnSimulation

__all__ = [
    "Action",
    "CommandSpoofAction",
    "IdleAction",
    "MissionController",
    "RechargeAction",
    "ServeAction",
]


@dataclass(frozen=True)
class ServeAction:
    """Drive to ``node_id`` and perform a charging service.

    Parameters
    ----------
    node_id:
        The node to visit.
    mode:
        GENUINE delivers energy; SPOOF radiates a null; PRETEND logs a
        service without radiating at all (the blatant attacker).
    not_before:
        Earliest allowed service start; the charger waits in place after
        arriving early.  ``0.0`` means start on arrival.
    duration_s:
        Service duration; ``None`` lets the simulation size it to the
        node's deficit (what a genuine charger would do).
    """

    node_id: int
    mode: ChargeMode = ChargeMode.GENUINE
    not_before: float = 0.0
    duration_s: Optional[float] = None


@dataclass(frozen=True)
class CommandSpoofAction:
    """Serve ``node_id`` genuinely but terminate the session early.

    Models a control-channel command-spoofing (denial-of-charge) attack:
    the charging session starts as a legitimate genuine serve, a forged
    RemoteStop-style command ends it at ``stop_fraction`` of the duty
    duration, and the session log still claims the *full* service.  The
    victim harvests (and believes) only the delivered fraction, so it
    stays chronically under-charged and re-requests sooner — while the
    base station's books show a completed recharge.

    Parameters
    ----------
    node_id:
        The node to visit.
    stop_fraction:
        Fraction of the legitimate duty duration actually served, in
        ``(0, 1]``.  ``1.0`` degenerates to an honest genuine serve
        (still claimed in full, i.e. truthfully).
    not_before:
        Earliest allowed service start, as for :class:`ServeAction`.
    """

    node_id: int
    stop_fraction: float = 0.5
    not_before: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.stop_fraction <= 1.0:
            raise ValueError(
                f"stop_fraction must be in (0, 1], got {self.stop_fraction!r}"
            )


@dataclass(frozen=True)
class RechargeAction:
    """Return to the depot and refill the charger's battery."""


@dataclass(frozen=True)
class IdleAction:
    """Hold position until the given time (or until woken by an event)."""

    until: float


Action = Union[ServeAction, CommandSpoofAction, RechargeAction, IdleAction]


class MissionController(ABC):
    """Decides one mobile charger's next move.

    Implementations: :class:`repro.sim.benign.BenignController` (honest
    on-demand charging) and the attackers in :mod:`repro.attack.attacker`.

    The simulation assigns the controller its vehicle via the ``charger``
    attribute before ``on_start`` — in a fleet, each controller commands
    exactly one charger and reads shared state (pending requests, the
    network) from the simulation.
    """

    name = "controller"
    charger = None  # assigned by WrsnSimulation before on_start

    def on_start(self, sim: "WrsnSimulation") -> None:
        """Called once before the first event; build initial plans here."""

    def on_event(self, event: "TraceEvent", sim: "WrsnSimulation") -> None:
        """Called after every trace event; use to trigger replanning."""

    @abstractmethod
    def next_action(self, sim: "WrsnSimulation") -> Action | None:
        """The charger is free at ``sim.now``; what should it do?

        Return ``None`` to idle until the next request or death wakes the
        controller again.
        """
