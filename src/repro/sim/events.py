"""Trace-record taxonomy.

Everything observable that happens in a simulation is recorded as one of
these frozen dataclasses.  Detectors, metrics, tests and the benchmark
tables are all computed from the trace, so the records carry enough
context to be interpreted standalone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mc.charger import ChargeMode

__all__ = [
    "AuditPerformed",
    "DepotRecharged",
    "DetectionRaised",
    "NodeDied",
    "RequestIssued",
    "RoutingRecomputed",
    "ServiceAborted",
    "ServiceCompleted",
    "TraceEvent",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base class: every record carries its simulation time."""

    time: float


@dataclass(frozen=True)
class RequestIssued(TraceEvent):
    """A node's believed energy crossed its request threshold."""

    node_id: int
    deadline: float
    energy_needed_j: float
    is_key: bool


@dataclass(frozen=True)
class ServiceCompleted(TraceEvent):
    """The charger finished radiating at a node.

    ``claimed_j`` is what the charger reported delivering to the base
    station (always the genuine amount — malicious chargers lie);
    ``believed_energy_after_j`` is the victim's own post-service telemetry
    reading, the quantity the base station can cross-check claims against.
    ``early_stopped`` marks command-spoofed sessions: the serve was cut
    short by a forged stop command while the log claims the full duration.
    """

    node_id: int
    start_time: float
    mode: ChargeMode
    delivered_j: float
    believed_j: float
    claimed_j: float
    emission_j: float
    is_key: bool
    believed_energy_after_j: float = 0.0
    battery_capacity_j: float = 0.0
    charger_index: int = 0
    early_stopped: bool = False


@dataclass(frozen=True)
class ServiceAborted(TraceEvent):
    """The charger arrived but could not serve (node already dead)."""

    node_id: int
    reason: str


@dataclass(frozen=True)
class NodeDied(TraceEvent):
    """A node's battery emptied.

    ``stranded_ids`` are nodes that lost their base-station route as a
    direct result (before rerouting was attempted).
    """

    node_id: int
    is_key: bool
    was_spoofed: bool
    stranded_count: int


@dataclass(frozen=True)
class AuditPerformed(TraceEvent):
    """The base station spot-audited a node's true energy."""

    detector: str
    node_id: int
    true_energy_j: float
    believed_energy_j: float
    mismatch: bool


@dataclass(frozen=True)
class DetectionRaised(TraceEvent):
    """A detector concluded the charger is malicious."""

    detector: str
    reason: str
    node_id: int | None = None


@dataclass(frozen=True)
class RoutingRecomputed(TraceEvent):
    """The routing tree was rebuilt after a membership change."""

    alive_count: int
    stranded_count: int


@dataclass(frozen=True)
class DepotRecharged(TraceEvent):
    """A charger refilled its own battery at the depot."""

    energy_before_j: float
    charger_index: int = 0
