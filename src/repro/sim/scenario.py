"""Named scenario configurations.

One place holding every default the experiments share (EXP-12's parameter
table is printed from here).  A :class:`ScenarioConfig` is a frozen bag of
parameters plus factory methods building the concrete simulation pieces,
so an experiment that varies one knob copies the default config with that
knob replaced and everything else pinned.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.mc.charger import ChargingHardware, MobileCharger, default_charging_hardware
from repro.network.energy import RadioEnergyModel
from repro.network.network import Network
from repro.network.topology import Deployment, deploy_clustered, deploy_uniform
from repro.network.traffic import TrafficModel
from repro.sim.arrivals import ArrivalModel, ExponentialArrivals
from repro.utils.geometry import Point
from repro.utils.rng import RngFactory

__all__ = ["ScenarioConfig"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Simulation defaults (reconstruction R6 in DESIGN.md).

    Field sizes, battery capacities, charger parameters and traffic rates
    follow the values this research group's WRSN papers conventionally
    use; everything is overridable per experiment via
    :func:`dataclasses.replace` or :meth:`with_`.
    """

    # Field and deployment
    node_count: int = 200
    field_width_m: float = 100.0
    field_height_m: float = 100.0
    comm_range_m: float = 20.0
    clustered: bool = False
    cluster_count: int = 5

    # Node energy
    battery_capacity_j: float = 10_800.0
    request_threshold_frac: float = 0.2
    initial_energy_frac: float = 1.0
    rate_low_bps: float = 1_000.0
    rate_high_bps: float = 5_000.0

    # Mobile charger
    mc_battery_j: float = 2_000_000.0
    mc_speed_m_s: float = 5.0
    mc_travel_cost_j_per_m: float = 50.0
    mc_depot_recharge_s: float = 1_800.0

    # Attack / experiment
    key_count: int = 15
    horizon_days: float = 45.0

    # Control plane: mean reporting lag between a node crossing its
    # request threshold and the base station receiving the request.
    # 0.0 (the seed default) keeps arrivals instantaneous/deterministic.
    request_delay_mean_s: float = 0.0

    def with_(self, **changes) -> "ScenarioConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)

    @property
    def horizon_s(self) -> float:
        """Simulation horizon in seconds."""
        return self.horizon_days * 86_400.0

    @property
    def depot(self) -> Point:
        """Mobile charger depot: the field centre (next to the BS)."""
        return Point(self.field_width_m / 2.0, self.field_height_m / 2.0)

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def build_deployment(self, rng_factory: RngFactory) -> Deployment:
        """Place the nodes (uniform or clustered per config)."""
        rng = rng_factory.stream("topology")
        if self.clustered:
            return deploy_clustered(
                self.node_count,
                self.cluster_count,
                rng,
                width=self.field_width_m,
                height=self.field_height_m,
                comm_range=self.comm_range_m,
            )
        return deploy_uniform(
            self.node_count,
            rng,
            width=self.field_width_m,
            height=self.field_height_m,
            comm_range=self.comm_range_m,
        )

    def build_network(self, seed: int) -> Network:
        """Deploy and wire up a network for the given seed."""
        factory = RngFactory(seed)
        deployment = self.build_deployment(factory)
        traffic = TrafficModel.heterogeneous(
            self.node_count,
            factory.stream("traffic"),
            low_bps=self.rate_low_bps,
            high_bps=self.rate_high_bps,
        )
        return Network(
            deployment,
            traffic,
            radio=RadioEnergyModel(),
            battery_capacity_j=self.battery_capacity_j,
            request_threshold_frac=self.request_threshold_frac,
            initial_energy_frac=self.initial_energy_frac,
        )

    def build_charger(self, hardware: ChargingHardware | None = None) -> MobileCharger:
        """The mobile charger, parked at the depot."""
        return MobileCharger(
            depot=self.depot,
            battery_capacity_j=self.mc_battery_j,
            speed_m_s=self.mc_speed_m_s,
            travel_cost_j_per_m=self.mc_travel_cost_j_per_m,
            hardware=hardware or default_charging_hardware(),
            depot_recharge_s=self.mc_depot_recharge_s,
        )

    def build_arrival_model(self, seed: int) -> ArrivalModel | None:
        """The request-arrival model for this config, or ``None``.

        ``None`` (when ``request_delay_mean_s == 0``) means instantaneous
        arrivals — the seed behaviour, bit-for-bit.  The model draws from
        its own dedicated RNG stream so enabling it perturbs no other
        stream under the same seed.
        """
        if self.request_delay_mean_s <= 0.0:
            return None
        return ExponentialArrivals(
            self.request_delay_mean_s, RngFactory(seed).stream("arrivals")
        )

    def parameter_rows(self) -> Sequence[tuple[str, str]]:
        """Human-readable (name, value) rows for the parameter table."""
        return (
            ("Number of nodes", str(self.node_count)),
            ("Field size", f"{self.field_width_m:.0f} m x {self.field_height_m:.0f} m"),
            ("Communication range", f"{self.comm_range_m:.0f} m"),
            ("Node battery capacity", f"{self.battery_capacity_j / 1000:.1f} kJ"),
            ("Charging request threshold", f"{self.request_threshold_frac:.0%}"),
            (
                "Data generation rate",
                f"{self.rate_low_bps / 1000:.0f}-{self.rate_high_bps / 1000:.0f} kbps",
            ),
            ("MC battery capacity", f"{self.mc_battery_j / 1e6:.1f} MJ"),
            ("MC speed", f"{self.mc_speed_m_s:.0f} m/s"),
            ("MC travel cost", f"{self.mc_travel_cost_j_per_m:.0f} J/m"),
            ("Key nodes targeted", str(self.key_count)),
            ("Simulation horizon", f"{self.horizon_days:.0f} days"),
        )
