"""The honest charging controller.

Wraps a :class:`repro.mc.scheduling.Scheduler` policy into the mission-
controller interface: serve pending requests genuinely, go home to
recharge when low, idle when there is nothing to do.  This is both the
no-attack baseline for the lifetime experiments and the behavioural
template a stealthy attacker imitates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mc.charger import ChargeMode
from repro.mc.scheduling import NjnpScheduler, Scheduler
from repro.sim.actions import Action, MissionController, RechargeAction, ServeAction
from repro.utils.validation import check_probability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.wrsn_sim import WrsnSimulation

__all__ = ["BenignController"]


class BenignController(MissionController):
    """Serve charging requests honestly under a pluggable scheduler.

    Parameters
    ----------
    scheduler:
        Request-selection policy (default NJNP, the on-demand standard).
    recharge_below_frac:
        Return to the depot when battery falls below this fraction.
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        recharge_below_frac: float = 0.15,
    ) -> None:
        self.scheduler = scheduler or NjnpScheduler()
        self.recharge_below_frac = check_probability(
            "recharge_below_frac", recharge_below_frac
        )

    @property
    def name(self) -> str:
        return f"benign[{self.scheduler.name}]"

    def next_action(self, sim: "WrsnSimulation") -> Action | None:
        mc = self.charger or sim.charger
        if mc.energy_j < self.recharge_below_frac * mc.battery_capacity_j:
            return RechargeAction()

        viable = []
        for request in sim.unclaimed_requests():
            node = sim.network.nodes[request.node_id]
            if not node.alive:
                continue
            arrival = sim.now + mc.travel_time_to(node.position)
            if arrival >= node.predicted_death_time():
                continue  # it would be dead on arrival
            viable.append(request)
        if not viable:
            return None

        positions = {
            r.node_id: sim.network.nodes[r.node_id].position for r in viable
        }
        choice = self.scheduler.select(viable, mc.position, positions, sim.now)
        if choice is None:
            return None

        node = sim.network.nodes[choice.node_id]
        deficit = node.battery_capacity_j - node.energy_j
        duration = mc.hardware.service_duration_for(max(deficit, 0.0))
        cost = (
            mc.travel_energy_to(node.position)
            + mc.hardware.emission_w * duration
        )
        if cost > mc.energy_j:
            return RechargeAction()
        return ServeAction(node_id=choice.node_id, mode=ChargeMode.GENUINE)
