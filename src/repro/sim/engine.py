"""The discrete-event engine: a versioned priority queue of events.

Node-related events (requests, deaths) are *predictions* that become stale
whenever a node's consumption changes or it receives charge.  Rather than
hunting stale entries out of the heap, every scheduled event carries the
version stamp of the entity it concerns; pops with an outdated stamp are
silently discarded.  Ties on time break by insertion order, making runs
fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EventQueue", "ScheduledEvent"]


@dataclass(frozen=True, order=True)
class ScheduledEvent:
    """One queue entry.

    Ordering is by (time, sequence); the payload never participates in
    comparisons.
    """

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)
    version_key: Any = field(compare=False, default=None)
    version: int = field(compare=False, default=0)


class EventQueue:
    """Deterministic min-heap of :class:`ScheduledEvent` with versioning."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self._versions: dict[Any, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def current_version(self, key: Any) -> int:
        """Current version stamp of the given entity key."""
        return self._versions.get(key, 0)

    def invalidate(self, key: Any) -> int:
        """Bump the entity's version, implicitly cancelling its events."""
        self._versions[key] = self._versions.get(key, 0) + 1
        return self._versions[key]

    def forget(self, key: Any) -> None:
        """Drop the entity's version entry; its outstanding events go stale.

        The version table otherwise grows monotonically — entries for dead
        nodes would linger for the whole horizon.  Scheduled events are
        always stamped with a version >= 1 (see :meth:`schedule`), so once
        the entry is gone ``current_version`` falls back to 0 and every
        outstanding event for the key is discarded on pop.

        ``forget`` is terminal: only call it for entities that will never
        be scheduled or invalidated again (a dead node).  Scheduling the
        key afterwards re-registers it at version 1, which would revive
        any version-1 stragglers from before the forget.
        """
        self._versions.pop(key, None)

    def tracked_keys(self) -> int:
        """Number of entity keys currently holding a version entry."""
        return len(self._versions)

    def schedule(
        self,
        time: float,
        kind: str,
        payload: Any = None,
        version_key: Any = None,
    ) -> ScheduledEvent:
        """Enqueue an event; stamps it with the entity's current version.

        A key's first schedule registers it at version 1 (never 0), so a
        later :meth:`forget` reliably stales every stamped event.
        """
        # NaN, "never" (+inf) and -inf are all rejected: a -inf entry
        # would silently sort before every real event in the heap.
        if not math.isfinite(time):
            raise ValueError(f"cannot schedule event at time {time!r}")
        event = ScheduledEvent(
            time=time,
            sequence=next(self._counter),
            kind=kind,
            payload=payload,
            version_key=version_key,
            version=self._versions.setdefault(version_key, 1) if version_key is not None else 0,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> ScheduledEvent | None:
        """Next live event, skipping stale ones; ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.version_key is not None:
                if self._versions.get(event.version_key, 0) != event.version:
                    continue
            return event
        return None

    def peek_time(self) -> float | None:
        """Time of the next live event without removing it."""
        while self._heap:
            event = self._heap[0]
            if (
                event.version_key is not None
                and self._versions.get(event.version_key, 0) != event.version
            ):
                heapq.heappop(self._heap)
                continue
            return event.time
        return None
