"""The shared attack-trial kernel.

One simulation with the standard experiment wiring — the unit of work
every benchmark sweep and campaign trial dispatches.  Previously each
benchmark hand-rolled this; it lives in the library so campaign worker
processes (and downstream users) can import it.
"""

from __future__ import annotations

from typing import Sequence

from repro.attack.attacker import CsaAttacker
from repro.detection.auditors import default_detector_suite
from repro.sim.actions import MissionController
from repro.sim.hooks import SimulationHook
from repro.sim.scenario import ScenarioConfig
from repro.sim.wrsn_sim import SimulationResult, WrsnSimulation

__all__ = ["run_attack"]


def run_attack(
    cfg: ScenarioConfig,
    seed: int,
    controller: MissionController | None = None,
    detectors: bool = True,
    audit_interval_s: float | None = None,
    twin: bool = False,
    hooks: Sequence[SimulationHook] = (),
    stop_on_detection: bool = False,
) -> SimulationResult:
    """One attack (or benign) simulation with the standard wiring.

    Parameters
    ----------
    cfg:
        Scenario parameters; network and charger are built fresh.  When
        ``cfg.request_delay_mean_s > 0`` the corresponding probabilistic
        arrival model is built and wired in automatically.
    seed:
        Topology/traffic/detector randomness.
    controller:
        The charger's mission controller; defaults to a fresh
        :class:`~repro.attack.attacker.CsaAttacker` (controllers are
        single-use, so callers pass a new one per trial).
    detectors:
        Whether to deploy the default base-station detector suite.
    audit_interval_s:
        Optional override for the voltage auditor's mean audit interval.
    twin:
        Deploy a streaming :class:`~repro.twin.detector.TwinDetector`
        alongside the other detectors (works with ``detectors=False``
        too, giving a twin-only defence), with its observation feed
        published from the live engine.
    hooks:
        Extra :class:`~repro.sim.hooks.SimulationHook` observers.
    stop_on_detection:
        Halt the run at the first alarm (detection-latency experiments).
    """
    network = cfg.build_network(seed=seed)
    charger = cfg.build_charger()
    if controller is None:
        controller = CsaAttacker(key_count=cfg.key_count)
    suite = (
        default_detector_suite(seed, audit_interval_s=audit_interval_s)
        if detectors
        else []
    )
    all_hooks = list(hooks)
    if twin:
        # Imported lazily: sim is a lower layer than twin.
        from repro.twin.detector import TwinDetector
        from repro.twin.feed import SimStreamPublisher

        twin_detector = TwinDetector()
        suite = suite + [twin_detector]
        all_hooks.append(SimStreamPublisher(twin_detector.stream))
    sim = WrsnSimulation(
        network,
        charger,
        controller,
        detectors=suite,
        horizon_s=cfg.horizon_s,
        hooks=all_hooks,
        arrival_model=cfg.build_arrival_model(seed),
        stop_on_detection=stop_on_detection,
    )
    return sim.run()
