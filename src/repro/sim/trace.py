"""Structured simulation traces.

A :class:`SimulationTrace` is an append-only, time-ordered list of
:class:`~repro.sim.events.TraceEvent` records with typed accessors for the
queries metrics and tests keep making.
"""

from __future__ import annotations

from typing import Iterator, Type, TypeVar

from repro.sim.events import (
    DetectionRaised,
    NodeDied,
    RequestIssued,
    ServiceCompleted,
    TraceEvent,
)

__all__ = ["SimulationTrace"]

E = TypeVar("E", bound=TraceEvent)


class SimulationTrace:
    """Append-only record of everything that happened in a run."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        """Append an event; times must be non-decreasing."""
        if self._events and event.time < self._events[-1].time - 1e-6:
            raise ValueError(
                f"trace must be time-ordered: got {event.time} after "
                f"{self._events[-1].time}"
            )
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_type(self, event_type: Type[E]) -> list[E]:
        """All events of the given type, in time order."""
        return [e for e in self._events if isinstance(e, event_type)]

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------
    def services(self) -> list[ServiceCompleted]:
        """All completed charging services."""
        return self.of_type(ServiceCompleted)

    def deaths(self) -> list[NodeDied]:
        """All node deaths."""
        return self.of_type(NodeDied)

    def requests(self) -> list[RequestIssued]:
        """All charging requests."""
        return self.of_type(RequestIssued)

    def detections(self) -> list[DetectionRaised]:
        """All detector alarms."""
        return self.of_type(DetectionRaised)

    def first_detection_time(self) -> float | None:
        """Time of the first alarm, or ``None`` if the run stayed clean."""
        detections = self.detections()
        return detections[0].time if detections else None

    def served_node_ids(self) -> set[int]:
        """Nodes that received at least one completed service."""
        return {s.node_id for s in self.services()}

    def dead_key_node_ids(self) -> set[int]:
        """Key nodes that died during the run."""
        return {d.node_id for d in self.deaths() if d.is_key}
