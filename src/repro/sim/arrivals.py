"""Probabilistic on-demand request arrivals.

The seed model issues a charging request at the exact instant a node's
believed energy crosses its request threshold — a deterministic,
zero-latency control plane.  Real on-demand WRSN deployments (the
multi-MCV line of work) see stochastic lag between the crossing and the
base station learning about it: duty-cycled radios, MAC contention,
multi-hop forwarding.  An :class:`ArrivalModel` injects that lag: when a
node crosses its threshold the simulation asks the model for a delay and
issues the request that much later (unless a charge intervenes first).

``None`` — no model — preserves the seed behaviour bit-for-bit, so every
existing experiment is unaffected unless a scenario opts in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.rng import coerce_rng
from repro.utils.validation import check_positive

__all__ = ["ArrivalModel", "ExponentialArrivals"]


class ArrivalModel(ABC):
    """Maps a threshold crossing to a request-issuance delay."""

    @abstractmethod
    def delay_s(self, node_id: int, time: float) -> float:
        """Seconds between the crossing at ``time`` and the request.

        Must be non-negative.  Called exactly once per crossing, so
        implementations may consume randomness freely; the same crossing
        is never re-asked (the simulation caches the due time).
        """


class ExponentialArrivals(ArrivalModel):
    """Exponentially distributed reporting lag, i.i.d. per crossing.

    The memoryless choice for contention/duty-cycle delay.  Draws come
    from the model's own RNG stream so enabling arrivals perturbs no
    other stream's sequence.
    """

    def __init__(
        self, mean_delay_s: float, rng: int | np.random.Generator = 0
    ) -> None:
        self.mean_delay_s = check_positive("mean_delay_s", mean_delay_s)
        self._rng = coerce_rng(rng, "arrivals")

    def delay_s(self, node_id: int, time: float) -> float:
        return float(self._rng.exponential(self.mean_delay_s))

    def __repr__(self) -> str:
        return f"ExponentialArrivals(mean_delay_s={self.mean_delay_s!r})"
