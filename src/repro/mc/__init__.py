"""Mobile charger (MC) substrate.

The MC is the vehicle both the benign charging service and the attack run
on: it has a finite battery spent on locomotion and RF emission, travels
at constant speed, and charges one node at a time from close range through
its antenna array.
"""

from repro.mc.charger import (
    ChargingHardware,
    ChargingService,
    MobileCharger,
    default_charging_hardware,
)
from repro.mc.scheduling import (
    EdfScheduler,
    FcfsScheduler,
    NjnpScheduler,
    Scheduler,
)
from repro.mc.tour import nearest_neighbour_tour, tour_cost, two_opt

__all__ = [
    "ChargingHardware",
    "ChargingService",
    "EdfScheduler",
    "FcfsScheduler",
    "MobileCharger",
    "NjnpScheduler",
    "Scheduler",
    "default_charging_hardware",
    "nearest_neighbour_tour",
    "tour_cost",
    "two_opt",
]
