"""Tour construction for periodic charging rounds.

Benign periodic chargers and several attack baselines order their visits
as a travelling-salesman tour.  Optimal TSP is out of scope; nearest
neighbour plus 2-opt is the standard good-enough pairing in this
literature.
"""

from __future__ import annotations

from typing import Sequence

from repro.utils.geometry import Point, pairwise_distances

__all__ = ["nearest_neighbour_tour", "tour_cost", "two_opt"]


def tour_cost(points: Sequence[Point], order: Sequence[int], closed: bool = True) -> float:
    """Length of the tour visiting ``points`` in the given order."""
    if len(order) < 2:
        return 0.0
    total = sum(
        points[order[i]].distance_to(points[order[i + 1]])
        for i in range(len(order) - 1)
    )
    if closed:
        total += points[order[-1]].distance_to(points[order[0]])
    return total


def nearest_neighbour_tour(points: Sequence[Point], start_index: int = 0) -> list[int]:
    """Greedy nearest-neighbour visiting order over ``points``.

    Starts at ``start_index`` and repeatedly hops to the closest unvisited
    point.  Deterministic: distance ties break toward the lower index.
    """
    n = len(points)
    if n == 0:
        return []
    if not 0 <= start_index < n:
        raise IndexError(f"start_index {start_index} out of range for {n} points")
    dists = pairwise_distances(points)
    unvisited = set(range(n))
    order = [start_index]
    unvisited.remove(start_index)
    current = start_index
    while unvisited:
        nxt = min(unvisited, key=lambda j: (dists[current, j], j))
        order.append(nxt)
        unvisited.remove(nxt)
        current = nxt
    return order


def two_opt(
    points: Sequence[Point],
    order: Sequence[int],
    closed: bool = True,
    max_passes: int = 20,
) -> list[int]:
    """2-opt improvement of a visiting order.

    Repeatedly reverses segments whose reversal shortens the tour, until a
    full pass finds no improvement or ``max_passes`` passes have run.
    """
    tour = list(order)
    n = len(tour)
    if n < 4:
        return tour
    dists = pairwise_distances(points)

    def seg(a: int, b: int) -> float:
        return float(dists[tour[a], tour[b]])

    for _ in range(max_passes):
        improved = False
        # For an open route the final "wrap" edge does not exist.
        last = n if closed else n - 1
        for i in range(last - 1):
            for j in range(i + 2, last):
                i_next = (i + 1) % n
                j_next = (j + 1) % n
                if i == j_next:
                    continue
                before = seg(i, i_next) + seg(j, j_next % n) if closed else (
                    seg(i, i_next) + (seg(j, j_next) if j_next < n else 0.0)
                )
                after = seg(i, j) + (
                    seg(i_next, j_next % n)
                    if closed
                    else (seg(i_next, j_next) if j_next < n else 0.0)
                )
                if after < before - 1e-12:
                    tour[i + 1 : j + 1] = reversed(tour[i + 1 : j + 1])
                    improved = True
        if not improved:
            break
    return tour
