"""Benign charging schedulers.

These policies decide which pending charging request the mobile charger
serves next.  They matter twice over: they define the *normal* behaviour a
stealthy attacker must imitate, and they provide the no-attack baseline
for the network-lifetime experiments.

All schedulers share one interface: given the pending requests, the
charger's position and the current time, pick a request (or ``None`` to
idle).  Requests whose deadline has passed should be skipped by callers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.network.requests import ChargingRequest
from repro.utils.geometry import Point

__all__ = ["EdfScheduler", "FcfsScheduler", "NjnpScheduler", "Scheduler"]


class Scheduler(ABC):
    """Strategy interface for picking the next charging request."""

    @abstractmethod
    def select(
        self,
        pending: Sequence[ChargingRequest],
        position: Point,
        positions: dict[int, Point],
        time: float,
    ) -> ChargingRequest | None:
        """Choose the next request to serve.

        Parameters
        ----------
        pending:
            Outstanding requests (callers should pre-filter expired ones).
        position:
            The charger's current location.
        positions:
            Node id → node position, for distance-aware policies.
        time:
            Current simulation time.
        """

    @property
    def name(self) -> str:
        """Human-readable policy name (class name by default)."""
        return type(self).__name__


class FcfsScheduler(Scheduler):
    """First come, first served: serve the oldest request."""

    def select(
        self,
        pending: Sequence[ChargingRequest],
        position: Point,
        positions: dict[int, Point],
        time: float,
    ) -> ChargingRequest | None:
        if not pending:
            return None
        return min(pending, key=lambda r: (r.time, r.node_id))


class NjnpScheduler(Scheduler):
    """Nearest job next: serve the spatially closest requester.

    The classic on-demand WRSN policy (NJNP); travel-efficient but can
    starve far-away nodes.
    """

    def select(
        self,
        pending: Sequence[ChargingRequest],
        position: Point,
        positions: dict[int, Point],
        time: float,
    ) -> ChargingRequest | None:
        if not pending:
            return None
        return min(
            pending,
            key=lambda r: (position.distance_to(positions[r.node_id]), r.node_id),
        )


class EdfScheduler(Scheduler):
    """Earliest deadline first: serve the requester closest to death."""

    def select(
        self,
        pending: Sequence[ChargingRequest],
        position: Point,
        positions: dict[int, Point],
        time: float,
    ) -> ChargingRequest | None:
        if not pending:
            return None
        return min(pending, key=lambda r: (r.deadline, r.node_id))
