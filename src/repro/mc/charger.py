"""The mobile charger entity and its charging hardware.

:class:`ChargingHardware` bridges the EM substrate and the network-level
simulation: it evaluates the antenna array + rectenna physics once per
(mode, geometry) and exposes the three numbers the simulator needs —
genuine delivered power, spoofed delivered power, and the emission power
the charger pays either way.  :class:`MobileCharger` does the bookkeeping:
position, clock, battery, travel and service costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import cached_property

from repro.em.charger_array import ChargerArray
from repro.em.rectenna import Rectenna
from repro.utils.geometry import Point, distance
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "ChargeMode",
    "ChargingHardware",
    "ChargingService",
    "MobileCharger",
    "default_charging_hardware",
]


class ChargeMode(Enum):
    """How the charger drives its array during a service.

    GENUINE beamforms and delivers energy.  SPOOF radiates full power but
    null-steers the victim's rectenna: nothing is delivered, yet the
    victim's presence indicator trips and it credits itself the expected
    harvest.  PRETEND does not radiate at all — the "lazy" attacker that
    merely logs a service; it saves emission energy but fools nobody whose
    telemetry is checked, and exists as the non-stealthy baseline.
    """

    GENUINE = "genuine"
    SPOOF = "spoof"
    PRETEND = "pretend"


def default_charging_hardware() -> "ChargingHardware":
    """Powercast-class defaults used across the experiments.

    A compact 8-element charging pad (6 cm element pitch, 3 W per element)
    parked 0.1 m from the victim, charging a watt-class harvesting
    rectenna: genuine beamformed delivery lands in the watts (a full
    recharge takes roughly an hour), while a spoofed service delivers
    nothing.
    """
    array = ChargerArray.uniform_linear(count=8, spacing=0.06, tx_power_per_element=3.0)
    rectenna = Rectenna(
        sensitivity_w=80e-6,
        peak_efficiency=0.55,
        knee_power_w=0.05,
        saturation_w=5.0,
    )
    return ChargingHardware(array=array, rectenna=rectenna, service_distance_m=0.1)


@dataclass(frozen=True)
class ChargingHardware:
    """Antenna array + victim rectenna + parking geometry.

    The charger always parks ``service_distance_m`` from the node it
    serves, so delivered powers are constants of the hardware and can be
    evaluated once (cached) rather than per event.

    Attributes
    ----------
    presence_threshold_w:
        RF power at the victim's pilot antenna above which its
        charging-presence indicator trips.  Presence detectors are far
        more sensitive than harvesters (default 1 µW ≈ -30 dBm).
    """

    array: ChargerArray
    rectenna: Rectenna
    service_distance_m: float = 0.3
    presence_threshold_w: float = 1e-6

    def __post_init__(self) -> None:
        check_positive("service_distance_m", self.service_distance_m)
        check_positive("presence_threshold_w", self.presence_threshold_w)

    def _geometry(self) -> tuple[Point, Point]:
        charger = Point(0.0, 0.0)
        victim = Point(self.service_distance_m, 0.0)
        return charger, victim

    @cached_property
    def genuine_rate_w(self) -> float:
        """DC power delivered by a beamformed (honest) service."""
        charger, victim = self._geometry()
        return self.array.delivered_power("beamform", charger, victim, self.rectenna)

    @cached_property
    def spoof_rate_w(self) -> float:
        """DC power delivered by a spoofed (null-steered) service: ~0."""
        charger, victim = self._geometry()
        return self.array.delivered_power("spoof", charger, victim, self.rectenna)

    @cached_property
    def emission_w(self) -> float:
        """RF power the charger radiates during any service."""
        return self.array.total_tx_power

    def pilot_indicates_charging(self, mode: ChargeMode) -> bool:
        """Whether the victim's presence indicator trips in the given mode.

        This is the deception at the heart of the attack: it must return
        True for GENUINE *and* SPOOF, or the node would notice the spoof.
        PRETEND radiates nothing, so the indicator stays silent.
        """
        if mode == ChargeMode.PRETEND:
            return False
        charger, victim = self._geometry()
        phase_mode = "beamform" if mode == ChargeMode.GENUINE else "spoof"
        return (
            self.array.pilot_power(phase_mode, charger, victim)
            >= self.presence_threshold_w
        )

    def pilot_rf_power_w(self, mode: ChargeMode) -> float:
        """RF power at the victim's pilot antenna in the given mode."""
        if mode == ChargeMode.PRETEND:
            return 0.0
        charger, victim = self._geometry()
        phase_mode = "beamform" if mode == ChargeMode.GENUINE else "spoof"
        return self.array.pilot_power(phase_mode, charger, victim)

    def delivered_rate_w(self, mode: ChargeMode) -> float:
        """DC power delivered in the given mode."""
        if mode == ChargeMode.GENUINE:
            return self.genuine_rate_w
        if mode == ChargeMode.SPOOF:
            return self.spoof_rate_w
        return 0.0

    def emission_for(self, mode: ChargeMode) -> float:
        """RF power the charger radiates in the given mode."""
        if mode == ChargeMode.PRETEND:
            return 0.0
        return self.emission_w

    def service_duration_for(self, energy_needed_j: float) -> float:
        """How long a *genuine* service takes to deliver the given energy.

        A spoofed service must park for this same duration to look
        legitimate.
        """
        energy_needed_j = check_non_negative("energy_needed_j", energy_needed_j)
        if self.genuine_rate_w <= 0.0:
            raise RuntimeError(
                "charging hardware delivers no power; check array/rectenna"
            )
        return energy_needed_j / self.genuine_rate_w


@dataclass(frozen=True)
class ChargingService:
    """Record of one completed (or spoofed) charging service.

    ``delivered_j`` is what the victim's battery actually gained,
    ``believed_j`` what the victim credited itself, and ``claimed_j`` what
    the charger reported to the base station — always the full genuine
    harvest, because a malicious charger lies.
    """

    node_id: int
    start_time: float
    end_time: float
    mode: ChargeMode
    delivered_j: float
    believed_j: float
    claimed_j: float
    emission_j: float

    @property
    def duration(self) -> float:
        """Service duration in seconds."""
        return self.end_time - self.start_time


class MobileCharger:
    """The mobile charger: battery, position, clock, cost accounting.

    Parameters
    ----------
    depot:
        Home position; the charger starts here and returns to recharge.
    battery_capacity_j:
        On-board energy for locomotion and RF emission.  Default 2 MJ.
    speed_m_s:
        Travel speed.  Default 5 m/s.
    travel_cost_j_per_m:
        Locomotion energy per metre.  Default 50 J/m.
    hardware:
        Charging front end; defaults to :func:`default_charging_hardware`.
    depot_recharge_s:
        Time to refill the charger's own battery at the depot.
    """

    def __init__(
        self,
        depot: Point,
        battery_capacity_j: float = 2_000_000.0,
        speed_m_s: float = 5.0,
        travel_cost_j_per_m: float = 50.0,
        hardware: ChargingHardware | None = None,
        depot_recharge_s: float = 1_800.0,
    ) -> None:
        self.depot = depot
        self.battery_capacity_j = check_positive(
            "battery_capacity_j", battery_capacity_j
        )
        self.speed_m_s = check_positive("speed_m_s", speed_m_s)
        self.travel_cost_j_per_m = check_non_negative(
            "travel_cost_j_per_m", travel_cost_j_per_m
        )
        self.depot_recharge_s = check_non_negative(
            "depot_recharge_s", depot_recharge_s
        )
        self.hardware = hardware or default_charging_hardware()

        self.position = depot
        self.energy_j = self.battery_capacity_j
        self.clock = 0.0
        self.distance_travelled_m = 0.0
        self.services: list[ChargingService] = []

    # ------------------------------------------------------------------
    # Cost queries (no state change)
    # ------------------------------------------------------------------
    def travel_time_to(self, destination: Point) -> float:
        """Seconds to reach ``destination`` from the current position."""
        return distance(self.position, destination) / self.speed_m_s

    def travel_energy_to(self, destination: Point) -> float:
        """Locomotion energy (J) to reach ``destination``."""
        return distance(self.position, destination) * self.travel_cost_j_per_m

    def service_energy(self, duration_s: float) -> float:
        """Emission energy (J) for a service of the given duration."""
        check_non_negative("duration_s", duration_s)
        return self.hardware.emission_w * duration_s

    def can_afford(self, destination: Point, service_duration_s: float) -> bool:
        """Whether battery covers travelling there plus the full service."""
        needed = self.travel_energy_to(destination) + self.service_energy(
            service_duration_s
        )
        return self.energy_j >= needed

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def travel_to(self, destination: Point) -> float:
        """Drive to ``destination``; returns arrival time.

        Raises ``RuntimeError`` if the battery cannot cover the trip —
        callers are expected to check :meth:`can_afford` / plan within
        budget, so running dry mid-drive is a logic error.
        """
        cost = self.travel_energy_to(destination)
        if cost > self.energy_j + 1e-9:
            raise RuntimeError(
                f"mobile charger battery too low to travel: need {cost:.0f} J, "
                f"have {self.energy_j:.0f} J"
            )
        duration = self.travel_time_to(destination)
        self.distance_travelled_m += distance(self.position, destination)
        self.energy_j = max(0.0, self.energy_j - cost)
        self.position = destination
        self.clock += duration
        return self.clock

    def wait_until(self, time: float) -> None:
        """Idle in place until the given time (no energy cost)."""
        if time < self.clock - 1e-9:
            raise ValueError(
                f"cannot wait until {time}; charger clock already at {self.clock}"
            )
        self.clock = max(self.clock, time)

    def perform_service(
        self,
        node_id: int,
        duration_s: float,
        mode: ChargeMode,
        claimed_duration_s: float | None = None,
    ) -> ChargingService:
        """Radiate at the current position for ``duration_s`` seconds.

        Returns the service record with delivered and believed energies.
        The believed energy is what the victim credits itself — the full
        genuine-rate harvest for the duration under GENUINE and SPOOF,
        because its presence indicator cannot tell those apart; zero under
        PRETEND, where the indicator never trips.

        ``claimed_duration_s`` lets a command-spoofing charger log a
        different (longer) session than it actually ran: the claim sent to
        the base station covers the claimed duration at genuine rate, while
        delivery, belief and emission cover only the real one.  ``None``
        claims the real duration (the honest default).
        """
        check_non_negative("duration_s", duration_s)
        if claimed_duration_s is None:
            claimed_duration_s = duration_s
        else:
            check_non_negative("claimed_duration_s", claimed_duration_s)
        emission = self.hardware.emission_for(mode) * duration_s
        if emission > self.energy_j + 1e-9:
            raise RuntimeError(
                f"mobile charger battery too low to serve: need {emission:.0f} J, "
                f"have {self.energy_j:.0f} J"
            )
        start = self.clock
        self.energy_j = max(0.0, self.energy_j - emission)
        self.clock += duration_s
        delivered = self.hardware.delivered_rate_w(mode) * duration_s
        if self.hardware.pilot_indicates_charging(mode):
            believed = self.hardware.genuine_rate_w * duration_s
        else:
            believed = 0.0
        record = ChargingService(
            node_id=node_id,
            start_time=start,
            end_time=self.clock,
            mode=mode,
            delivered_j=delivered,
            believed_j=believed,
            claimed_j=self.hardware.genuine_rate_w * claimed_duration_s,
            emission_j=emission,
        )
        self.services.append(record)
        return record

    def recharge_at_depot(self) -> float:
        """Drive home, refill the battery; returns the time refill completes."""
        self.travel_to(self.depot)
        self.clock += self.depot_recharge_s
        self.energy_j = self.battery_capacity_j
        return self.clock

    def __repr__(self) -> str:
        return (
            f"MobileCharger(pos=({self.position.x:.1f}, {self.position.y:.1f}), "
            f"energy={self.energy_j:.0f}J, t={self.clock:.0f}s)"
        )
