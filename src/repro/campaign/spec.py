"""Declarative campaign specifications.

A :class:`CampaignSpec` names an experiment, a *trial kernel* (a pure
function referenced by dotted path, so worker processes can import it),
and an explicit parameter grid — one dict of JSON-able parameters per
trial.  Everything else (caching, parallelism, retries) is the runner's
business; a spec is pure data.

Cache keys are content-addressed: a trial's key is the SHA-256 of the
canonical-JSON encoding of (key schema, campaign name, spec version,
trial reference, package version, trial params).  Any change to the
parameters or a deliberate ``version`` bump yields a fresh key, so stale
cached results can never be mistaken for current ones.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, replace
from importlib import import_module, metadata
from typing import Any, Callable, Mapping, Sequence

__all__ = [
    "CampaignSpec",
    "Trial",
    "canonical_json",
    "parameter_grid",
    "resolve_trial_ref",
]

#: Bump when the cache-key recipe itself changes (invalidates every key).
_KEY_SCHEMA = 1

_NAME_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.\-]*")


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace, no NaN."""
    try:
        return json.dumps(
            value, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise ValueError(f"value is not JSON-encodable: {exc}") from exc


def resolve_trial_ref(ref: str) -> Callable[[Mapping[str, Any]], Mapping[str, Any]]:
    """Import a ``package.module:function`` trial reference."""
    module_name, sep, attr = ref.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(
            f"trial reference must look like 'package.module:function', got {ref!r}"
        )
    module = import_module(module_name)
    try:
        trial = getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(
            f"module {module_name!r} has no attribute {attr!r}"
        ) from exc
    if not callable(trial):
        raise ValueError(f"trial reference {ref!r} is not callable")
    return trial


def parameter_grid(**axes: Sequence[Any]) -> tuple[dict[str, Any], ...]:
    """Cross product of named axes; the last axis varies fastest."""
    if not axes:
        raise ValueError("parameter_grid needs at least one axis")
    grid: list[dict[str, Any]] = [{}]
    for axis, values in axes.items():
        values = list(values)
        if not values:
            raise ValueError(f"axis {axis!r} has no values")
        grid = [{**point, axis: value} for point in grid for value in values]
    return tuple(grid)


def _package_version() -> str:
    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:  # running from a bare checkout
        return "unknown"


@dataclass(frozen=True)
class Trial:
    """One fully-specified experiment trial inside a campaign."""

    index: int
    trial_id: str
    key: str
    params: Mapping[str, Any]


@dataclass(frozen=True)
class CampaignSpec:
    """A named experiment campaign: a trial kernel plus a parameter grid.

    Parameters
    ----------
    name:
        Campaign identifier (also the on-disk cache directory name).
    trial:
        ``package.module:function`` reference to the trial kernel.  The
        kernel receives one grid point as a dict and returns a mapping of
        JSON-able metrics; it must be a *pure function* of its params.
    grid:
        One parameter dict per trial.  Points must be unique — duplicate
        points would collide in the content-addressed cache.
    version:
        Bump to invalidate cached results when the kernel's semantics
        change without a parameter change.
    description:
        One-line human summary (shown by ``campaign list``).
    """

    name: str
    trial: str
    grid: tuple[Mapping[str, Any], ...]
    version: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not _NAME_PATTERN.fullmatch(self.name):
            raise ValueError(
                f"campaign name must match {_NAME_PATTERN.pattern!r}, "
                f"got {self.name!r}"
            )
        module_name, sep, attr = self.trial.partition(":")
        if not sep or not module_name or not attr:
            raise ValueError(
                "trial must be a 'package.module:function' reference, "
                f"got {self.trial!r}"
            )
        if self.version < 1:
            raise ValueError(f"version must be >= 1, got {self.version}")
        points = tuple(dict(point) for point in self.grid)
        if not points:
            raise ValueError("campaign grid is empty")
        seen: dict[str, int] = {}
        for index, point in enumerate(points):
            encoded = canonical_json(point)
            if encoded in seen:
                raise ValueError(
                    f"duplicate grid point at index {index} "
                    f"(same params as index {seen[encoded]}): {point!r}"
                )
            seen[encoded] = index
        object.__setattr__(self, "grid", points)

    @property
    def trial_count(self) -> int:
        """Number of trials in the grid."""
        return len(self.grid)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able encoding, round-trippable via :meth:`from_dict`.

        This is the wire format the campaign service accepts: a spec
        submitted over HTTP is rebuilt with :meth:`from_dict` on the
        server, so validation (grid uniqueness, name pattern) re-runs
        at the trust boundary.
        """
        return {
            "name": self.name,
            "trial": self.trial,
            "grid": [dict(point) for point in self.grid],
            "version": self.version,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output; validates fully."""
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"spec payload must be a mapping, got {type(payload).__name__}"
            )
        grid = payload.get("grid")
        if not isinstance(grid, Sequence) or isinstance(grid, (str, bytes)):
            raise ValueError("spec payload field 'grid' must be a list of dicts")
        try:
            return cls(
                name=str(payload["name"]),
                trial=str(payload["trial"]),
                grid=tuple(dict(point) for point in grid),
                version=int(payload.get("version", 1)),
                description=str(payload.get("description", "")),
            )
        except KeyError as exc:
            raise ValueError(f"spec payload is missing field {exc}") from exc
        except TypeError as exc:
            raise ValueError(f"malformed spec payload: {exc}") from exc

    def limit(self, count: int) -> "CampaignSpec":
        """A copy truncated to the first ``count`` grid points."""
        if count < 1:
            raise ValueError(f"limit must be >= 1, got {count}")
        return replace(self, grid=self.grid[:count])

    def key_for(self, params: Mapping[str, Any]) -> str:
        """Content-addressed cache key for one grid point."""
        basis = {
            "schema": _KEY_SCHEMA,
            "campaign": self.name,
            "version": self.version,
            "trial": self.trial,
            "code": _package_version(),
            "params": dict(params),
        }
        return hashlib.sha256(canonical_json(basis).encode("utf-8")).hexdigest()

    def trials(self) -> tuple[Trial, ...]:
        """The grid expanded into id-and-key-carrying trials."""
        return tuple(
            Trial(
                index=index,
                trial_id=f"{self.name}/{index:04d}",
                key=self.key_for(params),
                params=params,
            )
            for index, params in enumerate(self.grid)
        )

    def resolve_trial(self) -> Callable[[Mapping[str, Any]], Mapping[str, Any]]:
        """Import and return the trial kernel."""
        return resolve_trial_ref(self.trial)
