"""Trial executors: a crash-isolated process pool and a serial fallback.

Crash isolation is layered:

1. **In-worker capture** — :func:`execute_trial` converts any exception a
   trial raises (including timeouts, enforced with ``SIGALRM``) into a
   ``failed`` report, so ordinary bugs in one trial never take down the
   campaign.
2. **Pool-breakage quarantine** — a trial that kills its worker process
   outright (``os._exit``, segfault, OOM kill) breaks the whole
   :class:`~concurrent.futures.ProcessPoolExecutor`; every outstanding
   future then raises ``BrokenProcessPool`` and the guilty trial cannot
   be told apart from innocent bystanders.  The executor re-runs each
   broken trial alone in a fresh single-worker pool: bystanders complete
   normally, and the trial that breaks its own private pool is recorded
   as ``failed`` with certainty.

Transient failures (a trial raising :class:`TransientTrialError`) are
retried up to ``max_retries`` extra attempts; deterministic trial errors
are not retried.

Workers use the ``fork`` start method where available so trial kernels
referenced by dotted path resolve against the parent's ``sys.path`` and
already-imported modules.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import threading
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.campaign.spec import canonical_json, resolve_trial_ref

__all__ = [
    "ParallelExecutor",
    "SerialExecutor",
    "TransientTrialError",
    "TrialTask",
    "execute_trial",
    "resolve_worker_count",
]

OnResult = Callable[[dict[str, Any]], None]

_LOG = logging.getLogger("repro.campaign.executor")

#: Environment variable overriding the default worker count, shared by
#: :class:`ParallelExecutor` and the campaign-service worker fleet.
WORKER_COUNT_ENV = "REPRO_JOBS"


def resolve_worker_count(explicit: int | None = None) -> int:
    """Worker-process count: explicit argument > ``REPRO_JOBS`` > CPU count.

    The chosen count and where it came from are logged, so a campaign's
    parallelism is never implicit.  Raises :class:`ValueError` for a
    non-positive explicit count or env override.
    """
    if explicit is not None:
        if explicit < 1:
            raise ValueError(f"max_workers must be >= 1, got {explicit}")
        _LOG.info("using %d worker(s) (explicit)", explicit)
        return explicit
    env_value = os.environ.get(WORKER_COUNT_ENV)
    if env_value is not None:
        try:
            count = int(env_value)
        except ValueError as exc:
            raise ValueError(
                f"{WORKER_COUNT_ENV} must be an integer, got {env_value!r}"
            ) from exc
        if count < 1:
            raise ValueError(
                f"{WORKER_COUNT_ENV} must be >= 1, got {count}"
            )
        _LOG.info("using %d worker(s) (from %s)", count, WORKER_COUNT_ENV)
        return count
    count = multiprocessing.cpu_count()
    _LOG.info("using %d worker(s) (cpu count)", count)
    return count


class TransientTrialError(RuntimeError):
    """Raised by a trial to signal a retryable, non-deterministic failure."""


@dataclass(frozen=True)
class TrialTask:
    """One unit of work an executor dispatches (picklable by design)."""

    trial_id: str
    key: str
    trial_ref: str
    params: Mapping[str, Any]
    timeout_s: float | None = None


class _TrialTimeout(Exception):
    """Internal: the per-trial SIGALRM deadline fired."""


def _on_alarm(signum: int, frame: Any) -> None:
    raise _TrialTimeout()


def _validate_metrics(raw: Any) -> dict[str, Any]:
    if not isinstance(raw, Mapping):
        raise TypeError(
            f"trial must return a mapping of metrics, got {type(raw).__name__}"
        )
    metrics = dict(raw)
    canonical_json(metrics)  # rejects non-JSON-able metric values
    return metrics


def execute_trial(task: TrialTask) -> dict[str, Any]:
    """Run one trial to a JSON-able report; trial errors never propagate.

    The per-trial timeout is enforced with ``SIGALRM`` where possible
    (POSIX, main thread); elsewhere the trial runs unbounded.
    """
    start = time.perf_counter()
    outcome, metrics, error, retryable = "completed", None, None, False
    use_alarm = (
        task.timeout_s is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    previous_handler: Any = None
    try:
        if use_alarm:
            previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, float(task.timeout_s))
        trial = resolve_trial_ref(task.trial_ref)
        metrics = _validate_metrics(trial(dict(task.params)))
    except _TrialTimeout:
        outcome = "failed"
        error = f"trial timed out after {task.timeout_s:.1f}s"
    except TransientTrialError as exc:
        outcome, retryable = "failed", True
        error = f"transient failure: {exc}"
    except Exception as exc:
        outcome = "failed"
        error = "".join(traceback.format_exception_only(exc)).strip()
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
    return {
        "trial_id": task.trial_id,
        "key": task.key,
        "outcome": outcome,
        "metrics": metrics,
        "error": error,
        "retryable": retryable,
        "wall_time_s": time.perf_counter() - start,
    }


def _crash_report(task: TrialTask, attempts: int) -> dict[str, Any]:
    return {
        "trial_id": task.trial_id,
        "key": task.key,
        "outcome": "failed",
        "metrics": None,
        "error": "worker process crashed while running the trial",
        "retryable": False,
        "wall_time_s": 0.0,
        "attempts": attempts,
    }


def _check_retries(max_retries: int) -> int:
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    return max_retries


class SerialExecutor:
    """In-process executor: the debugging fallback.

    Trials run one after another in the calling process, so a debugger
    or profiler sees them directly.  Exceptions are still captured as
    ``failed`` reports, but a trial that kills the process kills the
    campaign — use :class:`ParallelExecutor` for untrusted workloads.
    """

    name = "serial"

    def __init__(self, max_retries: int = 1) -> None:
        self.max_retries = _check_retries(max_retries)

    def run(
        self, tasks: Sequence[TrialTask], on_result: OnResult | None = None
    ) -> list[dict[str, Any]]:
        """Execute tasks in order; returns one report per task."""
        reports = []
        for task in tasks:
            attempts = 0
            while True:
                attempts += 1
                report = execute_trial(task)
                report["attempts"] = attempts
                if (
                    report["outcome"] == "failed"
                    and report["retryable"]
                    and attempts <= self.max_retries
                ):
                    continue
                break
            reports.append(report)
            if on_result is not None:
                on_result(report)
        return reports


class ParallelExecutor:
    """Process-pool executor with per-trial timeout and crash quarantine."""

    name = "parallel"

    def __init__(
        self, max_workers: int | None = None, max_retries: int = 1
    ) -> None:
        self.max_workers = resolve_worker_count(max_workers)
        self.max_retries = _check_retries(max_retries)
        if "fork" in multiprocessing.get_all_start_methods():
            self._mp_context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX fallback
            self._mp_context = multiprocessing.get_context()

    def _run_batch(
        self, batch: Sequence[TrialTask], workers: int
    ) -> tuple[list[tuple[TrialTask, dict[str, Any]]], list[TrialTask]]:
        """One pool pass: (finished task/report pairs, pool-breaking tasks)."""
        finished: list[tuple[TrialTask, dict[str, Any]]] = []
        broken: list[TrialTask] = []
        with ProcessPoolExecutor(
            max_workers=min(workers, len(batch)), mp_context=self._mp_context
        ) as pool:
            futures = {pool.submit(execute_trial, task): task for task in batch}
            for future in as_completed(futures):
                task = futures[future]
                try:
                    finished.append((task, future.result()))
                except BrokenExecutor:
                    broken.append(task)
        order = {task.trial_id: index for index, task in enumerate(batch)}
        broken.sort(key=lambda task: order[task.trial_id])
        return finished, broken

    def run(
        self, tasks: Sequence[TrialTask], on_result: OnResult | None = None
    ) -> list[dict[str, Any]]:
        """Execute tasks concurrently; returns reports in task order."""
        reports: dict[str, dict[str, Any]] = {}
        attempts = {task.trial_id: 0 for task in tasks}
        queue: list[TrialTask] = list(tasks)
        quarantine: list[TrialTask] = []

        def record(task: TrialTask, report: dict[str, Any]) -> None:
            reports[task.trial_id] = report
            if on_result is not None:
                on_result(report)

        while queue or quarantine:
            solo = bool(quarantine)
            if solo:
                batch = [quarantine.pop(0)]
            else:
                batch, queue = queue, []
            finished, broken = self._run_batch(batch, 1 if solo else self.max_workers)
            for task, report in finished:
                attempts[task.trial_id] += 1
                report["attempts"] = attempts[task.trial_id]
                if (
                    report["outcome"] == "failed"
                    and report["retryable"]
                    and attempts[task.trial_id] <= self.max_retries
                ):
                    queue.append(task)
                    continue
                record(task, report)
            for task in broken:
                if solo:
                    # This task broke a pool it had to itself: guilty.
                    attempts[task.trial_id] += 1
                    record(task, _crash_report(task, attempts[task.trial_id]))
                else:
                    # Guilt is ambiguous after a shared-pool breakage;
                    # re-run each broken task alone to find the culprit.
                    quarantine.append(task)
        return [reports[task.trial_id] for task in tasks]
