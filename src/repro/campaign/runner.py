"""Campaign orchestration: cache lookup, delta execution, record merge.

:func:`run_campaign` is the one entry point: it expands a spec into
trials, satisfies what it can from the store, hands the remainder to an
executor, persists fresh results, and returns a :class:`CampaignResult`
whose records sit in spec order regardless of completion order — so
callers (benchmarks, the CLI) can rebuild series deterministically.

Failures are first-class data: a crashed or failed trial yields a
``failed`` record instead of an exception, is logged but *not* cached,
and is therefore retried on the next run.  Callers that require a clean
campaign call :meth:`CampaignResult.raise_for_failures`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.campaign.executor import SerialExecutor, TrialTask
from repro.campaign.spec import CampaignSpec, Trial
from repro.campaign.store import CampaignStore
from repro.campaign.telemetry import CampaignTelemetry

__all__ = ["CampaignResult", "TrialRecord", "run_campaign"]

#: Version of the stored record layout.
_RECORD_SCHEMA = 1

Progress = Callable[[Mapping[str, Any]], None]


@dataclass(frozen=True)
class TrialRecord:
    """Final state of one trial after a campaign run."""

    trial_id: str
    key: str
    params: Mapping[str, Any]
    outcome: str
    metrics: Mapping[str, Any] | None
    error: str | None
    attempts: int
    wall_time_s: float
    cached: bool

    @property
    def completed(self) -> bool:
        """Whether the trial produced metrics."""
        return self.outcome == "completed"

    def metric(self, name: str) -> Any:
        """One metric value; raises KeyError with context if absent."""
        if self.metrics is None:
            raise KeyError(
                f"trial {self.trial_id} has no metrics "
                f"(outcome {self.outcome!r}: {self.error})"
            )
        if name not in self.metrics:
            raise KeyError(
                f"trial {self.trial_id} has no metric {name!r}; "
                f"available: {sorted(self.metrics)}"
            )
        return self.metrics[name]

    def matches(self, filters: Mapping[str, Any]) -> bool:
        """Whether this trial's params carry every filter value."""
        return all(self.params.get(k) == v for k, v in filters.items())


class CampaignResult:
    """Ordered trial records plus series-extraction helpers."""

    def __init__(
        self,
        spec: CampaignSpec,
        records: Sequence[TrialRecord],
        telemetry: CampaignTelemetry,
    ) -> None:
        self.spec = spec
        self.records = list(records)
        self.telemetry = telemetry

    @property
    def completed(self) -> list[TrialRecord]:
        """Records of trials that produced metrics."""
        return [r for r in self.records if r.completed]

    @property
    def failed(self) -> list[TrialRecord]:
        """Records of trials that did not complete."""
        return [r for r in self.records if not r.completed]

    @property
    def cached_count(self) -> int:
        """Trials satisfied from the store without executing."""
        return sum(1 for r in self.records if r.cached)

    @property
    def executed_count(self) -> int:
        """Trials actually executed this run."""
        return sum(1 for r in self.records if not r.cached)

    def records_where(self, **filters: Any) -> list[TrialRecord]:
        """Records whose params match the filters, in spec order."""
        return [r for r in self.records if r.matches(filters)]

    def values(self, metric: str, **filters: Any) -> list[Any]:
        """One metric across all trials matching the filters, spec order.

        Raises if no trial matches or any matching trial failed — a
        series with silent holes would corrupt downstream statistics.
        """
        selected = self.records_where(**filters)
        if not selected:
            raise KeyError(
                f"no trials of campaign {self.spec.name!r} match {filters!r}"
            )
        incomplete = [r for r in selected if not r.completed]
        if incomplete:
            first = incomplete[0]
            raise RuntimeError(
                f"{len(incomplete)} matching trial(s) did not complete "
                f"(first: {first.trial_id}: {first.error})"
            )
        return [r.metric(metric) for r in selected]

    def raise_for_failures(self) -> None:
        """Raise RuntimeError if any trial failed, citing the first error."""
        if not self.failed:
            return
        first = self.failed[0]
        raise RuntimeError(
            f"campaign {self.spec.name!r}: {len(self.failed)} of "
            f"{len(self.records)} trial(s) failed "
            f"(first: {first.trial_id}: {first.error})"
        )


def _record_from_cache(trial: Trial, cached: Mapping[str, Any]) -> TrialRecord:
    return TrialRecord(
        trial_id=trial.trial_id,
        key=trial.key,
        params=trial.params,
        outcome="completed",
        metrics=cached.get("metrics"),
        error=None,
        attempts=int(cached.get("attempts", 1)),
        wall_time_s=float(cached.get("wall_time_s", 0.0)),
        cached=True,
    )


def _record_from_report(trial: Trial, report: Mapping[str, Any]) -> TrialRecord:
    return TrialRecord(
        trial_id=trial.trial_id,
        key=trial.key,
        params=trial.params,
        outcome=str(report["outcome"]),
        metrics=report.get("metrics"),
        error=report.get("error"),
        attempts=int(report.get("attempts", 1)),
        wall_time_s=float(report.get("wall_time_s", 0.0)),
        cached=False,
    )


def run_campaign(
    spec: CampaignSpec,
    *,
    store: CampaignStore | None = None,
    executor: Any = None,
    timeout_s: float | None = None,
    force: bool = False,
    progress: Progress | None = None,
    backend: str = "local",
    service_url: str | None = None,
) -> CampaignResult:
    """Run a campaign: serve cached trials, execute the delta, persist.

    Parameters
    ----------
    spec:
        The campaign to run.
    store:
        Trial cache and log; ``None`` disables persistence entirely.
    executor:
        Anything with ``run(tasks, on_result=...)`` — typically a
        :class:`~repro.campaign.executor.ParallelExecutor` or
        :class:`~repro.campaign.executor.SerialExecutor` (the default).
    timeout_s:
        Per-trial wall-time limit enforced by the executor.
    force:
        Ignore cached results (fresh executions still get cached).
    progress:
        Callback invoked once per finished or cache-hit trial.
    backend:
        ``"local"`` executes in this process tree; ``"service"``
        submits to a running campaign service (``service_url``) whose
        worker fleet executes the trials — same result object, same
        record schema.  The service owns its store and cache, so
        ``store``/``executor``/``force`` do not apply there.
    service_url:
        Base URL of the campaign service (``backend="service"`` only).
    """
    if backend == "service":
        if service_url is None:
            raise ValueError('backend="service" requires service_url')
        if force:
            raise ValueError(
                "force=True is not supported by the service backend; "
                "bump the spec version to invalidate cached trials"
            )
        # Imported lazily: repro.service imports repro.campaign, and a
        # local-backend run must not require the service stack at all.
        from repro.service.client import ServiceClient, run_campaign_via_service

        return run_campaign_via_service(
            spec,
            ServiceClient(service_url),
            timeout_s=timeout_s,
            progress=progress,
        )
    if backend != "local":
        raise ValueError(
            f'backend must be "local" or "service", got {backend!r}'
        )
    executor = executor if executor is not None else SerialExecutor()
    telemetry = CampaignTelemetry()
    trials = spec.trials()

    records: dict[str, TrialRecord] = {}
    pending: list[Trial] = []
    for trial in trials:
        cached = None if (store is None or force) else store.load(spec.name, trial.key)
        if cached is None:
            pending.append(trial)
            continue
        record = _record_from_cache(trial, cached)
        records[trial.trial_id] = record
        telemetry.observe_cached(cached)
        if progress is not None:
            progress(
                {
                    "trial_id": trial.trial_id,
                    "outcome": "completed",
                    "cached": True,
                    "attempts": record.attempts,
                    "wall_time_s": 0.0,
                    "error": None,
                }
            )

    by_id = {trial.trial_id: trial for trial in pending}
    tasks = [
        TrialTask(
            trial_id=trial.trial_id,
            key=trial.key,
            trial_ref=spec.trial,
            params=trial.params,
            timeout_s=timeout_s,
        )
        for trial in pending
    ]

    def on_result(report: dict[str, Any]) -> None:
        telemetry.observe_executed(report)
        trial = by_id[report["trial_id"]]
        if store is not None:
            stored = {
                "schema": _RECORD_SCHEMA,
                "campaign": spec.name,
                "spec_version": spec.version,
                "trial_id": trial.trial_id,
                "key": trial.key,
                "params": dict(trial.params),
                "outcome": report["outcome"],
                "metrics": report["metrics"],
                "error": report["error"],
                "attempts": report["attempts"],
                "wall_time_s": report["wall_time_s"],
            }
            store.append_log(spec.name, stored)
            if report["outcome"] == "completed":
                store.save(spec.name, trial.key, stored)
        if progress is not None:
            progress({**report, "cached": False})

    for report in executor.run(tasks, on_result=on_result):
        trial = by_id[report["trial_id"]]
        records[trial.trial_id] = _record_from_report(trial, report)

    return CampaignResult(spec, [records[t.trial_id] for t in trials], telemetry)
