"""One status serializer for every surface that reports campaign state.

``repro campaign status`` (text and ``--json``) and the campaign
service's ``GET /v1/campaigns/<name>`` endpoint all render from
:func:`status_summary`, so a campaign looks the same whether it ran
in-process or behind the service — and the JSON shape can be asserted
once in tests instead of per-surface.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.campaign.store import CampaignStore

__all__ = ["latest_outcomes", "status_summary"]


def latest_outcomes(
    store: CampaignStore, campaign: str
) -> dict[str, dict[str, Any]]:
    """Latest known state per trial: log entries overlaid by the cache.

    The JSONL log carries every executed attempt (including failures);
    the content-addressed cache holds the authoritative completed
    records.  Overlaying the cache last means a trial that failed and
    later completed reports ``completed``.
    """
    latest: dict[str, dict[str, Any]] = {}
    for entry in store.iter_log(campaign):
        trial_id = str(entry.get("trial_id", ""))
        if trial_id:
            latest[trial_id] = entry
    for record in store.cached_records(campaign):
        trial_id = str(record.get("trial_id", ""))
        if trial_id:
            latest[trial_id] = record
    return latest


def _trial_row(trial_id: str, entry: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "trial_id": trial_id,
        "outcome": str(entry.get("outcome", "?")),
        "attempts": int(entry.get("attempts", 1)),
        "wall_time_s": float(entry.get("wall_time_s", 0.0)),
        "error": entry.get("error") or None,
    }


def status_summary(store: CampaignStore, campaign: str) -> dict[str, Any]:
    """JSON-able per-trial outcomes and aggregate counters for a campaign.

    Shape::

        {"campaign": ..., "store": ..., "trial_count": N,
         "outcome_counts": {"completed": ..., "failed": ...},
         "total_wall_s": ..., "mean_wall_s": ...,
         "trials": [{"trial_id", "outcome", "attempts",
                     "wall_time_s", "error"}, ...]}

    ``trials`` is sorted by trial id; an unknown campaign yields zero
    trials rather than an error, so pollers can race submission.
    """
    latest = latest_outcomes(store, campaign)
    trials = [_trial_row(trial_id, latest[trial_id]) for trial_id in sorted(latest)]
    outcome_counts: dict[str, int] = {}
    total_wall = 0.0
    for row in trials:
        outcome_counts[row["outcome"]] = outcome_counts.get(row["outcome"], 0) + 1
        total_wall += row["wall_time_s"]
    return {
        "campaign": campaign,
        "store": str(store.root),
        "trial_count": len(trials),
        "outcome_counts": outcome_counts,
        "total_wall_s": total_wall,
        "mean_wall_s": total_wall / len(trials) if trials else 0.0,
        "trials": trials,
    }
