"""Campaign telemetry: per-trial outcome counters and progress reporting.

This module (like the rest of :mod:`repro.campaign`) is allowed to read
the wall clock — it measures the *orchestration*, not the simulation.
Simulation code stays wall-clock-free (reprolint RL-D003); trial wall
times arrive here as numbers measured by the executor around the whole
trial, never from inside the simulated world.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Mapping, TextIO

__all__ = ["CampaignTelemetry", "ProgressReporter"]


@dataclass
class CampaignTelemetry:
    """Outcome and wall-time counters for one campaign run."""

    completed: int = 0
    failed: int = 0
    cached: int = 0
    retried: int = 0
    executed_wall_s: float = 0.0
    slowest_trial_id: str | None = None
    slowest_wall_s: float = 0.0

    @property
    def executed(self) -> int:
        """Trials actually executed (cache misses)."""
        return self.completed + self.failed

    @property
    def total(self) -> int:
        """All trials accounted for, cached included."""
        return self.executed + self.cached

    def observe_cached(self, record: Mapping[str, Any]) -> None:
        """Count one cache hit."""
        self.cached += 1

    def observe_executed(self, report: Mapping[str, Any]) -> None:
        """Count one executed trial from its executor report."""
        if report["outcome"] == "completed":
            self.completed += 1
        else:
            self.failed += 1
        self.retried += max(0, int(report.get("attempts", 1)) - 1)
        wall = float(report.get("wall_time_s", 0.0))
        self.executed_wall_s += wall
        if wall > self.slowest_wall_s:
            self.slowest_wall_s = wall
            self.slowest_trial_id = str(report["trial_id"])

    def summary(self) -> str:
        """One-line human summary of the run."""
        parts = [
            f"{self.total} trial(s): {self.completed} completed, "
            f"{self.failed} failed, {self.cached} cached"
        ]
        if self.retried:
            parts.append(f"{self.retried} retrie(s)")
        if self.executed:
            mean = self.executed_wall_s / self.executed
            timing = (
                f"{self.executed_wall_s:.1f}s executing "
                f"(mean {mean:.2f}s/trial"
            )
            if self.slowest_trial_id is not None:
                timing += (
                    f", slowest {self.slowest_trial_id} "
                    f"at {self.slowest_wall_s:.2f}s"
                )
            parts.append(timing + ")")
        return "; ".join(parts)


class ProgressReporter:
    """Per-trial progress lines, suitable as a runner ``progress`` hook."""

    def __init__(self, total: int, stream: TextIO | None = None) -> None:
        self.total = total
        self.done = 0
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, report: Mapping[str, Any]) -> None:
        """Report one finished (or cache-hit) trial."""
        self.done += 1
        width = len(str(self.total))
        status = str(report["outcome"])
        if report.get("cached"):
            status += " (cached)"
        elif int(report.get("attempts", 1)) > 1:
            status += f" (attempt {report['attempts']})"
        line = (
            f"[{self.done:>{width}}/{self.total}] {report['trial_id']}: "
            f"{status} ({float(report.get('wall_time_s', 0.0)):.2f}s)"
        )
        error = report.get("error")
        if error:
            line += f" — {error}"
        print(line, file=self.stream)
