"""``python -m repro campaign`` — run, inspect and clean campaigns.

Subcommands:

* ``run``    — execute a campaign (cached trials are skipped; failures
  set a non-zero exit code but never abort the rest of the run);
* ``status`` — per-trial outcomes and timings from the on-disk store;
* ``clean``  — drop a campaign's cache and log;
* ``list``   — the built-in campaign catalogue.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Any

from repro.campaign.store import DEFAULT_STORE_DIR

__all__ = ["configure_parser", "run_campaign_command"]


def _add_cache_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_STORE_DIR,
        help=f"trial store location (default: {DEFAULT_STORE_DIR})",
    )


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the campaign subcommands to an argparse parser."""
    sub = parser.add_subparsers(dest="campaign_command", required=True)

    run_p = sub.add_parser(
        "run", help="run a campaign, resuming from cached trials"
    )
    run_p.add_argument(
        "name",
        help="built-in campaign name or 'module:callable' spec reference",
    )
    run_p.add_argument(
        "--serial",
        action="store_true",
        help="run trials in-process instead of the parallel executor",
    )
    run_p.add_argument(
        "--workers", type=int, default=None, help="worker processes"
    )
    run_p.add_argument(
        "--retries",
        type=int,
        default=1,
        help="max extra attempts for transient failures (default 1)",
    )
    run_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-trial wall-time limit in seconds",
    )
    _add_cache_dir(run_p)
    run_p.add_argument(
        "--no-cache", action="store_true", help="neither read nor write the store"
    )
    run_p.add_argument(
        "--force", action="store_true", help="re-execute even cached trials"
    )
    run_p.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="run only the first N grid points",
    )
    run_p.add_argument(
        "--quiet", action="store_true", help="suppress per-trial progress lines"
    )
    run_p.set_defaults(campaign_func=_cmd_run)

    status_p = sub.add_parser(
        "status", help="summarize recorded per-trial outcomes and timings"
    )
    status_p.add_argument("name", help="campaign name")
    status_p.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable status summary (same shape as "
        "the service's status endpoint)",
    )
    _add_cache_dir(status_p)
    status_p.set_defaults(campaign_func=_cmd_status)

    clean_p = sub.add_parser("clean", help="delete a campaign's cache and log")
    clean_p.add_argument("name", help="campaign name")
    _add_cache_dir(clean_p)
    clean_p.set_defaults(campaign_func=_cmd_clean)

    list_p = sub.add_parser("list", help="list the built-in campaigns")
    list_p.set_defaults(campaign_func=_cmd_list)


def run_campaign_command(args: argparse.Namespace) -> int:
    """Dispatch to the selected campaign subcommand."""
    return int(args.campaign_func(args))


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.campaign.executor import ParallelExecutor, SerialExecutor
    from repro.campaign.experiments import resolve_spec
    from repro.campaign.runner import run_campaign
    from repro.campaign.store import CampaignStore
    from repro.campaign.telemetry import ProgressReporter

    spec = resolve_spec(args.name)
    if args.limit is not None:
        spec = spec.limit(args.limit)
    store = None if args.no_cache else CampaignStore(args.cache_dir)
    if args.serial:
        executor: Any = SerialExecutor(max_retries=args.retries)
    else:
        executor = ParallelExecutor(
            max_workers=args.workers, max_retries=args.retries
        )
    progress = None if args.quiet else ProgressReporter(spec.trial_count)
    result = run_campaign(
        spec,
        store=store,
        executor=executor,
        timeout_s=args.timeout,
        force=args.force,
        progress=progress,
    )
    print(f"campaign {spec.name}: {result.telemetry.summary()}")
    for record in result.failed:
        print(f"  FAILED {record.trial_id}: {record.error}")
    return 1 if result.failed else 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.tables import format_table
    from repro.campaign.status import status_summary
    from repro.campaign.store import CampaignStore

    store = CampaignStore(args.cache_dir)
    summary = status_summary(store, args.name)
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    if not summary["trials"]:
        print(
            f"no recorded trials for campaign {args.name!r} "
            f"under {store.root}"
        )
        return 0
    rows = [
        (
            trial["trial_id"],
            trial["outcome"],
            trial["attempts"],
            f"{trial['wall_time_s']:.2f}",
            str(trial["error"] or ""),
        )
        for trial in summary["trials"]
    ]
    print(
        format_table(
            ["trial", "outcome", "attempts", "wall_s", "error"],
            rows,
            title=f"Campaign {args.name!r} ({store.root})",
        )
    )
    counts = ", ".join(
        f"{count} {outcome}"
        for outcome, count in sorted(summary["outcome_counts"].items())
    )
    print(
        f"{summary['trial_count']} trial(s): {counts}; "
        f"{summary['total_wall_s']:.1f}s total "
        f"({summary['mean_wall_s']:.2f}s mean)"
    )
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    from repro.campaign.store import CampaignStore

    removed = CampaignStore(args.cache_dir).clean(args.name)
    print(f"removed {removed} cached trial(s) for campaign {args.name!r}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.campaign.experiments import BUILTIN_CAMPAIGNS

    rows = []
    for name in sorted(BUILTIN_CAMPAIGNS):
        spec = BUILTIN_CAMPAIGNS[name]()
        rows.append((name, spec.trial_count, spec.description))
    print(format_table(["campaign", "trials", "description"], rows))
    return 0
