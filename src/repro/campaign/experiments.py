"""Built-in campaign definitions for the paper's benchmark experiments.

Each migrated experiment contributes a *trial kernel* (a pure function
from one params dict to a dict of JSON-able metrics, importable by
worker processes) and a spec builder expanding the experiment's
seed × parameter grid.  The benchmark scripts under ``benchmarks/``
rebuild their printed tables from these campaigns' results, and the
``python -m repro campaign`` CLI runs them standalone.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.sim.scenario import ScenarioConfig

__all__ = [
    "BENCH_CONFIG",
    "BUILTIN_CAMPAIGNS",
    "EXP03_ATTACKERS",
    "EXP03_NODE_COUNTS",
    "EXP03_SEEDS",
    "EXP04_ATTACKERS",
    "EXP04_KEY_COUNTS",
    "EXP04_SEEDS",
    "EXP07_ATTACKERS",
    "EXP07_AUDIT_INTERVALS_H",
    "EXP07_SEEDS",
    "EXT04_HONEST_COUNTS",
    "EXT04_SEEDS",
    "exp03_spec",
    "exp03_trial",
    "exp04_spec",
    "exp04_trial",
    "exp07_spec",
    "exp07_trial",
    "exp13_spec",
    "ext04_spec",
    "ext04_trial",
    "resolve_spec",
]

BENCH_CONFIG = ScenarioConfig(node_count=100, key_count=10, horizon_days=42)
"""The benchmark suite's default scenario (overridden per experiment)."""


def _make_attacker(name: str, key_count: int) -> Any:
    """A fresh, single-use attacker controller by catalogue name."""
    from repro.attack.attacker import (
        BlatantAttacker,
        CsaAttacker,
        PlannedAttacker,
    )
    from repro.core.baselines import (
        GreedyWeightPlanner,
        NearestFirstPlanner,
        RandomPlanner,
    )
    from repro.core.windows import StealthPolicy

    if name == "CSA":
        return CsaAttacker(key_count=key_count)
    if name == "CSA-no-windows":
        return PlannedAttacker(stealth=StealthPolicy.none(), key_count=key_count)
    if name == "Blatant":
        return BlatantAttacker(key_count=key_count)
    if name == "Greedy-Weight":
        return PlannedAttacker(planner=GreedyWeightPlanner(), key_count=key_count)
    if name == "Nearest-First":
        return PlannedAttacker(planner=NearestFirstPlanner(), key_count=key_count)
    if name == "Random":
        return PlannedAttacker(planner=RandomPlanner(0), key_count=key_count)
    raise ValueError(f"unknown attacker {name!r}")


# ----------------------------------------------------------------------
# EXP-03 — exhausted key-node ratio vs network size (headline figure)
# ----------------------------------------------------------------------
EXP03_NODE_COUNTS = (50, 100, 150, 200, 250)
EXP03_SEEDS = (1, 2, 3)
EXP03_ATTACKERS = ("CSA", "Greedy-Weight", "Nearest-First", "Random")


def exp03_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    """One EXP-03 trial: one attacker on one network size and seed."""
    from repro.sim.runner import run_attack

    cfg = BENCH_CONFIG.with_(node_count=params["node_count"])
    controller = _make_attacker(params["attacker"], cfg.key_count)
    result = run_attack(cfg, params["seed"], controller=controller)
    return {
        "exhausted_key_ratio": result.exhausted_key_ratio(),
        "exhausted_key_count": len(result.exhausted_key_ids()),
        "detected": bool(result.detected),
    }


def exp03_spec() -> Any:
    """EXP-03 grid: network sizes x attackers x seeds (60 trials)."""
    from repro.campaign.spec import CampaignSpec, parameter_grid

    return CampaignSpec(
        name="exp03",
        trial="repro.campaign.experiments:exp03_trial",
        grid=parameter_grid(
            node_count=EXP03_NODE_COUNTS,
            attacker=EXP03_ATTACKERS,
            seed=EXP03_SEEDS,
        ),
        description="exhausted key-node ratio vs network size (headline figure)",
    )


# ----------------------------------------------------------------------
# EXP-04 — exhaustion vs number of key nodes targeted
# ----------------------------------------------------------------------
EXP04_KEY_COUNTS = (5, 10, 15, 20, 25)
EXP04_SEEDS = (1, 2, 3)
EXP04_ATTACKERS = ("CSA", "Greedy-Weight")


def exp04_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    """One EXP-04 trial: one attack ambition level on one seed."""
    from repro.sim.runner import run_attack

    cfg = BENCH_CONFIG.with_(node_count=150, key_count=params["key_count"])
    controller = _make_attacker(params["attacker"], cfg.key_count)
    result = run_attack(cfg, params["seed"], controller=controller)
    return {
        "exhausted_key_ratio": result.exhausted_key_ratio(),
        "exhausted_key_count": len(result.exhausted_key_ids()),
        "detected": bool(result.detected),
    }


def exp04_spec() -> Any:
    """EXP-04 grid: key-node counts x attackers x seeds (30 trials)."""
    from repro.campaign.spec import CampaignSpec, parameter_grid

    return CampaignSpec(
        name="exp04",
        trial="repro.campaign.experiments:exp04_trial",
        grid=parameter_grid(
            key_count=EXP04_KEY_COUNTS,
            attacker=EXP04_ATTACKERS,
            seed=EXP04_SEEDS,
        ),
        description="exhaustion vs number of key nodes targeted (N=150)",
    )


# ----------------------------------------------------------------------
# EXP-07 — detection rate vs defender audit intensity
# ----------------------------------------------------------------------
EXP07_AUDIT_INTERVALS_H = (12.0, 24.0, 48.0, 96.0)
EXP07_SEEDS = (1, 2, 3, 4)
EXP07_ATTACKERS = ("CSA", "CSA-no-windows", "Blatant")


def exp07_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    """One EXP-07 trial: one attacker under one audit intensity."""
    from repro.sim.runner import run_attack

    controller = _make_attacker(params["attacker"], BENCH_CONFIG.key_count)
    result = run_attack(
        BENCH_CONFIG,
        params["seed"],
        controller=controller,
        audit_interval_s=params["audit_interval_h"] * 3600.0,
    )
    return {
        "exhausted_key_ratio": result.exhausted_key_ratio(),
        "detected": bool(result.detected),
    }


def exp07_spec() -> Any:
    """EXP-07 grid: audit intervals x attackers x seeds (48 trials)."""
    from repro.campaign.spec import CampaignSpec, parameter_grid

    return CampaignSpec(
        name="exp07",
        trial="repro.campaign.experiments:exp07_trial",
        grid=parameter_grid(
            audit_interval_h=EXP07_AUDIT_INTERVALS_H,
            attacker=EXP07_ATTACKERS,
            seed=EXP07_SEEDS,
        ),
        description="detection rate vs voltage-audit intensity",
    )


# ----------------------------------------------------------------------
# EXT-04 — one compromised charger inside an honest fleet
# ----------------------------------------------------------------------
EXT04_HONEST_COUNTS = (0, 1, 2, 3)
EXT04_SEEDS = (1, 2, 3)


def ext04_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    """One EXT-04 trial: CSA against ``honest_count`` benign co-chargers."""
    from repro.attack.attacker import CsaAttacker
    from repro.detection.auditors import default_detector_suite
    from repro.mc.charger import ChargeMode
    from repro.sim.benign import BenignController
    from repro.sim.wrsn_sim import WrsnSimulation

    seed = params["seed"]
    extra = [
        (BENCH_CONFIG.build_charger(), BenignController())
        for _ in range(params["honest_count"])
    ]
    sim = WrsnSimulation(
        BENCH_CONFIG.build_network(seed=seed),
        BENCH_CONFIG.build_charger(),
        CsaAttacker(key_count=BENCH_CONFIG.key_count),
        detectors=default_detector_suite(seed),
        horizon_s=BENCH_CONFIG.horizon_s,
        extra_units=extra,
    )
    result = sim.run()
    spoofs = sum(
        1 for s in result.trace.services() if s.mode == ChargeMode.SPOOF
    )
    return {
        "exhausted_key_ratio": result.exhausted_key_ratio(),
        "detected": bool(result.detected),
        "spoof_services": spoofs,
    }


def ext04_spec() -> Any:
    """EXT-04 grid: honest co-charger counts x seeds (12 trials)."""
    from repro.campaign.spec import CampaignSpec, parameter_grid

    return CampaignSpec(
        name="ext04",
        trial="repro.campaign.experiments:ext04_trial",
        grid=parameter_grid(
            honest_count=EXT04_HONEST_COUNTS,
            seed=EXT04_SEEDS,
        ),
        description="CSA vs honest fleet redundancy",
    )


def exp13_spec() -> Any:
    """EXP-13: twin vs periodic audits across the scenario matrix."""
    # Imported lazily: the scenario registry sits above the campaign layer.
    from repro.scenarios.trials import scenario_matrix_spec

    return scenario_matrix_spec()


#: Spec builders the CLI can run by name.
BUILTIN_CAMPAIGNS: dict[str, Callable[[], Any]] = {
    "exp03": exp03_spec,
    "exp04": exp04_spec,
    "exp07": exp07_spec,
    "exp13": exp13_spec,
    "ext04": ext04_spec,
}


def resolve_spec(name_or_ref: str) -> Any:
    """A CampaignSpec from a built-in name or ``module:callable`` reference.

    A reference's callable is invoked with no arguments if it is not
    already a :class:`~repro.campaign.spec.CampaignSpec`.
    """
    from importlib import import_module

    from repro.campaign.spec import CampaignSpec

    if name_or_ref in BUILTIN_CAMPAIGNS:
        return BUILTIN_CAMPAIGNS[name_or_ref]()
    module_name, sep, attr = name_or_ref.partition(":")
    if not sep or not module_name or not attr:
        known = ", ".join(sorted(BUILTIN_CAMPAIGNS))
        raise ValueError(
            f"unknown campaign {name_or_ref!r}; built-ins: {known} "
            "(or pass a 'module:callable' spec reference)"
        )
    try:
        target = getattr(import_module(module_name), attr)
    except AttributeError as exc:
        raise ValueError(
            f"module {module_name!r} has no attribute {attr!r}"
        ) from exc
    spec = target() if not isinstance(target, CampaignSpec) else target
    if not isinstance(spec, CampaignSpec):
        raise ValueError(
            f"{name_or_ref!r} did not produce a CampaignSpec "
            f"(got {type(spec).__name__})"
        )
    return spec
