"""Campaign runner: parallel, cached, crash-isolated experiment sweeps.

The subsystem splits into four layers:

* :mod:`repro.campaign.spec` — declarative :class:`CampaignSpec` grids
  with content-addressed trial cache keys;
* :mod:`repro.campaign.executor` — the crash-isolated process-pool
  executor (per-trial timeout, bounded transient retry) and the serial
  debugging fallback;
* :mod:`repro.campaign.store` — the on-disk trial cache and JSONL
  artifact log enabling delta resume;
* :mod:`repro.campaign.runner` / :mod:`repro.campaign.telemetry` — the
  orchestration entry point and its counters/progress reporting.

:mod:`repro.campaign.experiments` defines the built-in campaigns behind
``python -m repro campaign`` and the migrated benchmark scripts.  See
``docs/campaigns.md`` for the full story.
"""

from repro.campaign.executor import (
    ParallelExecutor,
    SerialExecutor,
    TransientTrialError,
    TrialTask,
)
from repro.campaign.runner import CampaignResult, TrialRecord, run_campaign
from repro.campaign.spec import CampaignSpec, Trial, parameter_grid
from repro.campaign.status import latest_outcomes, status_summary
from repro.campaign.store import CampaignStore
from repro.campaign.telemetry import CampaignTelemetry, ProgressReporter

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "CampaignStore",
    "CampaignTelemetry",
    "ParallelExecutor",
    "ProgressReporter",
    "SerialExecutor",
    "TransientTrialError",
    "Trial",
    "TrialRecord",
    "TrialTask",
    "latest_outcomes",
    "parameter_grid",
    "run_campaign",
    "status_summary",
]
