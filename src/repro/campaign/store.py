"""On-disk campaign results: content-addressed cache + JSONL artifact log.

Layout under the store root::

    <root>/<campaign>/trials/<key[:2]>/<key>.json   completed-trial records
    <root>/<campaign>/log.jsonl                     append-only execution log

The trial cache holds only *completed* trials — failures are logged but
never cached, so a resumed campaign retries them.  Records are written
atomically (temp file + rename) so a crash mid-write can at worst leave
a stray temp file, never a truncated record; unreadable records are
treated as cache misses rather than errors.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = ["CampaignStore", "DEFAULT_STORE_DIR"]

#: Default cache root, relative to the working directory.
DEFAULT_STORE_DIR = Path(".repro_campaigns")


class CampaignStore:
    """Filesystem-backed trial cache and artifact log."""

    def __init__(self, root: str | Path = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def campaign_dir(self, campaign: str) -> Path:
        """Directory holding one campaign's cache and log."""
        return self.root / campaign

    def trial_path(self, campaign: str, key: str) -> Path:
        """Cache path for one trial record (sharded by key prefix)."""
        return self.campaign_dir(campaign) / "trials" / key[:2] / f"{key}.json"

    def log_path(self, campaign: str) -> Path:
        """The campaign's append-only JSONL execution log."""
        return self.campaign_dir(campaign) / "log.jsonl"

    # ------------------------------------------------------------------
    # Trial cache
    # ------------------------------------------------------------------
    def load(self, campaign: str, key: str) -> dict[str, Any] | None:
        """A cached completed-trial record, or None on any kind of miss."""
        path = self.trial_path(campaign, key)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict):
            return None
        if record.get("key") != key or record.get("outcome") != "completed":
            return None
        return record

    def save(self, campaign: str, key: str, record: Mapping[str, Any]) -> Path:
        """Atomically persist one completed-trial record."""
        path = self.trial_path(campaign, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(record, sort_keys=True, indent=1) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    def cached_records(self, campaign: str) -> list[dict[str, Any]]:
        """Every readable cached record of a campaign, sorted by trial id."""
        trials_dir = self.campaign_dir(campaign) / "trials"
        records = []
        for path in sorted(trials_dir.glob("*/*.json")):
            record = self.load(campaign, path.stem)
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: str(r.get("trial_id", "")))
        return records

    # ------------------------------------------------------------------
    # Artifact log
    # ------------------------------------------------------------------
    def append_log(self, campaign: str, record: Mapping[str, Any]) -> None:
        """Append one execution record to the campaign's JSONL log."""
        path = self.log_path(campaign)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def iter_log(self, campaign: str) -> Iterator[dict[str, Any]]:
        """Log records oldest-first; unparsable lines are skipped.

        A crash during :meth:`append_log` can leave a torn final line —
        truncated JSON, possibly cut mid multi-byte UTF-8 character.
        Lines are therefore read as bytes and decoded individually, so a
        torn tail (or any other corrupt line) is skipped instead of
        aborting the whole iteration with a decode error.
        """
        path = self.log_path(campaign)
        try:
            handle = path.open("rb")
        except OSError:
            return
        with handle:
            for raw in handle:
                try:
                    line = raw.decode("utf-8")
                except UnicodeDecodeError:
                    continue
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def campaigns(self) -> list[str]:
        """Names of campaigns with any on-disk state."""
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def clean(self, campaign: str) -> int:
        """Remove a campaign's cache and log; returns cached trials removed."""
        target = self.campaign_dir(campaign)
        if not target.is_dir():
            return 0
        count = sum(1 for _ in (target / "trials").glob("*/*.json"))
        shutil.rmtree(target)
        return count
