"""Defensive countermeasures against charging spoofing.

The base detectors in :mod:`repro.detection.auditors` are behavioural:
they reason about deaths, telemetry and claims.  This module adds the
*physical-layer* defence the attack family motivates as future work —
in-service harvest verification:

**Charge probing.**  During a charging session the node briefly perturbs
its own receive chain (detunes the rectenna's matching network or
switches to a secondary antenna a few centimetres away) and checks that
the harvested power *tracks the perturbation* the way a genuine
beamformed field would.  A null-steered field fails the check trivially
— there is no harvested power to track.  Probing needs extra RF hardware
and consumes energy, so real deployments would enable it on a fraction
of services; :class:`ChargeVerificationDefense` models that fraction.

A spoofed service that is probed is caught *during the service*, not
hours later — this is the defence that actually closes the attack, and
experiment EXT-02 quantifies the probe rate it takes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.detection.monitors import Detector
from repro.sim.events import DetectionRaised, ServiceCompleted
from repro.utils.rng import coerce_rng
from repro.utils.validation import check_probability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.wrsn_sim import WrsnSimulation

__all__ = ["ChargeVerificationDefense"]


class ChargeVerificationDefense(Detector):
    """In-service harvest probing on a random fraction of services.

    Parameters
    ----------
    probe_rate:
        Probability that any given charging service is probed.  Probing
        hardware is assumed on every node; the rate models its duty
        cycle (energy cost).
    mismatch_ratio:
        The probe flags the service when the measured harvest is below
        this fraction of the charger's claimed delivery rate.
    seed:
        Probe-scheduling randomness.

    The probe measures ground truth *during* the service, so unlike the
    telemetry detectors it cannot be fooled by the victim's own spoofed
    belief: ``delivered_j`` (what the battery actually gained) is
    compared against ``claimed_j`` directly.
    """

    name = "charge-verification"

    def __init__(
        self,
        probe_rate: float = 0.25,
        mismatch_ratio: float = 0.5,
        seed: int | np.random.Generator = 0,
    ) -> None:
        super().__init__()
        self.probe_rate = check_probability("probe_rate", probe_rate)
        self.mismatch_ratio = check_probability("mismatch_ratio", mismatch_ratio)
        self._rng = coerce_rng(seed, "charge-verification")
        self.probes_run = 0

    def observe_service(
        self, event: ServiceCompleted, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        if event.claimed_j <= 0.0:
            return None
        if float(self._rng.random()) >= self.probe_rate:
            return None
        self.probes_run += 1
        if event.delivered_j < self.mismatch_ratio * event.claimed_j:
            return self._raise(
                event.time,
                f"in-service probe at node {event.node_id}: charger claims "
                f"{event.claimed_j:.0f} J but the rectenna harvested "
                f"{event.delivered_j:.0f} J",
                node_id=event.node_id,
            )
        return None
