"""The concrete base-station detectors.

Each detector captures one natural defence and one reason a naive attack
fails; together they define the stealth envelope CSA plans inside:

========================  =============================================
Detector                  What defeats a naive attacker
========================  =============================================
DeathAfterChargeAuditor   killing victims too close to the fake charge
RandomVoltageAuditor      leaving victims spoofed-but-alive too long
TrajectoryAnomalyDetector claiming charges the victim never noticed
NeglectMonitor            abandoning the charging duty altogether
========================  =============================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.detection.monitors import AuditOutcome, Detector
from repro.sim.events import (
    AuditPerformed,
    DetectionRaised,
    NodeDied,
    RequestIssued,
    ServiceCompleted,
)
from repro.utils.rng import coerce_rng
from repro.utils.validation import (
    check_positive,
    check_probability,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.wrsn_sim import WrsnSimulation

__all__ = [
    "DeathAfterChargeAuditor",
    "NeglectMonitor",
    "RandomVoltageAuditor",
    "TrajectoryAnomalyDetector",
    "default_detector_suite",
]


class DeathAfterChargeAuditor(Detector):
    """Flags nodes that die during or shortly after a completed charge.

    A genuinely charged node has a full battery; it should live for its
    whole discharge cycle and re-request long before dying.  A node that
    drops dead within ``grace_s`` of a charge is therefore either broken
    hardware or evidence of a fake charge.  The auditor tolerates
    ``flag_threshold - 1`` such deaths (sporadic hardware failures exist)
    before raising the alarm.

    Parameters
    ----------
    grace_s:
        The suspicious-death window after a service ends.  Default 2 h.
    flag_threshold:
        Number of suspicious deaths required to conclude malice.
    """

    name = "death-after-charge"

    def __init__(self, grace_s: float = 7_200.0, flag_threshold: int = 1) -> None:
        super().__init__()
        self.grace_s = check_positive("grace_s", grace_s)
        if flag_threshold < 1:
            raise ValueError(f"flag_threshold must be >= 1, got {flag_threshold}")
        self.flag_threshold = flag_threshold
        self.flags: list[tuple[float, int]] = []
        self._last_service_end: dict[int, float] = {}

    def observe_service(
        self, event: ServiceCompleted, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        self._last_service_end[event.node_id] = event.time
        return None

    def observe_death(
        self, event: NodeDied, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        last_end = self._last_service_end.get(event.node_id)
        if last_end is None:
            return None
        if event.time - last_end <= self.grace_s:
            self.flags.append((event.time, event.node_id))
            if len(self.flags) >= self.flag_threshold:
                return self._raise(
                    event.time,
                    f"{len(self.flags)} node(s) died within {self.grace_s:.0f}s "
                    "of a completed charge",
                    node_id=event.node_id,
                )
        return None


class RandomVoltageAuditor(Detector):
    """Poisson spot-audits of recently charged nodes' true voltage.

    Telemetry is cheap but spoofable (the node itself is fooled); a
    calibrated voltage read-out is trustworthy but expensive, so the base
    station samples: at exponential intervals it picks one alive node
    charged within the lookback window and compares true energy against
    the node's belief.  A spoofed node fails the comparison instantly.

    This detector is why CSA caps each victim's *exposure* — the time it
    spends spoofed-but-alive.

    Parameters
    ----------
    mean_interval_s:
        Mean seconds between audits.  Default 2 days — calibrated voltage
        read-outs are expensive maintenance operations, not telemetry.
    lookback_s:
        Only nodes charged within this window are audit candidates.
    mismatch_ratio:
        Alarm when true energy < ``mismatch_ratio`` × believed energy.
    seed:
        Audit-timing and target-choice randomness.
    """

    name = "voltage-audit"

    def __init__(
        self,
        mean_interval_s: float = 172_800.0,
        lookback_s: float = 604_800.0,
        mismatch_ratio: float = 0.5,
        seed: int | np.random.Generator = 0,
    ) -> None:
        super().__init__()
        self.mean_interval_s = check_positive("mean_interval_s", mean_interval_s)
        self.lookback_s = check_positive("lookback_s", lookback_s)
        self.mismatch_ratio = check_probability("mismatch_ratio", mismatch_ratio)
        self._rng = coerce_rng(seed, "voltage-auditor")
        self._recent_services: dict[int, float] = {}
        self.audits_performed = 0

    def observe_service(
        self, event: ServiceCompleted, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        self._recent_services[event.node_id] = event.time
        return None

    def next_audit_time(self, now: float) -> float | None:
        return now + float(self._rng.exponential(self.mean_interval_s))

    def perform_audit(self, now: float, sim: "WrsnSimulation") -> AuditOutcome:
        # Only alive, *reachable* nodes can answer an audit query: a node
        # stranded from the base station is out of contact entirely.
        # Liveness comes straight off the ledger's alive array, not a
        # per-node object walk.
        tree = sim.network.routing_tree
        alive = sim.network.alive_mask()
        candidates = sorted(
            node_id
            for node_id, when in self._recent_services.items()
            if now - when <= self.lookback_s
            and alive[node_id]
            and tree.is_connected(node_id)
        )
        if not candidates:
            return AuditOutcome()
        node_id = int(candidates[self._rng.integers(0, len(candidates))])
        node = sim.network.nodes[node_id]
        self.audits_performed += 1
        mismatch = node.energy_j < self.mismatch_ratio * node.believed_energy_j
        audit = AuditPerformed(
            time=now,
            detector=self.name,
            node_id=node_id,
            true_energy_j=node.energy_j,
            believed_energy_j=node.believed_energy_j,
            mismatch=mismatch,
        )
        detection = None
        if mismatch:
            detection = self._raise(
                now,
                f"audited node {node_id} holds {node.energy_j:.0f} J but "
                f"believes {node.believed_energy_j:.0f} J",
                node_id=node_id,
            )
        return AuditOutcome(audit=audit, detection=detection)


class TrajectoryAnomalyDetector(Detector):
    """Cross-checks the charger's claims against node telemetry.

    After every claimed service the base station reads the victim's own
    (believed) energy report.  A claim of delivering ``claimed_j`` joules
    that leaves the victim reporting far less than that is a lie the
    victim itself exposes — which is exactly why a competent spoofer must
    radiate and fool the victim's indicator, not merely park and log.

    Parameters
    ----------
    tolerance:
        Fraction of the claim the telemetry may fall short by before the
        alarm fires.  Default 0.25.
    """

    name = "trajectory-anomaly"

    def __init__(self, tolerance: float = 0.25) -> None:
        super().__init__()
        self.tolerance = check_probability("tolerance", tolerance)

    def observe_service(
        self, event: ServiceCompleted, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        if event.claimed_j <= 0.0:
            return None
        expected = min(event.battery_capacity_j, event.claimed_j)
        if event.believed_energy_after_j < expected * (1.0 - self.tolerance):
            return self._raise(
                event.time,
                f"charger claimed {event.claimed_j:.0f} J to node "
                f"{event.node_id} but its telemetry reports only "
                f"{event.believed_energy_after_j:.0f} J",
                node_id=event.node_id,
            )
        return None


class NeglectMonitor(Detector):
    """Alarms when too many requesters die unserved.

    Even a charger that spoofs flawlessly must still *behave* like a
    charger.  This monitor tracks the fraction of charging requests whose
    node died before any service arrived; past ``expiry_threshold`` (with
    at least ``min_requests`` observed) the base station concludes the
    charger has abandoned its duty.

    Parameters
    ----------
    expiry_threshold:
        Tolerated fraction of expired (died-unserved) requests.
    min_requests:
        Minimum requests observed before the ratio is meaningful.
    """

    name = "neglect"

    def __init__(self, expiry_threshold: float = 0.3, min_requests: int = 10) -> None:
        super().__init__()
        self.expiry_threshold = check_probability(
            "expiry_threshold", expiry_threshold
        )
        if min_requests < 1:
            raise ValueError(f"min_requests must be >= 1, got {min_requests}")
        self.min_requests = min_requests
        self.total_requests = 0
        self.expired_requests = 0
        self._outstanding: set[int] = set()

    def observe_request(
        self, event: RequestIssued, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        if event.node_id not in self._outstanding:
            self.total_requests += 1
            self._outstanding.add(event.node_id)
        return None

    def observe_service(
        self, event: ServiceCompleted, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        self._outstanding.discard(event.node_id)
        return None

    def observe_death(
        self, event: NodeDied, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        if event.node_id not in self._outstanding:
            return None
        self._outstanding.discard(event.node_id)
        self.expired_requests += 1
        if self.total_requests < self.min_requests:
            return None
        ratio = self.expired_requests / self.total_requests
        if ratio > self.expiry_threshold:
            return self._raise(
                event.time,
                f"{self.expired_requests}/{self.total_requests} charging "
                f"requests expired unserved ({ratio:.0%})",
                node_id=event.node_id,
            )
        return None


def default_detector_suite(
    seed: int = 0,
    *,
    audit_interval_s: float | None = None,
    include_twin: bool = False,
) -> list[Detector]:
    """The full defender loadout with default thresholds.

    ``audit_interval_s`` overrides the voltage auditor's mean audit
    interval through its constructor — the supported way to sweep audit
    intensity (EXP-07), rather than locating the auditor by name in the
    returned list and mutating it in place.

    ``include_twin`` appends a default-configured
    :class:`~repro.twin.detector.TwinDetector` — an explicit constructor
    flag, again instead of post-hoc list surgery.  The caller still owns
    the wiring of its observation stream: attach a
    :class:`~repro.twin.feed.SimStreamPublisher` for the twin's
    ``stream`` to the simulation's hooks (``run_attack(..., twin=True)``
    does both).  Without a publisher the twin simply observes nothing.
    The periodic-audit-only suite (the default) is unchanged by the flag.
    """
    if audit_interval_s is None:
        voltage_auditor = RandomVoltageAuditor(seed=seed)
    else:
        voltage_auditor = RandomVoltageAuditor(
            mean_interval_s=audit_interval_s, seed=seed
        )
    suite: list[Detector] = [
        DeathAfterChargeAuditor(),
        voltage_auditor,
        TrajectoryAnomalyDetector(),
        NeglectMonitor(),
    ]
    if include_twin:
        # Imported lazily: detection is a lower layer than twin (twin
        # subclasses Detector), so a module-level import would be a cycle.
        from repro.twin.detector import TwinDetector

        suite.append(TwinDetector())
    return suite
