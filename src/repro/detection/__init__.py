"""Defender substrate: base-station detectors against charging anomalies.

The abstract claims CSA exhausts key nodes *without being detected*; to
make that claim falsifiable this package implements the natural detectors
a WRSN base station would run (reconstruction R5 in DESIGN.md):

* :class:`DeathAfterChargeAuditor` — a node dying during, or within a
  grace period of, a completed charge is flagged.
* :class:`RandomVoltageAuditor` — Poisson spot-audits compare a recently
  charged node's true energy against its reported belief.
* :class:`TrajectoryAnomalyDetector` — the charger's service claims must
  be reflected in the victim's own telemetry.
* :class:`NeglectMonitor` — too many requesters dying unserved means the
  charger is not doing its job.

Naive attacks trip one or more of these; CSA's time-window constraints
exist precisely to evade the first two, and its emission + cover traffic
evade the last two.
"""

from repro.detection.auditors import (
    DeathAfterChargeAuditor,
    NeglectMonitor,
    RandomVoltageAuditor,
    TrajectoryAnomalyDetector,
    default_detector_suite,
)
from repro.detection.countermeasures import ChargeVerificationDefense
from repro.detection.metrics import (
    DetectionSummary,
    LatencySummary,
    detection_rate,
    summarize_detections,
    summarize_latencies,
)
from repro.detection.monitors import Detector

__all__ = [
    "ChargeVerificationDefense",
    "DeathAfterChargeAuditor",
    "DetectionSummary",
    "Detector",
    "LatencySummary",
    "NeglectMonitor",
    "RandomVoltageAuditor",
    "TrajectoryAnomalyDetector",
    "default_detector_suite",
    "detection_rate",
    "summarize_detections",
    "summarize_latencies",
]
