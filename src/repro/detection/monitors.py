"""Detector framework.

A detector is a stateful observer of the simulation trace plus, for the
sampling auditors, a source of scheduled audit times.  Observation hooks
return a :class:`~repro.sim.events.DetectionRaised` record when (and only
when) the detector concludes the charger is malicious; the simulation
traces it and, optionally, halts.

Detectors never see ground truth they could not plausibly have: they see
service *claims*, node *telemetry* (believed energy), deaths, and — only
inside an explicit audit — a node's true voltage.
"""

from __future__ import annotations

from abc import ABC
from typing import TYPE_CHECKING

from repro.sim.events import (
    DetectionRaised,
    NodeDied,
    RequestIssued,
    ServiceCompleted,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.wrsn_sim import WrsnSimulation

__all__ = ["AuditOutcome", "Detector"]


class AuditOutcome:
    """Result of one scheduled audit: the audit record and any alarm."""

    def __init__(self, audit=None, detection: DetectionRaised | None = None) -> None:
        self.audit = audit
        self.detection = detection


class Detector(ABC):
    """Base class for all base-station detectors.

    Subclasses override the hooks they care about; all hooks default to
    "no alarm".  ``detected`` latches on the first alarm.
    """

    name = "detector"

    def __init__(self) -> None:
        self.detected = False
        self.detection_time: float | None = None
        self.detection_reason: str | None = None

    def _raise(
        self, time: float, reason: str, node_id: int | None = None
    ) -> DetectionRaised:
        """Latch the alarm and build the trace record."""
        if not self.detected:
            self.detected = True
            self.detection_time = time
            self.detection_reason = reason
        return DetectionRaised(
            time=time, detector=self.name, reason=reason, node_id=node_id
        )

    # ------------------------------------------------------------------
    # Observation hooks
    # ------------------------------------------------------------------
    def observe_request(
        self, event: RequestIssued, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        """A node asked for charging."""
        return None

    def observe_service(
        self, event: ServiceCompleted, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        """The charger claims to have completed a service."""
        return None

    def observe_death(
        self, event: NodeDied, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        """A node died."""
        return None

    # ------------------------------------------------------------------
    # Scheduled audits (sampling detectors only)
    # ------------------------------------------------------------------
    def next_audit_time(self, now: float) -> float | None:
        """When this detector next wants to run an audit (``None`` = never)."""
        return None

    def perform_audit(self, now: float, sim: "WrsnSimulation") -> AuditOutcome:
        """Run the scheduled audit; default does nothing."""
        return AuditOutcome()
