"""Detection-side metrics across repeated trials.

Detection *latency* needs care in the never-detected case: a run the
detector never catches has no latency — reporting it as ``0`` would
flatter the detector and ``inf`` would poison every mean.  The latency
summaries here treat undetected runs as **right-censored** at the
observation horizon and say so explicitly: detected-only statistics and
censored statistics are separate fields, never conflated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import median
from typing import Iterable, Sequence

from repro.utils.validation import check_positive

__all__ = [
    "DetectionSummary",
    "LatencySummary",
    "detection_rate",
    "summarize_detections",
    "summarize_latencies",
]


@dataclass(frozen=True)
class DetectionSummary:
    """Aggregate detection statistics over a batch of runs.

    Attributes
    ----------
    trials:
        Number of runs observed.
    detected:
        Runs in which at least one detector fired.
    rate:
        ``detected / trials``.
    mean_time_to_detection_s:
        Mean first-alarm time over the detected runs (``None`` when no
        run was detected).
    by_detector:
        Detector name → number of runs in which it fired first.
    """

    trials: int
    detected: int
    rate: float
    mean_time_to_detection_s: float | None
    by_detector: dict[str, int]


def detection_rate(outcomes: Iterable[bool]) -> float:
    """Fraction of trials in which the attack was detected."""
    outcomes = list(outcomes)
    if not outcomes:
        raise ValueError("no trials to summarise")
    return sum(1 for o in outcomes if o) / len(outcomes)


def summarize_detections(
    first_alarms: Sequence[tuple[str, float] | None],
) -> DetectionSummary:
    """Summarise per-run first alarms.

    Parameters
    ----------
    first_alarms:
        One entry per run: ``(detector_name, time)`` of the first alarm,
        or ``None`` for an undetected run.
    """
    trials = len(first_alarms)
    if trials == 0:
        raise ValueError("no trials to summarise")
    hits = [a for a in first_alarms if a is not None]
    by_detector: dict[str, int] = {}
    for name, _time in hits:
        by_detector[name] = by_detector.get(name, 0) + 1
    mean_time = sum(t for _n, t in hits) / len(hits) if hits else None
    return DetectionSummary(
        trials=trials,
        detected=len(hits),
        rate=len(hits) / trials,
        mean_time_to_detection_s=mean_time,
        by_detector=by_detector,
    )


@dataclass(frozen=True)
class LatencySummary:
    """Detection-latency statistics with explicit censoring.

    Attributes
    ----------
    trials:
        Number of runs observed.
    detected:
        Runs with a latency (the detector fired).
    censored:
        Runs without one — censored at ``censored_at_s``, *not* counted
        as latency 0 or infinity.
    rate:
        ``detected / trials``.
    censored_at_s:
        The observation horizon undetected runs are censored at.
    median_latency_s, mean_latency_s:
        Over **detected runs only**; ``None`` when nothing was detected.
    median_censored_latency_s:
        Median with every undetected run counted at the censoring
        horizon — the conservative cross-detector comparison statistic
        (a detector that never fires scores the full horizon, a fast one
        scores its real latency).
    """

    trials: int
    detected: int
    censored: int
    rate: float
    censored_at_s: float
    median_latency_s: float | None
    mean_latency_s: float | None
    median_censored_latency_s: float


def summarize_latencies(
    latencies: Sequence[float | None], censored_at_s: float
) -> LatencySummary:
    """Summarise per-run detection latencies with right-censoring.

    Parameters
    ----------
    latencies:
        One entry per run: seconds from attack start to first alarm, or
        ``None`` for a run the detector never caught.
    censored_at_s:
        The horizon each undetected run was observed until (its latency
        is known only to exceed this).
    """
    trials = len(latencies)
    if trials == 0:
        raise ValueError("no trials to summarise")
    censored_at_s = check_positive("censored_at_s", censored_at_s)
    if not math.isfinite(censored_at_s):
        raise ValueError(f"censored_at_s must be finite, got {censored_at_s!r}")
    hits: list[float] = []
    for value in latencies:
        if value is None:
            continue
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(
                f"latencies must be finite and >= 0 (or None if undetected), "
                f"got {value!r}"
            )
        hits.append(value)
    censored = trials - len(hits)
    return LatencySummary(
        trials=trials,
        detected=len(hits),
        censored=censored,
        rate=len(hits) / trials,
        censored_at_s=censored_at_s,
        median_latency_s=median(hits) if hits else None,
        mean_latency_s=sum(hits) / len(hits) if hits else None,
        median_censored_latency_s=median(hits + [censored_at_s] * censored),
    )
