"""Detection-side metrics across repeated trials."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["DetectionSummary", "detection_rate", "summarize_detections"]


@dataclass(frozen=True)
class DetectionSummary:
    """Aggregate detection statistics over a batch of runs.

    Attributes
    ----------
    trials:
        Number of runs observed.
    detected:
        Runs in which at least one detector fired.
    rate:
        ``detected / trials``.
    mean_time_to_detection_s:
        Mean first-alarm time over the detected runs (``None`` when no
        run was detected).
    by_detector:
        Detector name → number of runs in which it fired first.
    """

    trials: int
    detected: int
    rate: float
    mean_time_to_detection_s: float | None
    by_detector: dict[str, int]


def detection_rate(outcomes: Iterable[bool]) -> float:
    """Fraction of trials in which the attack was detected."""
    outcomes = list(outcomes)
    if not outcomes:
        raise ValueError("no trials to summarise")
    return sum(1 for o in outcomes if o) / len(outcomes)


def summarize_detections(
    first_alarms: Sequence[tuple[str, float] | None],
) -> DetectionSummary:
    """Summarise per-run first alarms.

    Parameters
    ----------
    first_alarms:
        One entry per run: ``(detector_name, time)`` of the first alarm,
        or ``None`` for an undetected run.
    """
    trials = len(first_alarms)
    if trials == 0:
        raise ValueError("no trials to summarise")
    hits = [a for a in first_alarms if a is not None]
    by_detector: dict[str, int] = {}
    for name, _time in hits:
        by_detector[name] = by_detector.get(name, 0) + 1
    mean_time = sum(t for _n, t in hits) / len(hits) if hits else None
    return DetectionSummary(
        trials=trials,
        detected=len(hits),
        rate=len(hits) / trials,
        mean_time_to_detection_s=mean_time,
        by_detector=by_detector,
    )
