"""Simulated testbed (reconstruction R2 in DESIGN.md).

The paper validates CSA on a small physical testbed of Powercast-class
hardware.  Without RF hardware we run the identical attack/defence code
path at testbed scale: eight nodes on a bench-top grid, a low-power
charger and harvester with hardware-calibrated constants, per-trial
deployment and hardware variation standing in for measurement noise.
"""

from repro.testbed.hardware import (
    TestbedProfile,
    default_testbed_profile,
)
from repro.testbed.testbed_sim import (
    TestbedSummary,
    TestbedTrial,
    run_testbed,
    run_testbed_trial,
)

__all__ = [
    "TestbedProfile",
    "TestbedSummary",
    "TestbedTrial",
    "default_testbed_profile",
    "run_testbed",
    "run_testbed_trial",
]
