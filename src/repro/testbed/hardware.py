"""Testbed hardware profile: Powercast-class constants plus variation.

The bench hardware differs from the deployment-scale simulation in every
magnitude: coin-sized batteries (hundreds of joules), a 4-element 1 W
charger, a P2110-class harvester saturating at 0.2 W, metre-scale
distances and a crawling charger trolley.  Per-trial multiplicative
perturbations of the element powers stand in for the measurement noise a
real bench exhibits (connector losses, alignment, temperature).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.em.charger_array import AntennaElement, ChargerArray
from repro.em.propagation import FriisModel
from repro.em.rectenna import Rectenna
from repro.mc.charger import ChargingHardware, MobileCharger
from repro.network.energy import RadioEnergyModel
from repro.network.network import Network
from repro.network.topology import Deployment, communication_graph
from repro.network.traffic import TrafficModel
from repro.utils.geometry import Point
from repro.utils.validation import check_positive

__all__ = ["TestbedProfile", "default_testbed_profile"]


@dataclass(frozen=True)
class TestbedProfile:
    """Bench-top parameter set.

    Attributes mirror :class:`repro.sim.scenario.ScenarioConfig` but at
    testbed magnitudes; see module docstring.
    """

    # Not a pytest test class despite the name.
    __test__ = False

    node_rows: int = 2
    node_cols: int = 4
    spacing_m: float = 1.5
    comm_range_m: float = 1.7
    battery_capacity_j: float = 216.0
    request_threshold_frac: float = 0.2
    rate_low_bps: float = 50.0
    rate_high_bps: float = 200.0
    element_count: int = 4
    element_power_w: float = 1.0
    element_power_noise: float = 0.1
    service_distance_m: float = 0.1
    mc_battery_j: float = 100_000.0
    mc_speed_m_s: float = 0.5
    mc_travel_cost_j_per_m: float = 5.0
    mc_depot_recharge_s: float = 600.0
    key_count: int = 3
    horizon_s: float = 96.0 * 3600.0

    def __post_init__(self) -> None:
        check_positive("spacing_m", self.spacing_m)
        check_positive("battery_capacity_j", self.battery_capacity_j)
        if self.node_rows * self.node_cols < 2:
            raise ValueError("testbed needs at least 2 nodes")

    @property
    def node_count(self) -> int:
        """Number of bench nodes."""
        return self.node_rows * self.node_cols

    # ------------------------------------------------------------------
    # Factories (per-trial, noise-bearing)
    # ------------------------------------------------------------------
    def build_hardware(self, rng: np.random.Generator) -> ChargingHardware:
        """Charger front end with per-element power perturbations."""
        spacing = 0.06
        start = -(self.element_count - 1) * spacing / 2.0
        elements = []
        for i in range(self.element_count):
            noise = float(
                rng.uniform(
                    1.0 - self.element_power_noise, 1.0 + self.element_power_noise
                )
            )
            elements.append(
                AntennaElement(
                    offset=Point(start + i * spacing, 0.0),
                    tx_power=self.element_power_w * noise,
                )
            )
        array = ChargerArray(
            elements=tuple(elements), propagation=FriisModel()
        )
        rectenna = Rectenna(
            sensitivity_w=80e-6,
            peak_efficiency=0.55,
            knee_power_w=5e-3,
            saturation_w=0.2,
        )
        return ChargingHardware(
            array=array,
            rectenna=rectenna,
            service_distance_m=self.service_distance_m,
        )

    def build_network(self, rng: np.random.Generator) -> Network:
        """Bench grid with per-trial placement jitter and initial charge."""
        jitter = 0.1 * self.spacing_m
        positions = []
        for r in range(self.node_rows):
            for c in range(self.node_cols):
                positions.append(
                    Point(
                        c * self.spacing_m + float(rng.uniform(-jitter, jitter)),
                        r * self.spacing_m + float(rng.uniform(-jitter, jitter)),
                    )
                )
        width = max((self.node_cols - 1) * self.spacing_m, self.spacing_m)
        height = max((self.node_rows - 1) * self.spacing_m, self.spacing_m)
        base_station = Point(width / 2.0, height / 2.0)
        deployment = Deployment(
            positions=tuple(positions),
            base_station=base_station,
            width=width,
            height=height,
            comm_range=self.comm_range_m,
        )
        import networkx as nx

        graph = communication_graph(
            deployment.positions, base_station, self.comm_range_m
        )
        if not nx.is_connected(graph):
            raise RuntimeError(
                "testbed grid is not connected; adjust spacing or range"
            )
        traffic = TrafficModel.heterogeneous(
            self.node_count, rng, low_bps=self.rate_low_bps, high_bps=self.rate_high_bps
        )
        network = Network(
            deployment,
            traffic,
            radio=RadioEnergyModel(),
            battery_capacity_j=self.battery_capacity_j,
            request_threshold_frac=self.request_threshold_frac,
            initial_energy_frac=1.0,
        )
        # Bench batteries never start identically charged: knock each one
        # down by up to 10% (true and believed together — the node's gauge
        # is calibrated at power-on).
        for node in network.nodes.values():
            node.set_initial_energy(float(rng.uniform(0.9, 1.0)))
        return network

    def build_charger(self, rng: np.random.Generator) -> MobileCharger:
        """The bench trolley charger."""
        width = max((self.node_cols - 1) * self.spacing_m, self.spacing_m)
        height = max((self.node_rows - 1) * self.spacing_m, self.spacing_m)
        return MobileCharger(
            depot=Point(width / 2.0, height / 2.0),
            battery_capacity_j=self.mc_battery_j,
            speed_m_s=self.mc_speed_m_s,
            travel_cost_j_per_m=self.mc_travel_cost_j_per_m,
            hardware=self.build_hardware(rng),
            depot_recharge_s=self.mc_depot_recharge_s,
        )


def default_testbed_profile() -> TestbedProfile:
    """The 8-node bench the testbed experiment (EXP-11) runs on."""
    return TestbedProfile()
