"""The testbed experiment harness (EXP-11).

Runs repeated bench trials of the CSA attack against the full detector
suite and summarises them the way the paper's testbed table does:
exhausted key nodes per trial, overall exhaustion ratio, and whether any
trial was detected.  The abstract's claim — *"CSA can exhaust at least
80% of key nodes without being detected"* — is checked against this
summary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.attacker import CsaAttacker
from repro.core.windows import StealthPolicy
from repro.detection.auditors import (
    DeathAfterChargeAuditor,
    NeglectMonitor,
    RandomVoltageAuditor,
    TrajectoryAnomalyDetector,
)
from repro.sim.wrsn_sim import SimulationResult, WrsnSimulation
from repro.testbed.hardware import TestbedProfile, default_testbed_profile
from repro.utils.rng import RngFactory

__all__ = ["TestbedSummary", "TestbedTrial", "run_testbed", "run_testbed_trial"]


def _testbed_stealth() -> StealthPolicy:
    """Stealth margins scaled to bench time constants (hours, not days).

    The attacker's grace (45 min) strictly exceeds the bench defender's
    30-minute death-after-charge window — landing exactly on the
    detector's boundary is detection, not stealth.
    """
    return StealthPolicy(grace_period_s=2_700.0, exposure_cap_s=7_200.0)


def _testbed_detectors(seed: int) -> list:
    """The defender suite with thresholds scaled to bench time constants."""
    return [
        DeathAfterChargeAuditor(grace_s=1_800.0),
        RandomVoltageAuditor(mean_interval_s=24 * 3600.0, seed=seed),
        TrajectoryAnomalyDetector(),
        NeglectMonitor(min_requests=5),
    ]


@dataclass(frozen=True)
class TestbedTrial:
    """Outcome of one bench trial."""

    __test__ = False  # not a pytest test class despite the name

    seed: int
    key_count: int
    exhausted_key_count: int
    exhausted_ratio: float
    detected: bool
    spoof_services: int
    genuine_services: int

    @classmethod
    def from_result(cls, seed: int, result: SimulationResult) -> "TestbedTrial":
        services = result.trace.services()
        return cls(
            seed=seed,
            key_count=len(result.initial_key_ids),
            exhausted_key_count=len(result.exhausted_key_ids()),
            exhausted_ratio=result.exhausted_key_ratio(),
            detected=result.detected,
            spoof_services=sum(1 for s in services if s.mode.value == "spoof"),
            genuine_services=sum(1 for s in services if s.mode.value == "genuine"),
        )


@dataclass(frozen=True)
class TestbedSummary:
    """Aggregate over all bench trials."""

    __test__ = False  # not a pytest test class despite the name

    trials: tuple[TestbedTrial, ...]

    @property
    def mean_exhausted_ratio(self) -> float:
        """Mean key-node exhaustion across trials."""
        return sum(t.exhausted_ratio for t in self.trials) / len(self.trials)

    @property
    def detection_count(self) -> int:
        """Trials in which any detector fired."""
        return sum(1 for t in self.trials if t.detected)

    @property
    def detection_rate(self) -> float:
        """Fraction of trials in which any detector fired."""
        return self.detection_count / len(self.trials)

    @property
    def headline_claim_holds(self) -> bool:
        """The abstract's claim: >= 80% exhausted, undetected.

        "Undetected" is judged at the 95% level (detection rate <= 5%):
        the voltage auditor samples at Poisson times, so an arbitrarily
        long campaign accumulates an arbitrarily small but non-zero hit
        probability — a fact about the defender's sampling, not about
        the attack's stealth discipline.
        """
        return self.mean_exhausted_ratio >= 0.8 and self.detection_rate <= 0.05


def run_testbed_trial(
    seed: int, profile: TestbedProfile | None = None
) -> TestbedTrial:
    """Run one bench trial of the CSA attack."""
    profile = profile or default_testbed_profile()
    factory = RngFactory(seed)
    network = profile.build_network(factory.stream("bench"))
    charger = profile.build_charger(factory.stream("hardware"))
    attacker = CsaAttacker(
        stealth=_testbed_stealth(),
        key_count=profile.key_count,
    )
    sim = WrsnSimulation(
        network,
        charger,
        attacker,
        detectors=_testbed_detectors(seed),
        horizon_s=profile.horizon_s,
    )
    return TestbedTrial.from_result(seed, sim.run())


def run_testbed(
    trial_count: int = 20,
    profile: TestbedProfile | None = None,
    base_seed: int = 0,
) -> TestbedSummary:
    """Run the full testbed campaign."""
    if trial_count < 1:
        raise ValueError(f"trial_count must be >= 1, got {trial_count}")
    trials = tuple(
        run_testbed_trial(base_seed + i, profile) for i in range(trial_count)
    )
    return TestbedSummary(trials=trials)
