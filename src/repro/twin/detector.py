"""The twin detector: streaming divergence, Detector-compatible surface.

:class:`TwinDetector` subscribes to an :class:`~repro.twin.stream.ObservationStream`,
drives a :class:`~repro.twin.predictor.TwinPredictor` along it, and scores
three residual families through one :class:`~repro.twin.anomaly.AnomalyScorer`:

* **death divergence** — predicted energy still on the books when a node
  is observed dead, as a fraction of its capacity.  The CSA signature:
  spoofed victims die holding ~0.8 of a battery on paper.
* **telemetry divergence** — claimed-versus-reported residual after each
  service.  Zero under CSA (the victim is fooled too), but it catches
  command spoofing, where the victim's own telemetry undercuts the claim.
* **audit divergence** — predicted-versus-measured truth when a spot
  audit happens to run; the twin then recalibrates to the measurement.

Request observations advance the twin's clock but deliberately contribute
no residual: under probabilistic arrival lag, request timing is noisy in
a way energy accounting is not, and scoring it would buy false alarms for
no detection power.

The class satisfies the :class:`~repro.detection.monitors.Detector` ABC so
it slots into the existing suite unchanged.  Because simulation hooks run
before detectors for every emitted event, an alarm triggered by an
observation is surfaced by the very same event's ``observe_*`` call — the
detection timestamp equals the observation that caused it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.detection.monitors import Detector
from repro.sim.events import DetectionRaised, NodeDied, RequestIssued, ServiceCompleted
from repro.twin.anomaly import AnomalyScore, AnomalyScorer
from repro.twin.predictor import TwinPredictor
from repro.twin.stream import (
    AuditObservation,
    ChargeCommitment,
    ConsumptionUpdate,
    DeathObservation,
    NetworkSnapshot,
    Observation,
    ObservationStream,
    RequestObservation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.wrsn_sim import WrsnSimulation

__all__ = ["TwinDetector"]


class TwinDetector(Detector):
    """Always-on divergence detector fed by the observation stream.

    Parameters
    ----------
    scorer:
        The change detector; defaults to :class:`AnomalyScorer` with its
        documented defaults.
    stream:
        The observation channel to subscribe to; a fresh private stream
        is created when omitted (wire a
        :class:`~repro.twin.feed.SimStreamPublisher` to ``.stream``).
    record_scores:
        Keep every :class:`AnomalyScore` in ``.scores`` (the benchmark
        reads them); disable to save memory on very long runs.
    """

    name = "twin"

    def __init__(
        self,
        scorer: AnomalyScorer | None = None,
        stream: ObservationStream | None = None,
        record_scores: bool = True,
    ) -> None:
        super().__init__()
        self.scorer = scorer or AnomalyScorer()
        self.stream = stream or ObservationStream()
        self.stream.subscribe(self._on_observation)
        self.predictor = TwinPredictor()
        self.record_scores = record_scores
        self.scores: list[AnomalyScore] = []
        self.first_alarm: AnomalyScore | None = None
        self._pending: AnomalyScore | None = None

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def _on_observation(self, obs: Observation) -> None:
        if isinstance(obs, NetworkSnapshot):
            self.predictor.start(obs)
            return
        if not self.predictor.started:
            # Switched on mid-run without a snapshot: nothing to compare
            # against, so observations pass through unjudged.
            return
        self.predictor.advance_to(obs.time)
        if isinstance(obs, ConsumptionUpdate):
            self.predictor.set_consumption(obs.consumption_w)
        elif isinstance(obs, ChargeCommitment):
            predicted_after = self.predictor.apply_charge(obs.node_id, obs.claimed_j)
            if obs.capacity_j > 0.0:
                residual = abs(predicted_after - obs.telemetry_energy_j) / obs.capacity_j
                self._score(obs.time, obs.node_id, "telemetry", residual)
        elif isinstance(obs, DeathObservation):
            stranded = self.predictor.mark_dead(obs.node_id, obs.time)
            capacity = self.predictor.capacity_j(obs.node_id)
            if capacity > 0.0:
                self._score(obs.time, obs.node_id, "death", stranded / capacity)
        elif isinstance(obs, AuditObservation):
            capacity = self.predictor.capacity_j(obs.node_id)
            if capacity > 0.0:
                predicted = self.predictor.predicted_energy_j(obs.node_id)
                residual = abs(predicted - obs.true_energy_j) / capacity
                self._score(obs.time, obs.node_id, "audit", residual)
            self.predictor.calibrate(obs.node_id, obs.true_energy_j)
        elif isinstance(obs, RequestObservation):
            pass  # clock already advanced; no residual by design

    def _score(self, time: float, node_id: int, kind: str, residual: float) -> None:
        score = self.scorer.update(time, residual, node_id=node_id, kind=kind)
        if self.record_scores:
            self.scores.append(score)
        if score.alarmed and self.first_alarm is None:
            self.first_alarm = score
            self._pending = score

    def _surface(self, time: float) -> DetectionRaised | None:
        """Turn a pending alarm into a trace-level detection, once."""
        if self._pending is None or self.detected:
            return None
        score = self._pending
        self._pending = None
        return self._raise(
            time,
            reason=(
                f"{score.kind} divergence: residual {score.residual:.3f} of "
                f"capacity drove CUSUM to {score.cusum:.3f} "
                f"(threshold {self.scorer.cusum_h:g})"
            ),
            node_id=score.node_id,
        )

    # ------------------------------------------------------------------
    # Detector interface
    # ------------------------------------------------------------------
    def observe_request(
        self, event: RequestIssued, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        return self._surface(event.time)

    def observe_service(
        self, event: ServiceCompleted, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        return self._surface(event.time)

    def observe_death(
        self, event: NodeDied, sim: "WrsnSimulation"
    ) -> DetectionRaised | None:
        return self._surface(event.time)
