"""Anomaly scoring: EWMA smoothing + CUSUM change detection.

Residuals arriving from the twin are already normalized (fractions of the
affected node's battery capacity, so ``0`` means "model matches reality"
and ``1`` means "a full battery's worth of divergence").  The scorer
turns that residual stream into two running statistics:

* an **EWMA** ``z ← (1-λ)·z + λ·r`` — the smoothed divergence level the
  operator watches on a dashboard;
* a one-sided **CUSUM** ``S ← max(0, S + r − k)`` with alarm at
  ``S ≥ h`` — the change detector that actually raises.

The CUSUM reference value ``k`` is the per-observation divergence the
system tolerates forever (float drift, telemetry quantisation); the
threshold ``h`` trades detection latency against false alarms.  With the
defaults, a single CSA death (residual ≈ 0.8, the victim's paper-full
battery) alarms immediately, while a sub-tolerance command-spoof drip
(say 0.1 per session) alarms after a handful of sessions — the
accumulation is the point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive

__all__ = ["AnomalyScore", "AnomalyScorer"]


@dataclass(frozen=True)
class AnomalyScore:
    """One scored residual: the inputs and both running statistics."""

    time: float
    node_id: int | None
    kind: str
    residual: float
    ewma: float
    cusum: float
    alarmed: bool


class AnomalyScorer:
    """Streaming EWMA + one-sided CUSUM over normalized residuals.

    One scorer covers the whole network: the statistic accumulates over
    *all* residuals in arrival order, so an attacker spreading small
    divergences across many nodes accumulates just as fast as one
    hammering a single node.

    Parameters
    ----------
    ewma_lambda:
        Smoothing weight in ``(0, 1]``; higher reacts faster.
    cusum_k:
        Per-observation slack absorbed before anything accumulates.
    cusum_h:
        Accumulated divergence at which the alarm raises.
    """

    def __init__(
        self,
        ewma_lambda: float = 0.2,
        cusum_k: float = 0.05,
        cusum_h: float = 0.25,
    ) -> None:
        if not 0.0 < ewma_lambda <= 1.0:
            raise ValueError(
                f"ewma_lambda must be in (0, 1], got {ewma_lambda!r}"
            )
        if cusum_k < 0.0 or not math.isfinite(cusum_k):
            raise ValueError(f"cusum_k must be finite and >= 0, got {cusum_k!r}")
        self.ewma_lambda = ewma_lambda
        self.cusum_k = cusum_k
        self.cusum_h = check_positive("cusum_h", cusum_h)
        self.ewma = 0.0
        self.cusum = 0.0
        self.alarmed = False

    def update(
        self,
        time: float,
        residual: float,
        node_id: int | None = None,
        kind: str = "residual",
    ) -> AnomalyScore:
        """Fold one residual into the statistics; returns the new score.

        ``alarmed`` latches: once the CUSUM crosses ``cusum_h`` the scorer
        stays alarmed for the rest of the run (matching detector-latching
        semantics downstream).
        """
        if not math.isfinite(residual) or residual < 0.0:
            raise ValueError(
                f"residual must be finite and >= 0, got {residual!r} "
                f"(kind={kind!r}, node={node_id!r})"
            )
        self.ewma = (1.0 - self.ewma_lambda) * self.ewma + self.ewma_lambda * residual
        self.cusum = max(0.0, self.cusum + residual - self.cusum_k)
        if self.cusum >= self.cusum_h:
            self.alarmed = True
        return AnomalyScore(
            time=time,
            node_id=node_id,
            kind=kind,
            residual=residual,
            ewma=self.ewma,
            cusum=self.cusum,
            alarmed=self.alarmed,
        )
