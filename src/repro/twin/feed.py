"""Engine-to-stream bridge: a SimulationHook that publishes observations.

:class:`SimStreamPublisher` is the production source for the twin's
observation stream.  It rides inside the simulation as a passive
:class:`~repro.sim.hooks.SimulationHook`, translating each trace record
into the observation a real base station would receive at that instant —
no post-hoc trace mining, no information the control plane would not
actually have online.

The mapping:

========================  =====================================
trace record              observation published
========================  =====================================
(run start)               :class:`NetworkSnapshot`
``ServiceCompleted``      :class:`ChargeCommitment`
``RequestIssued``         :class:`RequestObservation`
``NodeDied``              :class:`DeathObservation`
``RoutingRecomputed``     :class:`ConsumptionUpdate`
``AuditPerformed``        :class:`AuditObservation`
========================  =====================================

Everything else (depot recharges, aborts, detections) carries no energy
information and is not forwarded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.events import (
    AuditPerformed,
    NodeDied,
    RequestIssued,
    RoutingRecomputed,
    ServiceCompleted,
    TraceEvent,
)
from repro.sim.hooks import SimulationHook
from repro.twin.stream import (
    AuditObservation,
    ChargeCommitment,
    ConsumptionUpdate,
    DeathObservation,
    NetworkSnapshot,
    ObservationStream,
    RequestObservation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.wrsn_sim import SimulationResult, WrsnSimulation

__all__ = ["SimStreamPublisher"]


class SimStreamPublisher(SimulationHook):
    """Publishes the engine's observable surface onto a stream."""

    def __init__(self, stream: ObservationStream) -> None:
        self.stream = stream

    def on_run_start(self, sim: "WrsnSimulation") -> None:
        ledger = sim.network.ledger
        self.stream.publish(
            NetworkSnapshot(
                time=sim.now,
                capacity_j=tuple(float(v) for v in ledger.capacity_j),
                believed_j=tuple(float(v) for v in ledger.believed_j),
                consumption_w=tuple(float(v) for v in ledger.consumption_w),
                alive=tuple(bool(v) for v in ledger.alive),
            )
        )

    def on_trace_event(self, event: TraceEvent, sim: "WrsnSimulation") -> None:
        if isinstance(event, ServiceCompleted):
            self.stream.publish(
                ChargeCommitment(
                    time=event.time,
                    node_id=event.node_id,
                    claimed_j=event.claimed_j,
                    telemetry_energy_j=event.believed_energy_after_j,
                    capacity_j=event.battery_capacity_j,
                )
            )
        elif isinstance(event, RequestIssued):
            self.stream.publish(
                RequestObservation(
                    time=event.time,
                    node_id=event.node_id,
                    energy_needed_j=event.energy_needed_j,
                )
            )
        elif isinstance(event, NodeDied):
            self.stream.publish(
                DeathObservation(time=event.time, node_id=event.node_id)
            )
        elif isinstance(event, RoutingRecomputed):
            # The routing change has already landed in the live ledger;
            # publish the fresh rates as the control plane would.
            self.stream.publish(
                ConsumptionUpdate(
                    time=event.time,
                    consumption_w=tuple(
                        float(v) for v in sim.network.ledger.consumption_w
                    ),
                )
            )
        elif isinstance(event, AuditPerformed):
            self.stream.publish(
                AuditObservation(
                    time=event.time,
                    node_id=event.node_id,
                    true_energy_j=event.true_energy_j,
                )
            )
