"""The twin's physics core: predicted per-node energy trajectories.

A :class:`TwinPredictor` is the base station's model of what every node's
battery *should* contain if the charger's claims were true.  It reuses the
simulator's vectorized :class:`~repro.network.energy_ledger.EnergyLedger`
— the same piecewise-linear drain semantics, the same IEEE-754 operation
order — seeded from the run-start snapshot and driven forward by the
observation stream: consumption updates set the draw rates, charge
commitments credit the *claimed* energy, and time advances in one fused
array pass per observation instant.

Because the predictor credits claims rather than deliveries, its
trajectories diverge from reality exactly where the charger lied — that
divergence is the anomaly signal scored in :mod:`repro.twin.anomaly`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.network.energy_ledger import EnergyLedger
from repro.twin.stream import NetworkSnapshot

__all__ = ["TwinPredictor"]


class TwinPredictor:
    """Claims-driven replica of the whole network's energy state."""

    def __init__(self) -> None:
        self._ledger: EnergyLedger | None = None

    @property
    def started(self) -> bool:
        """Whether a snapshot has initialised the predictor."""
        return self._ledger is not None

    @property
    def ledger(self) -> EnergyLedger:
        """The underlying ledger (raises before :meth:`start`)."""
        if self._ledger is None:
            raise RuntimeError("TwinPredictor not started: no snapshot received")
        return self._ledger

    # ------------------------------------------------------------------
    # Stream-driven state transitions
    # ------------------------------------------------------------------
    def start(self, snapshot: NetworkSnapshot) -> None:
        """Initialise the twin from the run-start snapshot."""
        count = len(snapshot.capacity_j)
        if count == 0:
            # Degenerate but legal: a twin watching an empty network has
            # nothing to predict and stays inert.
            self._ledger = None
            return
        ledger = EnergyLedger(count)
        ledger.load_arrays(
            capacity_j=snapshot.capacity_j,
            energy_j=snapshot.believed_j,
            believed_j=snapshot.believed_j,
            consumption_w=snapshot.consumption_w,
            clock=snapshot.time,
            alive=snapshot.alive,
        )
        alive = ledger.alive
        ledger.energy_j[~alive] = 0.0
        ledger.believed_j[~alive] = 0.0
        self._ledger = ledger

    def advance_to(self, time: float) -> list[int]:
        """Drain every predicted trajectory to ``time``; ids that depleted.

        A returned id means the twin *predicts* that node is dead — the
        real node may well be alive (or vice versa); reconciling the two
        is the scorer's job, not the predictor's.
        """
        if self._ledger is None:
            return []
        return self._ledger.advance_all_to(time)

    def apply_charge(self, node_id: int, claimed_j: float) -> float:
        """Credit a claimed service; returns the predicted energy after.

        The twin believes the books: the full claim is credited (clamped
        at capacity), exactly as the base station's accounting would.
        """
        if self._ledger is None:
            return 0.0
        self._ledger.charge_slot(node_id, claimed_j, claimed_j)
        return float(self._ledger.energy_j[node_id])

    def set_consumption(self, rates_w: Sequence[float]) -> None:
        """Adopt fresh per-node draw estimates (after a routing change)."""
        if self._ledger is None:
            return
        if len(rates_w) != len(self._ledger):
            raise ValueError(
                f"consumption update covers {len(rates_w)} nodes but the "
                f"twin tracks {len(self._ledger)}"
            )
        self._ledger.consumption_w[:] = rates_w
        # Dead slots draw nothing, whatever the update says.
        self._ledger.consumption_w[~self._ledger.alive] = 0.0

    def mark_dead(self, node_id: int, time: float) -> float:
        """Reconcile an observed death; returns the stranded prediction.

        The return value is the energy the twin still predicted the node
        to hold at its observed death — zero when model and reality agree,
        large when the node died on paper-full batteries (the CSA
        signature).  The slot is then retired.
        """
        if self._ledger is None:
            return 0.0
        ledger = self._ledger
        residual = float(ledger.energy_j[node_id]) if ledger.alive[node_id] else 0.0
        ledger.energy_j[node_id] = 0.0
        ledger.believed_j[node_id] = 0.0
        ledger.consumption_w[node_id] = 0.0
        if ledger.alive[node_id]:
            ledger.death_time[node_id] = time
            ledger.alive[node_id] = False
        return residual

    def calibrate(self, node_id: int, true_energy_j: float) -> None:
        """Overwrite one prediction with an audited ground-truth reading."""
        if self._ledger is None or not self._ledger.alive[node_id]:
            return
        capacity = float(self._ledger.capacity_j[node_id])
        value = min(capacity, max(0.0, true_energy_j))
        self._ledger.energy_j[node_id] = value
        self._ledger.believed_j[node_id] = value

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def predicted_energy_j(self, node_id: int) -> float:
        """Current predicted residual energy of one node."""
        if self._ledger is None:
            return 0.0
        return float(self._ledger.energy_j[node_id])

    def capacity_j(self, node_id: int) -> float:
        """Battery capacity of one node (0 before start)."""
        if self._ledger is None:
            return 0.0
        return float(self._ledger.capacity_j[node_id])

    def predicted_energies(self) -> np.ndarray:
        """Copy of the whole predicted-energy vector (empty before start)."""
        if self._ledger is None:
            return np.empty(0, dtype=float)
        return self._ledger.energy_j.copy()
