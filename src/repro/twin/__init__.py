"""Online digital twin for streaming charging-fraud detection.

The periodic auditors in :mod:`repro.detection` sample the network at
scheduled instants; between audits the attacker operates unobserved.
This package is the escalation: a **digital twin** of the network's
energy state that consumes a live observation stream from the engine
(claims, telemetry, requests, deaths, routing updates) and continuously
scores the divergence between what the charger's books predict and what
the network actually reports.

Layers, bottom-up:

* :mod:`repro.twin.stream` — the ordered observation channel and record
  taxonomy (out-of-order publishing is a hard error).
* :mod:`repro.twin.predictor` — claims-driven replica of every node's
  energy trajectory on the vectorized
  :class:`~repro.network.energy_ledger.EnergyLedger`.
* :mod:`repro.twin.anomaly` — EWMA smoothing + one-sided CUSUM change
  detection over normalized residuals.
* :mod:`repro.twin.detector` — :class:`TwinDetector`, plugging the twin
  into the standard :class:`~repro.detection.monitors.Detector` suite.
* :mod:`repro.twin.feed` — :class:`SimStreamPublisher`, the
  :class:`~repro.sim.hooks.SimulationHook` that feeds the stream from a
  live run.

Typical wiring (what ``run_attack(..., twin=True)`` does)::

    twin = TwinDetector()
    sim = WrsnSimulation(
        network, charger, controller,
        detectors=[*default_detector_suite(), twin],
        hooks=[SimStreamPublisher(twin.stream)],
    )
"""

from repro.twin.anomaly import AnomalyScore, AnomalyScorer
from repro.twin.detector import TwinDetector
from repro.twin.feed import SimStreamPublisher
from repro.twin.predictor import TwinPredictor
from repro.twin.stream import (
    AuditObservation,
    ChargeCommitment,
    ConsumptionUpdate,
    DeathObservation,
    NetworkSnapshot,
    Observation,
    ObservationStream,
    RequestObservation,
    StreamOrderError,
)

__all__ = [
    "AnomalyScore",
    "AnomalyScorer",
    "AuditObservation",
    "ChargeCommitment",
    "ConsumptionUpdate",
    "DeathObservation",
    "NetworkSnapshot",
    "Observation",
    "ObservationStream",
    "RequestObservation",
    "SimStreamPublisher",
    "StreamOrderError",
    "TwinDetector",
    "TwinPredictor",
]
