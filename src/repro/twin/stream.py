"""The observation stream: what the base station can see, as it happens.

The digital twin never touches simulator ground truth.  Everything it
knows arrives through an :class:`ObservationStream` — an ordered,
push-based channel of :class:`Observation` records mirroring exactly the
information a real WRSN base station receives online: the charger's
service claims, nodes' own telemetry, request and death reports, routing
(consumption) updates, and the occasional spot-audit result.

The stream enforces time order at the door: publishing an observation
older than the newest already published raises :class:`StreamOrderError`
immediately, with both timestamps in the message.  Silent reordering
would corrupt every downstream trajectory, so it is a hard error rather
than a best-effort sort.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "AuditObservation",
    "ChargeCommitment",
    "ConsumptionUpdate",
    "DeathObservation",
    "NetworkSnapshot",
    "Observation",
    "ObservationStream",
    "RequestObservation",
    "StreamOrderError",
]

#: Slack allowed on the monotone-time check, matching the engine's clock
#: tolerance: equal timestamps are common (several observations per event
#: instant) and must pass.
_ORDER_TOL = 1e-9


class StreamOrderError(ValueError):
    """An observation arrived with a timestamp older than the stream head."""


@dataclass(frozen=True)
class Observation:
    """Base record: every observation carries its emission time."""

    time: float


@dataclass(frozen=True)
class NetworkSnapshot(Observation):
    """Initial per-node state, indexed by node id (= slot).

    Published once at run start; ``believed_j`` doubles as the twin's
    starting energy estimate because at deployment time the base station
    has no better information than the nodes' own readings.
    """

    capacity_j: tuple[float, ...]
    believed_j: tuple[float, ...]
    consumption_w: tuple[float, ...]
    alive: tuple[bool, ...]


@dataclass(frozen=True)
class ChargeCommitment(Observation):
    """The charger claims a completed service; the victim reports back.

    ``claimed_j`` is the charger's report (malicious chargers lie);
    ``telemetry_energy_j`` is the victim's own post-service believed
    residual — the one cross-check the base station gets for free.
    """

    node_id: int
    claimed_j: float
    telemetry_energy_j: float
    capacity_j: float


@dataclass(frozen=True)
class RequestObservation(Observation):
    """A node reported crossing its request threshold."""

    node_id: int
    energy_needed_j: float


@dataclass(frozen=True)
class DeathObservation(Observation):
    """A node stopped reporting: its battery is empty."""

    node_id: int


@dataclass(frozen=True)
class ConsumptionUpdate(Observation):
    """Fresh per-node draw estimates after a routing change."""

    consumption_w: tuple[float, ...]


@dataclass(frozen=True)
class AuditObservation(Observation):
    """A spot audit measured one node's *true* residual energy."""

    node_id: int
    true_energy_j: float


class ObservationStream:
    """Ordered push channel from the engine to online consumers.

    Subscribers are called synchronously, in subscription order, for each
    published observation.  The stream keeps no backlog — a consumer that
    subscribes late misses earlier observations by design (it models a
    monitor that was switched on late).
    """

    def __init__(self) -> None:
        self._subscribers: list[Callable[[Observation], None]] = []
        self._last_time: float | None = None
        self._count = 0

    @property
    def last_time(self) -> float | None:
        """Timestamp of the newest published observation (``None`` if empty)."""
        return self._last_time

    @property
    def count(self) -> int:
        """Number of observations published so far."""
        return self._count

    def subscribe(self, callback: Callable[[Observation], None]) -> None:
        """Register a consumer; it receives every subsequent observation."""
        self._subscribers.append(callback)

    def publish(self, observation: Observation) -> None:
        """Validate time order and fan the observation out to subscribers.

        Raises
        ------
        StreamOrderError
            If the observation's timestamp is non-finite or precedes the
            newest already-published observation.
        """
        time = observation.time
        if not math.isfinite(time):
            raise StreamOrderError(
                f"observation timestamp must be finite, got {time!r} "
                f"({type(observation).__name__})"
            )
        if self._last_time is not None and time < self._last_time - _ORDER_TOL:
            raise StreamOrderError(
                f"out-of-order observation: {type(observation).__name__} at "
                f"t={time!r} arrived after the stream head at "
                f"t={self._last_time!r}; observations must be published in "
                f"non-decreasing time order"
            )
        self._last_time = time if self._last_time is None else max(self._last_time, time)
        self._count += 1
        for callback in self._subscribers:
            callback(observation)
