"""Malicious mission controllers.

:class:`PlannedAttacker` is the general stealthy attacker: it annotates
the network's key nodes, derives their stealthy service windows, plans a
spoofing campaign with a pluggable TIDE planner (CSA by default — that
configuration is exported as :class:`CsaAttacker`), and executes it while
*behaving like an honest charger*: it radiates full service durations,
reports plausible logs, and fills schedule slack with genuine "cover"
charges of non-key requesters so the neglect monitor stays quiet.

:class:`BlatantAttacker` is the strawman the detectors exist for: it
simply pretends to charge its victims (no emission, no window logic, no
cover traffic).  It spends almost nothing and gets caught almost
immediately — the contrast the paper's detection experiment draws.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.core.baselines import Planner
from repro.core.csa import CsaPlanner
from repro.core.tide import (
    TideInstance,
    TidePlan,
    TideTarget,
    latest_start_schedule,
)
from repro.core.windows import StealthPolicy, derive_targets
from repro.mc.charger import ChargeMode
from repro.network.requests import ChargingRequest
from repro.sim.actions import (
    Action,
    IdleAction,
    MissionController,
    RechargeAction,
    ServeAction,
)
from repro.sim.events import (
    NodeDied,
    RequestIssued,
    ServiceAborted,
    ServiceCompleted,
    TraceEvent,
)
from repro.utils.rng import coerce_rng
from repro.utils.validation import check_non_negative, check_probability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.wrsn_sim import WrsnSimulation

__all__ = ["BlatantAttacker", "CsaAttacker", "PlannedAttacker"]

_EPS = 1e-6


def _sort_requests_by_distance(
    requests: list[ChargingRequest], origin, sim: "WrsnSimulation"
) -> list[ChargingRequest]:
    """Requests ordered by distance from ``origin``, ties by node id.

    One vectorized distance pass over the network's position table
    replaces the per-candidate ``Point.distance_to`` calls; ``lexsort``
    keeps the historical deterministic (distance, node_id) order.
    """
    ids = np.array([r.node_id for r in requests], dtype=np.int64)
    xy = sim.network.positions_xy[ids]
    distances = np.hypot(xy[:, 0] - origin.x, xy[:, 1] - origin.y)
    return [requests[i] for i in np.lexsort((ids, distances))]


class PlannedAttacker(MissionController):
    """Stealthy spoofing attacker with a pluggable TIDE planner.

    Parameters
    ----------
    planner:
        TIDE planner choosing and ordering victims (default: CSA).
    stealth:
        The stealth envelope fed into window derivation.
    key_count:
        Number of key nodes to annotate and target.
    cover_traffic:
        Whether to genuinely charge non-key requesters in schedule slack.
        Costs real energy; keeps the neglect monitor quiet (ablation
        ABL-02 quantifies the trade).
    depot_reserve_frac:
        Fraction of the charger battery reserved outside the plan budget
        (getting stranded mid-field would itself be suspicious).
    recharge_below_frac:
        Return to the depot when energy falls below this fraction and the
        schedule allows.
    estimator:
        Optional :class:`repro.attack.knowledge.NoisyEstimator`; when
        given, windows are derived from *estimated* consumption rates
        instead of ground truth (experiment EXT-01).
    error_safety_sigma:
        How many sigmas of rate-estimation error the stealth margins are
        widened to absorb (only meaningful with an estimator).  0 is the
        naive attacker whose margins assume perfect prediction.
    spoof_probability:
        Probability that a planned victim visit actually spoofs; with
        probability ``1 - spoof_probability`` the attacker charges the
        victim *genuinely* instead (and may re-target it later).  The
        partial/intermittent attacker trades campaign speed for a thinner
        anomaly trail.  1.0 (the default) is the paper's always-spoof
        attacker and draws no randomness at all.
    seed:
        RNG for the intermittent-spoofing coin flips (its own stream, so
        enabling them perturbs no other stream).
    """

    def __init__(
        self,
        planner: Planner | CsaPlanner | None = None,
        stealth: StealthPolicy | None = None,
        key_count: int = 15,
        cover_traffic: bool = True,
        depot_reserve_frac: float = 0.05,
        recharge_below_frac: float = 0.15,
        estimator=None,
        error_safety_sigma: float = 0.0,
        spoof_probability: float = 1.0,
        seed: int | np.random.Generator = 0,
    ) -> None:
        self.planner = planner or CsaPlanner()
        self.stealth = stealth or StealthPolicy()
        if key_count < 1:
            raise ValueError(f"key_count must be >= 1, got {key_count}")
        self.key_count = key_count
        self.cover_traffic = cover_traffic
        self.depot_reserve_frac = check_probability(
            "depot_reserve_frac", depot_reserve_frac
        )
        self.recharge_below_frac = check_probability(
            "recharge_below_frac", recharge_below_frac
        )
        self.estimator = estimator
        self.error_safety_sigma = check_non_negative(
            "error_safety_sigma", error_safety_sigma
        )
        self.spoof_probability = check_probability(
            "spoof_probability", spoof_probability
        )
        self._spoof_rng = coerce_rng(seed, "intermittent-spoof")

        self._route: deque[TideTarget] = deque()
        self._latest_starts: deque[float] = deque()
        self._dirty = True
        self._spoofed: set[int] = set()
        self._in_flight: int | None = None
        self.last_plan: TidePlan | None = None
        self.replans = 0

    @property
    def name(self) -> str:
        planner_name = getattr(self.planner, "name", type(self.planner).__name__)
        return f"attacker[{planner_name}]"

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def on_start(self, sim: "WrsnSimulation") -> None:
        sim.network.refresh_key_nodes(self.key_count)
        self._dirty = True

    def on_event(self, event: TraceEvent, sim: "WrsnSimulation") -> None:
        if isinstance(event, NodeDied):
            # Deaths shift every prediction the plan was built on.
            self._dirty = True
        elif isinstance(event, ServiceAborted):
            self._dirty = True
        elif isinstance(event, RequestIssued) and event.is_key:
            # A key node's request turns its predicted window into a
            # concrete one (and, for the noisy-estimator attacker, lets
            # the error margin shrink with the shorter horizon).
            self._dirty = True
        elif isinstance(event, ServiceCompleted):
            if event.mode == ChargeMode.SPOOF:
                self.note_spoofed(event.node_id)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _reserve_j(self, sim: "WrsnSimulation") -> float:
        return self.depot_reserve_frac * (self.charger or sim.charger).battery_capacity_j

    def _derive(self, sim: "WrsnSimulation") -> list[TideTarget]:
        if self.estimator is not None:
            from repro.attack.knowledge import derive_targets_with_error

            return derive_targets_with_error(
                sim.network, (self.charger or sim.charger).hardware,
                self.stealth, sim.now, self.estimator, safety_sigma=self.error_safety_sigma,
            )
        return derive_targets(
            sim.network, (self.charger or sim.charger).hardware,
            self.stealth, sim.now,
        )

    def _replan(self, sim: "WrsnSimulation") -> None:
        mc = self.charger or sim.charger
        targets = [
            t
            for t in self._derive(sim)
            if t.node_id not in self._spoofed and t.node_id != self._in_flight
        ]
        budget = max(0.0, mc.energy_j - self._reserve_j(sim))
        instance = TideInstance(
            targets=tuple(targets),
            start_position=mc.position,
            start_time=sim.now,
            energy_budget_j=budget,
            speed_m_s=mc.speed_m_s,
            travel_cost_j_per_m=mc.travel_cost_j_per_m,
        )
        plan = self.planner.plan(instance)
        self._route = deque(instance.target(nid) for nid in plan.route)
        # Serve every victim as LATE as the route allows: minimal
        # spoofed-but-alive exposure to voltage audits.  Latest starts
        # depend only on downstream visits, so they stay valid as the
        # route is consumed from the front.
        self._latest_starts = deque(latest_start_schedule(instance, plan.route))
        self.last_plan = plan
        self._dirty = False
        self.replans += 1

    def _pop_head(self) -> TideTarget:
        self._latest_starts.popleft()
        return self._route.popleft()

    def _prune_route(self, sim: "WrsnSimulation") -> None:
        """Drop dead/expired targets; replan when the schedule slipped.

        An arrival past the head's *latest* start does not kill the head
        (its own window may still be open) but could squeeze downstream
        visits, so the route is replanned rather than patched.
        """
        mc = self.charger or sim.charger
        while self._route:
            head = self._route[0]
            node = sim.network.nodes[head.node_id]
            arrival = sim.now + mc.travel_time_to(head.position)
            if not node.alive or arrival > head.window_end + _EPS:
                self._pop_head()
                self._dirty = True
                continue
            if arrival > self._latest_starts[0] + _EPS and len(self._route) > 1:
                self._dirty = True
            break

    def _route_cost_j(self, sim: "WrsnSimulation") -> float:
        """Energy the remaining planned route still needs."""
        mc = self.charger or sim.charger
        position = mc.position
        total = 0.0
        for target in self._route:
            total += (
                position.distance_to(target.position) * mc.travel_cost_j_per_m
                + target.service_energy_j
            )
            position = target.position
        return total

    # ------------------------------------------------------------------
    # Decision logic
    # ------------------------------------------------------------------
    def next_action(self, sim: "WrsnSimulation") -> Action | None:
        self._in_flight = None
        if self._dirty:
            self._replan(sim)
        self._prune_route(sim)
        if self._dirty:
            self._replan(sim)
            self._prune_route(sim)

        mc = self.charger or sim.charger
        recharge = self._maybe_recharge(sim)
        if recharge is not None:
            return recharge

        cover = self._maybe_cover(sim)
        if cover is not None:
            return cover

        if self._route:
            head = self._route[0]
            start_at = max(self._latest_starts[0], head.window_start)
            travel = mc.travel_time_to(head.position)
            depart_by = start_at - travel
            # In a fleet, an honest co-charger would race us to any node
            # with an outstanding request and genuinely recharge it,
            # destroying the window.  Claim the victim the moment it
            # requests: dispatch now and camp there until the window
            # opens.  Solo, camping only wastes cover opportunities.
            must_claim = sim.unit_count > 1 and any(
                r.node_id == head.node_id for r in sim.pending_requests()
            )
            if sim.now < depart_by - _EPS and not must_claim:
                # Too early: camping at the victim would waste hours the
                # charger could spend on cover traffic.  Idle (interrupt-
                # ibly) until it is time to leave.
                return IdleAction(until=depart_by)
            self._pop_head()
            self._in_flight = head.node_id
            mode = ChargeMode.SPOOF
            # The draw is guarded so the always-spoof attacker (the
            # default, used by every existing experiment) consumes no
            # randomness and stays byte-identical.
            if (
                self.spoof_probability < 1.0
                and float(self._spoof_rng.random()) >= self.spoof_probability
            ):
                # Intermittent spoofing: genuinely charge this victim
                # for the same session shape.  It is not marked spoofed,
                # so a later replanning round may target it again.
                mode = ChargeMode.GENUINE
            return ServeAction(
                node_id=head.node_id,
                mode=mode,
                not_before=start_at,
                duration_s=head.service_duration,
            )
        return None

    def _maybe_recharge(self, sim: "WrsnSimulation") -> Action | None:
        mc = self.charger or sim.charger
        if mc.energy_j >= self.recharge_below_frac * mc.battery_capacity_j:
            return None
        if not self._route:
            self._dirty = True  # fresh budget deserves a fresh plan
            return RechargeAction()
        head = self._route[0]
        depot_leg = mc.travel_time_to(mc.depot)
        back_leg = (
            mc.depot.distance_to(head.position) / mc.speed_m_s
        )
        done = sim.now + depot_leg + mc.depot_recharge_s + back_leg
        if done <= self._latest_starts[0] - _EPS:
            self._dirty = True
            return RechargeAction()
        return None

    def _maybe_cover(self, sim: "WrsnSimulation") -> Action | None:
        """Serve one genuine cover request if the schedule and budget allow.

        Any requester outside the current spoofing route qualifies —
        including key nodes whose stealthy window turned out infeasible
        this cycle: charging them genuinely keeps the neglect monitor
        quiet *and* restarts their discharge cycle, giving the next
        planning round another shot at them.
        """
        if not self.cover_traffic:
            return None
        mc = self.charger or sim.charger
        in_route = {t.node_id for t in self._route}
        candidates: list[ChargingRequest] = []
        for request in sim.unclaimed_requests():
            node = sim.network.nodes[request.node_id]
            if not node.alive or request.node_id in in_route:
                continue
            if request.node_id in self._spoofed:
                continue
            candidates.append(request)
        if not candidates:
            return None
        candidates = _sort_requests_by_distance(candidates, mc.position, sim)
        plan_cost = self._route_cost_j(sim)
        for request in candidates:
            node = sim.network.nodes[request.node_id]
            travel = mc.travel_time_to(node.position)
            deficit = node.battery_capacity_j - node.believed_energy_j
            duration = mc.hardware.service_duration_for(max(deficit, 0.0))
            cost = (
                mc.position.distance_to(node.position) * mc.travel_cost_j_per_m
                + mc.hardware.emission_w * duration
            )
            if mc.energy_j - cost < plan_cost + self._reserve_j(sim):
                continue
            finish = sim.now + travel + duration
            if self._route:
                head = self._route[0]
                onward = (
                    node.position.distance_to(head.position) / mc.speed_m_s
                )
                if finish + onward > self._latest_starts[0] - _EPS:
                    continue
            return ServeAction(node_id=request.node_id, mode=ChargeMode.GENUINE)
        return None

    # ------------------------------------------------------------------
    # Bookkeeping fed back from the simulation
    # ------------------------------------------------------------------
    def note_spoofed(self, node_id: int) -> None:
        """The simulation confirms a spoof completed on this node."""
        self._spoofed.add(node_id)

    def spoofed_ids(self) -> frozenset[int]:
        """Nodes successfully spoofed so far."""
        return frozenset(self._spoofed)


class CsaAttacker(PlannedAttacker):
    """The paper's attacker: :class:`PlannedAttacker` with the CSA planner."""

    def __init__(
        self,
        stealth: StealthPolicy | None = None,
        key_count: int = 15,
        cover_traffic: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(
            planner=CsaPlanner(),
            stealth=stealth,
            key_count=key_count,
            cover_traffic=cover_traffic,
            **kwargs,
        )


class BlatantAttacker(MissionController):
    """The naive attacker: pretends to charge, fools nobody.

    Visits each key node as soon as it requests charging, parks for the
    legitimate duration, but never radiates (saving emission energy —
    this attacker optimises effort, not stealth).  Ignores every non-key
    request.  Exists to show what the detectors catch.
    """

    name = "attacker[Blatant]"

    def __init__(self, key_count: int = 15) -> None:
        if key_count < 1:
            raise ValueError(f"key_count must be >= 1, got {key_count}")
        self.key_count = key_count
        self._visited: set[int] = set()

    def on_start(self, sim: "WrsnSimulation") -> None:
        sim.network.refresh_key_nodes(self.key_count)

    def next_action(self, sim: "WrsnSimulation") -> Action | None:
        mc = self.charger or sim.charger
        pending = [
            r
            for r in sim.unclaimed_requests()
            if sim.network.nodes[r.node_id].alive
            and sim.network.nodes[r.node_id].is_key
            and r.node_id not in self._visited
        ]
        if not pending:
            return None
        pending = _sort_requests_by_distance(pending, mc.position, sim)
        request = pending[0]
        self._visited.add(request.node_id)
        return ServeAction(node_id=request.node_id, mode=ChargeMode.PRETEND)
