"""Attacker-side knowledge models: what if the predictions are wrong?

The CSA planner's time windows come from *predicting* each victim's
request and death times, which requires knowing its consumption rate.
A real attacker estimates those rates from observed traffic and gets
them wrong by some factor.  This module derives TIDE targets from a
noisy view of the network: each key node's rate estimate is perturbed
multiplicatively, shifting its predicted request/death — and therefore
the stealth window the attacker plans against — away from the truth.

The simulation still runs on the *true* dynamics, so estimation error
manifests exactly the way it would in the field: arriving before the
real request (the visit itself is anomalous — modelled by the window
simply being wrong), parking for the wrong duration, or worst of all
letting the victim die inside the death-after-charge grace window.
Experiment EXT-01 sweeps the error magnitude.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.tide import TideTarget
from repro.core.windows import StealthPolicy
from repro.mc.charger import ChargingHardware
from repro.network.network import Network
from repro.utils.validation import check_non_negative

__all__ = ["NoisyEstimator", "derive_targets_with_error"]


class NoisyEstimator:
    """Multiplicative log-normal error on per-node rate estimates.

    Parameters
    ----------
    rate_error_std:
        Standard deviation of the log rate error.  0.0 is a perfect
        observer; 0.1 means rate estimates are typically ~10% off.
    rng:
        Source of the (per-node, stable across replans) errors.

    The error for a node is drawn once and cached: an attacker's
    systematic misestimate of one node does not resample itself every
    replanning round.
    """

    def __init__(self, rate_error_std: float, rng: np.random.Generator) -> None:
        self.rate_error_std = check_non_negative("rate_error_std", rate_error_std)
        self._rng = rng
        self._factors: dict[int, float] = {}

    def rate_factor(self, node_id: int) -> float:
        """The multiplicative error applied to this node's rate estimate."""
        if node_id not in self._factors:
            if self.rate_error_std == 0.0:
                self._factors[node_id] = 1.0
            else:
                self._factors[node_id] = float(
                    math.exp(self._rng.normal(0.0, self.rate_error_std))
                )
        return self._factors[node_id]


def derive_targets_with_error(
    network: Network,
    hardware: ChargingHardware,
    policy: StealthPolicy,
    now: float,
    estimator: NoisyEstimator,
    safety_sigma: float = 0.0,
) -> list[TideTarget]:
    """Stealthy TIDE targets as seen through a noisy rate estimator.

    Mirrors :func:`repro.core.windows.derive_targets` but computes each
    node's predicted request/death from ``estimated_rate = true_rate *
    factor`` while leaving the node's *current believed energy reading*
    exact (the attacker can observe telemetry; it is the drift rate it
    must estimate).

    ``safety_sigma`` is the error-aware attacker's response.  A k-sigma
    rate error misplaces the predicted death by about ``k *
    rate_error_std * (death - now)``; violating the *death-after-charge*
    grace is a deterministic detector hit, while extra audit exposure is
    only a probabilistic risk.  The error-aware attacker therefore
    shifts its whole service window **earlier** by that buffer: the hard
    grace boundary gains the margin, the soft exposure side absorbs it
    (the victim lingers a few extra hours under the Poisson auditor).
    Window *width* is preserved, so damage survives; experiment EXT-01
    quantifies the residual stealth cost.
    """
    targets: list[TideTarget] = []
    for info in network.key_nodes:
        node = network.nodes[info.node_id]
        if not node.alive:
            continue
        true_rate = node.consumption_w
        if true_rate <= 0.0:
            continue
        est_rate = true_rate * estimator.rate_factor(info.node_id)

        believed = node.believed_energy_j
        threshold = node.request_threshold_j
        deficit_to_threshold = believed - threshold
        if deficit_to_threshold > 0.0:
            request_time = node.clock + deficit_to_threshold / est_rate
        else:
            request_time = node.clock
        # True energy at the (estimated) request instant, then death.
        true_at_request = node.energy_j - est_rate * (request_time - node.clock)
        if true_at_request <= 0.0:
            continue
        death_time = request_time + true_at_request / est_rate

        energy_needed = node.battery_capacity_j - max(
            believed - est_rate * (request_time - node.clock), 0.0
        )
        duration = hardware.service_duration_for(max(energy_needed, 0.0))
        service_energy = hardware.emission_w * duration

        margin = safety_sigma * estimator.rate_error_std * max(
            death_time - now, 0.0
        )
        latest = death_time - duration - policy.grace_period_s - margin
        if math.isinf(policy.exposure_cap_s):
            earliest = request_time
        else:
            earliest = max(
                request_time,
                death_time - duration - policy.exposure_cap_s - margin,
            )
        earliest = max(earliest, now)
        if latest < earliest:
            continue
        targets.append(
            TideTarget(
                node_id=info.node_id,
                weight=info.weight,
                position=node.position,
                window_start=earliest,
                window_end=latest,
                service_duration=duration,
                service_energy_j=service_energy,
                request_time=request_time,
                death_time=death_time,
            )
        )
    targets.sort(key=lambda t: (t.window_end, t.node_id))
    return targets
