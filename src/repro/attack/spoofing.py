"""Physical-layer view of a spoofed charging service.

The network simulator only needs the hardware's aggregate rates, but the
testbed experiments, the examples and the Section II reproduction want
the full physical picture of a spoof: the null-steering phases, the
residual RF at the rectenna, the power the pilot detector sees, and the
nonlinear-superposition gap.  :func:`execute_spoof` assembles that report
from the EM substrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.mc.charger import ChargingHardware
from repro.utils.geometry import Point

__all__ = ["SpoofReport", "execute_spoof"]


@dataclass(frozen=True)
class SpoofReport:
    """Everything measurable about one spoofed service.

    Attributes
    ----------
    phases_rad:
        The per-element emission phases steering the null.
    rf_at_rectenna_w:
        Residual coherent RF power at the victim's harvesting antenna.
    harvested_w:
        DC power actually delivered (should be ~0).
    pilot_rf_w:
        RF power at the victim's charging-presence pilot antenna.
    pilot_tripped:
        Whether the presence indicator believes charging is under way.
    genuine_harvest_w:
        What an honest beamformed service would have delivered — the
        power the victim *thinks* it is receiving.
    suppression_db:
        How far below the genuine harvest the spoof drives delivery
        (``inf`` for a perfect null).
    """

    phases_rad: tuple[float, ...]
    rf_at_rectenna_w: float
    harvested_w: float
    pilot_rf_w: float
    pilot_tripped: bool
    genuine_harvest_w: float
    suppression_db: float


def execute_spoof(hardware: ChargingHardware) -> SpoofReport:
    """Steer a null at the hardware's standard service geometry and report.

    Uses the same parking geometry the simulator assumes, so the report's
    ``harvested_w`` matches :attr:`ChargingHardware.spoof_rate_w` exactly.
    """
    charger = Point(0.0, 0.0)
    victim = Point(hardware.service_distance_m, 0.0)
    array = hardware.array

    phases = array.spoof_phases(charger, victim)
    pilot_point = array.pilot_point(victim, charger)
    # Rectenna and pilot observables come out of one batched field solve.
    observations = np.array(
        [(victim.x, victim.y), (pilot_point.x, pilot_point.y)], dtype=float
    )
    rf_powers = array.rf_powers_at_many(observations, charger, phases)
    rf = float(rf_powers[0])
    pilot_rf = float(rf_powers[1])
    harvested = float(hardware.rectenna.harvest(rf))
    genuine = hardware.genuine_rate_w

    if harvested <= 0.0:
        suppression_db = math.inf
    else:
        suppression_db = 10.0 * math.log10(genuine / harvested)

    return SpoofReport(
        phases_rad=tuple(phases),
        rf_at_rectenna_w=rf,
        harvested_w=harvested,
        pilot_rf_w=pilot_rf,
        pilot_tripped=pilot_rf >= hardware.presence_threshold_w,
        genuine_harvest_w=genuine,
        suppression_db=suppression_db,
    )
