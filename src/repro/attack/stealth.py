"""Sizing stealth margins against the defender's audit process.

The voltage auditor fires at Poisson times with mean interval ``T`` and
picks uniformly among the ``c`` recently-charged alive candidates, so a
particular spoofed victim that stays alive (exposed) for ``x`` seconds is
hit by an audit with probability::

    p(x) = 1 - exp(-x / (T * c))

For a campaign spoofing ``n`` victims, each exposed at most ``X`` seconds,
the union probability of any audit landing on a spoofed victim is at most
``n * p(X)``.  Inverting for a total risk budget ``eps`` gives the
per-victim exposure cap the CSA planner feeds into its time windows::

    X = -T * c * ln(1 - eps / n)

These are planning-side estimates: the attacker does not know the
defender's exact state, only the audit intensity it assumes.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive, check_probability

__all__ = ["detection_probability", "exposure_cap_for_risk"]


def detection_probability(
    exposure_s: float,
    mean_audit_interval_s: float,
    candidate_pool_size: float = 10.0,
) -> float:
    """Probability one victim's exposure attracts an audit.

    Parameters
    ----------
    exposure_s:
        Seconds the victim remains spoofed-but-alive.
    mean_audit_interval_s:
        Mean seconds between defender audits.
    candidate_pool_size:
        Expected number of audit candidates the victim hides among.
    """
    if exposure_s < 0.0:
        raise ValueError(f"exposure_s must be >= 0, got {exposure_s}")
    check_positive("mean_audit_interval_s", mean_audit_interval_s)
    check_positive("candidate_pool_size", candidate_pool_size)
    hazard = 1.0 / (mean_audit_interval_s * candidate_pool_size)
    return 1.0 - math.exp(-hazard * exposure_s)


def exposure_cap_for_risk(
    risk_budget: float,
    n_targets: int,
    mean_audit_interval_s: float,
    candidate_pool_size: float = 10.0,
) -> float:
    """Per-victim exposure cap keeping total detection risk under budget.

    Parameters
    ----------
    risk_budget:
        Tolerated total probability of detection over the campaign,
        in (0, 1).
    n_targets:
        Number of victims the campaign will spoof.
    mean_audit_interval_s, candidate_pool_size:
        The assumed defender audit process (see
        :func:`detection_probability`).

    Returns the exposure cap in seconds; feed it into
    :class:`repro.core.windows.StealthPolicy`.
    """
    risk_budget = check_probability("risk_budget", risk_budget)
    if not 0.0 < risk_budget < 1.0:
        raise ValueError(f"risk_budget must be in (0, 1), got {risk_budget}")
    if n_targets < 1:
        raise ValueError(f"n_targets must be >= 1, got {n_targets}")
    check_positive("mean_audit_interval_s", mean_audit_interval_s)
    check_positive("candidate_pool_size", candidate_pool_size)
    per_target = risk_budget / n_targets
    return -mean_audit_interval_s * candidate_pool_size * math.log(1.0 - per_target)
