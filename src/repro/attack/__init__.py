"""Attack execution: the malicious mobile charger.

* :mod:`repro.attack.stealth` — sizing the exposure cap against the
  defender's audit intensity.
* :mod:`repro.attack.spoofing` — the physical-layer spoof report tying a
  service to the antenna-array physics.
* :mod:`repro.attack.attacker` — the mission controllers: the CSA
  attacker (plans with the paper's algorithm, interleaves genuine cover
  charging), planner-swappable variants for the baselines, and the
  blatant attacker the detectors exist to catch.
* :mod:`repro.attack.command_spoof` — the control-channel attacker that
  truncates legitimate sessions with forged stop commands while logging
  them in full.
"""

from repro.attack.attacker import BlatantAttacker, CsaAttacker, PlannedAttacker
from repro.attack.command_spoof import CommandSpoofAttacker
from repro.attack.knowledge import NoisyEstimator, derive_targets_with_error
from repro.attack.spoofing import SpoofReport, execute_spoof
from repro.attack.stealth import (
    detection_probability,
    exposure_cap_for_risk,
)

__all__ = [
    "BlatantAttacker",
    "CommandSpoofAttacker",
    "CsaAttacker",
    "NoisyEstimator",
    "PlannedAttacker",
    "SpoofReport",
    "derive_targets_with_error",
    "detection_probability",
    "execute_spoof",
    "exposure_cap_for_risk",
]
