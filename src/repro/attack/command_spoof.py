"""The control-channel command-spoofing (denial-of-charge) attacker.

Where CSA forges the *energy transfer* (radiating a null that fools the
victim's presence indicator), this attacker forges the *control channel*:
every session it runs is a perfectly legitimate genuine charge, but on
its key-node victims it injects a RemoteStop-style command that ends the
session early — while the session log still claims the full service.
This is the WRSN mapping of the OCPP remote-termination attacks studied
against EV charging infrastructure.

The victim harvests (and believes) only the delivered fraction, so its
telemetry *disagrees* with the claim — but by less than the trajectory
detector's per-event tolerance when ``stop_fraction`` is chosen high
enough.  Each victim stays chronically under-charged, re-requests sooner,
and drifts toward exhaustion across repeated truncated sessions, while
every individual session looks merely imprecise.  The per-session
divergence the periodic detectors shrug off is exactly what the digital
twin's CUSUM accumulates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mc.charger import ChargeMode
from repro.mc.scheduling import Scheduler
from repro.sim.actions import Action, CommandSpoofAction, ServeAction
from repro.sim.benign import BenignController

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.wrsn_sim import WrsnSimulation

__all__ = ["CommandSpoofAttacker"]


class CommandSpoofAttacker(BenignController):
    """An honest-looking charger that truncates its key-node sessions.

    Behaves exactly like :class:`~repro.sim.benign.BenignController`
    (same scheduler, same recharge policy, genuinely serves everyone) —
    except that a serve aimed at a key node is silently converted into a
    :class:`~repro.sim.actions.CommandSpoofAction` stopping at
    ``stop_fraction`` of the duty duration.

    Parameters
    ----------
    key_count:
        Number of key nodes to annotate and target.
    stop_fraction:
        Fraction of each victim session actually delivered, in
        ``(0, 1]``.  The default 0.8 leaves a 20% per-session telemetry
        shortfall — under the trajectory detector's 25% tolerance.
    scheduler, recharge_below_frac:
        Forwarded to :class:`BenignController`.
    """

    def __init__(
        self,
        key_count: int = 15,
        stop_fraction: float = 0.8,
        scheduler: Scheduler | None = None,
        recharge_below_frac: float = 0.15,
    ) -> None:
        super().__init__(
            scheduler=scheduler, recharge_below_frac=recharge_below_frac
        )
        if key_count < 1:
            raise ValueError(f"key_count must be >= 1, got {key_count}")
        if not 0.0 < stop_fraction <= 1.0:
            raise ValueError(
                f"stop_fraction must be in (0, 1], got {stop_fraction!r}"
            )
        self.key_count = key_count
        self.stop_fraction = stop_fraction

    @property
    def name(self) -> str:
        return f"attacker[CommandSpoof:{self.stop_fraction:g}]"

    def on_start(self, sim: "WrsnSimulation") -> None:
        sim.network.refresh_key_nodes(self.key_count)

    def next_action(self, sim: "WrsnSimulation") -> Action | None:
        action = super().next_action(sim)
        if (
            isinstance(action, ServeAction)
            and action.mode == ChargeMode.GENUINE
            and sim.network.nodes[action.node_id].is_key
        ):
            return CommandSpoofAction(
                node_id=action.node_id,
                stop_fraction=self.stop_fraction,
                not_before=action.not_before,
            )
        return action
