"""Per-node energy consumption: the first-order radio model.

The standard first-order radio model of the WSN literature (Heinzelman et
al.) prices transmitting ``k`` bits over distance ``d`` at

    E_tx(k, d) = k * (e_elec + eps_amp * d^2)

and receiving ``k`` bits at ``E_rx(k) = k * e_elec``, plus a constant
baseline (sensing, idle listening, MCU).  A node's steady-state power draw
is then fully determined by its own data-generation rate, the traffic it
relays for its subtree, and the length of its uplink.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["RadioEnergyModel", "node_power_w"]


@dataclass(frozen=True)
class RadioEnergyModel:
    """First-order radio energy model.

    Parameters
    ----------
    e_elec_j_per_bit:
        Electronics energy per bit for both transmit and receive chains.
        Default 50 nJ/bit.
    eps_amp_j_per_bit_m2:
        Transmit amplifier energy per bit per square metre.  Default
        100 pJ/bit/m^2.
    baseline_w:
        Constant draw for sensing, idle listening and the MCU.  Default
        2 mW.
    """

    e_elec_j_per_bit: float = 50e-9
    eps_amp_j_per_bit_m2: float = 100e-12
    baseline_w: float = 2e-3

    def __post_init__(self) -> None:
        check_positive("e_elec_j_per_bit", self.e_elec_j_per_bit)
        check_non_negative("eps_amp_j_per_bit_m2", self.eps_amp_j_per_bit_m2)
        check_non_negative("baseline_w", self.baseline_w)

    def tx_energy_per_bit(self, distance_m: float) -> float:
        """Energy (J) to transmit one bit over the given distance."""
        distance_m = check_non_negative("distance_m", distance_m)
        return self.e_elec_j_per_bit + self.eps_amp_j_per_bit_m2 * distance_m**2

    def rx_energy_per_bit(self) -> float:
        """Energy (J) to receive one bit."""
        return self.e_elec_j_per_bit

    def tx_power(self, rate_bps: float, distance_m: float) -> float:
        """Steady-state transmit power (W) at the given bit rate and range."""
        rate_bps = check_non_negative("rate_bps", rate_bps)
        return rate_bps * self.tx_energy_per_bit(distance_m)

    def rx_power(self, rate_bps: float) -> float:
        """Steady-state receive power (W) at the given bit rate."""
        rate_bps = check_non_negative("rate_bps", rate_bps)
        return rate_bps * self.rx_energy_per_bit()


def node_power_w(
    model: RadioEnergyModel,
    own_rate_bps: float,
    relay_rate_bps: float,
    uplink_distance_m: float,
) -> float:
    """Total steady-state power draw of a node.

    The node receives its subtree's traffic (``relay_rate_bps``), transmits
    that plus its own generated traffic over its uplink, and pays the
    constant baseline.
    """
    own_rate_bps = check_non_negative("own_rate_bps", own_rate_bps)
    relay_rate_bps = check_non_negative("relay_rate_bps", relay_rate_bps)
    upstream = own_rate_bps + relay_rate_bps
    return (
        model.baseline_w
        + model.rx_power(relay_rate_bps)
        + model.tx_power(upstream, uplink_distance_m)
    )
