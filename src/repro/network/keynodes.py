"""Key-node identification and weighting.

The attack does not waste its budget on arbitrary nodes: it targets *key
nodes* — the nodes whose exhaustion does the most structural damage.  Two
complementary signals identify them:

* **Articulation points** of the communication graph: killing one
  disconnects part of the network from the base station outright.
* **Relay load**: nodes carrying the most traffic; their death forces
  expensive reroutes and shortens everyone's lifetime.

Each key node gets a positive weight — its *criticality* — combining the
number of nodes its death strands with its normalised relay load.  These
weights are the per-node utilities the TIDE optimisation maximises.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.network.routing import RoutingTree
from repro.network.topology import BASE_STATION_ID
from repro.network.traffic import TrafficModel, relay_loads

__all__ = ["KeyNodeInfo", "connectivity_impact", "identify_key_nodes"]


@dataclass(frozen=True)
class KeyNodeInfo:
    """A key node and why it matters.

    Attributes
    ----------
    node_id:
        The node's identifier.
    weight:
        Criticality weight in (0, 1]; the TIDE utility of exhausting it.
    stranded_count:
        Nodes that lose their route to the base station if this node dies.
    relay_load_bps:
        Traffic the node currently relays.
    is_articulation:
        Whether the node is an articulation point of the alive graph.
    """

    node_id: int
    weight: float
    stranded_count: int
    relay_load_bps: float
    is_articulation: bool


def connectivity_impact(graph: nx.Graph, node_id: int) -> int:
    """Number of sensor nodes stranded from the base station if ``node_id`` dies.

    Computed by removing the node and counting vertices that can no longer
    reach :data:`BASE_STATION_ID`.  The dead node itself is not counted —
    its loss is priced separately.
    """
    if node_id == BASE_STATION_ID:
        raise ValueError("the base station is not a candidate key node")
    if node_id not in graph:
        raise KeyError(f"node {node_id} is not in the graph")
    remaining = graph.subgraph(v for v in graph.nodes if v != node_id)
    reachable = nx.node_connected_component(remaining, BASE_STATION_ID)
    stranded = [
        v for v in remaining.nodes if v != BASE_STATION_ID and v not in reachable
    ]
    return len(stranded)


def identify_key_nodes(
    graph: nx.Graph,
    tree: RoutingTree,
    traffic: TrafficModel,
    count: int,
    exclude: frozenset[int] = frozenset(),
) -> list[KeyNodeInfo]:
    """The ``count`` most critical nodes of the network, most critical first.

    Criticality of node ``i``::

        score_i = stranded_i / n  +  relay_i / max_relay

    i.e. the fraction of the network stranded by its death plus its relay
    load normalised by the heaviest relay.  Articulation points therefore
    rank first, heavy relays next.  Weights are the scores renormalised to
    (0, 1] by the maximum score so downstream utilities are scale-free.

    ``exclude`` removes nodes from candidacy (e.g. already-dead nodes).
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    candidates = [n for n in tree.connected_nodes() if n not in exclude]
    if not candidates:
        return []

    n_total = max(len(candidates), 1)
    relays = relay_loads(tree, traffic)
    max_relay = max((relays.get(c, 0.0) for c in candidates), default=0.0)
    articulation = set(nx.articulation_points(graph)) - {BASE_STATION_ID}

    scored: list[tuple[float, KeyNodeInfo]] = []
    for node_id in candidates:
        stranded = connectivity_impact(graph, node_id)
        relay = relays.get(node_id, 0.0)
        relay_norm = relay / max_relay if max_relay > 0.0 else 0.0
        score = stranded / n_total + relay_norm
        scored.append(
            (
                score,
                KeyNodeInfo(
                    node_id=node_id,
                    weight=score,  # renormalised below
                    stranded_count=stranded,
                    relay_load_bps=relay,
                    is_articulation=node_id in articulation,
                ),
            )
        )

    # Highest score first; node id as the deterministic tie-breaker.
    scored.sort(key=lambda item: (-item[0], item[1].node_id))
    top = scored[: min(count, len(scored))]
    max_score = top[0][0] if top and top[0][0] > 0.0 else 1.0
    return [
        KeyNodeInfo(
            node_id=info.node_id,
            weight=max(score / max_score, 1e-6),
            stranded_count=info.stranded_count,
            relay_load_bps=info.relay_load_bps,
            is_articulation=info.is_articulation,
        )
        for score, info in top
    ]
