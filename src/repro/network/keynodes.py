"""Key-node identification and weighting.

The attack does not waste its budget on arbitrary nodes: it targets *key
nodes* — the nodes whose exhaustion does the most structural damage.  Two
complementary signals identify them:

* **Articulation points** of the communication graph: killing one
  disconnects part of the network from the base station outright.
* **Relay load**: nodes carrying the most traffic; their death forces
  expensive reroutes and shortens everyone's lifetime.

Each key node gets a positive weight — its *criticality* — combining the
number of nodes its death strands with its normalised relay load.  These
weights are the per-node utilities the TIDE optimisation maximises.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.network.routing import RoutingTree
from repro.network.topology import BASE_STATION_ID
from repro.network.traffic import TrafficModel, relay_loads

__all__ = [
    "KeyNodeInfo",
    "connectivity_impact",
    "connectivity_impacts",
    "identify_key_nodes",
]


@dataclass(frozen=True)
class KeyNodeInfo:
    """A key node and why it matters.

    Attributes
    ----------
    node_id:
        The node's identifier.
    weight:
        Criticality weight in (0, 1]; the TIDE utility of exhausting it.
    stranded_count:
        Nodes that lose their route to the base station if this node dies.
    relay_load_bps:
        Traffic the node currently relays.
    is_articulation:
        Whether the node is an articulation point of the alive graph.
    """

    node_id: int
    weight: float
    stranded_count: int
    relay_load_bps: float
    is_articulation: bool


def connectivity_impact(graph: nx.Graph, node_id: int) -> int:
    """Number of sensor nodes stranded from the base station if ``node_id`` dies.

    Computed by removing the node and counting vertices that can no longer
    reach :data:`BASE_STATION_ID`.  The dead node itself is not counted —
    its loss is priced separately.
    """
    if node_id == BASE_STATION_ID:
        raise ValueError("the base station is not a candidate key node")
    if node_id not in graph:
        raise KeyError(f"node {node_id} is not in the graph")
    remaining = graph.subgraph(v for v in graph.nodes if v != node_id)
    reachable = nx.node_connected_component(remaining, BASE_STATION_ID)
    stranded = [
        v for v in remaining.nodes if v != BASE_STATION_ID and v not in reachable
    ]
    return len(stranded)


def _block_cut_scan(graph: nx.Graph) -> tuple[dict[int, int], frozenset[int]]:
    """Stranded counts and articulation points in one iterative DFS.

    A single Tarjan-style lowlink pass rooted at the base station replaces
    the per-candidate connected-component recomputation (O(N) passes of
    O(V+E) each -> one O(V+E) pass): removing vertex ``v`` strands exactly
    the DFS subtrees of its children ``c`` with ``low[c] >= disc[v]`` —
    plus every node that was already cut off from the base station before
    the removal.  The DFS is iterative, so deep chain topologies never
    trip Python's recursion limit.

    Returns ``(stranded_by_node, articulation_points)`` covering every
    sensor node in the graph (articulation points are those of the base
    station's component; vertices outside it are never articulation
    points *for base-station reachability*).
    """
    root = BASE_STATION_ID
    stranded: dict[int, int] = {}
    if root not in graph:
        raise ValueError("graph must contain the base station vertex")
    disc: dict[int, int] = {root: 0}
    low: dict[int, int] = {root: 0}
    subtree: dict[int, int] = {root: 0}
    cut_sum: dict[int, int] = {}
    articulation: set[int] = set()
    counter = 1
    root_children = 0
    stack: list[tuple[int, int | None, object]] = [(root, None, iter(graph.adj[root]))]
    while stack:
        v, parent, neighbours = stack[-1]
        pushed = False
        for w in neighbours:  # type: ignore[union-attr]
            if w not in disc:
                disc[w] = low[w] = counter
                counter += 1
                subtree[w] = 1
                stack.append((w, v, iter(graph.adj[w])))
                pushed = True
                break
            if w != parent and disc[w] < low[v]:
                low[v] = disc[w]
        if pushed:
            continue
        stack.pop()
        if parent is None:
            continue
        if low[v] < low[parent]:
            low[parent] = low[v]
        subtree[parent] += subtree[v]
        if parent == root:
            root_children += 1
        elif low[v] >= disc[parent]:
            cut_sum[parent] = cut_sum.get(parent, 0) + subtree[v]
            articulation.add(parent)
    if root_children >= 2:
        articulation.add(root)

    # Sensor nodes outside the base station's component are unreachable
    # whether or not any candidate dies, so they count for everyone.
    total_sensors = graph.number_of_nodes() - 1
    outside = total_sensors - (len(disc) - 1)
    for v in graph.nodes:
        if v == root:
            continue
        if v in disc:
            stranded[v] = outside + cut_sum.get(v, 0)
        else:
            stranded[v] = outside - 1  # itself removed; the rest stay cut
    return stranded, frozenset(articulation)


def connectivity_impacts(graph: nx.Graph) -> dict[int, int]:
    """:func:`connectivity_impact` for *every* sensor node, one O(V+E) pass.

    Equivalent to calling :func:`connectivity_impact` per node (the
    property tests pin the two together) without the per-candidate
    component recomputation.
    """
    stranded, _articulation = _block_cut_scan(graph)
    return stranded


def identify_key_nodes(
    graph: nx.Graph,
    tree: RoutingTree,
    traffic: TrafficModel,
    count: int,
    exclude: frozenset[int] = frozenset(),
) -> list[KeyNodeInfo]:
    """The ``count`` most critical nodes of the network, most critical first.

    Criticality of node ``i``::

        score_i = stranded_i / n  +  relay_i / max_relay

    i.e. the fraction of the network stranded by its death plus its relay
    load normalised by the heaviest relay.  Articulation points therefore
    rank first, heavy relays next.  Weights are the scores renormalised to
    (0, 1] by the maximum score so downstream utilities are scale-free.

    ``exclude`` removes nodes from candidacy (e.g. already-dead nodes).
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    candidates = [n for n in tree.connected_nodes() if n not in exclude]
    if not candidates:
        return []

    n_total = max(len(candidates), 1)
    relays = relay_loads(tree, traffic)
    max_relay = max((relays.get(c, 0.0) for c in candidates), default=0.0)
    # One block-cut pass scores every candidate: stranded counts and
    # articulation flags both fall out of the same DFS.
    impacts, articulation_set = _block_cut_scan(graph)
    articulation = articulation_set - {BASE_STATION_ID}

    scored: list[tuple[float, KeyNodeInfo]] = []
    for node_id in candidates:
        stranded = impacts[node_id]
        relay = relays.get(node_id, 0.0)
        relay_norm = relay / max_relay if max_relay > 0.0 else 0.0
        score = stranded / n_total + relay_norm
        scored.append(
            (
                score,
                KeyNodeInfo(
                    node_id=node_id,
                    weight=score,  # renormalised below
                    stranded_count=stranded,
                    relay_load_bps=relay,
                    is_articulation=node_id in articulation,
                ),
            )
        )

    # Highest score first; node id as the deterministic tie-breaker.
    scored.sort(key=lambda item: (-item[0], item[1].node_id))
    top = scored[: min(count, len(scored))]
    max_score = top[0][0] if top and top[0][0] > 0.0 else 1.0
    return [
        KeyNodeInfo(
            node_id=info.node_id,
            weight=max(score / max_score, 1e-6),
            stranded_count=info.stranded_count,
            relay_load_bps=info.relay_load_bps,
            is_articulation=info.is_articulation,
        )
        for score, info in top
    ]
