"""Data-gathering routing tree.

All sensor data flows to the base station over a shortest-path tree of the
communication graph (hop count first, total Euclidean length as the
tie-breaker — the standard minimum-hop/minimum-energy compromise).  The
tree is recomputed whenever a node dies; nodes cut off from the base
station stop generating billable traffic but keep paying their baseline
draw (their radios idle without a route).
"""

from __future__ import annotations

import networkx as nx

from repro.network.topology import BASE_STATION_ID

__all__ = [
    "RoutingTree",
    "build_routing_tree",
    "descendants_by_node",
    "subtree_sizes",
]


class RoutingTree:
    """A rooted data-gathering tree.

    Attributes
    ----------
    parent:
        Maps each connected node id to its next hop toward the base
        station (the base station maps to ``None``).
    uplink_distance:
        Maps each connected node id to the Euclidean length of its uplink.
    disconnected:
        Node ids present in the graph but unable to reach the base station.
    """

    def __init__(
        self,
        parent: dict[int, int | None],
        uplink_distance: dict[int, float],
        disconnected: frozenset[int],
    ) -> None:
        self.parent = parent
        self.uplink_distance = uplink_distance
        self.disconnected = disconnected
        self._children: dict[int, list[int]] = {}
        for child, par in parent.items():
            if par is not None:
                self._children.setdefault(par, []).append(child)

    def children(self, node_id: int) -> list[int]:
        """Direct children of ``node_id`` in the tree (sorted for determinism)."""
        return sorted(self._children.get(node_id, []))

    def connected_nodes(self) -> list[int]:
        """Sensor node ids with a route to the base station (sorted)."""
        return sorted(n for n in self.parent if n != BASE_STATION_ID)

    def is_connected(self, node_id: int) -> bool:
        """Whether the node can reach the base station."""
        return node_id in self.parent

    def path_to_base(self, node_id: int) -> list[int]:
        """The node's route to the base station, inclusive of both ends."""
        if node_id not in self.parent:
            raise KeyError(f"node {node_id} has no route to the base station")
        path = [node_id]
        current: int | None = node_id
        while current is not None and current != BASE_STATION_ID:
            current = self.parent[current]
            if current is not None:
                path.append(current)
        return path

    def depth(self, node_id: int) -> int:
        """Hop count from the node to the base station."""
        return len(self.path_to_base(node_id)) - 1


def build_routing_tree(graph: nx.Graph, alive: set[int] | None = None) -> RoutingTree:
    """Shortest-path tree to the base station over the alive subgraph.

    Parameters
    ----------
    graph:
        Communication graph including :data:`BASE_STATION_ID`.
    alive:
        Sensor node ids currently alive; ``None`` means all.  The base
        station never dies.

    Paths minimise hop count, breaking ties by total Euclidean length, so
    the tree is deterministic for a given graph.
    """
    if BASE_STATION_ID not in graph:
        raise ValueError("graph must contain the base station vertex")
    if alive is None:
        nodes = set(graph.nodes)
    else:
        nodes = set(alive) | {BASE_STATION_ID}
    subgraph = graph.subgraph(nodes)

    # Hop count dominates; Euclidean length breaks ties.  Scaling distance
    # by a factor smaller than (1 / max total length) preserves hop order.
    max_total = sum(d for _, _, d in subgraph.edges(data="distance")) + 1.0
    weight = {
        (u, v): 1.0 + d / max_total
        for u, v, d in subgraph.edges(data="distance")
    }

    def edge_weight(u: int, v: int, _attrs: dict) -> float:
        return weight.get((u, v), weight.get((v, u), 1.0))

    lengths, paths = nx.single_source_dijkstra(
        subgraph, BASE_STATION_ID, weight=edge_weight
    )
    del lengths

    parent: dict[int, int | None] = {BASE_STATION_ID: None}
    uplink: dict[int, float] = {}
    for node, path in paths.items():
        if node == BASE_STATION_ID:
            continue
        next_hop = path[-2]
        parent[node] = next_hop
        uplink[node] = float(subgraph.edges[node, next_hop]["distance"])

    reachable = set(parent)
    disconnected = frozenset(
        n for n in nodes if n != BASE_STATION_ID and n not in reachable
    )
    return RoutingTree(parent, uplink, disconnected)


def _post_order(tree: RoutingTree) -> list[int]:
    """Tree vertices, every child before its parent (children visited in
    the same sorted order the recursive implementations used).

    Iterative so chain topologies thousands of hops deep — well past
    Python's ~1000-frame recursion limit — stay in bounds.
    """
    order: list[int] = []
    stack: list[int] = [BASE_STATION_ID]
    while stack:
        node_id = stack.pop()
        order.append(node_id)
        stack.extend(tree.children(node_id))
    order.reverse()
    return order


def subtree_sizes(tree: RoutingTree) -> dict[int, int]:
    """Number of sensor nodes in each node's subtree, itself included."""
    sizes: dict[int, int] = {}
    for node_id in _post_order(tree):
        total = 0 if node_id == BASE_STATION_ID else 1
        for child in tree.children(node_id):
            total += sizes[child]
        sizes[node_id] = total
    return sizes


def descendants_by_node(tree: RoutingTree) -> dict[int, frozenset[int]]:
    """Sensor-node descendants of every tree vertex (excluding itself)."""
    result: dict[int, frozenset[int]] = {}
    for node_id in _post_order(tree):
        acc: set[int] = set()
        for child in tree.children(node_id):
            acc.add(child)
            acc |= result[child]
        result[node_id] = frozenset(acc)
    return result
