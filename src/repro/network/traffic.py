"""Traffic model: who generates how much data, who relays it.

Each alive, connected sensor node generates data at its own rate; the
routing tree determines how much each node relays for its descendants.
Together with the radio energy model this fixes every node's steady-state
power draw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.routing import RoutingTree, descendants_by_node
from repro.network.topology import BASE_STATION_ID
from repro.utils.validation import check_non_negative

__all__ = ["TrafficModel", "relay_loads", "upstream_loads"]


@dataclass(frozen=True)
class TrafficModel:
    """Per-node data-generation rates.

    Parameters
    ----------
    rates_bps:
        Generation rate of each node, indexed by node id.
    """

    rates_bps: tuple[float, ...]

    def __post_init__(self) -> None:
        for i, rate in enumerate(self.rates_bps):
            check_non_negative(f"rates_bps[{i}]", rate)

    @classmethod
    def homogeneous(cls, node_count: int, rate_bps: float = 3_000.0) -> "TrafficModel":
        """Every node generates at the same rate."""
        check_non_negative("rate_bps", rate_bps)
        return cls(tuple(rate_bps for _ in range(node_count)))

    @classmethod
    def heterogeneous(
        cls,
        node_count: int,
        rng: np.random.Generator,
        low_bps: float = 1_000.0,
        high_bps: float = 5_000.0,
    ) -> "TrafficModel":
        """Rates drawn uniformly from ``[low_bps, high_bps]``."""
        check_non_negative("low_bps", low_bps)
        check_non_negative("high_bps", high_bps)
        if high_bps < low_bps:
            raise ValueError("high_bps must be >= low_bps")
        rates = rng.uniform(low_bps, high_bps, size=node_count)
        return cls(tuple(float(r) for r in rates))

    def rate(self, node_id: int) -> float:
        """Generation rate of a node in bits per second."""
        return self.rates_bps[node_id]

    @property
    def node_count(self) -> int:
        """Number of nodes covered by this model."""
        return len(self.rates_bps)


def relay_loads(
    tree: RoutingTree, traffic: TrafficModel, alive: set[int] | None = None
) -> dict[int, float]:
    """Traffic (bps) each connected node relays for its descendants.

    Only alive, connected descendants contribute.  Nodes not in the tree
    relay nothing.
    """
    descendants = descendants_by_node(tree)
    loads: dict[int, float] = {}
    for node_id in tree.connected_nodes():
        relay = 0.0
        for desc in descendants.get(node_id, frozenset()):
            if desc == BASE_STATION_ID:
                continue
            if alive is not None and desc not in alive:
                continue
            relay += traffic.rate(desc)
        loads[node_id] = relay
    return loads


def upstream_loads(
    tree: RoutingTree, traffic: TrafficModel, alive: set[int] | None = None
) -> dict[int, float]:
    """Total traffic (bps) each connected node transmits upstream.

    A node's upstream load is its own generation rate plus everything it
    relays.
    """
    relays = relay_loads(tree, traffic, alive)
    return {
        node_id: relays[node_id] + traffic.rate(node_id)
        for node_id in relays
    }
