"""The ``Network`` façade: deployment + nodes + routing + consumption.

Ties the substrate together: owns the sensor nodes, rebuilds the routing
tree over the alive subgraph whenever membership changes, derives every
node's steady-state power draw from the traffic it carries, and annotates
the key nodes the attack will target.
"""

from __future__ import annotations

import numpy as np

from repro.network.energy import RadioEnergyModel, node_power_w
from repro.network.energy_ledger import EnergyLedger
from repro.network.keynodes import KeyNodeInfo, identify_key_nodes
from repro.network.node import SensorNode
from repro.network.requests import ChargingRequest, predict_request
from repro.network.routing import RoutingTree, build_routing_tree
from repro.network.topology import BASE_STATION_ID, Deployment, deploy_uniform
from repro.network.traffic import TrafficModel, relay_loads
from repro.utils.rng import coerce_rng
from repro.utils.validation import check_positive, check_probability

__all__ = ["Network", "build_network"]


class Network:
    """A live wireless rechargeable sensor network.

    Parameters
    ----------
    deployment:
        Node and base-station placement.
    traffic:
        Per-node data-generation rates.
    radio:
        Radio energy model pricing transmission and reception.
    battery_capacity_j, request_threshold_frac, initial_energy_frac:
        Node battery parameters, applied uniformly.

    After construction, call :meth:`refresh_key_nodes` to annotate targets
    and keep driving :meth:`advance_to` / :meth:`handle_death` from the
    simulation loop.
    """

    def __init__(
        self,
        deployment: Deployment,
        traffic: TrafficModel,
        radio: RadioEnergyModel | None = None,
        battery_capacity_j: float = 10_800.0,
        request_threshold_frac: float = 0.2,
        initial_energy_frac: float = 1.0,
    ) -> None:
        if traffic.node_count != deployment.node_count:
            raise ValueError(
                f"traffic covers {traffic.node_count} nodes but the "
                f"deployment has {deployment.node_count}"
            )
        battery_capacity_j = check_positive("battery_capacity_j", battery_capacity_j)
        request_threshold_frac = check_probability(
            "request_threshold_frac", request_threshold_frac
        )
        initial_energy_frac = check_probability(
            "initial_energy_frac", initial_energy_frac
        )
        self.deployment = deployment
        self.traffic = traffic
        self.radio = radio or RadioEnergyModel()
        self.graph = deployment.graph()
        # All node batteries share one structure-of-arrays ledger, so the
        # event loop's advance is a vectorized pass instead of an O(N)
        # Python loop; each SensorNode is a view onto its slot.
        self.ledger = EnergyLedger(deployment.node_count)
        self.nodes: dict[int, SensorNode] = {
            i: SensorNode(
                node_id=i,
                position=pos,
                battery_capacity_j=battery_capacity_j,
                initial_energy_frac=initial_energy_frac,
                request_threshold_frac=request_threshold_frac,
                generation_rate_bps=traffic.rate(i),
                ledger=self.ledger,
                slot=i,
            )
            for i, pos in enumerate(deployment.positions)
        }
        self.positions_xy = np.array(
            [(p.x, p.y) for p in deployment.positions], dtype=float
        ).reshape(-1, 2)
        self.key_nodes: list[KeyNodeInfo] = []
        self._tree: RoutingTree | None = None
        self.recompute_consumption()

    # ------------------------------------------------------------------
    # Topology and routing
    # ------------------------------------------------------------------
    @property
    def base_station(self):
        """Base station position."""
        return self.deployment.base_station

    @property
    def routing_tree(self) -> RoutingTree:
        """The current routing tree over alive nodes."""
        assert self._tree is not None
        return self._tree

    def alive_ids(self) -> set[int]:
        """Ids of nodes still operating."""
        return set(self.ledger.alive_ids())

    def dead_ids(self) -> set[int]:
        """Ids of exhausted nodes."""
        return set(self.ledger.dead_ids())

    def alive_mask(self) -> np.ndarray:
        """Boolean liveness array indexed by node id (a live view)."""
        return self.ledger.alive

    def alive_graph(self):
        """Communication graph restricted to alive nodes (plus the BS)."""
        keep = self.alive_ids() | {BASE_STATION_ID}
        return self.graph.subgraph(keep)

    def recompute_consumption(self) -> None:
        """Rebuild routing over alive nodes and reset every node's draw.

        Connected nodes pay baseline + relay + uplink transmission;
        stranded-but-alive nodes pay only the baseline (their radio idles
        with no route).  Dead nodes pay nothing.
        """
        alive = self.alive_ids()
        self._tree = build_routing_tree(self.graph, alive)
        relays = relay_loads(self._tree, self.traffic, alive)
        for node_id, node in self.nodes.items():
            if not node.alive:
                node.set_consumption(0.0)
                continue
            if self._tree.is_connected(node_id):
                power = node_power_w(
                    self.radio,
                    own_rate_bps=self.traffic.rate(node_id),
                    relay_rate_bps=relays.get(node_id, 0.0),
                    uplink_distance_m=self._tree.uplink_distance[node_id],
                )
            else:
                power = self.radio.baseline_w
            node.set_consumption(power)

    # ------------------------------------------------------------------
    # Key nodes
    # ------------------------------------------------------------------
    def refresh_key_nodes(self, count: int) -> list[KeyNodeInfo]:
        """Identify the ``count`` most critical alive nodes and annotate them.

        Clears previous annotations, so the returned list is always the
        current target set.
        """
        for node in self.nodes.values():
            node.is_key = False
            node.weight = 0.0
        infos = identify_key_nodes(
            self.alive_graph(),
            self.routing_tree,
            self.traffic,
            count,
            exclude=frozenset(self.dead_ids()),
        )
        for info in infos:
            node = self.nodes[info.node_id]
            node.is_key = True
            node.weight = info.weight
        self.key_nodes = infos
        return infos

    def key_ids(self) -> set[int]:
        """Ids of the currently annotated key nodes."""
        return {info.node_id for info in self.key_nodes}

    # ------------------------------------------------------------------
    # Time evolution
    # ------------------------------------------------------------------
    def advance_to(self, time: float) -> list[int]:
        """Advance every node to ``time``; return ids of nodes that died.

        One vectorized ledger pass; the death list is ascending by node
        id, matching the historical per-node-loop contract.  Does *not*
        recompute routing — the caller decides when (typically
        immediately, via :meth:`recompute_consumption`).
        """
        return self.ledger.advance_all_to(time)

    def next_death_time(self) -> float:
        """Earliest predicted node death at current draws (``inf`` if none)."""
        return self.ledger.next_death_time()

    def next_request(self) -> ChargingRequest | None:
        """The earliest charging request any node will issue (or ``None``)."""
        best: ChargingRequest | None = None
        for _, node in sorted(self.nodes.items()):
            request = predict_request(node)
            if request is None:
                continue
            if best is None or request.time < best.time:
                best = request
        return best

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    def total_true_energy(self) -> float:
        """Sum of true residual energies over alive nodes, joules."""
        return self.ledger.total_alive_energy()

    def stranded_ids(self) -> set[int]:
        """Alive nodes currently without a route to the base station."""
        return {
            i
            for i in self.alive_ids()
            if not self.routing_tree.is_connected(i)
        }

    def __repr__(self) -> str:
        return (
            f"Network(n={len(self.nodes)}, alive={len(self.alive_ids())}, "
            f"key={len(self.key_nodes)})"
        )


def build_network(
    node_count: int,
    seed: int | np.random.Generator,
    width: float = 100.0,
    height: float = 100.0,
    comm_range: float = 20.0,
    battery_capacity_j: float = 10_800.0,
    request_threshold_frac: float = 0.2,
    initial_energy_frac: float = 1.0,
    homogeneous_rate_bps: float | None = None,
    radio: RadioEnergyModel | None = None,
) -> Network:
    """Convenience constructor: uniform deployment + heterogeneous traffic.

    ``seed`` may be an integer (a fresh generator is derived) or an
    existing :class:`numpy.random.Generator`.
    """
    rng = coerce_rng(seed, "network")
    deployment = deploy_uniform(
        node_count, rng, width=width, height=height, comm_range=comm_range
    )
    if homogeneous_rate_bps is not None:
        traffic = TrafficModel.homogeneous(node_count, homogeneous_rate_bps)
    else:
        traffic = TrafficModel.heterogeneous(node_count, rng)
    return Network(
        deployment,
        traffic,
        radio=radio,
        battery_capacity_j=battery_capacity_j,
        request_threshold_frac=request_threshold_frac,
        initial_energy_frac=initial_energy_frac,
    )
