"""Structure-of-arrays energy ledger backing every sensor node.

The discrete-event loop advances *all* nodes to the popped event's time
before handling it, so the energy bookkeeping is the hottest code in the
simulator: at ``N`` nodes and ``E`` events the per-node-object loop costs
``O(N * E)`` Python interpreter dispatches.  The ledger keeps the battery
state of the whole network in parallel NumPy arrays — one slot per node —
so the advance becomes a handful of vectorized array operations while
:class:`repro.network.node.SensorNode` objects stay around as thin views
onto their slot (the scalar API every call site already uses).

Both code paths live here, side by side, and implement the *same*
piecewise-linear drain semantics with identical IEEE-754 operation
order:

* :meth:`EnergyLedger.advance_slot_to` — the scalar per-node path, used
  by standalone nodes and kept as the reference implementation.
* :meth:`EnergyLedger.advance_all_to` — the vectorized whole-network
  path driven by :meth:`repro.network.network.Network.advance_to`.

``tests/network/test_energy_ledger.py`` holds a property-style test
pinning the two paths to bitwise-equal results on random schedules.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import require_float64

__all__ = ["EnergyLedger"]

#: Tolerance realising deaths scheduled at the exact predicted depletion
#: instant despite float rounding (see ``advance_slot_to``).
_DEATH_TOL = 1e-7

#: Slack allowed on the "time never flows backwards" check.
_CLOCK_TOL = 1e-9


class EnergyLedger:
    """Battery state for ``count`` nodes, stored as parallel arrays.

    Attributes (all ndarrays of length ``count``)
    ----------
    capacity_j:
        Full battery energy per node, joules.
    energy_j:
        True residual energy per node.
    believed_j:
        The node's own (spoofable) energy estimate.
    consumption_w:
        Current steady-state power draw per node.
    clock:
        Simulation time each slot's energy state is valid at.
    death_time:
        Exact depletion instant per node; ``nan`` while alive.
    alive:
        Boolean liveness flags.
    """

    __slots__ = (
        "capacity_j",
        "energy_j",
        "believed_j",
        "consumption_w",
        "clock",
        "death_time",
        "alive",
    )

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError(f"ledger needs at least one slot, got {count}")
        self.capacity_j = np.zeros(count, dtype=float)
        self.energy_j = np.zeros(count, dtype=float)
        self.believed_j = np.zeros(count, dtype=float)
        self.consumption_w = np.zeros(count, dtype=float)
        self.clock = np.zeros(count, dtype=float)
        self.death_time = np.full(count, np.nan, dtype=float)
        self.alive = np.ones(count, dtype=bool)

    def __len__(self) -> int:
        return self.energy_j.shape[0]

    # ------------------------------------------------------------------
    # Slot lifecycle
    # ------------------------------------------------------------------
    def init_slot(self, slot: int, capacity_j: float, initial_frac: float) -> None:
        """Initialise one slot to a fresh battery at ``t = 0``."""
        self.capacity_j[slot] = capacity_j
        self.energy_j[slot] = capacity_j * initial_frac
        self.believed_j[slot] = self.energy_j[slot]
        self.consumption_w[slot] = 0.0
        self.clock[slot] = 0.0
        self.death_time[slot] = np.nan
        self.alive[slot] = True

    def load_arrays(
        self,
        *,
        capacity_j: "np.ndarray | object",
        energy_j: "np.ndarray | object",
        believed_j: "np.ndarray | object",
        consumption_w: "np.ndarray | object",
        clock: "float | np.ndarray | object",
        alive: "np.ndarray | object",
    ) -> None:
        """Bulk-initialise every slot from parallel arrays.

        The public array entry point (the digital twin seeds its replica
        from a run-start snapshot through here): each array must cover
        every slot, and externally supplied data cannot smuggle narrowed
        floats into the bit-for-bit drain arithmetic —
        :func:`~repro.utils.validation.require_float64` rejects them at
        the boundary.  ``clock`` may be a scalar (one shared start time)
        or a per-slot array.
        """
        count = len(self)
        fields = {
            "capacity_j": require_float64(capacity_j, "capacity_j"),
            "energy_j": require_float64(energy_j, "energy_j"),
            "believed_j": require_float64(believed_j, "believed_j"),
            "consumption_w": require_float64(consumption_w, "consumption_w"),
        }
        for name, values in fields.items():
            if values.shape != (count,):
                raise ValueError(
                    f"{name} must have shape ({count},), got {values.shape}"
                )
        alive_mask = np.asarray(alive, dtype=bool)
        if alive_mask.shape != (count,):
            raise ValueError(
                f"alive must have shape ({count},), got {alive_mask.shape}"
            )
        self.capacity_j[:] = fields["capacity_j"]
        self.energy_j[:] = fields["energy_j"]
        self.believed_j[:] = fields["believed_j"]
        self.consumption_w[:] = fields["consumption_w"]
        self.clock[:] = require_float64(clock, "clock")
        self.alive[:] = alive_mask

    # ------------------------------------------------------------------
    # Scalar (per-slot) path — the reference semantics
    # ------------------------------------------------------------------
    def advance_slot_to(self, slot: int, time: float) -> bool:
        """Drain one slot's battery up to ``time``; True if the node died.

        Time never flows backwards for a node; callers advance slots
        monotonically.  If the battery empties en route, the node dies at
        the exact depletion instant.
        """
        clock = float(self.clock[slot])
        if time < clock - _CLOCK_TOL:
            raise ValueError(
                f"cannot advance slot {slot} to {time} "
                f"(clock already at {clock})"
            )
        dt = max(0.0, time - clock)
        if not self.alive[slot]:
            self.clock[slot] = time
            return False
        energy = float(self.energy_j[slot])
        consumption = float(self.consumption_w[slot])
        drained = consumption * dt
        died = False
        # The small tolerance realises deaths scheduled at the exact
        # predicted depletion instant despite float rounding.
        if drained >= energy - _DEATH_TOL and consumption > 0.0:
            self.death_time[slot] = min(clock + energy / consumption, time)
            self.energy_j[slot] = 0.0
            self.believed_j[slot] = 0.0
            self.alive[slot] = False
            died = True
        else:
            self.energy_j[slot] = energy - drained
            self.believed_j[slot] = max(0.0, float(self.believed_j[slot]) - drained)
        self.clock[slot] = time
        return died

    def charge_slot(self, slot: int, delivered_j: float, believed_j: float) -> None:
        """Apply a completed charging service to one slot.

        Both credits clamp at capacity.  Dead nodes cannot be revived.
        """
        if not self.alive[slot]:
            return
        capacity = float(self.capacity_j[slot])
        self.energy_j[slot] = min(capacity, float(self.energy_j[slot]) + delivered_j)
        self.believed_j[slot] = min(
            capacity, float(self.believed_j[slot]) + believed_j
        )

    def reset_slot_energy(self, slot: int, fraction: float) -> None:
        """Reset one slot's true and believed energy (pre-run calibration)."""
        self.energy_j[slot] = float(self.capacity_j[slot]) * fraction
        self.believed_j[slot] = self.energy_j[slot]

    # ------------------------------------------------------------------
    # Vectorized (whole-ledger) path — the hot loop
    # ------------------------------------------------------------------
    def advance_all_to(self, time: float) -> list[int]:
        """Advance every slot to ``time``; return the ids that died.

        Semantically identical to calling :meth:`advance_slot_to` on each
        slot in ascending id order — the returned death list is ascending
        and each id appears exactly once across a run.  One fused pass
        over the arrays replaces the per-node Python loop.
        """
        clock = self.clock
        # The ledger always holds >= 1 slot (enforced in __init__), so
        # these reductions can never see an empty array.
        max_clock = float(clock.max())  # reprolint: ignore[RL-N004]
        if time < max_clock - _CLOCK_TOL:
            slot = int(clock.argmax())  # reprolint: ignore[RL-N004]
            raise ValueError(
                f"cannot advance slot {slot} to {time} "
                f"(clock already at {float(clock[slot])})"
            )
        alive = self.alive
        dt = np.maximum(0.0, time - clock)
        drained = self.consumption_w * dt
        dying = alive & (drained >= self.energy_j - _DEATH_TOL) & (
            self.consumption_w > 0.0
        )
        if dying.any():
            surviving = alive & ~dying
            self.energy_j[surviving] -= drained[surviving]
            self.believed_j[surviving] = np.maximum(
                0.0, self.believed_j[surviving] - drained[surviving]
            )
            self.death_time[dying] = np.minimum(
                clock[dying] + self.energy_j[dying] / self.consumption_w[dying],
                time,
            )
            self.energy_j[dying] = 0.0
            self.believed_j[dying] = 0.0
            self.alive[dying] = False
            died = np.flatnonzero(dying).tolist()
        else:
            self.energy_j[alive] -= drained[alive]
            self.believed_j[alive] = np.maximum(
                0.0, self.believed_j[alive] - drained[alive]
            )
            died = []
        self.clock[:] = time
        return died

    # ------------------------------------------------------------------
    # Reductions (all O(N) single ndarray passes)
    # ------------------------------------------------------------------
    def next_death_time(self) -> float:
        """Earliest predicted depletion at current draws (``inf`` if none)."""
        draining = self.alive & (self.consumption_w > 0.0)
        if not draining.any():
            return math.inf
        times = (
            self.clock[draining]
            + self.energy_j[draining] / self.consumption_w[draining]
        )
        return float(times.min())

    def total_alive_energy(self) -> float:
        """Sum of true residual energies over alive slots, joules."""
        return float(self.energy_j[self.alive].sum())

    def alive_ids(self) -> list[int]:
        """Ids of alive slots, ascending."""
        return np.flatnonzero(self.alive).tolist()

    def dead_ids(self) -> list[int]:
        """Ids of dead slots, ascending."""
        return np.flatnonzero(~self.alive).tolist()

    def alive_count(self) -> int:
        """Number of alive slots."""
        return int(self.alive.sum())
