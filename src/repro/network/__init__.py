"""Wireless rechargeable sensor network (WRSN) substrate.

Models the network the attack is launched against: sensor nodes with
batteries and data duties, a base station collecting data over a routing
tree, per-node energy consumption from the first-order radio model,
on-demand charging requests, and the identification of *key nodes* whose
exhaustion cripples the network.
"""

from repro.network.energy import RadioEnergyModel, node_power_w
from repro.network.energy_ledger import EnergyLedger
from repro.network.keynodes import (
    KeyNodeInfo,
    connectivity_impact,
    connectivity_impacts,
    identify_key_nodes,
)
from repro.network.network import Network, build_network
from repro.network.node import NodeState, SensorNode
from repro.network.requests import ChargingRequest, predict_request
from repro.network.routing import build_routing_tree, subtree_sizes
from repro.network.topology import (
    Deployment,
    communication_graph,
    deploy_clustered,
    deploy_grid,
    deploy_uniform,
)
from repro.network.traffic import TrafficModel, relay_loads

__all__ = [
    "ChargingRequest",
    "Deployment",
    "EnergyLedger",
    "KeyNodeInfo",
    "Network",
    "NodeState",
    "RadioEnergyModel",
    "SensorNode",
    "TrafficModel",
    "build_network",
    "build_routing_tree",
    "communication_graph",
    "connectivity_impact",
    "connectivity_impacts",
    "deploy_clustered",
    "deploy_grid",
    "deploy_uniform",
    "identify_key_nodes",
    "node_power_w",
    "predict_request",
    "relay_loads",
    "subtree_sizes",
]
