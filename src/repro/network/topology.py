"""Node deployment and communication-graph construction.

Deployments place ``n`` sensor nodes and one base station in a rectangular
field.  The communication graph connects any two entities within the radio
range; all experiments require the graph to be connected (otherwise some
nodes could never deliver data and "network lifetime" is ill-defined), so
the random generators resample until connectivity holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.network.spatial import SpatialGridIndex
from repro.utils.geometry import Point
from repro.utils.validation import check_positive

__all__ = [
    "BASE_STATION_ID",
    "Deployment",
    "communication_graph",
    "deploy_clustered",
    "deploy_grid",
    "deploy_uniform",
]

BASE_STATION_ID = -1
"""Graph identifier of the base station (sensor nodes use ids 0..n-1)."""


@dataclass(frozen=True)
class Deployment:
    """A placed network: node positions, base station, field geometry.

    Attributes
    ----------
    positions:
        Sensor node positions, indexed by node id.
    base_station:
        Base station position.
    width, height:
        Field dimensions in metres.
    comm_range:
        Radio range used to build the communication graph, metres.
    """

    positions: tuple[Point, ...]
    base_station: Point
    width: float
    height: float
    comm_range: float

    def __post_init__(self) -> None:
        check_positive("width", self.width)
        check_positive("height", self.height)
        check_positive("comm_range", self.comm_range)
        if not self.positions:
            raise ValueError("a deployment needs at least one sensor node")

    @property
    def node_count(self) -> int:
        """Number of sensor nodes (the base station is not counted)."""
        return len(self.positions)

    def graph(self) -> nx.Graph:
        """The communication graph of this deployment."""
        return communication_graph(self.positions, self.base_station, self.comm_range)


def communication_graph(
    positions: tuple[Point, ...] | list[Point],
    base_station: Point,
    comm_range: float,
) -> nx.Graph:
    """Unit-disk communication graph over nodes and the base station.

    Vertices are node ids ``0..n-1`` plus :data:`BASE_STATION_ID`; an edge
    joins two vertices iff their distance is at most ``comm_range``.  Edge
    attribute ``distance`` carries the Euclidean length (used by the radio
    energy model).
    """
    check_positive("comm_range", comm_range)
    all_points = list(positions) + [base_station]
    ids = list(range(len(positions))) + [BASE_STATION_ID]
    graph = nx.Graph()
    graph.add_nodes_from(ids)
    # Spatial grid instead of the dense O(N^2) pairwise matrix: only
    # points sharing a grid neighbourhood are distance-tested, and the
    # (i, j) lexsort reproduces the historical double-loop insertion
    # order (and its float64 edge lengths) bit for bit.
    coords = np.array([(p.x, p.y) for p in all_points], dtype=float)
    index = SpatialGridIndex(coords, cell_size=comm_range)
    src, dst, dists = index.pairs_within(comm_range)
    for i, j, d in zip(src.tolist(), dst.tolist(), dists.tolist()):
        graph.add_edge(ids[i], ids[j], distance=d)
    return graph


def _connected(deployment: Deployment) -> bool:
    return nx.is_connected(deployment.graph())


def deploy_uniform(
    node_count: int,
    rng: np.random.Generator,
    width: float = 100.0,
    height: float = 100.0,
    comm_range: float = 20.0,
    base_station: Point | None = None,
    max_attempts: int = 200,
) -> Deployment:
    """Uniform random deployment, resampled until connected.

    The base station defaults to the field centre.  Raises ``RuntimeError``
    if no connected deployment is found within ``max_attempts`` draws —
    a sign the density (``node_count`` vs. field size vs. ``comm_range``)
    is physically too sparse.
    """
    if node_count < 1:
        raise ValueError(f"node_count must be >= 1, got {node_count}")
    bs = base_station or Point(width / 2.0, height / 2.0)
    for _ in range(max_attempts):
        xs = rng.uniform(0.0, width, size=node_count)
        ys = rng.uniform(0.0, height, size=node_count)
        positions = tuple(Point(float(x), float(y)) for x, y in zip(xs, ys))
        deployment = Deployment(positions, bs, width, height, comm_range)
        if _connected(deployment):
            return deployment
    raise RuntimeError(
        f"no connected deployment of {node_count} nodes in a "
        f"{width}x{height} field at range {comm_range} after "
        f"{max_attempts} attempts; increase density or range"
    )


def deploy_grid(
    rows: int,
    cols: int,
    spacing: float = 15.0,
    comm_range: float | None = None,
    base_station: Point | None = None,
) -> Deployment:
    """Deterministic grid deployment.

    Nodes sit on a ``rows x cols`` lattice with the given spacing; the
    default radio range is 1.5x the spacing so the grid (with diagonals)
    is connected.  The base station defaults to the grid centre.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
    check_positive("spacing", spacing)
    positions = tuple(
        Point(c * spacing, r * spacing) for r in range(rows) for c in range(cols)
    )
    width = max((cols - 1) * spacing, spacing)
    height = max((rows - 1) * spacing, spacing)
    bs = base_station or Point(width / 2.0, height / 2.0)
    rng_range = comm_range if comm_range is not None else spacing * 1.5
    deployment = Deployment(positions, bs, width, height, rng_range)
    if not _connected(deployment):
        raise RuntimeError(
            "grid deployment is not connected; increase comm_range or spacing"
        )
    return deployment


def deploy_clustered(
    node_count: int,
    cluster_count: int,
    rng: np.random.Generator,
    width: float = 100.0,
    height: float = 100.0,
    comm_range: float = 20.0,
    cluster_std: float = 8.0,
    base_station: Point | None = None,
    max_attempts: int = 200,
) -> Deployment:
    """Clustered deployment: nodes gather around random cluster centres.

    Clustered fields produce pronounced *bridge* nodes between clusters —
    exactly the key nodes the attack targets — so this generator is used
    by the key-node-heavy experiments.
    """
    if node_count < 1:
        raise ValueError(f"node_count must be >= 1, got {node_count}")
    if cluster_count < 1:
        raise ValueError(f"cluster_count must be >= 1, got {cluster_count}")
    check_positive("cluster_std", cluster_std)
    bs = base_station or Point(width / 2.0, height / 2.0)
    for _ in range(max_attempts):
        centres_x = rng.uniform(0.15 * width, 0.85 * width, size=cluster_count)
        centres_y = rng.uniform(0.15 * height, 0.85 * height, size=cluster_count)
        assignment = rng.integers(0, cluster_count, size=node_count)
        xs = np.clip(
            centres_x[assignment] + rng.normal(0.0, cluster_std, node_count),
            0.0,
            width,
        )
        ys = np.clip(
            centres_y[assignment] + rng.normal(0.0, cluster_std, node_count),
            0.0,
            height,
        )
        positions = tuple(Point(float(x), float(y)) for x, y in zip(xs, ys))
        deployment = Deployment(positions, bs, width, height, comm_range)
        if _connected(deployment):
            return deployment
    raise RuntimeError(
        f"no connected clustered deployment of {node_count} nodes after "
        f"{max_attempts} attempts; increase density, range, or cluster_std"
    )
