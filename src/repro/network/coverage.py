"""Sensing-coverage metrics.

A WRSN's purpose is to observe its field; "the network still has alive
nodes" understates the damage when those nodes cluster in one corner.
Coverage is measured on a regular grid: a grid point is covered when at
least one *alive, base-station-connected* node senses it (Euclidean
sensing radius).  The attack's endgame — killing articulation nodes —
shows up here twice: dead sensors lose their own disks, and stranded
subtrees stop counting even though their nodes still live.
"""

from __future__ import annotations

import numpy as np

from repro.network.network import Network
from repro.utils.validation import check_positive

__all__ = ["coverage_ratio", "covered_fraction_of_points"]

DEFAULT_SENSING_RADIUS_M = 12.0
"""Default sensing radius: slightly over half the communication range."""


def covered_fraction_of_points(
    points: np.ndarray,
    sensor_positions: np.ndarray,
    sensing_radius_m: float,
) -> float:
    """Fraction of ``points`` within the radius of any sensor.

    ``points`` is (m, 2), ``sensor_positions`` (n, 2); an empty sensor
    set covers nothing.
    """
    check_positive("sensing_radius_m", sensing_radius_m)
    if len(points) == 0:
        raise ValueError("no points to measure coverage over")
    if len(sensor_positions) == 0:
        return 0.0
    deltas = points[:, None, :] - sensor_positions[None, :, :]
    dist_sq = (deltas**2).sum(axis=-1)
    covered = (dist_sq <= sensing_radius_m**2).any(axis=1)
    return float(covered.mean())


def coverage_ratio(
    network: Network,
    sensing_radius_m: float = DEFAULT_SENSING_RADIUS_M,
    grid_resolution: int = 25,
) -> float:
    """Field fraction observed by alive, connected sensors.

    Evaluated on a ``grid_resolution`` × ``grid_resolution`` lattice over
    the deployment field.  Only nodes that are alive *and* can deliver
    their readings to the base station count.
    """
    if grid_resolution < 2:
        raise ValueError(f"grid_resolution must be >= 2, got {grid_resolution}")
    deployment = network.deployment
    xs = np.linspace(0.0, deployment.width, grid_resolution)
    ys = np.linspace(0.0, deployment.height, grid_resolution)
    grid_x, grid_y = np.meshgrid(xs, ys)
    points = np.column_stack([grid_x.ravel(), grid_y.ravel()])

    tree = network.routing_tree
    active = [
        network.nodes[node_id].position
        for node_id in sorted(network.alive_ids())
        if tree.is_connected(node_id)
    ]
    sensors = np.array([(p.x, p.y) for p in active], dtype=float).reshape(-1, 2)
    return covered_fraction_of_points(points, sensors, sensing_radius_m)
